file(REMOVE_RECURSE
  "librepro_harness.a"
)
