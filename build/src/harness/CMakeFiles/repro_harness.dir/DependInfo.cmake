
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/aggregate.cpp" "src/harness/CMakeFiles/repro_harness.dir/aggregate.cpp.o" "gcc" "src/harness/CMakeFiles/repro_harness.dir/aggregate.cpp.o.d"
  "/root/repo/src/harness/context.cpp" "src/harness/CMakeFiles/repro_harness.dir/context.cpp.o" "gcc" "src/harness/CMakeFiles/repro_harness.dir/context.cpp.o.d"
  "/root/repo/src/harness/figures.cpp" "src/harness/CMakeFiles/repro_harness.dir/figures.cpp.o" "gcc" "src/harness/CMakeFiles/repro_harness.dir/figures.cpp.o.d"
  "/root/repo/src/harness/multifidelity_context.cpp" "src/harness/CMakeFiles/repro_harness.dir/multifidelity_context.cpp.o" "gcc" "src/harness/CMakeFiles/repro_harness.dir/multifidelity_context.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/repro_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/repro_harness.dir/report.cpp.o.d"
  "/root/repo/src/harness/results_io.cpp" "src/harness/CMakeFiles/repro_harness.dir/results_io.cpp.o" "gcc" "src/harness/CMakeFiles/repro_harness.dir/results_io.cpp.o.d"
  "/root/repo/src/harness/study.cpp" "src/harness/CMakeFiles/repro_harness.dir/study.cpp.o" "gcc" "src/harness/CMakeFiles/repro_harness.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/repro_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/imagecl/CMakeFiles/repro_imagecl.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/repro_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/repro_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
