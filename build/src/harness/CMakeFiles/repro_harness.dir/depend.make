# Empty dependencies file for repro_harness.
# This may be replaced when dependencies are built.
