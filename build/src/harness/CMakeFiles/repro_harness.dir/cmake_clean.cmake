file(REMOVE_RECURSE
  "CMakeFiles/repro_harness.dir/aggregate.cpp.o"
  "CMakeFiles/repro_harness.dir/aggregate.cpp.o.d"
  "CMakeFiles/repro_harness.dir/context.cpp.o"
  "CMakeFiles/repro_harness.dir/context.cpp.o.d"
  "CMakeFiles/repro_harness.dir/figures.cpp.o"
  "CMakeFiles/repro_harness.dir/figures.cpp.o.d"
  "CMakeFiles/repro_harness.dir/multifidelity_context.cpp.o"
  "CMakeFiles/repro_harness.dir/multifidelity_context.cpp.o.d"
  "CMakeFiles/repro_harness.dir/report.cpp.o"
  "CMakeFiles/repro_harness.dir/report.cpp.o.d"
  "CMakeFiles/repro_harness.dir/results_io.cpp.o"
  "CMakeFiles/repro_harness.dir/results_io.cpp.o.d"
  "CMakeFiles/repro_harness.dir/study.cpp.o"
  "CMakeFiles/repro_harness.dir/study.cpp.o.d"
  "librepro_harness.a"
  "librepro_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
