
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/dataset.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/dataset.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/dataset.cpp.o.d"
  "/root/repo/src/tuner/evaluator.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/evaluator.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/evaluator.cpp.o.d"
  "/root/repo/src/tuner/extras/auc_bandit.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/extras/auc_bandit.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/extras/auc_bandit.cpp.o.d"
  "/root/repo/src/tuner/extras/pso.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/extras/pso.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/extras/pso.cpp.o.d"
  "/root/repo/src/tuner/extras/simulated_annealing.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/extras/simulated_annealing.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/extras/simulated_annealing.cpp.o.d"
  "/root/repo/src/tuner/forest/decision_tree.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/forest/decision_tree.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/forest/decision_tree.cpp.o.d"
  "/root/repo/src/tuner/forest/random_forest.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/forest/random_forest.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/forest/random_forest.cpp.o.d"
  "/root/repo/src/tuner/forest/rf_tuner.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/forest/rf_tuner.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/forest/rf_tuner.cpp.o.d"
  "/root/repo/src/tuner/ga/genetic.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/ga/genetic.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/ga/genetic.cpp.o.d"
  "/root/repo/src/tuner/gp/bo_gp.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/gp/bo_gp.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/gp/bo_gp.cpp.o.d"
  "/root/repo/src/tuner/gp/gp_regressor.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/gp/gp_regressor.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/gp/gp_regressor.cpp.o.d"
  "/root/repo/src/tuner/gp/linalg.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/gp/linalg.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/gp/linalg.cpp.o.d"
  "/root/repo/src/tuner/multifidelity/fidelity.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/multifidelity/fidelity.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/multifidelity/fidelity.cpp.o.d"
  "/root/repo/src/tuner/multifidelity/hyperband.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/multifidelity/hyperband.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/multifidelity/hyperband.cpp.o.d"
  "/root/repo/src/tuner/random_search.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/random_search.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/random_search.cpp.o.d"
  "/root/repo/src/tuner/registry.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/registry.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/registry.cpp.o.d"
  "/root/repo/src/tuner/search_space.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/search_space.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/search_space.cpp.o.d"
  "/root/repo/src/tuner/tpe/bo_tpe.cpp" "src/tuner/CMakeFiles/repro_tuner.dir/tpe/bo_tpe.cpp.o" "gcc" "src/tuner/CMakeFiles/repro_tuner.dir/tpe/bo_tpe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/repro_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
