file(REMOVE_RECURSE
  "CMakeFiles/repro_imagecl.dir/benchmark_suite.cpp.o"
  "CMakeFiles/repro_imagecl.dir/benchmark_suite.cpp.o.d"
  "CMakeFiles/repro_imagecl.dir/image.cpp.o"
  "CMakeFiles/repro_imagecl.dir/image.cpp.o.d"
  "CMakeFiles/repro_imagecl.dir/kernels/add.cpp.o"
  "CMakeFiles/repro_imagecl.dir/kernels/add.cpp.o.d"
  "CMakeFiles/repro_imagecl.dir/kernels/convolution.cpp.o"
  "CMakeFiles/repro_imagecl.dir/kernels/convolution.cpp.o.d"
  "CMakeFiles/repro_imagecl.dir/kernels/harris.cpp.o"
  "CMakeFiles/repro_imagecl.dir/kernels/harris.cpp.o.d"
  "CMakeFiles/repro_imagecl.dir/kernels/mandelbrot.cpp.o"
  "CMakeFiles/repro_imagecl.dir/kernels/mandelbrot.cpp.o.d"
  "CMakeFiles/repro_imagecl.dir/kernels/separable_convolution.cpp.o"
  "CMakeFiles/repro_imagecl.dir/kernels/separable_convolution.cpp.o.d"
  "CMakeFiles/repro_imagecl.dir/kernels/sobel.cpp.o"
  "CMakeFiles/repro_imagecl.dir/kernels/sobel.cpp.o.d"
  "CMakeFiles/repro_imagecl.dir/kernels/transpose.cpp.o"
  "CMakeFiles/repro_imagecl.dir/kernels/transpose.cpp.o.d"
  "librepro_imagecl.a"
  "librepro_imagecl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_imagecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
