file(REMOVE_RECURSE
  "librepro_imagecl.a"
)
