
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imagecl/benchmark_suite.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/benchmark_suite.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/benchmark_suite.cpp.o.d"
  "/root/repo/src/imagecl/image.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/image.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/image.cpp.o.d"
  "/root/repo/src/imagecl/kernels/add.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/add.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/add.cpp.o.d"
  "/root/repo/src/imagecl/kernels/convolution.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/convolution.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/convolution.cpp.o.d"
  "/root/repo/src/imagecl/kernels/harris.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/harris.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/harris.cpp.o.d"
  "/root/repo/src/imagecl/kernels/mandelbrot.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/mandelbrot.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/mandelbrot.cpp.o.d"
  "/root/repo/src/imagecl/kernels/separable_convolution.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/separable_convolution.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/separable_convolution.cpp.o.d"
  "/root/repo/src/imagecl/kernels/sobel.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/sobel.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/sobel.cpp.o.d"
  "/root/repo/src/imagecl/kernels/transpose.cpp" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/transpose.cpp.o" "gcc" "src/imagecl/CMakeFiles/repro_imagecl.dir/kernels/transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simgpu/CMakeFiles/repro_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
