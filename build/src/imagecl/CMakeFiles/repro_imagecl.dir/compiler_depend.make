# Empty compiler generated dependencies file for repro_imagecl.
# This may be replaced when dependencies are built.
