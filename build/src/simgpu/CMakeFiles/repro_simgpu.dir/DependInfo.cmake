
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/arch.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/arch.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/arch.cpp.o.d"
  "/root/repo/src/simgpu/cache_sim.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/cache_sim.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/cache_sim.cpp.o.d"
  "/root/repo/src/simgpu/coalescing.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/coalescing.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/coalescing.cpp.o.d"
  "/root/repo/src/simgpu/device.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/device.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/device.cpp.o.d"
  "/root/repo/src/simgpu/divergence.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/divergence.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/divergence.cpp.o.d"
  "/root/repo/src/simgpu/faults.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/faults.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/faults.cpp.o.d"
  "/root/repo/src/simgpu/launch.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/launch.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/launch.cpp.o.d"
  "/root/repo/src/simgpu/occupancy.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/occupancy.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/occupancy.cpp.o.d"
  "/root/repo/src/simgpu/perf_model.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/perf_model.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/perf_model.cpp.o.d"
  "/root/repo/src/simgpu/trace.cpp" "src/simgpu/CMakeFiles/repro_simgpu.dir/trace.cpp.o" "gcc" "src/simgpu/CMakeFiles/repro_simgpu.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
