file(REMOVE_RECURSE
  "librepro_simgpu.a"
)
