# Empty dependencies file for repro_simgpu.
# This may be replaced when dependencies are built.
