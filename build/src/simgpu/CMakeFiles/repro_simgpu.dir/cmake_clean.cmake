file(REMOVE_RECURSE
  "CMakeFiles/repro_simgpu.dir/arch.cpp.o"
  "CMakeFiles/repro_simgpu.dir/arch.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/cache_sim.cpp.o"
  "CMakeFiles/repro_simgpu.dir/cache_sim.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/coalescing.cpp.o"
  "CMakeFiles/repro_simgpu.dir/coalescing.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/device.cpp.o"
  "CMakeFiles/repro_simgpu.dir/device.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/divergence.cpp.o"
  "CMakeFiles/repro_simgpu.dir/divergence.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/faults.cpp.o"
  "CMakeFiles/repro_simgpu.dir/faults.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/launch.cpp.o"
  "CMakeFiles/repro_simgpu.dir/launch.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/occupancy.cpp.o"
  "CMakeFiles/repro_simgpu.dir/occupancy.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/perf_model.cpp.o"
  "CMakeFiles/repro_simgpu.dir/perf_model.cpp.o.d"
  "CMakeFiles/repro_simgpu.dir/trace.cpp.o"
  "CMakeFiles/repro_simgpu.dir/trace.cpp.o.d"
  "librepro_simgpu.a"
  "librepro_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
