file(REMOVE_RECURSE
  "CMakeFiles/repro_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/repro_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/repro_stats.dir/descriptive.cpp.o"
  "CMakeFiles/repro_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/repro_stats.dir/effect_size.cpp.o"
  "CMakeFiles/repro_stats.dir/effect_size.cpp.o.d"
  "CMakeFiles/repro_stats.dir/mann_whitney.cpp.o"
  "CMakeFiles/repro_stats.dir/mann_whitney.cpp.o.d"
  "CMakeFiles/repro_stats.dir/nonparametric.cpp.o"
  "CMakeFiles/repro_stats.dir/nonparametric.cpp.o.d"
  "CMakeFiles/repro_stats.dir/paired.cpp.o"
  "CMakeFiles/repro_stats.dir/paired.cpp.o.d"
  "librepro_stats.a"
  "librepro_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
