
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/repro_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/repro_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/repro_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/repro_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/effect_size.cpp" "src/stats/CMakeFiles/repro_stats.dir/effect_size.cpp.o" "gcc" "src/stats/CMakeFiles/repro_stats.dir/effect_size.cpp.o.d"
  "/root/repo/src/stats/mann_whitney.cpp" "src/stats/CMakeFiles/repro_stats.dir/mann_whitney.cpp.o" "gcc" "src/stats/CMakeFiles/repro_stats.dir/mann_whitney.cpp.o.d"
  "/root/repo/src/stats/nonparametric.cpp" "src/stats/CMakeFiles/repro_stats.dir/nonparametric.cpp.o" "gcc" "src/stats/CMakeFiles/repro_stats.dir/nonparametric.cpp.o.d"
  "/root/repo/src/stats/paired.cpp" "src/stats/CMakeFiles/repro_stats.dir/paired.cpp.o" "gcc" "src/stats/CMakeFiles/repro_stats.dir/paired.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
