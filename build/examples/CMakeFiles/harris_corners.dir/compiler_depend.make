# Empty compiler generated dependencies file for harris_corners.
# This may be replaced when dependencies are built.
