file(REMOVE_RECURSE
  "CMakeFiles/harris_corners.dir/harris_corners.cpp.o"
  "CMakeFiles/harris_corners.dir/harris_corners.cpp.o.d"
  "harris_corners"
  "harris_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harris_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
