file(REMOVE_RECURSE
  "CMakeFiles/multifidelity_tuning.dir/multifidelity_tuning.cpp.o"
  "CMakeFiles/multifidelity_tuning.dir/multifidelity_tuning.cpp.o.d"
  "multifidelity_tuning"
  "multifidelity_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multifidelity_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
