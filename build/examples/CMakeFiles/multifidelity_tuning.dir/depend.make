# Empty dependencies file for multifidelity_tuning.
# This may be replaced when dependencies are built.
