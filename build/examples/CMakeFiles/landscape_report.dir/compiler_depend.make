# Empty compiler generated dependencies file for landscape_report.
# This may be replaced when dependencies are built.
