file(REMOVE_RECURSE
  "CMakeFiles/landscape_report.dir/landscape_report.cpp.o"
  "CMakeFiles/landscape_report.dir/landscape_report.cpp.o.d"
  "landscape_report"
  "landscape_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landscape_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
