# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_stats[1]_include.cmake")
include("/root/repo/build/tests/tests_simgpu[1]_include.cmake")
include("/root/repo/build/tests/tests_imagecl[1]_include.cmake")
include("/root/repo/build/tests/tests_tuner[1]_include.cmake")
include("/root/repo/build/tests/tests_harness[1]_include.cmake")
