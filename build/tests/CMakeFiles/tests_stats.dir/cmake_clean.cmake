file(REMOVE_RECURSE
  "CMakeFiles/tests_stats.dir/stats/test_bootstrap.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_bootstrap.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_effect_size.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_effect_size.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_mann_whitney.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_mann_whitney.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_nonparametric.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_nonparametric.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_paired.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_paired.cpp.o.d"
  "tests_stats"
  "tests_stats.pdb"
  "tests_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
