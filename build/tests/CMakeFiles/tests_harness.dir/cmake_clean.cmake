file(REMOVE_RECURSE
  "CMakeFiles/tests_harness.dir/harness/test_aggregate.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_aggregate.cpp.o.d"
  "CMakeFiles/tests_harness.dir/harness/test_context.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_context.cpp.o.d"
  "CMakeFiles/tests_harness.dir/harness/test_figures_cli.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_figures_cli.cpp.o.d"
  "CMakeFiles/tests_harness.dir/harness/test_multifidelity.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_multifidelity.cpp.o.d"
  "CMakeFiles/tests_harness.dir/harness/test_report.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_report.cpp.o.d"
  "CMakeFiles/tests_harness.dir/harness/test_results_io.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_results_io.cpp.o.d"
  "CMakeFiles/tests_harness.dir/harness/test_study.cpp.o"
  "CMakeFiles/tests_harness.dir/harness/test_study.cpp.o.d"
  "tests_harness"
  "tests_harness.pdb"
  "tests_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
