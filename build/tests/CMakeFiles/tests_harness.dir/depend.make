# Empty dependencies file for tests_harness.
# This may be replaced when dependencies are built.
