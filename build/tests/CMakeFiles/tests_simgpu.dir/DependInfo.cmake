
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simgpu/test_arch.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_arch.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_arch.cpp.o.d"
  "/root/repo/tests/simgpu/test_cache_sim.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_cache_sim.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_cache_sim.cpp.o.d"
  "/root/repo/tests/simgpu/test_coalescing.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_coalescing.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_coalescing.cpp.o.d"
  "/root/repo/tests/simgpu/test_device_trace.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_device_trace.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_device_trace.cpp.o.d"
  "/root/repo/tests/simgpu/test_divergence.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_divergence.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_divergence.cpp.o.d"
  "/root/repo/tests/simgpu/test_faults.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_faults.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_faults.cpp.o.d"
  "/root/repo/tests/simgpu/test_launch.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_launch.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_launch.cpp.o.d"
  "/root/repo/tests/simgpu/test_noise.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_noise.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_noise.cpp.o.d"
  "/root/repo/tests/simgpu/test_occupancy.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_occupancy.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_occupancy.cpp.o.d"
  "/root/repo/tests/simgpu/test_perf_model.cpp" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/tests_simgpu.dir/simgpu/test_perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/repro_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/repro_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/imagecl/CMakeFiles/repro_imagecl.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/repro_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/repro_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
