file(REMOVE_RECURSE
  "CMakeFiles/tests_simgpu.dir/simgpu/test_arch.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_arch.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_cache_sim.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_cache_sim.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_coalescing.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_coalescing.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_device_trace.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_device_trace.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_divergence.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_divergence.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_faults.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_faults.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_launch.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_launch.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_noise.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_noise.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_occupancy.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_occupancy.cpp.o.d"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_perf_model.cpp.o"
  "CMakeFiles/tests_simgpu.dir/simgpu/test_perf_model.cpp.o.d"
  "tests_simgpu"
  "tests_simgpu.pdb"
  "tests_simgpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
