# Empty dependencies file for tests_simgpu.
# This may be replaced when dependencies are built.
