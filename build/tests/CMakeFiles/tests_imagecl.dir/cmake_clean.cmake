file(REMOVE_RECURSE
  "CMakeFiles/tests_imagecl.dir/imagecl/test_benchmark_suite.cpp.o"
  "CMakeFiles/tests_imagecl.dir/imagecl/test_benchmark_suite.cpp.o.d"
  "CMakeFiles/tests_imagecl.dir/imagecl/test_extended_kernels.cpp.o"
  "CMakeFiles/tests_imagecl.dir/imagecl/test_extended_kernels.cpp.o.d"
  "CMakeFiles/tests_imagecl.dir/imagecl/test_image.cpp.o"
  "CMakeFiles/tests_imagecl.dir/imagecl/test_image.cpp.o.d"
  "CMakeFiles/tests_imagecl.dir/imagecl/test_kernels.cpp.o"
  "CMakeFiles/tests_imagecl.dir/imagecl/test_kernels.cpp.o.d"
  "tests_imagecl"
  "tests_imagecl.pdb"
  "tests_imagecl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_imagecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
