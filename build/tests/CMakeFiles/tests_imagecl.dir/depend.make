# Empty dependencies file for tests_imagecl.
# This may be replaced when dependencies are built.
