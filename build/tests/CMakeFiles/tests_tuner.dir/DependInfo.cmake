
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tuner/test_auc_bandit.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_auc_bandit.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_auc_bandit.cpp.o.d"
  "/root/repo/tests/tuner/test_bo_gp.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_bo_gp.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_bo_gp.cpp.o.d"
  "/root/repo/tests/tuner/test_dataset.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_dataset.cpp.o.d"
  "/root/repo/tests/tuner/test_decision_tree.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_decision_tree.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_decision_tree.cpp.o.d"
  "/root/repo/tests/tuner/test_evaluator.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_evaluator.cpp.o.d"
  "/root/repo/tests/tuner/test_extras.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_extras.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_extras.cpp.o.d"
  "/root/repo/tests/tuner/test_ga.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_ga.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_ga.cpp.o.d"
  "/root/repo/tests/tuner/test_gp.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_gp.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_gp.cpp.o.d"
  "/root/repo/tests/tuner/test_hyperband.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_hyperband.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_hyperband.cpp.o.d"
  "/root/repo/tests/tuner/test_linalg.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_linalg.cpp.o.d"
  "/root/repo/tests/tuner/test_random_forest.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_random_forest.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_random_forest.cpp.o.d"
  "/root/repo/tests/tuner/test_random_search.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_random_search.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_random_search.cpp.o.d"
  "/root/repo/tests/tuner/test_registry.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_registry.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_registry.cpp.o.d"
  "/root/repo/tests/tuner/test_rf_tuner.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_rf_tuner.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_rf_tuner.cpp.o.d"
  "/root/repo/tests/tuner/test_search_space.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_search_space.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_search_space.cpp.o.d"
  "/root/repo/tests/tuner/test_tpe.cpp" "tests/CMakeFiles/tests_tuner.dir/tuner/test_tpe.cpp.o" "gcc" "tests/CMakeFiles/tests_tuner.dir/tuner/test_tpe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/repro_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/repro_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/imagecl/CMakeFiles/repro_imagecl.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/repro_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/repro_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
