# Empty compiler generated dependencies file for tests_tuner.
# This may be replaced when dependencies are built.
