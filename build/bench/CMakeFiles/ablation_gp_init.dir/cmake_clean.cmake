file(REMOVE_RECURSE
  "CMakeFiles/ablation_gp_init.dir/ablation_gp_init.cpp.o"
  "CMakeFiles/ablation_gp_init.dir/ablation_gp_init.cpp.o.d"
  "ablation_gp_init"
  "ablation_gp_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gp_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
