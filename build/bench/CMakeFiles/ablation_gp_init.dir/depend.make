# Empty dependencies file for ablation_gp_init.
# This may be replaced when dependencies are built.
