# Empty compiler generated dependencies file for fig4b_cles_over_rs.
# This may be replaced when dependencies are built.
