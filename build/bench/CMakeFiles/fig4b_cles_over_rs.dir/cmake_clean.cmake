file(REMOVE_RECURSE
  "CMakeFiles/fig4b_cles_over_rs.dir/fig4b_cles_over_rs.cpp.o"
  "CMakeFiles/fig4b_cles_over_rs.dir/fig4b_cles_over_rs.cpp.o.d"
  "fig4b_cles_over_rs"
  "fig4b_cles_over_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_cles_over_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
