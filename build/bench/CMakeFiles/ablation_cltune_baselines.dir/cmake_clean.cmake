file(REMOVE_RECURSE
  "CMakeFiles/ablation_cltune_baselines.dir/ablation_cltune_baselines.cpp.o"
  "CMakeFiles/ablation_cltune_baselines.dir/ablation_cltune_baselines.cpp.o.d"
  "ablation_cltune_baselines"
  "ablation_cltune_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cltune_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
