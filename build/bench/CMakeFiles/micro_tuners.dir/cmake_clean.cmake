file(REMOVE_RECURSE
  "CMakeFiles/micro_tuners.dir/micro/micro_tuners.cpp.o"
  "CMakeFiles/micro_tuners.dir/micro/micro_tuners.cpp.o.d"
  "micro_tuners"
  "micro_tuners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tuners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
