# Empty dependencies file for micro_tuners.
# This may be replaced when dependencies are built.
