file(REMOVE_RECURSE
  "CMakeFiles/extension_more_benchmarks.dir/extension_more_benchmarks.cpp.o"
  "CMakeFiles/extension_more_benchmarks.dir/extension_more_benchmarks.cpp.o.d"
  "extension_more_benchmarks"
  "extension_more_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_more_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
