# Empty compiler generated dependencies file for extension_more_benchmarks.
# This may be replaced when dependencies are built.
