# Empty dependencies file for extension_hyperband.
# This may be replaced when dependencies are built.
