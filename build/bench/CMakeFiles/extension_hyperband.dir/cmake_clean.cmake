file(REMOVE_RECURSE
  "CMakeFiles/extension_hyperband.dir/extension_hyperband.cpp.o"
  "CMakeFiles/extension_hyperband.dir/extension_hyperband.cpp.o.d"
  "extension_hyperband"
  "extension_hyperband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hyperband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
