
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_faults.cpp" "bench/CMakeFiles/ablation_faults.dir/ablation_faults.cpp.o" "gcc" "bench/CMakeFiles/ablation_faults.dir/ablation_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/repro_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/repro_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/imagecl/CMakeFiles/repro_imagecl.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/repro_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/repro_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
