file(REMOVE_RECURSE
  "CMakeFiles/fig2_percent_of_optimum.dir/fig2_percent_of_optimum.cpp.o"
  "CMakeFiles/fig2_percent_of_optimum.dir/fig2_percent_of_optimum.cpp.o.d"
  "fig2_percent_of_optimum"
  "fig2_percent_of_optimum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_percent_of_optimum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
