# Empty dependencies file for fig2_percent_of_optimum.
# This may be replaced when dependencies are built.
