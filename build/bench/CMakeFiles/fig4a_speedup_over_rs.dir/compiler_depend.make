# Empty compiler generated dependencies file for fig4a_speedup_over_rs.
# This may be replaced when dependencies are built.
