# Empty dependencies file for extension_convergence.
# This may be replaced when dependencies are built.
