file(REMOVE_RECURSE
  "CMakeFiles/extension_convergence.dir/extension_convergence.cpp.o"
  "CMakeFiles/extension_convergence.dir/extension_convergence.cpp.o.d"
  "extension_convergence"
  "extension_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
