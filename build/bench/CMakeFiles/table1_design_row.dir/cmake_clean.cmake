file(REMOVE_RECURSE
  "CMakeFiles/table1_design_row.dir/table1_design_row.cpp.o"
  "CMakeFiles/table1_design_row.dir/table1_design_row.cpp.o.d"
  "table1_design_row"
  "table1_design_row.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_design_row.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
