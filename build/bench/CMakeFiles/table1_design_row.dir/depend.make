# Empty dependencies file for table1_design_row.
# This may be replaced when dependencies are built.
