file(REMOVE_RECURSE
  "CMakeFiles/fig3_aggregate_lines.dir/fig3_aggregate_lines.cpp.o"
  "CMakeFiles/fig3_aggregate_lines.dir/fig3_aggregate_lines.cpp.o.d"
  "fig3_aggregate_lines"
  "fig3_aggregate_lines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_aggregate_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
