# Empty dependencies file for fig3_aggregate_lines.
# This may be replaced when dependencies are built.
