file(REMOVE_RECURSE
  "CMakeFiles/ablation_hyperparams.dir/ablation_hyperparams.cpp.o"
  "CMakeFiles/ablation_hyperparams.dir/ablation_hyperparams.cpp.o.d"
  "ablation_hyperparams"
  "ablation_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
