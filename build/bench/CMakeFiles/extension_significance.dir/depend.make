# Empty dependencies file for extension_significance.
# This may be replaced when dependencies are built.
