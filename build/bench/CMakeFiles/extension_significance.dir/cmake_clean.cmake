file(REMOVE_RECURSE
  "CMakeFiles/extension_significance.dir/extension_significance.cpp.o"
  "CMakeFiles/extension_significance.dir/extension_significance.cpp.o.d"
  "extension_significance"
  "extension_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
