# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ablation_faults_smoke "/root/repo/build/bench/ablation_faults" "--repeats" "3" "--budget" "15" "--retries" "1")
set_tests_properties(ablation_faults_smoke PROPERTIES  LABELS "sanitize" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
