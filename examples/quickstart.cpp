// Quickstart: autotune one GPU kernel with one algorithm in ~30 lines of
// API use. Tunes the Mandelbrot benchmark on the simulated RTX Titan with
// Bayesian Optimization (GP) at a 100-sample budget and compares against
// Random Search — the paper's core experiment, once.

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "harness/context.hpp"
#include "tuner/registry.hpp"

int main() {
  using namespace repro;

  // 1. Pick a benchmark and an architecture; the context builds the
  //    simulated device model and finds the true optimum for reference.
  harness::BenchmarkContext context(imagecl::benchmark_by_name("mandelbrot"),
                                    simgpu::arch_by_name("rtxtitan"),
                                    /*dataset_size=*/0, /*master_seed=*/2022);
  std::printf("benchmark: mandelbrot (8192x8192) on RTX Titan (simulated)\n");
  std::printf("true optimum: %.1f us\n\n", context.optimum_us());

  // 2. Tune with BO GP and with RS at the same 100-sample budget.
  for (const char* algorithm_id : {"bogp", "rs"}) {
    Rng rng(seed_from_string(algorithm_id));
    const tuner::Objective objective = context.make_objective(rng);
    tuner::Evaluator evaluator(context.space(), objective, /*budget=*/100);
    const auto algorithm = tuner::make_algorithm(algorithm_id);
    const tuner::TuneResult result =
        algorithm->minimize(context.space(), evaluator, rng);

    // 3. Re-measure the winner 10 times, as the paper's pipeline does.
    const double final_us =
        context.measure_repeated_us(result.best_config, rng, 10);
    const auto& c = result.best_config;
    std::printf("%-6s best config: threads=(%d,%d,%d) wg=(%d,%d,%d)\n",
                algorithm->name().c_str(), c[0], c[1], c[2], c[3], c[4], c[5]);
    std::printf("       measured %.1f us  (%.1f%% of optimum, %zu samples)\n\n",
                final_us, context.optimum_us() / final_us * 100.0,
                result.evaluations_used);
  }
  return 0;
}
