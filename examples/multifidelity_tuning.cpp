// Multi-fidelity autotuning with BOHB: tune the Harris kernel using scaled-
// down proxy problems (a quarter-size image costs a quarter of a full
// measurement) and compare what the same total cost buys a single-fidelity
// tuner. Demonstrates the FidelityEvaluator / MultiFidelitySearch API from
// the paper's future-work extension.
//
//   ./multifidelity_tuning [--bench harris] [--budget 60]

#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "harness/multifidelity_context.hpp"
#include "tuner/multifidelity/hyperband.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("multifidelity_tuning", "BOHB over problem-size fidelities");
  cli.add_option("bench", "benchmark", "harris");
  cli.add_option("budget", "total cost in full-evaluation units", "60");
  if (!cli.parse(argc, argv)) return 0;
  const double budget = cli.get_double("budget");

  // Fidelity levels: 1/27, 1/9 and 1/3 of the full problem's elements.
  harness::MultiFidelityContext context(cli.get("bench"),
                                        simgpu::arch_by_name("titanv"),
                                        {1.0 / 27.0, 1.0 / 9.0, 1.0 / 3.0}, 99);
  const harness::BenchmarkContext& full = context.full();
  std::printf("%s on Titan V (simulated), optimum %.1f us, budget %.0f units\n\n",
              cli.get("bench").c_str(), full.optimum_us(), budget);

  // BOHB: successive-halving brackets + TPE-guided sampling.
  {
    Rng rng(1);
    tuner::FidelityEvaluator evaluator(full.space(), context.make_objective(rng),
                                       budget);
    tuner::Bohb bohb;
    const tuner::FidelityTuneResult result =
        bohb.minimize(full.space(), evaluator, rng);
    if (result.found_valid) {
      std::printf("BOHB:   %zu evaluations across fidelities for %.1f units;\n"
                  "        best full-fidelity config reaches %.1f%% of optimum\n",
                  result.evaluations, result.units_used,
                  full.optimum_us() / full.true_time_us(result.best_config) * 100.0);
    }
  }

  // Same cost spent on full-fidelity BO TPE.
  {
    Rng rng(2);
    tuner::Evaluator evaluator(full.space(), full.make_objective(rng),
                               static_cast<std::size_t>(budget));
    const auto tpe = tuner::make_algorithm("botpe");
    const tuner::TuneResult result = tpe->minimize(full.space(), evaluator, rng);
    if (result.found_valid) {
      std::printf("BO TPE: %zu full evaluations;\n"
                  "        best config reaches %.1f%% of optimum\n",
                  result.evaluations_used,
                  full.optimum_us() / full.true_time_us(result.best_config) * 100.0);
    }
  }
  return 0;
}
