// Tune, then actually run: autotunes the Mandelbrot kernel, executes it
// functionally on the trace-based device with the winning configuration,
// and writes the classic visualization as mandelbrot.ppm.
//
//   ./mandelbrot_render [--size 1024] [--budget 50] [--algo botpe]

#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "harness/context.hpp"
#include "imagecl/image.hpp"
#include "imagecl/kernels/mandelbrot.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("mandelbrot_render", "autotune + render the Mandelbrot set");
  cli.add_option("size", "output image side length", "1024");
  cli.add_option("budget", "tuning sample budget", "50");
  cli.add_option("algo", "search algorithm", "botpe");
  cli.add_option("out", "output file", "mandelbrot.ppm");
  if (!cli.parse(argc, argv)) return 0;
  const auto size = static_cast<std::uint64_t>(cli.get_int("size"));

  // Tune at the paper's full problem size (the model is size-aware).
  harness::BenchmarkContext context(imagecl::benchmark_by_name("mandelbrot"),
                                    simgpu::arch_by_name("titanv"), 0, 7);
  Rng rng(11);
  const tuner::Objective objective = context.make_objective(rng);
  tuner::Evaluator evaluator(context.space(), objective,
                             static_cast<std::size_t>(cli.get_int("budget")));
  const auto algorithm = tuner::make_algorithm(cli.get("algo"));
  const tuner::TuneResult result = algorithm->minimize(context.space(), evaluator, rng);
  if (!result.found_valid) {
    std::fprintf(stderr, "tuning found no valid configuration\n");
    return 1;
  }
  const simgpu::KernelConfig config = harness::to_kernel_config(result.best_config);
  std::printf("%s chose %s  (model: %.1f us, %.1f%% of optimum)\n",
              algorithm->name().c_str(), config.to_string().c_str(),
              context.true_time_us(result.best_config),
              context.optimum_us() / context.true_time_us(result.best_config) * 100.0);

  // Execute the kernel functionally with the tuned configuration.
  const simgpu::Device device(simgpu::arch_by_name("titanv"));
  simgpu::TracedBuffer<float> out(0, size * size);
  imagecl::run_mandelbrot(device, config, size, size, out);

  imagecl::Image<float> image(size, size);
  image.data() = out.data();
  const std::string path = cli.get("out");
  if (!imagecl::write_ppm_colormap(image, path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%llux%llu)\n", path.c_str(),
              static_cast<unsigned long long>(size),
              static_cast<unsigned long long>(size));
  return 0;
}
