// Mini-study: compare all eight implemented search algorithms (the paper's
// five plus the CLTune baselines SA/PSO and the OpenTuner-style AUC
// bandit) on one benchmark/architecture
// pair across several sample budgets, with repeats, medians, and
// Mann-Whitney significance vs Random Search — a compact version of the
// paper's whole pipeline driven purely through the public API.
//
//   ./compare_algorithms [--bench harris] [--arch titanv] [--repeats 9]

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "stats/descriptive.hpp"
#include "stats/effect_size.hpp"
#include "stats/mann_whitney.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("compare_algorithms", "compare all search algorithms head to head");
  cli.add_option("bench", "benchmark (add|harris|mandelbrot)", "harris");
  cli.add_option("arch", "architecture (gtx980|titanv|rtxtitan)", "titanv");
  cli.add_option("repeats", "experiments per cell", "9");
  cli.add_option("sizes", "comma list of budgets", "25,100,400");
  if (!cli.parse(argc, argv)) return 0;

  harness::BenchmarkContext context(imagecl::benchmark_by_name(cli.get("bench")),
                                    simgpu::arch_by_name(cli.get("arch")), 0, 1234);
  std::printf("%s on %s — optimum %.1f us\n\n", cli.get("bench").c_str(),
              cli.get("arch").c_str(), context.optimum_us());

  std::vector<std::size_t> sizes;
  {
    std::string token;
    for (char c : cli.get("sizes") + ",") {
      if (c == ',') {
        if (!token.empty()) sizes.push_back(std::stoull(token));
        token.clear();
      } else {
        token += c;
      }
    }
  }
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));

  // Collect outcome distributions per (algorithm, size).
  std::vector<std::vector<std::vector<double>>> outcomes(
      tuner::all_algorithms().size(), std::vector<std::vector<double>>(sizes.size()));
  for (std::size_t a = 0; a < tuner::all_algorithms().size(); ++a) {
    const std::string& id = tuner::all_algorithms()[a];
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      for (std::size_t r = 0; r < repeats; ++r) {
        Rng rng(seed_combine(seed_from_string(id), sizes[s] * 1000 + r));
        tuner::Evaluator evaluator(context.space(), context.make_objective(rng),
                                   sizes[s]);
        const auto algorithm = tuner::make_algorithm(id);
        const tuner::TuneResult result =
            algorithm->minimize(context.space(), evaluator, rng);
        if (result.found_valid) {
          outcomes[a][s].push_back(
              context.measure_repeated_us(result.best_config, rng, 10));
        }
      }
    }
  }

  const std::size_t rs_index = 0;  // all_algorithms() starts with "rs"
  Table table({"algorithm", "budget", "median_us", "pct_of_optimum",
               "speedup_vs_rs", "cles_vs_rs", "mwu_p"});
  table.set_precision(3);
  for (std::size_t a = 0; a < tuner::all_algorithms().size(); ++a) {
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      if (outcomes[a][s].empty()) continue;
      const double median = stats::median(outcomes[a][s]);
      const double rs_median = stats::median(outcomes[rs_index][s]);
      const double p =
          a == rs_index
              ? 1.0
              : stats::mann_whitney_u(outcomes[a][s], outcomes[rs_index][s]).p_value;
      table.add_row({tuner::display_name(tuner::all_algorithms()[a]),
                     static_cast<long long>(sizes[s]), median,
                     context.optimum_us() / median * 100.0, rs_median / median,
                     a == rs_index ? 0.5
                                   : stats::cles_less(outcomes[a][s], outcomes[rs_index][s]),
                     p});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\n(cles_vs_rs: probability the algorithm beats RS on a random pair;\n"
              " mwu_p: two-sided Mann-Whitney U p-value vs RS, alpha = 0.01)\n");
  return 0;
}
