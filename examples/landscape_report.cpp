// Landscape diagnostics: what does a tuning search space actually look
// like? Samples the executable sub-space of each benchmark on one
// architecture and reports runtime quantiles (relative to the true
// optimum), the invalid fraction of the full space, and the best known
// configuration — the numbers that explain *why* the sample-size study
// behaves the way it does.
//
//   ./landscape_report [--arch titanv] [--samples 20000]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "imagecl/benchmark_suite.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("landscape_report", "search-space statistics per benchmark");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("samples", "executable configurations to sample", "20000");
  cli.add_flag("extended", "include convolution/sobel/transpose");
  if (!cli.parse(argc, argv)) return 0;
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto& arch = simgpu::arch_by_name(cli.get("arch"));

  Table table({"benchmark", "optimum_us", "q01", "q10", "median", "q90", "max",
               "best_of_25", "best_config"});
  table.set_precision(2);

  const auto& benchmarks =
      cli.get_flag("extended") ? imagecl::extended_suite() : imagecl::suite();
  for (const auto& benchmark : benchmarks) {
    const harness::BenchmarkContext context(benchmark, arch, 0, 7);
    Rng rng(13);
    std::vector<double> ratios;
    ratios.reserve(samples);
    tuner::Configuration best_config;
    double best = 1e300;
    for (std::size_t i = 0; i < samples; ++i) {
      const tuner::Configuration config = context.space().sample_executable(rng);
      const double time = context.true_time_us(config);
      if (std::isnan(time)) continue;
      ratios.push_back(time / context.optimum_us());
      if (time < best) {
        best = time;
        best_config = config;
      }
    }
    // Expected best-of-25 draw = the 1/25 quantile of the ratio distribution.
    const double best_of_25 = stats::quantile(ratios, 1.0 / 25.0);
    const auto& c = best_config;
    table.add_row({benchmark->name(), context.optimum_us(),
                   stats::quantile(ratios, 0.01), stats::quantile(ratios, 0.10),
                   stats::median(ratios), stats::quantile(ratios, 0.90),
                   stats::max(ratios), best_of_25,
                   std::string("(") + std::to_string(c[0]) + "," + std::to_string(c[1]) +
                       "," + std::to_string(c[2]) + "|" + std::to_string(c[3]) + "," +
                       std::to_string(c[4]) + "," + std::to_string(c[5]) + ")"});
  }
  std::printf("Landscape statistics on %s (%zu executable samples per benchmark;\n"
              "columns q01..max are runtime ratios to the true optimum):\n\n",
              cli.get("arch").c_str(), samples);
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nReading guide: best_of_25 approximates what Random Search achieves\n"
              "at the paper's smallest sample size; a heavy q90/max tail is what\n"
              "failed searches pay.\n");
  return 0;
}
