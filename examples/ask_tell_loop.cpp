// Ask/tell tuning loop: the caller owns the measurement loop and the
// search algorithm is a passive suggestion engine. The same inversion
// powers the `tuned` daemon; here it runs in-process, which is useful when
// measurements must happen on a thread/process the tuner library cannot
// call into (a GUI thread, an MPI rank, a hardware test rig).

#include <cstdio>

#include "common/rng.hpp"
#include "harness/context.hpp"
#include "tuner/ask_tell.hpp"
#include "tuner/registry.hpp"

int main() {
  using namespace repro;

  harness::BenchmarkContext context(imagecl::benchmark_by_name("mandelbrot"),
                                    simgpu::arch_by_name("rtxtitan"),
                                    /*dataset_size=*/0, /*master_seed=*/2022);
  std::printf("mandelbrot on RTX Titan (simulated), optimum %.1f us\n",
              context.optimum_us());

  // The objective RNG is ours; the algorithm RNG lives inside the session.
  Rng measurement_rng(seed_from_string("ask-tell-example"));
  const tuner::Objective objective = context.make_objective(measurement_rng);

  tuner::AskTellSession session(context.space(), tuner::make_algorithm("bogp"),
                                /*budget=*/60, /*seed=*/2022);
  while (auto config = session.ask()) {
    session.tell(objective(*config));
    if (session.tells() % 20 == 0) {
      std::printf("  %zu measurements delivered\n", session.tells());
    }
  }

  const tuner::TuneResult result = session.result();
  const auto& c = result.best_config;
  std::printf("%s best: threads=(%d,%d,%d) wg=(%d,%d,%d) -> %.1f us "
              "(%zu evals, %.1f%% of optimum)\n",
              session.algorithm_name().c_str(), c[0], c[1], c[2], c[3], c[4], c[5],
              result.best_value, result.evaluations_used,
              context.optimum_us() / result.best_value * 100.0);
  return 0;
}
