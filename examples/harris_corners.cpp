// Harris corner detection end to end: builds a synthetic test image
// (rotated rectangles on a gradient background), autotunes the Harris
// kernel, runs it functionally on the simulated device, thresholds the
// response, and writes both the input and an overlay with detected corners.
//
//   ./harris_corners [--size 512] [--budget 50] [--algo bogp]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "harness/context.hpp"
#include "imagecl/image.hpp"
#include "imagecl/kernels/harris.hpp"
#include "tuner/registry.hpp"

namespace {

/// Synthetic scene with known corners: bright axis-aligned and rotated
/// rectangles over a smooth gradient.
repro::imagecl::Image<float> make_scene(std::size_t size) {
  using repro::imagecl::Image;
  Image<float> image(size, size);
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      image.at(x, y) = 20.0f + 20.0f * static_cast<float>(x + y) / (2.0f * size);
    }
  }
  auto fill_rect = [&](std::size_t x0, std::size_t y0, std::size_t w, std::size_t h,
                       float value) {
    for (std::size_t y = y0; y < std::min(y0 + h, size); ++y) {
      for (std::size_t x = x0; x < std::min(x0 + w, size); ++x) {
        image.at(x, y) = value;
      }
    }
  };
  fill_rect(size / 8, size / 8, size / 4, size / 5, 200.0f);
  fill_rect(size / 2, size / 3, size / 3, size / 4, 140.0f);
  fill_rect(size / 4, 5 * size / 8, size / 5, size / 4, 230.0f);
  return image;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("harris_corners", "autotune + run Harris corner detection");
  cli.add_option("size", "test image side length", "512");
  cli.add_option("budget", "tuning sample budget", "50");
  cli.add_option("algo", "search algorithm", "bogp");
  cli.add_option("corners", "number of corners to mark", "24");
  if (!cli.parse(argc, argv)) return 0;
  const auto size = static_cast<std::size_t>(cli.get_int("size"));

  // 1. Autotune the Harris kernel at the paper's problem size.
  harness::BenchmarkContext context(imagecl::benchmark_by_name("harris"),
                                    simgpu::arch_by_name("rtxtitan"), 0, 5);
  Rng rng(17);
  tuner::Evaluator evaluator(context.space(), context.make_objective(rng),
                             static_cast<std::size_t>(cli.get_int("budget")));
  const auto algorithm = tuner::make_algorithm(cli.get("algo"));
  const tuner::TuneResult tuned = algorithm->minimize(context.space(), evaluator, rng);
  if (!tuned.found_valid) {
    std::fprintf(stderr, "tuning found no valid configuration\n");
    return 1;
  }
  const simgpu::KernelConfig config = harness::to_kernel_config(tuned.best_config);
  std::printf("%s chose %s (model %.1f us, optimum %.1f us)\n",
              algorithm->name().c_str(), config.to_string().c_str(),
              context.true_time_us(tuned.best_config), context.optimum_us());

  // 2. Run the kernel functionally on the simulated device.
  const imagecl::Image<float> scene = make_scene(size);
  const simgpu::Device device(simgpu::arch_by_name("rtxtitan"));
  simgpu::TracedBuffer<float> in_buffer(0, size * size);
  simgpu::TracedBuffer<float> out_buffer(1, size * size);
  in_buffer.data() = scene.data();
  imagecl::run_harris(device, config, scene, in_buffer, out_buffer);

  // 3. Non-maximum suppression: keep the strongest local maxima.
  struct Corner {
    std::size_t x, y;
    float response;
  };
  std::vector<Corner> corners;
  imagecl::Image<float> response(size, size);
  response.data() = out_buffer.data();
  for (std::size_t y = 2; y + 2 < size; ++y) {
    for (std::size_t x = 2; x + 2 < size; ++x) {
      const float r = response.at(x, y);
      if (r <= 0.0f) continue;
      bool is_max = true;
      for (int dy = -2; dy <= 2 && is_max; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          if (response.at_clamped(static_cast<std::int64_t>(x) + dx,
                                  static_cast<std::int64_t>(y) + dy) > r) {
            is_max = false;
            break;
          }
        }
      }
      if (is_max) corners.push_back({x, y, r});
    }
  }
  const std::size_t keep = std::min<std::size_t>(corners.size(),
                                                 static_cast<std::size_t>(cli.get_int("corners")));
  std::partial_sort(corners.begin(), corners.begin() + keep, corners.end(),
                    [](const Corner& a, const Corner& b) { return a.response > b.response; });
  corners.resize(keep);
  std::printf("detected %zu corners; strongest at:\n", corners.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(corners.size(), 8); ++i) {
    std::printf("  (%4zu, %4zu)  response %.3g\n", corners[i].x, corners[i].y,
                corners[i].response);
  }

  // 4. Write input and overlay images.
  imagecl::Image<float> overlay = scene;
  for (const Corner& corner : corners) {
    for (int d = -4; d <= 4; ++d) {
      const auto mark = [&](std::int64_t px, std::int64_t py) {
        if (px >= 0 && py >= 0 && px < static_cast<std::int64_t>(size) &&
            py < static_cast<std::int64_t>(size)) {
          overlay.at(px, py) = 255.0f;
        }
      };
      mark(static_cast<std::int64_t>(corner.x) + d, corner.y);
      mark(corner.x, static_cast<std::int64_t>(corner.y) + d);
    }
  }
  if (!imagecl::write_pgm(scene, "harris_input.pgm") ||
      !imagecl::write_pgm(overlay, "harris_corners.pgm")) {
    std::fprintf(stderr, "failed to write output images\n");
    return 1;
  }
  std::printf("wrote harris_input.pgm and harris_corners.pgm\n");
  return 0;
}
