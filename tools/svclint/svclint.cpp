#include "svclint.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace svclint {

namespace {

using lintcore::Lexed;
using lintcore::TokKind;
using lintcore::Token;

using lintcore::is;
using lintcore::is_ident;
using lintcore::prev_is_member;
using lintcore::prev_is_scope;

// ---------------------------------------------------------------------------
// Corpus model: every rule family is cross-file, so the corpus is lexed and
// segmented into functions once and the rules walk the shared result.
// ---------------------------------------------------------------------------

struct File {
  std::string path;
  std::string basename;
  Lexed lx;
};

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool is_keyword(const std::string& id) {
  static const std::set<std::string> kw = {
      "if",     "while",   "for",     "switch",        "catch",
      "return", "sizeof",  "new",     "delete",        "throw",
      "assert", "alignof", "typeid",  "static_assert", "decltype",
      "alignas", "co_await", "co_return", "co_yield"};
  return kw.count(id) != 0;
}

/// Returns the index one past the group's matching closer (t[open] must be
/// the opener), or t.size() when unbalanced.
std::size_t skip_group(const std::vector<Token>& t, std::size_t open,
                       const char* opener, const char* closer) {
  int depth = 0;
  std::size_t j = open;
  while (j < t.size()) {
    if (is(t, j, opener)) {
      ++depth;
    } else if (is(t, j, closer)) {
      --depth;
      if (depth == 0) return j + 1;
    }
    ++j;
  }
  return j;
}

// ---------------------------------------------------------------------------
// Function segmentation. Token-level: a candidate is `name (` outside any
// function body; the trailer after the matching `)` decides declaration vs
// definition (`;`/`=` vs `{`), skipping cv-qualifiers, noexcept(...),
// thread-safety annotations and constructor initializer lists. A class
// stack supplies the qualifier for inline member definitions; `Class::name`
// supplies it for out-of-line ones. Operator overloads are not segmented
// (no `name (` shape) — none of the audited invariants live there.
// ---------------------------------------------------------------------------

struct Function {
  std::string name;
  std::string qualifier;  ///< enclosing/prefixed class, "" for free functions
  std::size_t file = 0;   ///< index into the corpus file list
  std::size_t body_begin = 0;  ///< token index of the opening '{'
  std::size_t body_end = 0;    ///< one past the matching '}'
  std::vector<std::string> requires_args;  ///< REQUIRES(...) lock arguments
};

struct DeclRequires {  ///< REQUIRES on a body-less declaration (headers)
  std::string qualifier;
  std::string name;
  std::vector<std::string> args;
};

struct Segmented {
  std::vector<Function> functions;
  std::vector<DeclRequires> decl_requires;
};

void segment_file(const File& f, std::size_t file_index, Segmented& out) {
  const auto& t = f.lx.tokens;
  const std::size_t n = t.size();
  std::vector<std::pair<std::string, int>> class_stack;  // name, body depth
  int depth = 0;
  std::size_t i = 0;
  while (i < n) {
    if (is(t, i, "{")) {
      ++depth;
      ++i;
      continue;
    }
    if (is(t, i, "}")) {
      --depth;
      while (!class_stack.empty() && class_stack.back().second > depth) {
        class_stack.pop_back();
      }
      ++i;
      continue;
    }
    if (is_ident(t, i) && (t[i].text == "class" || t[i].text == "struct") &&
        !(i >= 1 && is(t, i - 1, "enum")) && is_ident(t, i + 1)) {
      // Find the class body '{' (skipping final / base clauses); forward
      // declarations and uses as a type specifier have none.
      const std::string cname = t[i + 1].text;
      std::size_t j = i + 2;
      bool found = false;
      while (j < n && j < i + 64) {
        if (is(t, j, "{")) {
          found = true;
          break;
        }
        if (is(t, j, ";") || is(t, j, "(") || is(t, j, ")") ||
            is(t, j, "}") || is(t, j, "=") || is(t, j, ">")) {
          break;
        }
        ++j;
      }
      if (found) {
        class_stack.emplace_back(cname, depth + 1);
        ++depth;
        i = j + 1;
        continue;
      }
      ++i;
      continue;
    }
    if (is_ident(t, i) && !is_keyword(t[i].text) && is(t, i + 1, "(") &&
        !prev_is_member(t, i)) {
      const std::string name = t[i].text;
      std::string qualifier;
      if (prev_is_scope(t, i)) {
        if (i >= 3 && is_ident(t, i - 3)) qualifier = t[i - 3].text;
      } else if (!class_stack.empty()) {
        qualifier = class_stack.back().first;
      }
      const std::size_t after_params = skip_group(t, i + 1, "(", ")");
      std::size_t k = after_params;
      std::vector<std::string> req;
      bool is_def = false;
      std::size_t body = 0;
      while (k < n) {
        if (is(t, k, "{")) {
          is_def = true;
          body = k;
          break;
        }
        if (is(t, k, ";") || is(t, k, "=") || is(t, k, "}")) break;
        if (is_ident(t, k) &&
            (t[k].text == "REQUIRES" ||
             t[k].text == "EXCLUSIVE_LOCKS_REQUIRED") &&
            is(t, k + 1, "(")) {
          const std::size_t req_end = skip_group(t, k + 1, "(", ")");
          for (std::size_t j = k + 2; j + 1 < req_end; ++j) {
            if (is_ident(t, j)) req.push_back(t[j].text);
          }
          k = req_end;
          continue;
        }
        if (is(t, k, "(")) {  // noexcept(...), other annotation macros
          k = skip_group(t, k, "(", ")");
          continue;
        }
        if (is(t, k, ":") && !is(t, k + 1, ":") &&
            !(k >= 1 && is(t, k - 1, ":"))) {
          // Constructor initializer list: member(...) / member{...} groups
          // up to the body '{' (which follows ')' or '}').
          std::size_t m = k + 1;
          while (m < n) {
            if (is(t, m, "(")) {
              m = skip_group(t, m, "(", ")");
              continue;
            }
            if (is(t, m, "{")) {
              if (m >= 1 && (is_ident(t, m - 1) || is(t, m - 1, ">"))) {
                m = skip_group(t, m, "{", "}");
                continue;
              }
              break;
            }
            if (is(t, m, ";")) break;
            ++m;
          }
          k = m;
          continue;
        }
        ++k;
      }
      if (is_def) {
        const std::size_t body_end = skip_group(t, body, "{", "}");
        out.functions.push_back(
            {name, qualifier, file_index, body, body_end, req});
        i = body_end;
        continue;
      }
      if (!req.empty()) out.decl_requires.push_back({qualifier, name, req});
      i = k < n ? k + 1 : n;
      continue;
    }
    ++i;
  }
}

struct Corpus {
  std::vector<File> files;
  Segmented seg;
  std::map<std::string, std::vector<std::size_t>> by_name;  // unqualified
};

// ---------------------------------------------------------------------------
// svclint-lock-order
// ---------------------------------------------------------------------------

/// Map a MutexLock argument expression to a graph node: a declared-order
/// node named in the expression or matching the enclosing class wins;
/// otherwise the node is `Class.member` (scoped so same-named members of
/// different classes stay distinct).
std::string lock_node(const Function& fn, const std::vector<Token>& t,
                      std::size_t expr_begin, std::size_t expr_end,
                      const std::set<std::string>& declared) {
  std::string first_ident;
  for (std::size_t j = expr_begin; j < expr_end; ++j) {
    if (!is_ident(t, j)) continue;
    if (declared.count(t[j].text) != 0) return t[j].text;
    if (first_ident.empty()) first_ident = t[j].text;
  }
  if (declared.count(fn.qualifier) != 0) return fn.qualifier;
  if (first_ident.empty()) {
    return fn.qualifier.empty() ? "<unknown>" : fn.qualifier;
  }
  return fn.qualifier.empty() ? first_ident
                              : fn.qualifier + "." + first_ident;
}

struct EdgeSite {
  std::size_t file;
  int line;
};

void check_lock_order(const Corpus& corpus, const Options& options,
                      Report& report) {
  std::set<std::string> declared_nodes;
  std::set<std::pair<std::string, std::string>> declared_edges;
  for (const auto& [outer, inner] : options.lock_order) {
    declared_nodes.insert(outer);
    declared_nodes.insert(inner);
    declared_edges.emplace(outer, inner);
  }

  const auto& functions = corpus.seg.functions;

  // REQUIRES on header declarations transfers to the out-of-line definition.
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      decl_req;
  for (const DeclRequires& d : corpus.seg.decl_requires) {
    decl_req[{d.qualifier, d.name}] = d.args;
  }

  // Pass 1: nodes each function acquires directly (for one-level inlining).
  std::vector<std::set<std::string>> acquired(functions.size());
  for (std::size_t fi = 0; fi < functions.size(); ++fi) {
    const Function& fn = functions[fi];
    const auto& t = corpus.files[fn.file].lx.tokens;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (is_ident(t, i) && t[i].text == "MutexLock" && is_ident(t, i + 1) &&
          is(t, i + 2, "(")) {
        const std::size_t expr_end = skip_group(t, i + 2, "(", ")");
        acquired[fi].insert(
            lock_node(fn, t, i + 3, expr_end - 1, declared_nodes));
        i = expr_end - 1;
      }
    }
  }

  // Pass 2: walk each body tracking the held set (RAII scope = brace depth)
  // and record held -> acquired edges, inlining one level of direct calls.
  std::map<std::pair<std::string, std::string>, EdgeSite> edges;
  auto add_edge = [&edges](const std::string& from, const std::string& to,
                           std::size_t file, int line) {
    edges.emplace(std::make_pair(from, to), EdgeSite{file, line});
  };
  for (std::size_t fi = 0; fi < functions.size(); ++fi) {
    const Function& fn = functions[fi];
    const auto& t = corpus.files[fn.file].lx.tokens;
    std::vector<std::string> req = fn.requires_args;
    if (req.empty()) {
      const auto it = decl_req.find({fn.qualifier, fn.name});
      if (it != decl_req.end()) req = it->second;
    }
    std::vector<std::pair<std::string, int>> held;  // node, depth acquired
    for (const std::string& arg : req) {
      // A REQUIRES precondition is held for the whole body (depth 0).
      std::vector<Token> one{{TokKind::kIdent, arg, 0}};
      held.emplace_back(lock_node(fn, one, 0, 1, declared_nodes), 0);
    }
    int depth = 0;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (is(t, i, "{")) {
        ++depth;
        continue;
      }
      if (is(t, i, "}")) {
        --depth;
        while (!held.empty() && held.back().second > depth) held.pop_back();
        continue;
      }
      if (is_ident(t, i) && t[i].text == "MutexLock" && is_ident(t, i + 1) &&
          is(t, i + 2, "(")) {
        const std::size_t expr_end = skip_group(t, i + 2, "(", ")");
        const std::string node =
            lock_node(fn, t, i + 3, expr_end - 1, declared_nodes);
        for (const auto& [held_node, held_depth] : held) {
          add_edge(held_node, node, fn.file, t[i].line);
        }
        held.emplace_back(node, depth);
        i = expr_end - 1;
        continue;
      }
      // One-level inlining of direct (unqualified, non-member) calls.
      if (!held.empty() && is_ident(t, i) && is(t, i + 1, "(") &&
          !is_keyword(t[i].text) && t[i].text != "MutexLock" &&
          !prev_is_member(t, i) && !prev_is_scope(t, i)) {
        const auto callees = corpus.by_name.find(t[i].text);
        if (callees != corpus.by_name.end()) {
          for (const std::size_t ci : callees->second) {
            for (const std::string& node : acquired[ci]) {
              for (const auto& [held_node, held_depth] : held) {
                add_edge(held_node, node, fn.file, t[i].line);
              }
            }
          }
        }
      }
    }
  }

  // Declared-order inversions and recursive self-acquisition.
  std::set<std::pair<std::string, std::string>> flagged;
  for (const auto& [edge, site] : edges) {
    const auto& [from, to] = edge;
    const Lexed& lx = corpus.files[site.file].lx;
    const std::string& path = corpus.files[site.file].path;
    if (from == to) {
      flagged.insert(edge);
      lintcore::emit(path, lx, site.line, "svclint-lock-order",
                     "recursive acquisition of '" + from +
                         "' (lock already held on this path)",
                     options.allow, report);
      continue;
    }
    if (declared_edges.count({to, from}) != 0) {
      flagged.insert(edge);
      lintcore::emit(path, lx, site.line, "svclint-lock-order",
                     "'" + to + "' acquired while '" + from +
                         "' is held; the declared order is '" + to + " -> " +
                         from + "' (outer first)",
                     options.allow, report);
    }
  }

  // Cycles among the remaining observed edges (classic inversion deadlock).
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const auto& [edge, site] : edges) {
    if (flagged.count(edge) == 0 && edge.first != edge.second) {
      adjacency[edge.first].push_back(edge.second);
    }
  }
  std::map<std::string, int> color;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  auto report_cycle = [&](const std::string& back_to) {
    std::string cycle = back_to;
    for (std::size_t j = stack.size(); j-- > 0;) {
      cycle = stack[j] + " -> " + cycle;
      if (stack[j] == back_to) break;
    }
    const std::string& from = stack.back();
    const EdgeSite site = edges.at({from, back_to});
    lintcore::emit(corpus.files[site.file].path, corpus.files[site.file].lx,
                   site.line, "svclint-lock-order",
                   "lock-order cycle: " + cycle, options.allow, report);
  };
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    for (const std::string& next : adjacency[node]) {
      if (color[next] == 1) {
        report_cycle(next);
      } else if (color[next] == 0) {
        dfs(next);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, targets] : adjacency) {
    if (color[node] == 0) dfs(node);
  }
}

// ---------------------------------------------------------------------------
// svclint-durability
// ---------------------------------------------------------------------------

const std::set<std::string>& durability_files() {
  static const std::set<std::string> files = {
      "session_wal.cpp", "results_store.cpp", "server.cpp", "wal_ship.cpp",
      "session_manager.cpp"};
  return files;
}

/// Member-call names that collide with standard container/string methods.
/// Calls through `.`/`->` with these names are never resolved to corpus
/// functions — `buffer_.append(...)` must not inherit ResultsStore::append's
/// durability effects.
const std::set<std::string>& stl_member_names() {
  static const std::set<std::string> names = {
      "append",  "insert", "erase",   "find",    "count",   "push_back",
      "pop_back", "emplace", "emplace_back", "resize", "reserve", "clear",
      "assign",  "compare", "substr", "c_str",   "data",    "begin",
      "end",     "size",   "empty",   "str",     "reset",   "release",
      "swap",    "front",  "back",    "at",      "get",     "set",
      "load",    "store",  "push",    "pop",     "top",     "value",
      "contains", "merge", "extract"};
  return names;
}

struct Event {
  enum Kind { kSend, kSync, kCall } kind;
  std::string name;
  int line;
};

void check_durability(const Corpus& corpus, const Options& options,
                      Report& report) {
  const auto& functions = corpus.seg.functions;

  // Collect the ordered send / sync / call events of every function.
  std::vector<std::vector<Event>> events(functions.size());
  for (std::size_t fi = 0; fi < functions.size(); ++fi) {
    const Function& fn = functions[fi];
    const auto& t = corpus.files[fn.file].lx.tokens;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (!is_ident(t, i) || !is(t, i + 1, "(")) continue;
      const std::string& id = t[i].text;
      if (id == "write_frame" || id == "send_frame") {
        events[fi].push_back({Event::kSend, id, t[i].line});
      } else if (id == "fsync" || id == "fdatasync") {
        events[fi].push_back({Event::kSync, id, t[i].line});
      } else if (!is_keyword(id) && corpus.by_name.count(id) != 0) {
        if (prev_is_member(t, i) && stl_member_names().count(id) != 0) {
          continue;
        }
        events[fi].push_back({Event::kCall, id, t[i].line});
      }
    }
  }

  // Fixpoint: a function reaches a barrier (or a send) if it performs one
  // directly or calls — by name, one or more candidates — a function that
  // does. Names are matched corpus-wide, so server.cpp's dispatch() inherits
  // the barrier from SessionManager::tell -> SessionWal::append_tell ->
  // fsync.
  std::vector<char> eff_sync(functions.size(), 0);
  for (std::size_t fi = 0; fi < functions.size(); ++fi) {
    for (const Event& e : events[fi]) {
      if (e.kind == Event::kSync) eff_sync[fi] = 1;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fi = 0; fi < functions.size(); ++fi) {
      if (eff_sync[fi]) continue;
      for (const Event& e : events[fi]) {
        if (e.kind != Event::kCall) continue;
        for (const std::size_t ci : corpus.by_name.at(e.name)) {
          if (eff_sync[ci]) {
            eff_sync[fi] = 1;
            changed = true;
            break;
          }
        }
        if (eff_sync[fi]) break;
      }
    }
  }

  // Flag frame writes that precede the first barrier of their function in
  // the durability-scoped files. Functions with no barrier anywhere are
  // pure network plumbing (wal_ship's link RPCs) and are exempt: they ack
  // nothing durable themselves.
  for (std::size_t fi = 0; fi < functions.size(); ++fi) {
    const Function& fn = functions[fi];
    const File& file = corpus.files[fn.file];
    if (durability_files().count(file.basename) == 0) continue;
    auto is_barrier = [&](const Event& e) {
      if (e.kind == Event::kSync) return true;
      if (e.kind != Event::kCall) return false;
      for (const std::size_t ci : corpus.by_name.at(e.name)) {
        if (eff_sync[ci]) return true;
      }
      return false;
    };
    int first_barrier_line = -1;
    for (const Event& e : events[fi]) {
      if (is_barrier(e)) {
        first_barrier_line = e.line;
        break;
      }
    }
    if (first_barrier_line < 0) continue;
    for (const Event& e : events[fi]) {
      if (is_barrier(e)) break;
      if (e.kind != Event::kSend) continue;
      lintcore::emit(
          file.path, file.lx, e.line, "svclint-durability",
          e.name + " reaches the socket before the durability barrier at " +
              "line " + std::to_string(first_barrier_line) +
              " (fsync/durable append); nothing may be acknowledged before "
              "it is fsync'd",
          options.allow, report);
    }
  }
}

// ---------------------------------------------------------------------------
// svclint-wire-drift
// ---------------------------------------------------------------------------

struct DocFile {
  std::string path;
  Lexed pseudo;                     ///< lines + NOLINT, no tokens
  std::map<std::string, int> fields;  ///< documented JSON key -> first line
  std::map<std::string, int> ops;     ///< documented "op" value -> first line
};

/// Extract documented JSON keys and "op" values from the fenced code blocks
/// of a markdown file. A quoted name is a key when followed by `:` or by the
/// optional-field marker `?`; the quoted *value* after `"op":` is an op.
DocFile scan_doc(const SourceFile& doc, const std::string& tool) {
  DocFile out;
  out.path = doc.path;
  std::stringstream ss(doc.content);
  std::string line;
  int lineno = 0;
  bool in_fence = false;
  while (std::getline(ss, line)) {
    ++lineno;
    lintcore::parse_nolint(line, lineno, tool, out.pseudo.nolint);
    out.pseudo.lines.push_back(line);
    std::string trimmed = line;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (trimmed.compare(0, 3, "```") == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (!in_fence) continue;
    std::size_t i = 0;
    while ((i = line.find('"', i)) != std::string::npos) {
      const std::size_t close = line.find('"', i + 1);
      if (close == std::string::npos) break;
      const std::string name = line.substr(i + 1, close - i - 1);
      std::size_t after = close + 1;
      while (after < line.size() && (line[after] == ' ' || line[after] == '\t')) {
        ++after;
      }
      const bool optional_key = after < line.size() && line[after] == '?';
      const bool key = after < line.size() && line[after] == ':';
      i = after;
      if (name.empty() ||
          name.find_first_not_of("abcdefghijklmnopqrstuvwxyz"
                                 "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_") !=
              std::string::npos) {
        continue;
      }
      if (optional_key) {
        out.fields.emplace(name, lineno);
        continue;
      }
      if (!key) continue;
      if (name == "op") {
        const std::size_t vopen = line.find('"', after + 1);
        const std::size_t vclose =
            vopen == std::string::npos ? std::string::npos
                                       : line.find('"', vopen + 1);
        if (vclose != std::string::npos) {
          out.ops.emplace(line.substr(vopen + 1, vclose - vopen - 1), lineno);
          i = vclose + 1;
        }
      } else {
        out.fields.emplace(name, lineno);
        // Skip a quoted value so it is not misread as the next key.
        const std::size_t vopen = line.find('"', after + 1);
        if (vopen != std::string::npos && vopen == line.find_first_not_of(" \t", after + 1)) {
          const std::size_t vclose = line.find('"', vopen + 1);
          if (vclose != std::string::npos) i = vclose + 1;
        }
      }
    }
  }
  return out;
}

void check_wire_drift(const Corpus& corpus,
                      const std::vector<SourceFile>& docs,
                      const Options& options, Report& report) {
  // op == "name" comparison sites, keyed by file role.
  std::map<std::string, EdgeSite> daemon_ops;
  std::set<std::string> router_ops;
  bool have_router = false;
  for (std::size_t fi = 0; fi < corpus.files.size(); ++fi) {
    const File& f = corpus.files[fi];
    const bool is_server = f.basename == "server.cpp";
    const bool is_router = f.basename == "router.cpp";
    if (is_router) have_router = true;
    if (!is_server && !is_router) continue;
    const auto& t = f.lx.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (is_ident(t, i) && t[i].text == "op" && is(t, i + 1, "=") &&
          is(t, i + 2, "=") && t[i + 3].kind == TokKind::kString) {
        if (is_server) {
          daemon_ops.emplace(t[i + 3].text, EdgeSite{fi, t[i + 3].line});
        } else {
          router_ops.insert(t[i + 3].text);
        }
      }
    }
  }

  // ErrorCode enum members (protocol.hpp) with their declaration lines.
  std::map<std::string, EdgeSite> codes;
  for (std::size_t fi = 0; fi < corpus.files.size(); ++fi) {
    const File& f = corpus.files[fi];
    if (f.basename != "protocol.hpp") continue;
    const auto& t = f.lx.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (!(is_ident(t, i) && t[i].text == "enum" && is(t, i + 1, "class") &&
            is(t, i + 2, "ErrorCode"))) {
        continue;
      }
      std::size_t j = i + 3;
      while (j < t.size() && !is(t, j, "{")) ++j;
      const std::size_t end = skip_group(t, j, "{", "}");
      bool expecting = true;
      for (std::size_t k = j + 1; k + 1 < end; ++k) {
        if (is(t, k, ",")) {
          expecting = true;
        } else if (expecting && is_ident(t, k)) {
          codes.emplace(t[k].text, EdgeSite{fi, t[k].line});
          expecting = false;
        }
      }
    }
  }

  // to_string cases and error_code_from's parse list (protocol.cpp), plus
  // every ErrorCode::k... reference outside protocol.* ("emitted or
  // handled" — thrown by the daemon, matched by the client/router).
  std::map<std::string, std::string> wire_string;  // kCode -> "string"
  std::set<std::string> parsed_back;
  std::set<std::string> used_outside;
  bool have_protocol_cpp = false;
  for (std::size_t fi = 0; fi < corpus.files.size(); ++fi) {
    const File& f = corpus.files[fi];
    const bool is_protocol =
        f.basename == "protocol.cpp" || f.basename == "protocol.hpp";
    if (f.basename == "protocol.cpp") have_protocol_cpp = true;
    const auto& t = f.lx.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (!(is_ident(t, i) && t[i].text == "ErrorCode" && is(t, i + 1, ":") &&
            is(t, i + 2, ":") && is_ident(t, i + 3))) {
        continue;
      }
      const std::string& code = t[i + 3].text;
      if (!is_protocol) {
        used_outside.insert(code);
        continue;
      }
      if (f.basename != "protocol.cpp") continue;
      // `case ErrorCode::kX: return "x";` inside to_string.
      if (is(t, i + 4, ":") && !is(t, i + 5, ":") && is(t, i + 5, "return") &&
          i + 6 < t.size() && t[i + 6].kind == TokKind::kString) {
        wire_string[code] = t[i + 6].text;
      }
    }
  }
  for (const Function& fn : corpus.seg.functions) {
    if (fn.name != "error_code_from") continue;
    const auto& t = corpus.files[fn.file].lx.tokens;
    for (std::size_t i = fn.body_begin;
         i + 3 < fn.body_end && i + 3 < t.size(); ++i) {
      if (is_ident(t, i) && t[i].text == "ErrorCode" && is(t, i + 1, ":") &&
          is(t, i + 2, ":") && is_ident(t, i + 3)) {
        parsed_back.insert(t[i + 3].text);
      }
    }
  }

  // Every string literal anywhere in the sources (field-presence oracle).
  std::set<std::string> source_strings;
  for (const File& f : corpus.files) {
    for (const Token& tok : f.lx.tokens) {
      if (tok.kind == TokKind::kString) source_strings.insert(tok.text);
    }
  }

  // Check 1: every daemon op must be routed (or explicitly rejected) by the
  // router — an op tunelb has never heard of silently breaks cluster mode.
  if (have_router) {
    for (const auto& [op, site] : daemon_ops) {
      if (router_ops.count(op) != 0) continue;
      lintcore::emit(corpus.files[site.file].path, corpus.files[site.file].lx,
                     site.line, "svclint-wire-drift",
                     "op \"" + op +
                         "\" is handled by the daemon but unknown to the "
                         "router (not routed, broadcast, or rejected)",
                     options.allow, report);
    }
  }

  // Check 2: every ErrorCode must round-trip (to_string + error_code_from)
  // and be referenced outside protocol.* — a code nobody emits or matches
  // is drift waiting to disagree with the docs.
  if (have_protocol_cpp) {
    for (const auto& [code, site] : codes) {
      const File& f = corpus.files[site.file];
      if (wire_string.count(code) == 0 || parsed_back.count(code) == 0) {
        lintcore::emit(f.path, f.lx, site.line, "svclint-wire-drift",
                       "error code " + code +
                           " does not round-trip: it needs both a to_string "
                           "case and an error_code_from entry (the client's "
                           "parse path)",
                       options.allow, report);
        continue;
      }
      if (used_outside.count(code) == 0) {
        lintcore::emit(f.path, f.lx, site.line, "svclint-wire-drift",
                       "error code " + code +
                           " is defined but never emitted or handled outside "
                           "protocol.*",
                       options.allow, report);
      }
    }
  }

  // Check 3: documented schema must exist in the sources — every fenced
  // "field": / "field"? key somewhere as a string literal, every documented
  // op handled by daemon or router.
  for (const SourceFile& doc : docs) {
    ++report.files_scanned;
    const DocFile scanned = scan_doc(doc, "svclint");
    for (const auto& [field, line] : scanned.fields) {
      if (source_strings.count(field) != 0) continue;
      lintcore::emit(scanned.path, scanned.pseudo, line, "svclint-wire-drift",
                     "documented field \"" + field +
                         "\" never appears in the scanned sources (drifted "
                         "or renamed?)",
                     options.allow, report);
    }
    if (daemon_ops.empty() && router_ops.empty()) continue;
    for (const auto& [op, line] : scanned.ops) {
      if (daemon_ops.count(op) != 0 || router_ops.count(op) != 0) continue;
      lintcore::emit(scanned.path, scanned.pseudo, line, "svclint-wire-drift",
                     "documented op \"" + op +
                         "\" is not handled by the daemon or the router",
                     options.allow, report);
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "svclint-lock-order", "svclint-durability", "svclint-wire-drift"};
  return names;
}

Options default_options() { return Options{}; }

bool parse_lock_order(const std::string& text,
                      std::vector<std::pair<std::string, std::string>>& out,
                      std::string& error) {
  std::stringstream ss(text);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line.erase(0, line.find_first_not_of(" \t"));
    line.erase(line.find_last_not_of(" \t\r") + 1);
    if (line.empty()) continue;
    const std::size_t arrow = line.find("->");
    if (arrow == std::string::npos) {
      error = "line " + std::to_string(lineno) +
              ": expected 'outer -> inner', got '" + line + "'";
      return false;
    }
    std::string outer = line.substr(0, arrow);
    std::string inner = line.substr(arrow + 2);
    outer.erase(outer.find_last_not_of(" \t") + 1);
    inner.erase(0, inner.find_first_not_of(" \t"));
    if (outer.empty() || inner.empty()) {
      error = "line " + std::to_string(lineno) + ": empty lock name";
      return false;
    }
    out.emplace_back(outer, inner);
  }
  return true;
}

Report lint_corpus(const std::vector<SourceFile>& sources,
                   const std::vector<SourceFile>& docs,
                   const Options& options) {
  Report report;
  Corpus corpus;
  for (const SourceFile& src : sources) {
    ++report.files_scanned;
    corpus.files.push_back(
        {src.path, basename_of(src.path), lintcore::lex(src.content,
                                                        "svclint")});
  }
  for (std::size_t fi = 0; fi < corpus.files.size(); ++fi) {
    segment_file(corpus.files[fi], fi, corpus.seg);
  }
  for (std::size_t i = 0; i < corpus.seg.functions.size(); ++i) {
    corpus.by_name[corpus.seg.functions[i].name].push_back(i);
  }
  check_lock_order(corpus, options, report);
  check_durability(corpus, options, report);
  check_wire_drift(corpus, docs, options, report);
  return report;
}

std::string to_json(const Report& report) {
  return lintcore::to_json(report, "svclint");
}

}  // namespace svclint
