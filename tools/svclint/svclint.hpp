#pragma once
// svclint — distributed-service invariant lint for this repository.
//
// The service layer's correctness claims (zero lost acknowledged tells
// across kill -9, byte-identical replay, documented lock discipline) rest
// on invariants no unit test states directly. svclint scans src/service/
// and src/store/ with the shared lintcore tokenizer (no libclang) and fails
// the build when one is broken:
//
//   svclint-lock-order   The acquisition graph extracted from
//                        repro::MutexLock sites (seeded with
//                        REQUIRES/EXCLUSIVE_LOCKS_REQUIRED preconditions,
//                        one level of direct-call inlining) must be acyclic
//                        and must not invert any edge declared in the order
//                        file (tools/svclint/lock_order.txt, `outer ->
//                        inner` per line).
//   svclint-durability   In session_wal.cpp / results_store.cpp /
//                        server.cpp / wal_ship.cpp, a frame write
//                        (write_frame / send_frame) must not appear before
//                        the function's first durability barrier — a direct
//                        fsync/fdatasync or a call reaching one (name-based
//                        call-graph closure). Functions with no barrier at
//                        all (pure network plumbing) are exempt.
//   svclint-wire-drift   The op / field / error-code tables extracted from
//                        protocol.cpp, server.cpp, router.cpp, client.cpp
//                        and the schema blocks in docs/SERVICE.md must
//                        agree: every daemon op known to the router, every
//                        documented field/op present in the sources, every
//                        ErrorCode round-tripping through
//                        to_string/error_code_from and referenced outside
//                        protocol.*.
//
// Known analysis limits (documented in docs/ANALYSIS.md): calls are matched
// by name, so member calls whose name collides with a standard-library
// container/string method (.append, .find, ...) are not resolved, and lock
// nodes fall back to `Class.member` when neither the expression nor the
// enclosing class matches a declared node.
//
// Suppressions: `// NOLINT(svclint-<rule>)` on the offending line or
// `NOLINTNEXTLINE(...)` above it; `svclint` / `svclint-*` suppress every
// rule. Markdown docs may carry `<!-- NOLINT(svclint-wire-drift) -->`.
// Every suppression in this tree must carry a one-line justification.

#include <string>
#include <utility>
#include <vector>

#include "lintcore/lintcore.hpp"

namespace svclint {

using Finding = lintcore::Finding;
using Report = lintcore::Report;

/// One file of the analysis corpus (path as reported, full contents).
struct SourceFile {
  std::string path;
  std::string content;
};

struct Options {
  /// (rule, path-substring) pairs; rule "*" matches every rule.
  lintcore::AllowList allow;
  /// Declared lock order: (outer, inner) pairs — `outer` may be held while
  /// acquiring `inner`, never the reverse.
  std::vector<std::pair<std::string, std::string>> lock_order;
};

/// Empty allowlist, no declared edges (the CLI loads the order file).
[[nodiscard]] Options default_options();

/// All rule ids, in reporting order.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Parse an order file: one `outer -> inner` pair per line, `#` comments
/// and blank lines ignored. Returns false (with `error` set) on a
/// malformed line.
[[nodiscard]] bool parse_lock_order(
    const std::string& text,
    std::vector<std::pair<std::string, std::string>>& out, std::string& error);

/// Run all three rule families over a corpus. `sources` are C++ files
/// (file-scoped rules key on the path's basename: server.cpp, router.cpp,
/// protocol.hpp/.cpp, ...); `docs` are markdown files contributing schema
/// blocks to the wire-drift rule. The rules are cross-file, so one call
/// analyses the whole corpus.
[[nodiscard]] Report lint_corpus(const std::vector<SourceFile>& sources,
                                 const std::vector<SourceFile>& docs,
                                 const Options& options);

/// Machine-readable report; same versioned schema as reprolint with
/// "tool": "svclint".
[[nodiscard]] std::string to_json(const Report& report);

}  // namespace svclint
