// svclint CLI: scan the service/store sources plus the wire-protocol docs
// (default: src/service src/store docs/SERVICE.md) for broken distributed
// invariants and exit nonzero when any finding survives the allowlist and
// NOLINT suppressions.
//
//   svclint [--root DIR] [--order FILE] [--json FILE] [--allow rule:substr]
//           [--include-fixtures] [--quiet] [paths...]
//
// Paths are resolved relative to --root (default: current directory).
// Markdown paths join the corpus as wire-drift schema docs; everything else
// is lexed as C++. --order names the declared lock-order file (default:
// tools/svclint/lock_order.txt under the root when present).

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "svclint.hpp"

namespace fs = std::filesystem;

namespace {

const std::set<std::string>& corpus_extensions() {
  static const std::set<std::string> extensions = {
      ".cpp", ".hpp", ".cc", ".h", ".cxx", ".hxx", ".md"};
  return extensions;
}

bool is_markdown(const std::string& path) {
  return path.size() >= 3 && path.compare(path.size() - 3, 3, ".md") == 0;
}

int usage() {
  std::cerr << "usage: svclint [--root DIR] [--order FILE] [--json FILE] "
               "[--allow rule:substr] [--include-fixtures] [--quiet] "
               "[paths...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string json_out;
  std::string order_file;
  bool include_fixtures = false;
  bool quiet = false;
  std::vector<std::string> extra_allow;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--order" && i + 1 < argc) {
      order_file = argv[++i];
    } else if (arg == "--allow" && i + 1 < argc) {
      extra_allow.emplace_back(argv[++i]);
    } else if (arg == "--include-fixtures") {
      include_fixtures = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help") {
      (void)usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src/service", "src/store", "docs/SERVICE.md"};

  svclint::Options options = svclint::default_options();
  for (const std::string& entry : extra_allow) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      std::cerr << "svclint: --allow expects rule:path-substring, got '"
                << entry << "'\n";
      return 2;
    }
    options.allow.emplace_back(entry.substr(0, colon), entry.substr(colon + 1));
  }

  // Declared lock order: an explicit --order must exist; the default file
  // is optional so partial corpora (fixtures) can run order-free.
  {
    const bool explicit_order = !order_file.empty();
    fs::path order_path = explicit_order
                              ? fs::path(order_file)
                              : root / "tools" / "svclint" / "lock_order.txt";
    if (order_path.is_relative() && explicit_order) order_path = root / order_path;
    std::string text;
    if (lintcore::read_file(order_path.string(), text)) {
      std::string error;
      if (!svclint::parse_lock_order(text, options.lock_order, error)) {
        std::cerr << "svclint: " << order_path.string() << ": " << error
                  << "\n";
        return 2;
      }
    } else if (explicit_order) {
      std::cerr << "svclint: cannot read order file "
                << order_path.string() << "\n";
      return 2;
    }
  }

  std::vector<std::string> files;
  std::string error;
  if (!lintcore::collect_files(root.string(), paths, corpus_extensions(),
                               include_fixtures, files, error)) {
    std::cerr << "svclint: " << error << "\n";
    return 2;
  }

  std::vector<svclint::SourceFile> sources;
  std::vector<svclint::SourceFile> docs;
  for (const std::string& file : files) {
    std::string content;
    if (!lintcore::read_file((root / file).string(), content)) {
      std::cerr << "svclint: cannot read " << (root / file).string() << "\n";
      return 2;
    }
    (is_markdown(file) ? docs : sources)
        .push_back({file, std::move(content)});
  }

  const svclint::Report report =
      svclint::lint_corpus(sources, docs, options);

  if (!quiet) {
    for (const svclint::Finding& finding : report.findings) {
      std::cerr << finding.file << ":" << finding.line << ": ["
                << finding.rule << "] " << finding.message << "\n    "
                << finding.snippet << "\n";
    }
    std::cerr << "svclint: " << report.files_scanned << " files, "
              << report.findings.size() << " finding"
              << (report.findings.size() == 1 ? "" : "s") << ", "
              << report.suppressed << " suppressed\n";
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "svclint: cannot write " << json_out << "\n";
      return 2;
    }
    out << svclint::to_json(report);
  }
  return report.findings.empty() ? 0 : 1;
}
