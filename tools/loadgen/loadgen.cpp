// loadgen: cluster load generator + failover drill, emitting the committed
// BENCH_service.json snapshot.
//
// Spins up a replicated shard (primary shipping its WAL to a hot standby)
// behind an in-process tunelb Router, drives N concurrent client threads
// through tokened ask/tell sessions, and records per-op latencies. With
// --failover it additionally murders the primary mid-run (stop + promote,
// the in-process equivalent of SIGKILL: the standby has only the
// acknowledged record stream) and measures the blackout window — the wall
// time from the crash until the first client op completes against the
// promoted standby through the router.
//
// Two load models:
//  - Closed loop (default): each worker runs its sessions back to back, so
//    offered load self-throttles to service capacity.
//  - Open loop (--arrival-rate > 0): session k starts at the deterministic
//    instant k/rate regardless of how the previous ones are faring, which
//    is what exposes overload behavior. Workers carry per-tenant identities
//    (--tenants), the shard runs with per-tenant quotas + a bounded
//    admission queue, and the report adds pushback/shed rates, per-tenant
//    ask percentiles, and the fairness headline (max/min tenant
//    throughput).
//
// Timing here is measurement *of the service*, not of tuning: no timestamp
// feeds a search result. Latencies are steady-clock; the report rounds to
// whole microseconds.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "store/results_store.hpp"
#include "tuner/registry.hpp"

namespace {

using namespace repro;
using Clock = std::chrono::steady_clock;

tuner::Evaluation synth_eval(const tuner::ParamSpace& space,
                             const tuner::Configuration& config) {
  std::uint64_t state = seed_combine(99, space.encode(config) + 1);
  const std::uint64_t h = splitmix64(state);
  return tuner::Evaluation{1.0 + static_cast<double>(h >> 11) * 0x1.0p-53, true};
}

service::OpenParams open_params(std::size_t budget, std::uint64_t seed) {
  service::OpenParams params;
  params.algorithm = "rs";
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

/// Tenant-identified botpe open for the warm-vs-cold split: same space as
/// the main workload, but carrying (benchmark, arch) so the daemon's store
/// recognizes the session.
service::OpenParams tenant_params(std::size_t budget, std::uint64_t seed, bool warm) {
  service::OpenParams params = open_params(budget, seed);
  params.algorithm = "botpe";
  params.benchmark = "loadgen";
  params.arch = "sim";
  params.warm_start = warm;
  return params;
}

std::string fresh_dir() {
  char name[] = "/tmp/repro_loadgen_XXXXXX";
  const char* dir = mkdtemp(name);
  if (dir == nullptr) {
    std::cerr << "loadgen: mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

/// One worker's measurements, merged after the join.
struct WorkerStats {
  std::vector<double> ask_us;
  std::vector<double> tell_us;
  std::size_t sessions = 0;
  std::size_t evaluations = 0;
  std::size_t errors = 0;
  // Open-loop admission accounting.
  std::size_t offered = 0;    ///< sessions the arrival schedule started
  std::size_t pushbacks = 0;  ///< retry_later answers (open or tell)
  std::size_t sheds = 0;      ///< sessions abandoned after repeated pushback
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("loadgen",
          "drive a replicated tuned shard behind tunelb and report "
          "throughput, ask/tell latency percentiles, and (with --failover) "
          "the promotion blackout window as BENCH_service.json");
  cli.add_option("clients", "concurrent client threads", "4");
  cli.add_option("sessions", "sessions per client", "8");
  cli.add_option("budget", "evaluations per session", "24");
  cli.add_option("out", "output JSON path", "BENCH_service.json");
  cli.add_flag("failover", "kill the primary mid-run and measure blackout");
  cli.add_option("arrival-rate",
                 "open-loop session arrivals per second: session k starts at "
                 "the fixed instant k/rate whether or not earlier sessions "
                 "finished (0 = closed loop)",
                 "0");
  cli.add_option("tenants",
                 "named tenants the open-loop workers identify as "
                 "(round-robin over workers)",
                 "4");
  cli.add_option("tenant-max-sessions",
                 "per-tenant session quota on the shard (open loop)", "4");
  cli.add_option("tenant-max-inflight-tells",
                 "per-tenant in-flight tell quota on the shard (open loop)",
                 "0");
  cli.add_option("admission-queue-cap",
                 "shard admission queue bound (open loop)", "64");
  cli.add_option("admission-wait-ms",
                 "longest a queued open may wait on the shard (open loop)",
                 "200");
  if (!cli.parse(argc, argv)) return 2;
  const std::size_t clients = static_cast<std::size_t>(cli.get_int("clients"));
  const std::size_t sessions_per_client =
      static_cast<std::size_t>(cli.get_int("sessions"));
  const std::size_t budget = static_cast<std::size_t>(cli.get_int("budget"));
  const bool failover = cli.get_flag("failover");
  const std::string out_path = cli.get("out");
  const double arrival_rate = std::strtod(cli.get("arrival-rate").c_str(), nullptr);
  const bool open_loop = arrival_rate > 0.0;
  const std::size_t tenants =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("tenants")));
  if (open_loop && failover) {
    std::cerr << "loadgen: --arrival-rate and --failover are separate drills; "
                 "run them separately\n";
    return 2;
  }

  const std::string dir = fresh_dir();

  service::TenantQuotas quotas;
  if (open_loop) {
    quotas.max_sessions_per_tenant =
        static_cast<std::size_t>(cli.get_int("tenant-max-sessions"));
    quotas.max_inflight_tells_per_tenant =
        static_cast<std::size_t>(cli.get_int("tenant-max-inflight-tells"));
    quotas.admission_queue_cap =
        static_cast<std::size_t>(cli.get_int("admission-queue-cap"));
    quotas.admission_wait =
        std::chrono::milliseconds(cli.get_int("admission-wait-ms"));
  }

  // The default 250ms pushback hint (scaled by queue depth) is tuned for
  // polite production clients; the overload drill wants tight re-offers so
  // a 10k-session run converges in seconds rather than parking workers for
  // multi-second hints.
  const std::uint64_t retry_hint_ms = open_loop ? 20 : 250;

  // Every client connection is long-lived and pins one connection worker
  // for its whole life (the server's pool model), so the pools must be at
  // least as wide as the client fleet — with 8 default workers and 32
  // clients, 24 connections would never be served at all, and an
  // admission-parked open would block unrelated closes behind it.
  const std::size_t conn_threads = clients + 4;

  service::ServerConfig standby_config;
  standby_config.standby = true;
  standby_config.connection_threads = conn_threads;
  standby_config.limits.state_dir = dir + "/standby";
  standby_config.store_dir = dir + "/standby-store";
  standby_config.limits.quotas = quotas;
  standby_config.limits.retry_after_ms = retry_hint_ms;
  service::TuneServer standby(standby_config);
  standby.start();

  auto primary = std::make_unique<service::TuneServer>([&] {
    service::ServerConfig config;
    config.limits.state_dir = dir + "/primary";
    config.limits.ship.port = standby.port();
    config.store_dir = dir + "/primary-store";
    config.limits.quotas = quotas;
    config.limits.retry_after_ms = retry_hint_ms;
    config.connection_threads = conn_threads;
    return config;
  }());
  primary->start();

  service::RouterConfig router_config;
  router_config.connection_threads = conn_threads;
  router_config.shards = {{"127.0.0.1", primary->port(), "127.0.0.1",
                           standby.port()}};
  router_config.probe_interval = std::chrono::milliseconds(100);
  router_config.probe_timeout = std::chrono::milliseconds(500);
  service::Router router(router_config);
  router.start();

  const tuner::ParamSpace space({{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}});

  // Warm-vs-cold split: pre-populate the results store over the wire, then
  // run paired botpe sessions with and without warm start, recording ask
  // latencies per arm. Runs before the main workload (and before any
  // failover drill) so the seeded prior lives on the primary serving it;
  // the split prices what a warm open costs and what the larger model
  // history does to per-ask latency.
  constexpr std::size_t kPriorRows = 256;
  constexpr std::size_t kSplitSessions = 4;
  const std::size_t split_budget = std::min<std::size_t>(budget, 16);
  std::vector<double> cold_ask_us;
  std::vector<double> warm_ask_us;
  std::size_t split_errors = 0;
  std::size_t prior_rows_imported = 0;
  // The warm/cold split prices the store prior; the open-loop drill is
  // about admission, so it skips the split to keep 10k+-session runs lean.
  if (!open_loop) {
    service::ClientConfig split_config;
    split_config.port = router.port();
    split_config.name = "loadgen-split";
    split_config.max_retries = 40;
    split_config.backoff_initial_ms = 25;
    split_config.backoff_max_ms = 400;
    service::Client seeder(split_config);
    store::TenantSnapshot snapshot;
    snapshot.key = store::StoreKey{
        "loadgen", "sim",
        service::space_fingerprint_of(tenant_params(split_budget, 0, false))};
    Rng prior_rng(seed_combine(404, 1));
    snapshot.rows.reserve(kPriorRows);
    for (std::size_t i = 0; i < kPriorRows; ++i) {
      const tuner::Configuration prior_config = space.sample(prior_rng);
      const tuner::Evaluation eval = synth_eval(space, prior_config);
      snapshot.rows.push_back(
          store::StoreRecord{prior_config, eval.value, eval.valid});
    }
    try {
      prior_rows_imported = seeder.store_import({snapshot});
      for (const bool warm : {false, true}) {
        std::vector<double>& sink = warm ? warm_ask_us : cold_ask_us;
        for (std::size_t s = 0; s < kSplitSessions; ++s) {
          const std::string token = std::string("loadgen-split#") +
                                    (warm ? "warm" : "cold") + std::to_string(s);
          const std::string id = seeder.open(
              tenant_params(split_budget, seed_combine(505, s), warm), token);
          while (true) {
            const auto ask_started = Clock::now();
            const auto config_opt = seeder.ask(id);
            sink.push_back(
                std::chrono::duration<double, std::micro>(Clock::now() -
                                                          ask_started)
                    .count());
            if (!config_opt) break;
            (void)seeder.tell(id, synth_eval(space, *config_opt));
          }
          seeder.close_session(id);
        }
      }
    } catch (const std::exception& error) {
      ++split_errors;
      std::cerr << "loadgen: warm/cold split failed: " << error.what() << "\n";
    }
  }
  std::sort(cold_ask_us.begin(), cold_ask_us.end());
  std::sort(warm_ask_us.begin(), warm_ask_us.end());

  std::vector<WorkerStats> stats(clients);
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> errors_logged{0};
  const std::size_t total_sessions = clients * sessions_per_client;

  const auto run_started = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t w = 0; w < clients; ++w) {
    workers.emplace_back([&, w] {  // NOLINT(reprolint-raw-thread)
      WorkerStats& mine = stats[w];
      service::ClientConfig config;
      config.port = router.port();
      config.name = "loadgen-" + std::to_string(w);
      if (open_loop) {
        // Fail fast: retry_later must surface as a typed error so this
        // driver can count pushback and own the shed decision.
        config.tenant = "tenant-" + std::to_string(w % tenants);
        config.max_retries = 0;
      } else {
        config.max_retries = 40;
        config.backoff_initial_ms = 25;
        config.backoff_max_ms = 400;
      }
      service::Client client(config);
      const auto log_failure = [&](std::size_t s, const char* what) {
        ++mine.errors;
        if (errors_logged.fetch_add(1) < 10) {
          std::cerr << "loadgen: worker " << w << " session " << s
                    << " failed: " << what << "\n";
        }
      };
      const auto run_session = [&](std::size_t s, std::uint64_t seed,
                                   const std::string& token) {
        const std::string id = client.open(open_params(budget, seed), token);
        while (true) {
          const auto ask_started = Clock::now();
          const auto config_opt = client.ask(id);
          mine.ask_us.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() -
                                                        ask_started)
                  .count());
          if (!config_opt) break;
          const auto tell_started = Clock::now();
          while (true) {
            try {
              (void)client.tell(id, synth_eval(space, *config_opt));
              break;
            } catch (const service::ProtocolError& error) {
              // In-flight tell quota pushback: not applied, safe to replay.
              if (error.code != service::ErrorCode::kRetryLater) throw;
              ++mine.pushbacks;
              std::this_thread::sleep_for(std::chrono::milliseconds(
                  error.retry_after_ms > 0 ? error.retry_after_ms : 50));
            }
          }
          mine.tell_us.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() -
                                                        tell_started)
                  .count());
          ++mine.evaluations;
        }
        client.close_session(id);
        ++mine.sessions;
        (void)s;
      };
      if (open_loop) {
        // Static arrival partition: worker w owns sessions w, w+clients, …
        // each pinned to its schedule instant k/rate. A worker running
        // late only delays its own arrivals — offered load never adapts
        // to service pressure, which is the point of the open loop.
        for (std::size_t k = w; k < total_sessions; k += clients) {
          const auto start_at =
              run_started +
              std::chrono::microseconds(static_cast<std::uint64_t>(
                  static_cast<double>(k) * 1e6 / arrival_rate));
          std::this_thread::sleep_until(start_at);
          ++mine.offered;
          const std::string token = "loadgen#" + std::to_string(k);
          try {
            bool admitted = false;
            for (std::size_t attempt = 0; attempt < 25 && !admitted; ++attempt) {
              try {
                run_session(k, seed_combine(w, k), token);
                admitted = true;
              } catch (const service::ProtocolError& error) {
                if (error.code != service::ErrorCode::kRetryLater) throw;
                ++mine.pushbacks;
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    error.retry_after_ms > 0 ? error.retry_after_ms : 50));
              }
            }
            if (!admitted) ++mine.sheds;
          } catch (const std::exception& error) {
            log_failure(k, error.what());
          }
          completed.fetch_add(1);
        }
        return;
      }
      for (std::size_t s = 0; s < sessions_per_client; ++s) {
        const std::string token =
            "loadgen#" + std::to_string(w) + "." + std::to_string(s);
        try {
          run_session(s, seed_combine(w, s), token);
        } catch (const std::exception& error) {
          log_failure(s, error.what());
        }
        completed.fetch_add(1);
      }
    });
  }

  double blackout_ms = 0.0;
  if (failover) {
    // Let the run reach steady state, then kill the primary. Blackout =
    // crash instant -> first successful client op on the promoted standby,
    // measured by an independent probe session through the router.
    while (completed.load() < total_sessions / 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const auto crash_started = Clock::now();
    primary->stop();
    primary.reset();
    service::ClientConfig probe_config;
    probe_config.port = router.port();
    probe_config.name = "loadgen-probe";
    probe_config.max_retries = 100;
    probe_config.backoff_initial_ms = 5;
    probe_config.backoff_max_ms = 100;
    service::Client probe(probe_config);
    const std::string id =
        probe.open(open_params(budget, seed_combine(7, 7)), "loadgen#probe");
    const auto config_opt = probe.ask(id);
    if (config_opt) (void)probe.tell(id, synth_eval(space, *config_opt));
    probe.close_session(id);
    blackout_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            crash_started)
                      .count();
  }

  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - run_started).count();

  WorkerStats merged;
  for (WorkerStats& one : stats) {
    merged.ask_us.insert(merged.ask_us.end(), one.ask_us.begin(), one.ask_us.end());
    merged.tell_us.insert(merged.tell_us.end(), one.tell_us.begin(),
                          one.tell_us.end());
    merged.sessions += one.sessions;
    merged.evaluations += one.evaluations;
    merged.errors += one.errors;
    merged.offered += one.offered;
    merged.pushbacks += one.pushbacks;
    merged.sheds += one.sheds;
  }
  std::sort(merged.ask_us.begin(), merged.ask_us.end());
  std::sort(merged.tell_us.begin(), merged.tell_us.end());

  // Per-tenant rollup (open loop): worker w serves tenant w % tenants.
  std::vector<WorkerStats> by_tenant(open_loop ? tenants : 0);
  if (open_loop) {
    for (std::size_t w = 0; w < clients; ++w) {
      WorkerStats& bucket = by_tenant[w % tenants];
      WorkerStats& one = stats[w];
      bucket.ask_us.insert(bucket.ask_us.end(), one.ask_us.begin(),
                           one.ask_us.end());
      bucket.sessions += one.sessions;
      bucket.evaluations += one.evaluations;
      bucket.offered += one.offered;
      bucket.pushbacks += one.pushbacks;
      bucket.sheds += one.sheds;
    }
    for (WorkerStats& bucket : by_tenant)
      std::sort(bucket.ask_us.begin(), bucket.ask_us.end());
  }

  const std::vector<service::ShardSnapshot> shards = router.shards();
  const std::size_t promotions = shards.empty() ? 0 : shards[0].promotions;

  std::string report = "{\n";
  report += "  \"tool\": \"loadgen\",\n";
  report += "  \"topology\": {\"shards\": 1, \"hot_standby\": true, \"router\": \"tunelb\"},\n";
  report += "  \"clients\": " + std::to_string(clients) + ",\n";
  report += "  \"sessions\": " + std::to_string(merged.sessions) + ",\n";
  report += "  \"budget_per_session\": " + std::to_string(budget) + ",\n";
  report += "  \"evaluations\": " + std::to_string(merged.evaluations) + ",\n";
  report += "  \"errors\": " + std::to_string(merged.errors) + ",\n";
  report += "  \"wall_seconds\": " + json_number(wall_seconds) + ",\n";
  report += "  \"throughput_evals_per_sec\": " +
            json_number(wall_seconds > 0.0
                            ? static_cast<double>(merged.evaluations) / wall_seconds
                            : 0.0) +
            ",\n";
  report += "  \"ask_latency_us\": {\"p50\": " + json_number(percentile(merged.ask_us, 0.50)) +
            ", \"p90\": " + json_number(percentile(merged.ask_us, 0.90)) +
            ", \"p99\": " + json_number(percentile(merged.ask_us, 0.99)) + "},\n";
  report += "  \"tell_latency_us\": {\"p50\": " + json_number(percentile(merged.tell_us, 0.50)) +
            ", \"p90\": " + json_number(percentile(merged.tell_us, 0.90)) +
            ", \"p99\": " + json_number(percentile(merged.tell_us, 0.99)) + "},\n";
  report += "  \"warm_start\": {\"prior_rows\": " +
            std::to_string(prior_rows_imported) +
            ", \"sessions_per_arm\": " + std::to_string(kSplitSessions) +
            ", \"budget\": " + std::to_string(split_budget) +
            ", \"errors\": " + std::to_string(split_errors) +
            ",\n    \"cold_ask_us\": {\"p50\": " + json_number(percentile(cold_ask_us, 0.50)) +
            ", \"p90\": " + json_number(percentile(cold_ask_us, 0.90)) +
            ", \"p99\": " + json_number(percentile(cold_ask_us, 0.99)) +
            "},\n    \"warm_ask_us\": {\"p50\": " + json_number(percentile(warm_ask_us, 0.50)) +
            ", \"p90\": " + json_number(percentile(warm_ask_us, 0.90)) +
            ", \"p99\": " + json_number(percentile(warm_ask_us, 0.99)) + "}},\n";
  report += std::string("  \"failover\": {\"drill\": ") +
            (failover ? "true" : "false") +
            ", \"blackout_ms\": " + json_number(blackout_ms) +
            ", \"promotions\": " + std::to_string(promotions) + "},\n";
  {
    // Fairness headline: ratio of the best-served to worst-served tenant's
    // evaluation throughput (1.0 = perfectly fair; meaningful only in the
    // open loop, where quotas + DRR admission arbitrate overload).
    double min_tput = 0.0, max_tput = 0.0;
    std::string tenants_json;
    for (std::size_t t = 0; t < by_tenant.size(); ++t) {
      WorkerStats& bucket = by_tenant[t];
      const double tput =
          wall_seconds > 0.0
              ? static_cast<double>(bucket.evaluations) / wall_seconds
              : 0.0;
      if (t == 0 || tput < min_tput) min_tput = tput;
      if (t == 0 || tput > max_tput) max_tput = tput;
      tenants_json += "      {\"tenant\": \"tenant-" + std::to_string(t) +
                      "\", \"offered\": " + std::to_string(bucket.offered) +
                      ", \"sessions\": " + std::to_string(bucket.sessions) +
                      ", \"pushbacks\": " + std::to_string(bucket.pushbacks) +
                      ", \"sheds\": " + std::to_string(bucket.sheds) +
                      ", \"throughput_evals_per_sec\": " + json_number(tput) +
                      ",\n       \"ask_us\": {\"p50\": " +
                      json_number(percentile(bucket.ask_us, 0.50)) +
                      ", \"p99\": " +
                      json_number(percentile(bucket.ask_us, 0.99)) + "}}";
      if (t + 1 < by_tenant.size()) tenants_json += ",";
      tenants_json += "\n";
    }
    report += std::string("  \"open_loop\": {\"enabled\": ") +
              (open_loop ? "true" : "false") +
              ", \"arrival_rate_per_sec\": " + json_number(arrival_rate) +
              ",\n    \"offered_sessions\": " + std::to_string(merged.offered) +
              ", \"completed_sessions\": " + std::to_string(merged.sessions) +
              ", \"pushbacks\": " + std::to_string(merged.pushbacks) +
              ", \"sheds\": " + std::to_string(merged.sheds) +
              ",\n    \"shed_rate\": " +
              json_number(merged.offered > 0
                              ? 100.0 * static_cast<double>(merged.sheds) /
                                    static_cast<double>(merged.offered)
                              : 0.0) +
              ", \"fairness_max_min_ratio\": " +
              json_number(min_tput > 0.0 ? max_tput / min_tput : 0.0) +
              ",\n    \"tenants\": [\n" + tenants_json + "    ]}\n";
  }
  report += "}\n";

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "loadgen: cannot open " << out_path << "\n";
    return 1;
  }
  out << report;
  out.close();
  std::cerr << "loadgen: " << merged.evaluations << " evaluations over "
            << json_number(wall_seconds) << "s, " << merged.errors
            << " errors; wrote " << out_path << "\n";

  router.stop();
  if (primary != nullptr) primary->stop();
  standby.stop();
  return merged.errors == 0 && split_errors == 0 ? 0 : 1;
}
