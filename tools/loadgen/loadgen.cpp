// loadgen: cluster load generator + failover drill, emitting the committed
// BENCH_service.json snapshot.
//
// Spins up a replicated shard (primary shipping its WAL to a hot standby)
// behind an in-process tunelb Router, drives N concurrent client threads
// through tokened ask/tell sessions, and records per-op latencies. With
// --failover it additionally murders the primary mid-run (stop + promote,
// the in-process equivalent of SIGKILL: the standby has only the
// acknowledged record stream) and measures the blackout window — the wall
// time from the crash until the first client op completes against the
// promoted standby through the router.
//
// Timing here is measurement *of the service*, not of tuning: no timestamp
// feeds a search result. Latencies are steady-clock; the report rounds to
// whole microseconds.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "store/results_store.hpp"
#include "tuner/registry.hpp"

namespace {

using namespace repro;
using Clock = std::chrono::steady_clock;

tuner::Evaluation synth_eval(const tuner::ParamSpace& space,
                             const tuner::Configuration& config) {
  std::uint64_t state = seed_combine(99, space.encode(config) + 1);
  const std::uint64_t h = splitmix64(state);
  return tuner::Evaluation{1.0 + static_cast<double>(h >> 11) * 0x1.0p-53, true};
}

service::OpenParams open_params(std::size_t budget, std::uint64_t seed) {
  service::OpenParams params;
  params.algorithm = "rs";
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

/// Tenant-identified botpe open for the warm-vs-cold split: same space as
/// the main workload, but carrying (benchmark, arch) so the daemon's store
/// recognizes the session.
service::OpenParams tenant_params(std::size_t budget, std::uint64_t seed, bool warm) {
  service::OpenParams params = open_params(budget, seed);
  params.algorithm = "botpe";
  params.benchmark = "loadgen";
  params.arch = "sim";
  params.warm_start = warm;
  return params;
}

std::string fresh_dir() {
  char name[] = "/tmp/repro_loadgen_XXXXXX";
  const char* dir = mkdtemp(name);
  if (dir == nullptr) {
    std::cerr << "loadgen: mkdtemp failed\n";
    std::exit(1);
  }
  return dir;
}

/// One worker's measurements, merged after the join.
struct WorkerStats {
  std::vector<double> ask_us;
  std::vector<double> tell_us;
  std::size_t sessions = 0;
  std::size_t evaluations = 0;
  std::size_t errors = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("loadgen",
          "drive a replicated tuned shard behind tunelb and report "
          "throughput, ask/tell latency percentiles, and (with --failover) "
          "the promotion blackout window as BENCH_service.json");
  cli.add_option("clients", "concurrent client threads", "4");
  cli.add_option("sessions", "sessions per client", "8");
  cli.add_option("budget", "evaluations per session", "24");
  cli.add_option("out", "output JSON path", "BENCH_service.json");
  cli.add_flag("failover", "kill the primary mid-run and measure blackout");
  if (!cli.parse(argc, argv)) return 2;
  const std::size_t clients = static_cast<std::size_t>(cli.get_int("clients"));
  const std::size_t sessions_per_client =
      static_cast<std::size_t>(cli.get_int("sessions"));
  const std::size_t budget = static_cast<std::size_t>(cli.get_int("budget"));
  const bool failover = cli.get_flag("failover");
  const std::string out_path = cli.get("out");

  const std::string dir = fresh_dir();

  service::ServerConfig standby_config;
  standby_config.standby = true;
  standby_config.limits.state_dir = dir + "/standby";
  standby_config.store_dir = dir + "/standby-store";
  service::TuneServer standby(standby_config);
  standby.start();

  auto primary = std::make_unique<service::TuneServer>([&] {
    service::ServerConfig config;
    config.limits.state_dir = dir + "/primary";
    config.limits.ship.port = standby.port();
    config.store_dir = dir + "/primary-store";
    return config;
  }());
  primary->start();

  service::RouterConfig router_config;
  router_config.shards = {{"127.0.0.1", primary->port(), "127.0.0.1",
                           standby.port()}};
  router_config.probe_interval = std::chrono::milliseconds(100);
  router_config.probe_timeout = std::chrono::milliseconds(500);
  service::Router router(router_config);
  router.start();

  const tuner::ParamSpace space({{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}});

  // Warm-vs-cold split: pre-populate the results store over the wire, then
  // run paired botpe sessions with and without warm start, recording ask
  // latencies per arm. Runs before the main workload (and before any
  // failover drill) so the seeded prior lives on the primary serving it;
  // the split prices what a warm open costs and what the larger model
  // history does to per-ask latency.
  constexpr std::size_t kPriorRows = 256;
  constexpr std::size_t kSplitSessions = 4;
  const std::size_t split_budget = std::min<std::size_t>(budget, 16);
  std::vector<double> cold_ask_us;
  std::vector<double> warm_ask_us;
  std::size_t split_errors = 0;
  std::size_t prior_rows_imported = 0;
  {
    service::ClientConfig split_config;
    split_config.port = router.port();
    split_config.name = "loadgen-split";
    split_config.max_retries = 40;
    split_config.backoff_initial_ms = 25;
    split_config.backoff_max_ms = 400;
    service::Client seeder(split_config);
    store::TenantSnapshot snapshot;
    snapshot.key = store::StoreKey{
        "loadgen", "sim",
        service::space_fingerprint_of(tenant_params(split_budget, 0, false))};
    Rng prior_rng(seed_combine(404, 1));
    snapshot.rows.reserve(kPriorRows);
    for (std::size_t i = 0; i < kPriorRows; ++i) {
      const tuner::Configuration prior_config = space.sample(prior_rng);
      const tuner::Evaluation eval = synth_eval(space, prior_config);
      snapshot.rows.push_back(
          store::StoreRecord{prior_config, eval.value, eval.valid});
    }
    try {
      prior_rows_imported = seeder.store_import({snapshot});
      for (const bool warm : {false, true}) {
        std::vector<double>& sink = warm ? warm_ask_us : cold_ask_us;
        for (std::size_t s = 0; s < kSplitSessions; ++s) {
          const std::string token = std::string("loadgen-split#") +
                                    (warm ? "warm" : "cold") + std::to_string(s);
          const std::string id = seeder.open(
              tenant_params(split_budget, seed_combine(505, s), warm), token);
          while (true) {
            const auto ask_started = Clock::now();
            const auto config_opt = seeder.ask(id);
            sink.push_back(
                std::chrono::duration<double, std::micro>(Clock::now() -
                                                          ask_started)
                    .count());
            if (!config_opt) break;
            (void)seeder.tell(id, synth_eval(space, *config_opt));
          }
          seeder.close_session(id);
        }
      }
    } catch (const std::exception& error) {
      ++split_errors;
      std::cerr << "loadgen: warm/cold split failed: " << error.what() << "\n";
    }
  }
  std::sort(cold_ask_us.begin(), cold_ask_us.end());
  std::sort(warm_ask_us.begin(), warm_ask_us.end());

  std::vector<WorkerStats> stats(clients);
  std::atomic<std::size_t> completed{0};
  const std::size_t total_sessions = clients * sessions_per_client;

  const auto run_started = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t w = 0; w < clients; ++w) {
    workers.emplace_back([&, w] {  // NOLINT(reprolint-raw-thread)
      WorkerStats& mine = stats[w];
      service::ClientConfig config;
      config.port = router.port();
      config.name = "loadgen-" + std::to_string(w);
      config.max_retries = 40;
      config.backoff_initial_ms = 25;
      config.backoff_max_ms = 400;
      service::Client client(config);
      for (std::size_t s = 0; s < sessions_per_client; ++s) {
        const std::string token =
            "loadgen#" + std::to_string(w) + "." + std::to_string(s);
        try {
          const std::string id =
              client.open(open_params(budget, seed_combine(w, s)), token);
          while (true) {
            const auto ask_started = Clock::now();
            const auto config_opt = client.ask(id);
            mine.ask_us.push_back(
                std::chrono::duration<double, std::micro>(Clock::now() -
                                                          ask_started)
                    .count());
            if (!config_opt) break;
            const auto tell_started = Clock::now();
            (void)client.tell(id, synth_eval(space, *config_opt));
            mine.tell_us.push_back(
                std::chrono::duration<double, std::micro>(Clock::now() -
                                                          tell_started)
                    .count());
            ++mine.evaluations;
          }
          client.close_session(id);
          ++mine.sessions;
        } catch (const std::exception& error) {
          ++mine.errors;
          std::cerr << "loadgen: worker " << w << " session " << s
                    << " failed: " << error.what() << "\n";
        }
        completed.fetch_add(1);
      }
    });
  }

  double blackout_ms = 0.0;
  if (failover) {
    // Let the run reach steady state, then kill the primary. Blackout =
    // crash instant -> first successful client op on the promoted standby,
    // measured by an independent probe session through the router.
    while (completed.load() < total_sessions / 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const auto crash_started = Clock::now();
    primary->stop();
    primary.reset();
    service::ClientConfig probe_config;
    probe_config.port = router.port();
    probe_config.name = "loadgen-probe";
    probe_config.max_retries = 100;
    probe_config.backoff_initial_ms = 5;
    probe_config.backoff_max_ms = 100;
    service::Client probe(probe_config);
    const std::string id =
        probe.open(open_params(budget, seed_combine(7, 7)), "loadgen#probe");
    const auto config_opt = probe.ask(id);
    if (config_opt) (void)probe.tell(id, synth_eval(space, *config_opt));
    probe.close_session(id);
    blackout_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            crash_started)
                      .count();
  }

  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - run_started).count();

  WorkerStats merged;
  for (WorkerStats& one : stats) {
    merged.ask_us.insert(merged.ask_us.end(), one.ask_us.begin(), one.ask_us.end());
    merged.tell_us.insert(merged.tell_us.end(), one.tell_us.begin(),
                          one.tell_us.end());
    merged.sessions += one.sessions;
    merged.evaluations += one.evaluations;
    merged.errors += one.errors;
  }
  std::sort(merged.ask_us.begin(), merged.ask_us.end());
  std::sort(merged.tell_us.begin(), merged.tell_us.end());

  const std::vector<service::ShardSnapshot> shards = router.shards();
  const std::size_t promotions = shards.empty() ? 0 : shards[0].promotions;

  std::string report = "{\n";
  report += "  \"tool\": \"loadgen\",\n";
  report += "  \"topology\": {\"shards\": 1, \"hot_standby\": true, \"router\": \"tunelb\"},\n";
  report += "  \"clients\": " + std::to_string(clients) + ",\n";
  report += "  \"sessions\": " + std::to_string(merged.sessions) + ",\n";
  report += "  \"budget_per_session\": " + std::to_string(budget) + ",\n";
  report += "  \"evaluations\": " + std::to_string(merged.evaluations) + ",\n";
  report += "  \"errors\": " + std::to_string(merged.errors) + ",\n";
  report += "  \"wall_seconds\": " + json_number(wall_seconds) + ",\n";
  report += "  \"throughput_evals_per_sec\": " +
            json_number(wall_seconds > 0.0
                            ? static_cast<double>(merged.evaluations) / wall_seconds
                            : 0.0) +
            ",\n";
  report += "  \"ask_latency_us\": {\"p50\": " + json_number(percentile(merged.ask_us, 0.50)) +
            ", \"p90\": " + json_number(percentile(merged.ask_us, 0.90)) +
            ", \"p99\": " + json_number(percentile(merged.ask_us, 0.99)) + "},\n";
  report += "  \"tell_latency_us\": {\"p50\": " + json_number(percentile(merged.tell_us, 0.50)) +
            ", \"p90\": " + json_number(percentile(merged.tell_us, 0.90)) +
            ", \"p99\": " + json_number(percentile(merged.tell_us, 0.99)) + "},\n";
  report += "  \"warm_start\": {\"prior_rows\": " +
            std::to_string(prior_rows_imported) +
            ", \"sessions_per_arm\": " + std::to_string(kSplitSessions) +
            ", \"budget\": " + std::to_string(split_budget) +
            ", \"errors\": " + std::to_string(split_errors) +
            ",\n    \"cold_ask_us\": {\"p50\": " + json_number(percentile(cold_ask_us, 0.50)) +
            ", \"p90\": " + json_number(percentile(cold_ask_us, 0.90)) +
            ", \"p99\": " + json_number(percentile(cold_ask_us, 0.99)) +
            "},\n    \"warm_ask_us\": {\"p50\": " + json_number(percentile(warm_ask_us, 0.50)) +
            ", \"p90\": " + json_number(percentile(warm_ask_us, 0.90)) +
            ", \"p99\": " + json_number(percentile(warm_ask_us, 0.99)) + "}},\n";
  report += std::string("  \"failover\": {\"drill\": ") +
            (failover ? "true" : "false") +
            ", \"blackout_ms\": " + json_number(blackout_ms) +
            ", \"promotions\": " + std::to_string(promotions) + "}\n";
  report += "}\n";

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "loadgen: cannot open " << out_path << "\n";
    return 1;
  }
  out << report;
  out.close();
  std::cerr << "loadgen: " << merged.evaluations << " evaluations over "
            << json_number(wall_seconds) << "s, " << merged.errors
            << " errors; wrote " << out_path << "\n";

  router.stop();
  if (primary != nullptr) primary->stop();
  standby.stop();
  return merged.errors == 0 && split_errors == 0 ? 0 : 1;
}
