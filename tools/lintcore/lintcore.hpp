#pragma once
// lintcore — shared machinery for this repository's tokenizer-based static
// analyzers (tools/reprolint, tools/svclint).
//
// Both analyzers scan C++ with a lightweight lexer (no libclang), honour
// `NOLINT(<tool>-<rule>)` suppressions, filter findings through a
// (rule, path-substring) allowlist, and emit the same versioned JSON report
// shape. That machinery lives here exactly once; each tool contributes only
// its rules and its default allowlist.
//
// Lexer contract:
//   * identifiers / numbers / single-char punctuation, one token each;
//   * ordinary "..." string literals become kString tokens carrying the raw
//     literal contents (escape sequences unexpanded) so protocol analyses
//     can read op names; raw strings and char literals are consumed without
//     producing tokens;
//   * comments never produce tokens but are scanned for NOLINT directives.
//
// Suppression contract (per tool name T):
//   * `NOLINT` with no list suppresses every rule on its line;
//   * `NOLINT(a, b)` suppresses the named rules; the entries `T` and `T-*`
//     suppress every rule of tool T;
//   * `NOLINTNEXTLINE...` targets the following line.
// Directives naming another tool's rules parse into the same table and are
// simply never matched, so reprolint and svclint suppressions coexist on
// one line without interference.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace lintcore {

enum class TokKind { kIdent, kNumber, kPunct, kString };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct NolintDirectives {
  std::set<int> all_lines;                     ///< bare NOLINT / NOLINT(T)
  std::map<int, std::set<std::string>> rules;  ///< NOLINT(list)
};

struct Lexed {
  std::vector<Token> tokens;
  NolintDirectives nolint;
  std::vector<std::string> lines;  ///< raw source lines (1-based via index+1)
};

/// Lex C++-ish source for the analyzer named `tool` (controls which NOLINT
/// list entries act as a whole-tool wildcard).
[[nodiscard]] Lexed lex(const std::string& src, const std::string& tool);

/// Scan one comment (or any text fragment) for NOLINT directives targeting
/// `line`. Exposed so analyzers can honour suppressions in non-C++ inputs
/// (e.g. `<!-- NOLINT(svclint-wire-drift) -->` in markdown).
void parse_nolint(const std::string& comment, int line, const std::string& tool,
                  NolintDirectives& out);

// ---------------------------------------------------------------------------
// Token helpers. `is` and the prev_* helpers never match kString tokens, so
// a string literal whose contents happen to spell punctuation (")", "::")
// cannot fake structure.
// ---------------------------------------------------------------------------

[[nodiscard]] bool is(const std::vector<Token>& t, std::size_t i,
                      const char* text);
[[nodiscard]] bool is_ident(const std::vector<Token>& t, std::size_t i);
/// True when tokens[i] is preceded by `::` (qualified name).
[[nodiscard]] bool prev_is_scope(const std::vector<Token>& t, std::size_t i);
/// True when tokens[i] is a member access (`.name` / `->name`).
[[nodiscard]] bool prev_is_member(const std::vector<Token>& t, std::size_t i);
/// Index of the token before an optional `std::` / `::` qualifier at i.
[[nodiscard]] std::size_t before_qualifier(const std::vector<Token>& t,
                                           std::size_t i);
/// Skip a balanced template argument list starting at `<`; returns the index
/// one past the matching `>`, or `open + 1` if tokens[open] is not `<`.
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& t,
                                             std::size_t open);

// ---------------------------------------------------------------------------
// Findings and reports (shared shape across tools).
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;  ///< path as given (relative to the scan root)
  int line = 0;      ///< 1-based
  std::string rule;  ///< diagnostic id, e.g. "reprolint-rand"
  std::string message;
  std::string snippet;  ///< trimmed source line
};

struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  ///< findings silenced by NOLINT
};

/// (rule, path-substring) pairs; rule "*" matches every rule. A finding
/// whose file contains the substring is dropped before reporting.
using AllowList = std::vector<std::pair<std::string, std::string>>;

/// The source line a finding points at, whitespace-trimmed ("" if absent).
[[nodiscard]] std::string trimmed_line(const Lexed& lx, int line);

/// Emit a finding unless a NOLINT directive or the allowlist covers it.
void emit(const std::string& path, const Lexed& lx, int line,
          const std::string& rule, const std::string& message,
          const AllowList& allow, Report& report);

void json_escape(std::string& out, const std::string& text);

/// Machine-readable report. Schema (stable, version-gated):
///   {"tool": "<tool>", "schema_version": 1, "files_scanned": N,
///    "suppressed": N, "findings": [{"file", "line", "rule", "message",
///    "snippet"}, ...]}
[[nodiscard]] std::string to_json(const Report& report,
                                  const std::string& tool);

// ---------------------------------------------------------------------------
// CLI plumbing shared by the tools' main()s.
// ---------------------------------------------------------------------------

/// True for paths under a `fixtures/` directory (deliberately-bad lint
/// inputs kept by the test suites).
[[nodiscard]] bool under_fixtures(const std::string& relative);

/// Expand `paths` (files or directories, relative to `root`) into a sorted,
/// de-duplicated list of root-relative paths whose extension is in
/// `extensions`. Explicitly requested files bypass the extension filter.
/// Returns false with `error` set when a path does not exist.
[[nodiscard]] bool collect_files(const std::string& root,
                                 const std::vector<std::string>& paths,
                                 const std::set<std::string>& extensions,
                                 bool include_fixtures,
                                 std::vector<std::string>& out,
                                 std::string& error);

/// Slurp a file. Returns false when unreadable.
[[nodiscard]] bool read_file(const std::string& path, std::string& out);

}  // namespace lintcore
