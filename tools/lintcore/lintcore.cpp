#include "lintcore/lintcore.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace lintcore {

void parse_nolint(const std::string& comment, int line, const std::string& tool,
                  NolintDirectives& out) {
  const std::string wildcard = tool + "-*";
  std::size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    std::size_t after = pos + 6;
    int target = line;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = line + 1;
    }
    if (after < comment.size() && comment[after] == '(') {
      const std::size_t close = comment.find(')', after);
      if (close == std::string::npos) break;
      std::string list = comment.substr(after + 1, close - after - 1);
      std::stringstream ss(list);
      std::string item;
      while (std::getline(ss, item, ',')) {
        item.erase(0, item.find_first_not_of(" \t"));
        item.erase(item.find_last_not_of(" \t") + 1);
        if (item == tool || item == wildcard) {
          out.all_lines.insert(target);
        } else if (!item.empty()) {
          out.rules[target].insert(item);
        }
      }
      pos = close;
    } else {
      out.all_lines.insert(target);
      pos = after;
    }
  }
}

Lexed lex(const std::string& src, const std::string& tool) {
  Lexed out;
  {
    std::stringstream ss(src);
    std::string line;
    while (std::getline(ss, line)) out.lines.push_back(line);
  }
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t end = src.find('\n', i);
      const std::size_t stop = end == std::string::npos ? n : end;
      parse_nolint(src.substr(i, stop - i), line, tool, out.nolint);
      i = stop;
      continue;
    }
    // Block comment (may span lines; directives use the line they appear on).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      int comment_line = line;
      std::size_t segment_start = i;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          parse_nolint(src.substr(segment_start, j - segment_start),
                       comment_line, tool, out.nolint);
          ++line;
          comment_line = line;
          segment_start = j + 1;
        }
        ++j;
      }
      const std::size_t stop = j + 1 < n ? j + 2 : n;
      parse_nolint(src.substr(segment_start, stop - segment_start),
                   comment_line, tool, out.nolint);
      i = stop;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string terminator = ")" + delim + "\"";
      const std::size_t end = src.find(terminator, j);
      const std::size_t stop =
          end == std::string::npos ? n : end + terminator.size();
      line += static_cast<int>(std::count(src.begin() + static_cast<long>(i),
                                          src.begin() + static_cast<long>(stop),
                                          '\n'));
      i = stop;
      continue;
    }
    // String literal — tokenized so protocol analyses can read the contents.
    if (c == '"') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) {
          text += src[j];
          ++j;
        }
        if (src[j] == '\n') ++line;
        text += src[j];
        ++j;
      }
      out.tokens.push_back({TokKind::kString, text, line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Char literal — consumed without a token.
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_')) {
        ++j;
      }
      out.tokens.push_back({TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (digits, dots, exponent signs — precision irrelevant here).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.' || src[j] == '\'')) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

bool is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind != TokKind::kString && t[i].text == text;
}

bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}

bool prev_is_scope(const std::vector<Token>& t, std::size_t i) {
  return i >= 2 && is(t, i - 1, ":") && is(t, i - 2, ":");
}

bool prev_is_member(const std::vector<Token>& t, std::size_t i) {
  if (i >= 1 && is(t, i - 1, ".")) return true;
  return i >= 2 && is(t, i - 1, ">") && is(t, i - 2, "-");
}

std::size_t before_qualifier(const std::vector<Token>& t, std::size_t i) {
  std::size_t j = i;
  if (j >= 2 && is(t, j - 1, ":") && is(t, j - 2, ":")) {
    j -= 2;
    if (j >= 1 && is(t, j - 1, "std")) --j;
  }
  return j;  // t[j-1] is the token before the qualified name (if j > 0)
}

std::size_t skip_template_args(const std::vector<Token>& t, std::size_t open) {
  if (!is(t, open, "<")) return open + 1;
  int depth = 0;
  std::size_t j = open;
  while (j < t.size()) {
    if (is(t, j, "<")) ++depth;
    if (is(t, j, ">")) {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (is(t, j, ";")) return j;  // unbalanced (operator<) — bail out
    ++j;
  }
  return j;
}

std::string trimmed_line(const Lexed& lx, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > lx.lines.size()) return {};
  std::string text = lx.lines[static_cast<std::size_t>(line - 1)];
  text.erase(0, text.find_first_not_of(" \t"));
  text.erase(text.find_last_not_of(" \t\r") + 1);
  return text;
}

void emit(const std::string& path, const Lexed& lx, int line,
          const std::string& rule, const std::string& message,
          const AllowList& allow, Report& report) {
  for (const auto& [allowed_rule, substring] : allow) {
    if ((allowed_rule == "*" || allowed_rule == rule) &&
        path.find(substring) != std::string::npos) {
      return;
    }
  }
  if (lx.nolint.all_lines.count(line) != 0) {
    ++report.suppressed;
    return;
  }
  const auto it = lx.nolint.rules.find(line);
  if (it != lx.nolint.rules.end() && it->second.count(rule) != 0) {
    ++report.suppressed;
    return;
  }
  report.findings.push_back(
      {path, line, rule, message, trimmed_line(lx, line)});
}

void json_escape(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

std::string to_json(const Report& report, const std::string& tool) {
  std::string out = "{\n";
  out += "  \"tool\": \"" + tool + "\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"files_scanned\": " + std::to_string(report.files_scanned) + ",\n";
  out += "  \"suppressed\": " + std::to_string(report.suppressed) + ",\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"";
    json_escape(out, f.file);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"";
    json_escape(out, f.rule);
    out += "\", \"message\": \"";
    json_escape(out, f.message);
    out += "\", \"snippet\": \"";
    json_escape(out, f.snippet);
    out += "\"}";
  }
  out += report.findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool under_fixtures(const std::string& relative) {
  return relative.find("fixtures/") != std::string::npos ||
         relative.find("fixtures\\") != std::string::npos;
}

bool collect_files(const std::string& root,
                   const std::vector<std::string>& paths,
                   const std::set<std::string>& extensions,
                   bool include_fixtures, std::vector<std::string>& out,
                   std::string& error) {
  namespace fs = std::filesystem;
  const fs::path base = root;
  for (const std::string& request : paths) {
    const fs::path target = base / request;
    std::error_code ec;
    if (fs::is_regular_file(target, ec)) {
      out.push_back(request);
      continue;
    }
    if (!fs::is_directory(target, ec)) {
      error = "no such file or directory: " + target.string();
      return false;
    }
    for (fs::recursive_directory_iterator it(target, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file() ||
          extensions.count(it->path().extension().string()) == 0) {
        continue;
      }
      out.push_back(fs::relative(it->path(), base, ec).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (!include_fixtures) {
    out.erase(std::remove_if(out.begin(), out.end(), under_fixtures),
              out.end());
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace lintcore
