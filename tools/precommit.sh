#!/usr/bin/env sh
# Pre-commit gate: everything that must be green before a commit, one shot.
#
#   tools/precommit.sh
#
# Runs, in order:
#   1. a -Werror build via the `check` preset (build-check/),
#   2. the reprolint tree sweep (determinism hazards),
#   3. the svclint tree sweep (lock order, durability, wire drift),
#   4. `ctest -L 'lint|perf'` in the check tree — the gated lint tests
#      (including the WILL_FAIL fixture gates) plus the perf guards.
#
# Exits non-zero on the first failure. See docs/ANALYSIS.md for the rule
# catalogs and suppression policy.

set -eu

cd "$(dirname "$0")/.."

step() {
  printf '\n== %s ==\n' "$1"
}

step "configure + build (check preset, -Werror)"
cmake --preset check
cmake --build --preset check -j "$(nproc 2>/dev/null || echo 4)"

step "reprolint (src bench tests)"
./build-check/tools/reprolint/reprolint --root .

step "svclint (src/service src/store docs/SERVICE.md)"
./build-check/tools/svclint/svclint --root . \
    --order tools/svclint/lock_order.txt \
    src/service src/store docs/SERVICE.md

step "ctest -L 'lint|perf'"
ctest --preset check

printf '\nprecommit: all gates green\n'
