#pragma once
// reprolint — determinism & concurrency lint for this repository.
//
// The paper's statistics (E experiments per cell, Mann-Whitney U at
// alpha = 0.01) assume seeded, bit-repeatable experiments. Hidden
// nondeterminism — a stray rand(), a wall-clock read feeding a result, an
// unordered_map iteration order leaking into a CSV — silently invalidates
// them. reprolint scans the tree for those hazard patterns with a
// lightweight tokenizer (no libclang dependency) and fails the build when
// one appears outside an allowlisted context.
//
// Rules (diagnostic ids):
//   reprolint-rand               rand()/srand()/drand48()/... libc generators
//   reprolint-random-device      std::random_device (nondeterministic seed)
//   reprolint-wall-clock         wall/steady clock reads outside timing code
//   reprolint-unseeded-rng       <random> engine constructed without a seed
//   reprolint-nonportable-random std::shuffle / std <random> distributions
//                                (implementation-defined streams; use
//                                repro::Rng)
//   reprolint-unordered-iteration  range-for over unordered_{map,set}
//                                (iteration order is not part of the spec)
//   reprolint-nondet-reduction   float accumulation in nondeterministic
//                                order (atomic<float/double>, parallel
//                                std::reduce, omp reduction, horizontal
//                                SIMD reduce intrinsics — _mm*_hadd_p*,
//                                _mm512_reduce_add_p*, vaddvq — whose lane
//                                order is fixed by hardware, not source)
//   reprolint-raw-thread         std::thread/std::async/pthread_create
//                                bypassing repro::ThreadPool
//
// Suppressions: `// NOLINT(reprolint-<rule>)` on the offending line or
// `// NOLINTNEXTLINE(reprolint-<rule>)` on the line above. A bare
// `NOLINT` (no list) or the list entry `reprolint` suppresses every rule.
// Every suppression in this tree must carry a one-line justification.

#include <cstddef>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "lintcore/lintcore.hpp"

namespace reprolint {

// Tokenizer, suppression handling and the report shape live in
// tools/lintcore (shared with svclint); reprolint contributes the rules.
using Finding = lintcore::Finding;
using Report = lintcore::Report;

struct Options {
  /// (rule, path-substring) pairs; rule "*" matches every rule. A finding
  /// whose file contains the substring is dropped before reporting.
  lintcore::AllowList allow;
  /// Identifiers declared as unordered containers anywhere in the scanned
  /// set (lint_tree fills this in a first pass so a range-for in server.cpp
  /// over a member declared in server.hpp is still caught).
  std::unordered_set<std::string> unordered_names;
};

/// The allowlist shipped with the repository (log timestamps, socket
/// timeouts, bench timers, the thread-pool implementation itself, test
/// driver threads). See docs/ANALYSIS.md for the rationale per entry.
[[nodiscard]] Options default_options();

/// All rule ids, in reporting order.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Collect identifiers declared as unordered_{map,set,multimap,multiset}
/// at the outermost template level of their declared type.
void collect_unordered_names(const std::string& content,
                             std::unordered_set<std::string>& names);

/// Lint one file's contents; appends findings and bumps counters.
void lint_content(const std::string& path, const std::string& content,
                  const Options& options, Report& report);

/// Read and lint a file on disk. Returns false when the file is unreadable.
bool lint_file(const std::string& path, const Options& options, Report& report);

/// Machine-readable report. Schema (stable, version-gated):
///   {"tool": "reprolint", "schema_version": 1, "files_scanned": N,
///    "suppressed": N, "findings": [{"file", "line", "rule", "message",
///    "snippet"}, ...]}
[[nodiscard]] std::string to_json(const Report& report);

}  // namespace reprolint
