// reprolint CLI: scan directories (default: src bench tests) for
// determinism/concurrency hazards and exit nonzero when any finding
// survives the allowlist and NOLINT suppressions.
//
//   reprolint [--root DIR] [--json FILE] [--allow rule:substr]
//             [--no-default-allow] [--include-fixtures] [--quiet] [paths...]
//
// Paths are resolved relative to --root (default: current directory). Files
// under a `fixtures/` directory are skipped unless --include-fixtures is
// given — the lint test suite keeps deliberately-bad inputs there.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "reprolint.hpp"

namespace fs = std::filesystem;

namespace {

const std::set<std::string>& source_extensions() {
  static const std::set<std::string> extensions = {".cpp", ".hpp", ".cc",
                                                   ".h",   ".cxx", ".hxx"};
  return extensions;
}

int usage() {
  std::cerr << "usage: reprolint [--root DIR] [--json FILE] "
               "[--allow rule:substr] [--no-default-allow] "
               "[--include-fixtures] [--quiet] [paths...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string json_out;
  bool default_allow = true;
  bool include_fixtures = false;
  bool quiet = false;
  std::vector<std::string> extra_allow;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--allow" && i + 1 < argc) {
      extra_allow.emplace_back(argv[++i]);
    } else if (arg == "--no-default-allow") {
      default_allow = false;
    } else if (arg == "--include-fixtures") {
      include_fixtures = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help") {
      (void)usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "bench", "tests"};

  reprolint::Options options =
      default_allow ? reprolint::default_options() : reprolint::Options{};
  for (const std::string& entry : extra_allow) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      std::cerr << "reprolint: --allow expects rule:path-substring, got '"
                << entry << "'\n";
      return 2;
    }
    options.allow.emplace_back(entry.substr(0, colon), entry.substr(colon + 1));
  }

  // Collect candidate files, sorted for deterministic report order.
  std::vector<std::string> files;
  std::string error;
  if (!lintcore::collect_files(root.string(), paths, source_extensions(),
                               include_fixtures, files, error)) {
    std::cerr << "reprolint: " << error << "\n";
    return 2;
  }

  // Load everything up front: the first pass collects declared
  // unordered-container names across the whole scan set (so iteration in
  // one file over a member declared in another is still caught), the
  // second lints each file against that shared set.
  std::vector<std::pair<std::string, std::string>> sources;  // rel path, text
  for (const std::string& file : files) {
    std::string content;
    if (!lintcore::read_file((root / file).string(), content)) {
      std::cerr << "reprolint: cannot read " << (root / file).string() << "\n";
      return 2;
    }
    sources.emplace_back(file, std::move(content));
    reprolint::collect_unordered_names(sources.back().second,
                                       options.unordered_names);
  }

  reprolint::Report report;
  for (const auto& [file, content] : sources) {
    reprolint::lint_content(file, content, options, report);
  }

  if (!quiet) {
    for (const reprolint::Finding& finding : report.findings) {
      std::cerr << finding.file << ":" << finding.line << ": [" << finding.rule
                << "] " << finding.message << "\n    " << finding.snippet
                << "\n";
    }
    std::cerr << "reprolint: " << report.files_scanned << " files, "
              << report.findings.size() << " finding"
              << (report.findings.size() == 1 ? "" : "s") << ", "
              << report.suppressed << " suppressed\n";
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "reprolint: cannot write " << json_out << "\n";
      return 2;
    }
    out << reprolint::to_json(report);
  }
  return report.findings.empty() ? 0 : 1;
}
