#include "reprolint.hpp"

#include <algorithm>
#include <set>

namespace reprolint {

namespace {

// Tokenizer, NOLINT parsing, allowlist filtering and JSON output come from
// tools/lintcore; this file is only the determinism rules.

using lintcore::Lexed;
using lintcore::TokKind;
using lintcore::Token;

using lintcore::before_qualifier;
using lintcore::is;
using lintcore::is_ident;
using lintcore::prev_is_member;
using lintcore::prev_is_scope;
using lintcore::skip_template_args;

/// Lex for reprolint. The determinism rules predate string tokens and never
/// inspect literal contents, so kString tokens are dropped to keep every
/// token-adjacency pattern (`is(t, i + 1, "(")` etc.) exactly as before.
Lexed lex(const std::string& src) {
  Lexed out = lintcore::lex(src, "reprolint");
  out.tokens.erase(
      std::remove_if(out.tokens.begin(), out.tokens.end(),
                     [](const Token& t) { return t.kind == TokKind::kString; }),
      out.tokens.end());
  return out;
}

void emit(const std::string& path, const Lexed& lx, int line,
          const std::string& rule, const std::string& message,
          const Options& options, Report& report) {
  lintcore::emit(path, lx, line, rule, message, options.allow, report);
}

const std::set<std::string>& libc_rand_names() {
  static const std::set<std::string> names = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "srandom"};
  return names;
}

const std::set<std::string>& clock_type_names() {
  static const std::set<std::string> names = {
      "system_clock", "steady_clock", "high_resolution_clock", "utc_clock",
      "file_clock", "tai_clock", "gps_clock"};
  return names;
}

const std::set<std::string>& clock_call_names() {
  static const std::set<std::string> names = {"gettimeofday", "clock_gettime",
                                              "timespec_get", "ftime"};
  return names;
}

const std::set<std::string>& engine_names() {
  static const std::set<std::string> names = {
      "mt19937",      "mt19937_64",    "minstd_rand", "minstd_rand0",
      "ranlux24",     "ranlux48",      "ranlux24_base", "ranlux48_base",
      "knuth_b",      "default_random_engine"};
  return names;
}

const std::set<std::string>& distribution_names() {
  static const std::set<std::string> names = {
      "uniform_int_distribution",   "uniform_real_distribution",
      "normal_distribution",        "lognormal_distribution",
      "bernoulli_distribution",     "binomial_distribution",
      "geometric_distribution",     "negative_binomial_distribution",
      "poisson_distribution",       "exponential_distribution",
      "gamma_distribution",         "weibull_distribution",
      "extreme_value_distribution", "cauchy_distribution",
      "chi_squared_distribution",   "fisher_f_distribution",
      "student_t_distribution",     "discrete_distribution",
      "piecewise_constant_distribution", "piecewise_linear_distribution"};
  return names;
}

const std::set<std::string>& simd_reduce_names() {
  // Horizontal SIMD float reductions: the lane-combination order is fixed by
  // the instruction, not by the source loop, so swapping dispatch tiers (or
  // compilers) silently reassociates the sum. Ordered alternatives live in
  // common/simd.hpp (fixed-blocking kernels); a use that pins and documents
  // its combination order carries a justified NOLINT.
  static const std::set<std::string> names = {
      "_mm_hadd_ps",          "_mm_hadd_pd",
      "_mm256_hadd_ps",       "_mm256_hadd_pd",
      "_mm512_reduce_add_ps", "_mm512_reduce_add_pd",
      "vaddvq_f32",           "vaddvq_f64"};
  return names;
}

const std::set<std::string>& unordered_container_names() {
  static const std::set<std::string> names = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return names;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "reprolint-rand",
      "reprolint-random-device",
      "reprolint-wall-clock",
      "reprolint-unseeded-rng",
      "reprolint-nonportable-random",
      "reprolint-unordered-iteration",
      "reprolint-nondet-reduction",
      "reprolint-raw-thread"};
  return names;
}

Options default_options() {
  Options options;
  // Wall-clock reads that never feed experiment results: log-line
  // timestamps, socket timeout plumbing, benchmark timers, test deadlines.
  options.allow.emplace_back("reprolint-wall-clock", "src/common/log.");
  options.allow.emplace_back("reprolint-wall-clock", "src/common/socket.");
  options.allow.emplace_back("reprolint-wall-clock", "bench/micro/");
  options.allow.emplace_back("reprolint-wall-clock", "tests/");
  // The service layer is liveness plumbing, not measurement: request
  // deadlines, idle-connection reaping, retry backoff, heartbeat pacing,
  // session idle-eviction, tunelb's shard health probes / probe-failure
  // thresholds, and the WAL shipper's RPC deadlines all read the monotonic
  // clock by design. No timestamp ever reaches a tuning result — search
  // and evaluation stay wall-clock-free, which the rest of the lint still
  // enforces.
  options.allow.emplace_back("reprolint-wall-clock", "src/service/");
  // The results store logs one load-time diagnostic (records/ms recovered
  // at startup). The elapsed time is printed and discarded: stored records,
  // eviction order and the store digest are pure functions of the append
  // stream, never of the clock.
  options.allow.emplace_back("reprolint-wall-clock", "src/store/");
  // loadgen measures the service itself (latency percentiles, failover
  // blackout): wall-clock reads and driver threads are its entire point,
  // and its output is BENCH_service.json, never a tuning result.
  options.allow.emplace_back("reprolint-wall-clock", "tools/loadgen/");
  options.allow.emplace_back("reprolint-raw-thread", "tools/loadgen/");
  // The pool implementation is the one sanctioned owner of raw threads;
  // tests spawn driver threads deliberately (race stress, loopback clients).
  options.allow.emplace_back("reprolint-raw-thread", "src/common/thread_pool.");
  options.allow.emplace_back("reprolint-raw-thread", "tests/");
  return options;
}

void collect_unordered_names(const std::string& content,
                             std::unordered_set<std::string>& names) {
  const Lexed lx = lex(content);
  const auto& t = lx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        unordered_container_names().count(t[i].text) == 0) {
      continue;
    }
    // Skip uses nested inside another template's argument list
    // (e.g. std::map<K, std::unordered_set<V>> is ordered at the top level).
    const std::size_t q = before_qualifier(t, i);
    if (q >= 1 && (t[q - 1].text == "<" || t[q - 1].text == ",")) continue;
    std::size_t j = skip_template_args(t, i + 1);
    while (is(t, j, "&") || is(t, j, "*") || is(t, j, "const")) ++j;
    if (is_ident(t, j)) names.insert(t[j].text);
  }
}

void lint_content(const std::string& path, const std::string& content,
                  const Options& options, Report& report) {
  ++report.files_scanned;
  const Lexed lx = lex(content);
  const auto& t = lx.tokens;

  // Local declarations join the cross-file set for the iteration rule.
  std::unordered_set<std::string> unordered = options.unordered_names;
  collect_unordered_names(content, unordered);

  // #pragma omp ... reduction(...) accumulates in thread order.
  for (std::size_t li = 0; li < lx.lines.size(); ++li) {
    const std::string& line = lx.lines[li];
    if (line.find("#pragma") != std::string::npos &&
        line.find("omp") != std::string::npos &&
        line.find("reduction") != std::string::npos) {
      emit(path, lx, static_cast<int>(li + 1), "reprolint-nondet-reduction",
           "OpenMP reduction accumulates in nondeterministic thread order",
           options, report);
    }
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& id = t[i].text;
    const int line = t[i].line;

    // --- reprolint-rand -----------------------------------------------------
    if (libc_rand_names().count(id) != 0 && is(t, i + 1, "(") &&
        !prev_is_member(t, i)) {
      emit(path, lx, line, "reprolint-rand",
           id + "() draws from hidden global state; use repro::Rng with a "
                "derived seed",
           options, report);
      continue;
    }

    // --- reprolint-random-device -------------------------------------------
    if (id == "random_device") {
      emit(path, lx, line, "reprolint-random-device",
           "std::random_device is nondeterministic; derive seeds with "
           "repro::seed_combine",
           options, report);
      continue;
    }

    // --- reprolint-wall-clock ----------------------------------------------
    if (clock_type_names().count(id) != 0 && is(t, i + 1, ":") &&
        is(t, i + 2, ":") && is(t, i + 3, "now")) {
      emit(path, lx, line, "reprolint-wall-clock",
           "std::chrono::" + id + "::now() outside the timing allowlist; "
           "results must not depend on wall time",
           options, report);
      continue;
    }
    if (clock_call_names().count(id) != 0 && is(t, i + 1, "(")) {
      emit(path, lx, line, "reprolint-wall-clock",
           id + "() reads the wall clock; results must not depend on wall time",
           options, report);
      continue;
    }
    if ((id == "time" || id == "clock") && is(t, i + 1, "(") &&
        prev_is_scope(t, i)) {
      emit(path, lx, line, "reprolint-wall-clock",
           "std::" + id + "() reads the wall clock; results must not depend "
           "on wall time",
           options, report);
      continue;
    }

    // --- reprolint-unseeded-rng --------------------------------------------
    if (engine_names().count(id) != 0) {
      bool unseeded = false;
      if (is(t, i + 1, "(") && is(t, i + 2, ")")) unseeded = true;
      if (is(t, i + 1, "{") && is(t, i + 2, "}")) unseeded = true;
      if (is_ident(t, i + 1)) {
        if (is(t, i + 2, ";") || (is(t, i + 2, "{") && is(t, i + 3, "}")) ||
            (is(t, i + 2, "(") && is(t, i + 3, ")"))) {
          unseeded = true;
        }
      }
      if (unseeded) {
        emit(path, lx, line, "reprolint-unseeded-rng",
             "std::" + id + " constructed without an explicit seed",
             options, report);
        continue;
      }
      // Seeded <random> engines still produce implementation-portable bits,
      // but their *distributions* do not — caught below when one is named.
    }

    // --- reprolint-nonportable-random --------------------------------------
    if ((id == "shuffle" || id == "random_shuffle") && prev_is_scope(t, i)) {
      emit(path, lx, line, "reprolint-nonportable-random",
           "std::" + id + " permutation order is implementation-defined; use "
           "repro::Rng::shuffle",
           options, report);
      continue;
    }
    if (distribution_names().count(id) != 0) {
      emit(path, lx, line, "reprolint-nonportable-random",
           "std::" + id + " streams differ across standard libraries; use "
           "repro::Rng distributions",
           options, report);
      continue;
    }

    // --- reprolint-unordered-iteration -------------------------------------
    if (id == "for" && is(t, i + 1, "(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && t[j].text == ":" && colon == 0 &&
            !is(t, j + 1, ":") && !is(t, j - 1, ":")) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (t[j].kind != TokKind::kIdent) continue;
          const bool direct =
              unordered_container_names().count(t[j].text) != 0;
          if (direct || unordered.count(t[j].text) != 0) {
            emit(path, lx, t[i].line, "reprolint-unordered-iteration",
                 "range-for over unordered container '" + t[j].text +
                     "'; iteration order is unspecified and must not feed "
                     "results/CSV/protocol output",
                 options, report);
            break;
          }
        }
      }
    }

    // --- reprolint-nondet-reduction ----------------------------------------
    if (id == "atomic" && is(t, i + 1, "<")) {
      std::size_t j = i + 2;
      if (is(t, j, "std")) j += 3;  // std :: type
      const bool floaty = is(t, j, "float") || is(t, j, "double") ||
                          (is(t, j, "long") && is(t, j + 1, "double"));
      if (floaty) {
        emit(path, lx, line, "reprolint-nondet-reduction",
             "std::atomic floating-point accumulation commits in "
             "nondeterministic order; reduce over an indexed buffer instead",
             options, report);
        continue;
      }
    }
    if ((id == "reduce" || id == "transform_reduce") && prev_is_scope(t, i)) {
      emit(path, lx, line, "reprolint-nondet-reduction",
           "std::" + id + " may reassociate floating-point terms; use an "
           "ordered accumulation",
           options, report);
      continue;
    }
    if (simd_reduce_names().count(id) != 0 && is(t, i + 1, "(")) {
      emit(path, lx, line, "reprolint-nondet-reduction",
           id + " combines SIMD lanes in hardware order; use the ordered "
           "fixed-blocking kernels in common/simd.hpp or justify with NOLINT",
           options, report);
      continue;
    }
    if ((id == "par" || id == "par_unseq" || id == "unseq") &&
        prev_is_scope(t, i) && i >= 3 && t[i - 3].text == "execution") {
      emit(path, lx, line, "reprolint-nondet-reduction",
           "parallel execution policy reorders reductions nondeterministically",
           options, report);
      continue;
    }

    // --- reprolint-raw-thread ----------------------------------------------
    if ((id == "thread" || id == "jthread") && prev_is_scope(t, i) &&
        !is(t, i + 1, ":")) {  // std::thread::hardware_concurrency is a query
      emit(path, lx, line, "reprolint-raw-thread",
           "raw std::" + id + " bypasses repro::ThreadPool (unbounded "
           "parallelism, no nesting guard)",
           options, report);
      continue;
    }
    if (id == "async" && prev_is_scope(t, i) && is(t, i + 1, "(")) {
      emit(path, lx, line, "reprolint-raw-thread",
           "std::async spawns unmanaged threads; submit to repro::ThreadPool",
           options, report);
      continue;
    }
    if (id == "pthread_create") {
      emit(path, lx, line, "reprolint-raw-thread",
           "pthread_create bypasses repro::ThreadPool",
           options, report);
      continue;
    }
  }
}

bool lint_file(const std::string& path, const Options& options,
               Report& report) {
  std::string content;
  if (!lintcore::read_file(path, content)) return false;
  lint_content(path, content, options, report);
  return true;
}

std::string to_json(const Report& report) {
  return lintcore::to_json(report, "reprolint");
}

}  // namespace reprolint
