#include "reprolint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace reprolint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: identifiers / numbers / punctuation, one char per punct token.
// Comments and string/char literals are consumed (never produce hazard
// tokens); comment text is inspected for NOLINT directives as it is skipped.
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct NolintDirectives {
  std::set<int> all_lines;                      ///< bare NOLINT
  std::map<int, std::set<std::string>> rules;   ///< NOLINT(list)
};

void parse_nolint(const std::string& comment, int line, NolintDirectives& out) {
  std::size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    std::size_t after = pos + 6;
    int target = line;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = line + 1;
    }
    if (after < comment.size() && comment[after] == '(') {
      const std::size_t close = comment.find(')', after);
      if (close == std::string::npos) break;
      std::string list = comment.substr(after + 1, close - after - 1);
      std::stringstream ss(list);
      std::string item;
      while (std::getline(ss, item, ',')) {
        item.erase(0, item.find_first_not_of(" \t"));
        item.erase(item.find_last_not_of(" \t") + 1);
        if (item == "reprolint" || item == "reprolint-*") {
          out.all_lines.insert(target);
        } else if (!item.empty()) {
          out.rules[target].insert(item);
        }
      }
      pos = close;
    } else {
      out.all_lines.insert(target);
      pos = after;
    }
  }
}

struct Lexed {
  std::vector<Token> tokens;
  NolintDirectives nolint;
  std::vector<std::string> lines;  ///< raw source lines (1-based via index+1)
};

Lexed lex(const std::string& src) {
  Lexed out;
  {
    std::stringstream ss(src);
    std::string line;
    while (std::getline(ss, line)) out.lines.push_back(line);
  }
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t end = src.find('\n', i);
      const std::size_t stop = end == std::string::npos ? n : end;
      parse_nolint(src.substr(i, stop - i), line, out.nolint);
      i = stop;
      continue;
    }
    // Block comment (may span lines; directives use the line they appear on).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      int comment_line = line;
      std::size_t segment_start = i;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          parse_nolint(src.substr(segment_start, j - segment_start), comment_line,
                       out.nolint);
          ++line;
          comment_line = line;
          segment_start = j + 1;
        }
        ++j;
      }
      const std::size_t stop = j + 1 < n ? j + 2 : n;
      parse_nolint(src.substr(segment_start, stop - segment_start), comment_line,
                   out.nolint);
      i = stop;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string terminator = ")" + delim + "\"";
      const std::size_t end = src.find(terminator, j);
      const std::size_t stop =
          end == std::string::npos ? n : end + terminator.size();
      line += static_cast<int>(std::count(src.begin() + static_cast<long>(i),
                                          src.begin() + static_cast<long>(stop), '\n'));
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_')) {
        ++j;
      }
      out.tokens.push_back({TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (digits, dots, exponent signs — precision irrelevant here).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.' || src[j] == '\'')) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

bool is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}

/// True when tokens[i] is preceded by `::` (qualified name).
bool prev_is_scope(const std::vector<Token>& t, std::size_t i) {
  return i >= 2 && t[i - 1].text == ":" && t[i - 2].text == ":";
}

/// True when tokens[i] is a member access (`.name` / `->name`).
bool prev_is_member(const std::vector<Token>& t, std::size_t i) {
  if (i >= 1 && t[i - 1].text == ".") return true;
  return i >= 2 && t[i - 1].text == ">" && t[i - 2].text == "-";
}

/// Index of the token before an optional `std::` / `::` qualifier at i.
std::size_t before_qualifier(const std::vector<Token>& t, std::size_t i) {
  std::size_t j = i;
  if (j >= 2 && t[j - 1].text == ":" && t[j - 2].text == ":") {
    j -= 2;
    if (j >= 1 && t[j - 1].text == "std") --j;
  }
  return j;  // t[j-1] is the token before the qualified name (if j > 0)
}

/// Skip a balanced template argument list starting at `<`; returns the index
/// one past the matching `>`, or `open + 1` if tokens[open] is not `<`.
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t open) {
  if (!is(t, open, "<")) return open + 1;
  int depth = 0;
  std::size_t j = open;
  while (j < t.size()) {
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      --depth;
      if (depth == 0) return j + 1;
    }
    if (t[j].text == ";") return j;  // unbalanced (operator<) — bail out
    ++j;
  }
  return j;
}

const std::set<std::string>& libc_rand_names() {
  static const std::set<std::string> names = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "srandom"};
  return names;
}

const std::set<std::string>& clock_type_names() {
  static const std::set<std::string> names = {
      "system_clock", "steady_clock", "high_resolution_clock", "utc_clock",
      "file_clock", "tai_clock", "gps_clock"};
  return names;
}

const std::set<std::string>& clock_call_names() {
  static const std::set<std::string> names = {"gettimeofday", "clock_gettime",
                                              "timespec_get", "ftime"};
  return names;
}

const std::set<std::string>& engine_names() {
  static const std::set<std::string> names = {
      "mt19937",      "mt19937_64",    "minstd_rand", "minstd_rand0",
      "ranlux24",     "ranlux48",      "ranlux24_base", "ranlux48_base",
      "knuth_b",      "default_random_engine"};
  return names;
}

const std::set<std::string>& distribution_names() {
  static const std::set<std::string> names = {
      "uniform_int_distribution",   "uniform_real_distribution",
      "normal_distribution",        "lognormal_distribution",
      "bernoulli_distribution",     "binomial_distribution",
      "geometric_distribution",     "negative_binomial_distribution",
      "poisson_distribution",       "exponential_distribution",
      "gamma_distribution",         "weibull_distribution",
      "extreme_value_distribution", "cauchy_distribution",
      "chi_squared_distribution",   "fisher_f_distribution",
      "student_t_distribution",     "discrete_distribution",
      "piecewise_constant_distribution", "piecewise_linear_distribution"};
  return names;
}

const std::set<std::string>& simd_reduce_names() {
  // Horizontal SIMD float reductions: the lane-combination order is fixed by
  // the instruction, not by the source loop, so swapping dispatch tiers (or
  // compilers) silently reassociates the sum. Ordered alternatives live in
  // common/simd.hpp (fixed-blocking kernels); a use that pins and documents
  // its combination order carries a justified NOLINT.
  static const std::set<std::string> names = {
      "_mm_hadd_ps",          "_mm_hadd_pd",
      "_mm256_hadd_ps",       "_mm256_hadd_pd",
      "_mm512_reduce_add_ps", "_mm512_reduce_add_pd",
      "vaddvq_f32",           "vaddvq_f64"};
  return names;
}

const std::set<std::string>& unordered_container_names() {
  static const std::set<std::string> names = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return names;
}

std::string trimmed_line(const Lexed& lx, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > lx.lines.size()) return {};
  std::string text = lx.lines[static_cast<std::size_t>(line - 1)];
  text.erase(0, text.find_first_not_of(" \t"));
  text.erase(text.find_last_not_of(" \t\r") + 1);
  return text;
}

/// Emit a finding unless a NOLINT directive or the allowlist covers it.
void emit(const std::string& path, const Lexed& lx, int line,
          const std::string& rule, const std::string& message,
          const Options& options, Report& report) {
  for (const auto& [allowed_rule, substring] : options.allow) {
    if ((allowed_rule == "*" || allowed_rule == rule) &&
        path.find(substring) != std::string::npos) {
      return;
    }
  }
  if (lx.nolint.all_lines.count(line) != 0) {
    ++report.suppressed;
    return;
  }
  const auto it = lx.nolint.rules.find(line);
  if (it != lx.nolint.rules.end() && it->second.count(rule) != 0) {
    ++report.suppressed;
    return;
  }
  report.findings.push_back({path, line, rule, message, trimmed_line(lx, line)});
}

void json_escape(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "reprolint-rand",
      "reprolint-random-device",
      "reprolint-wall-clock",
      "reprolint-unseeded-rng",
      "reprolint-nonportable-random",
      "reprolint-unordered-iteration",
      "reprolint-nondet-reduction",
      "reprolint-raw-thread"};
  return names;
}

Options default_options() {
  Options options;
  // Wall-clock reads that never feed experiment results: log-line
  // timestamps, socket timeout plumbing, benchmark timers, test deadlines.
  options.allow.emplace_back("reprolint-wall-clock", "src/common/log.");
  options.allow.emplace_back("reprolint-wall-clock", "src/common/socket.");
  options.allow.emplace_back("reprolint-wall-clock", "bench/micro/");
  options.allow.emplace_back("reprolint-wall-clock", "tests/");
  // The service layer is liveness plumbing, not measurement: request
  // deadlines, idle-connection reaping, retry backoff, heartbeat pacing,
  // session idle-eviction, tunelb's shard health probes / probe-failure
  // thresholds, and the WAL shipper's RPC deadlines all read the monotonic
  // clock by design. No timestamp ever reaches a tuning result — search
  // and evaluation stay wall-clock-free, which the rest of the lint still
  // enforces.
  options.allow.emplace_back("reprolint-wall-clock", "src/service/");
  // The results store logs one load-time diagnostic (records/ms recovered
  // at startup). The elapsed time is printed and discarded: stored records,
  // eviction order and the store digest are pure functions of the append
  // stream, never of the clock.
  options.allow.emplace_back("reprolint-wall-clock", "src/store/");
  // loadgen measures the service itself (latency percentiles, failover
  // blackout): wall-clock reads and driver threads are its entire point,
  // and its output is BENCH_service.json, never a tuning result.
  options.allow.emplace_back("reprolint-wall-clock", "tools/loadgen/");
  options.allow.emplace_back("reprolint-raw-thread", "tools/loadgen/");
  // The pool implementation is the one sanctioned owner of raw threads;
  // tests spawn driver threads deliberately (race stress, loopback clients).
  options.allow.emplace_back("reprolint-raw-thread", "src/common/thread_pool.");
  options.allow.emplace_back("reprolint-raw-thread", "tests/");
  return options;
}

void collect_unordered_names(const std::string& content,
                             std::unordered_set<std::string>& names) {
  const Lexed lx = lex(content);
  const auto& t = lx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        unordered_container_names().count(t[i].text) == 0) {
      continue;
    }
    // Skip uses nested inside another template's argument list
    // (e.g. std::map<K, std::unordered_set<V>> is ordered at the top level).
    const std::size_t q = before_qualifier(t, i);
    if (q >= 1 && (t[q - 1].text == "<" || t[q - 1].text == ",")) continue;
    std::size_t j = skip_template_args(t, i + 1);
    while (is(t, j, "&") || is(t, j, "*") || is(t, j, "const")) ++j;
    if (is_ident(t, j)) names.insert(t[j].text);
  }
}

void lint_content(const std::string& path, const std::string& content,
                  const Options& options, Report& report) {
  ++report.files_scanned;
  const Lexed lx = lex(content);
  const auto& t = lx.tokens;

  // Local declarations join the cross-file set for the iteration rule.
  std::unordered_set<std::string> unordered = options.unordered_names;
  collect_unordered_names(content, unordered);

  // #pragma omp ... reduction(...) accumulates in thread order.
  for (std::size_t li = 0; li < lx.lines.size(); ++li) {
    const std::string& line = lx.lines[li];
    if (line.find("#pragma") != std::string::npos &&
        line.find("omp") != std::string::npos &&
        line.find("reduction") != std::string::npos) {
      emit(path, lx, static_cast<int>(li + 1), "reprolint-nondet-reduction",
           "OpenMP reduction accumulates in nondeterministic thread order",
           options, report);
    }
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& id = t[i].text;
    const int line = t[i].line;

    // --- reprolint-rand -----------------------------------------------------
    if (libc_rand_names().count(id) != 0 && is(t, i + 1, "(") &&
        !prev_is_member(t, i)) {
      emit(path, lx, line, "reprolint-rand",
           id + "() draws from hidden global state; use repro::Rng with a "
                "derived seed",
           options, report);
      continue;
    }

    // --- reprolint-random-device -------------------------------------------
    if (id == "random_device") {
      emit(path, lx, line, "reprolint-random-device",
           "std::random_device is nondeterministic; derive seeds with "
           "repro::seed_combine",
           options, report);
      continue;
    }

    // --- reprolint-wall-clock ----------------------------------------------
    if (clock_type_names().count(id) != 0 && is(t, i + 1, ":") &&
        is(t, i + 2, ":") && is(t, i + 3, "now")) {
      emit(path, lx, line, "reprolint-wall-clock",
           "std::chrono::" + id + "::now() outside the timing allowlist; "
           "results must not depend on wall time",
           options, report);
      continue;
    }
    if (clock_call_names().count(id) != 0 && is(t, i + 1, "(")) {
      emit(path, lx, line, "reprolint-wall-clock",
           id + "() reads the wall clock; results must not depend on wall time",
           options, report);
      continue;
    }
    if ((id == "time" || id == "clock") && is(t, i + 1, "(") &&
        prev_is_scope(t, i)) {
      emit(path, lx, line, "reprolint-wall-clock",
           "std::" + id + "() reads the wall clock; results must not depend "
           "on wall time",
           options, report);
      continue;
    }

    // --- reprolint-unseeded-rng --------------------------------------------
    if (engine_names().count(id) != 0) {
      bool unseeded = false;
      if (is(t, i + 1, "(") && is(t, i + 2, ")")) unseeded = true;
      if (is(t, i + 1, "{") && is(t, i + 2, "}")) unseeded = true;
      if (is_ident(t, i + 1)) {
        if (is(t, i + 2, ";") || (is(t, i + 2, "{") && is(t, i + 3, "}")) ||
            (is(t, i + 2, "(") && is(t, i + 3, ")"))) {
          unseeded = true;
        }
      }
      if (unseeded) {
        emit(path, lx, line, "reprolint-unseeded-rng",
             "std::" + id + " constructed without an explicit seed",
             options, report);
        continue;
      }
      // Seeded <random> engines still produce implementation-portable bits,
      // but their *distributions* do not — caught below when one is named.
    }

    // --- reprolint-nonportable-random --------------------------------------
    if ((id == "shuffle" || id == "random_shuffle") && prev_is_scope(t, i)) {
      emit(path, lx, line, "reprolint-nonportable-random",
           "std::" + id + " permutation order is implementation-defined; use "
           "repro::Rng::shuffle",
           options, report);
      continue;
    }
    if (distribution_names().count(id) != 0) {
      emit(path, lx, line, "reprolint-nonportable-random",
           "std::" + id + " streams differ across standard libraries; use "
           "repro::Rng distributions",
           options, report);
      continue;
    }

    // --- reprolint-unordered-iteration -------------------------------------
    if (id == "for" && is(t, i + 1, "(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && t[j].text == ":" && colon == 0 &&
            !is(t, j + 1, ":") && !is(t, j - 1, ":")) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (t[j].kind != TokKind::kIdent) continue;
          const bool direct =
              unordered_container_names().count(t[j].text) != 0;
          if (direct || unordered.count(t[j].text) != 0) {
            emit(path, lx, t[i].line, "reprolint-unordered-iteration",
                 "range-for over unordered container '" + t[j].text +
                     "'; iteration order is unspecified and must not feed "
                     "results/CSV/protocol output",
                 options, report);
            break;
          }
        }
      }
    }

    // --- reprolint-nondet-reduction ----------------------------------------
    if (id == "atomic" && is(t, i + 1, "<")) {
      std::size_t j = i + 2;
      if (is(t, j, "std")) j += 3;  // std :: type
      const bool floaty = is(t, j, "float") || is(t, j, "double") ||
                          (is(t, j, "long") && is(t, j + 1, "double"));
      if (floaty) {
        emit(path, lx, line, "reprolint-nondet-reduction",
             "std::atomic floating-point accumulation commits in "
             "nondeterministic order; reduce over an indexed buffer instead",
             options, report);
        continue;
      }
    }
    if ((id == "reduce" || id == "transform_reduce") && prev_is_scope(t, i)) {
      emit(path, lx, line, "reprolint-nondet-reduction",
           "std::" + id + " may reassociate floating-point terms; use an "
           "ordered accumulation",
           options, report);
      continue;
    }
    if (simd_reduce_names().count(id) != 0 && is(t, i + 1, "(")) {
      emit(path, lx, line, "reprolint-nondet-reduction",
           id + " combines SIMD lanes in hardware order; use the ordered "
           "fixed-blocking kernels in common/simd.hpp or justify with NOLINT",
           options, report);
      continue;
    }
    if ((id == "par" || id == "par_unseq" || id == "unseq") &&
        prev_is_scope(t, i) && i >= 3 && t[i - 3].text == "execution") {
      emit(path, lx, line, "reprolint-nondet-reduction",
           "parallel execution policy reorders reductions nondeterministically",
           options, report);
      continue;
    }

    // --- reprolint-raw-thread ----------------------------------------------
    if ((id == "thread" || id == "jthread") && prev_is_scope(t, i) &&
        !is(t, i + 1, ":")) {  // std::thread::hardware_concurrency is a query
      emit(path, lx, line, "reprolint-raw-thread",
           "raw std::" + id + " bypasses repro::ThreadPool (unbounded "
           "parallelism, no nesting guard)",
           options, report);
      continue;
    }
    if (id == "async" && prev_is_scope(t, i) && is(t, i + 1, "(")) {
      emit(path, lx, line, "reprolint-raw-thread",
           "std::async spawns unmanaged threads; submit to repro::ThreadPool",
           options, report);
      continue;
    }
    if (id == "pthread_create") {
      emit(path, lx, line, "reprolint-raw-thread",
           "pthread_create bypasses repro::ThreadPool",
           options, report);
      continue;
    }
  }
}

bool lint_file(const std::string& path, const Options& options, Report& report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  lint_content(path, buffer.str(), options, report);
  return true;
}

std::string to_json(const Report& report) {
  std::string out = "{\n";
  out += "  \"tool\": \"reprolint\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"files_scanned\": " + std::to_string(report.files_scanned) + ",\n";
  out += "  \"suppressed\": " + std::to_string(report.suppressed) + ",\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"";
    json_escape(out, f.file);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"";
    json_escape(out, f.rule);
    out += "\", \"message\": \"";
    json_escape(out, f.message);
    out += "\", \"snippet\": \"";
    json_escape(out, f.snippet);
    out += "\"}";
  }
  out += report.findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace reprolint
