// Wilcoxon signed-rank, Spearman's rho and Holm-Bonferroni correction.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "stats/paired.hpp"

namespace repro::stats {
namespace {

TEST(Wilcoxon, ValidatesInput) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW((void)wilcoxon_signed_rank(a, b), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW((void)wilcoxon_signed_rank(empty, empty), std::invalid_argument);
}

TEST(Wilcoxon, IdenticalPairsGiveNoEvidence) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const auto result = wilcoxon_signed_rank(a, a);
  EXPECT_EQ(result.n_effective, 0u);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(Wilcoxon, WStatisticHandComputed) {
  // Differences: +1, -2, +3, +4, +5 -> |d| ranks 1..5, negative sum = 2.
  const std::vector<double> a = {2.0, 1.0, 6.0, 8.0, 10.0};
  const std::vector<double> b = {1.0, 3.0, 3.0, 4.0, 5.0};
  const auto result = wilcoxon_signed_rank(a, b);
  EXPECT_EQ(result.n_effective, 5u);
  EXPECT_DOUBLE_EQ(result.w, 2.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);  // n < 6: significance unattainable
}

TEST(Wilcoxon, DetectsConsistentShift) {
  repro::Rng rng(1);
  std::vector<double> a(40), b(40);
  for (std::size_t i = 0; i < 40; ++i) {
    a[i] = rng.normal(0.0, 1.0);
    b[i] = a[i] + 0.8 + 0.2 * rng.normal();  // paired shift
  }
  const auto result = wilcoxon_signed_rank(a, b);
  EXPECT_LT(result.p_value, 1e-4);
}

TEST(Wilcoxon, NoShiftIsNotSignificant) {
  repro::Rng rng(2);
  std::vector<double> a(40), b(40);
  for (std::size_t i = 0; i < 40; ++i) {
    a[i] = rng.normal(0.0, 1.0);
    b[i] = a[i] + 0.5 * rng.normal();  // symmetric differences
  }
  EXPECT_GT(wilcoxon_signed_rank(a, b).p_value, 0.01);
}

TEST(Spearman, PerfectMonotoneRelations) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up = {10.0, 20.0, 25.0, 100.0};  // nonlinear, monotone
  std::vector<double> down = up;
  std::reverse(down.begin(), down.end());
  EXPECT_DOUBLE_EQ(spearman_rho(x, up), 1.0);
  EXPECT_DOUBLE_EQ(spearman_rho(x, down), -1.0);
}

TEST(Spearman, UncorrelatedNearZero) {
  repro::Rng rng(3);
  std::vector<double> a(500), b(500);
  for (std::size_t i = 0; i < 500; ++i) {
    a[i] = rng.uniform();
    b[i] = rng.uniform();
  }
  EXPECT_NEAR(spearman_rho(a, b), 0.0, 0.1);
}

TEST(Spearman, ConstantInputIsZero) {
  const std::vector<double> constant = {5.0, 5.0, 5.0};
  const std::vector<double> varying = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(spearman_rho(constant, varying), 0.0);
}

TEST(Spearman, ValidatesInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW((void)spearman_rho(one, one), std::invalid_argument);
}

TEST(Spearman, LowFidelityProxyRankCorrelates) {
  // The multi-fidelity premise: a noisy monotone transform of the truth
  // still rank-correlates strongly.
  repro::Rng rng(4);
  std::vector<double> truth(100), proxy(100);
  for (std::size_t i = 0; i < 100; ++i) {
    truth[i] = rng.uniform(1.0, 100.0);
    proxy[i] = truth[i] * rng.lognormal(0.0, 0.1);
  }
  EXPECT_GT(spearman_rho(truth, proxy), 0.9);
}

TEST(HolmBonferroni, KnownExample) {
  // Classic textbook case: p = {0.01, 0.04, 0.03, 0.005} with m = 4.
  const std::vector<double> p = {0.01, 0.04, 0.03, 0.005};
  const auto adjusted = holm_bonferroni(p);
  EXPECT_NEAR(adjusted[3], 0.02, 1e-12);   // 0.005 * 4
  EXPECT_NEAR(adjusted[0], 0.03, 1e-12);   // 0.01 * 3
  EXPECT_NEAR(adjusted[2], 0.06, 1e-12);   // 0.03 * 2
  EXPECT_NEAR(adjusted[1], 0.06, 1e-12);   // max(0.04 * 1, running max)
}

TEST(HolmBonferroni, MonotoneAndClamped) {
  const std::vector<double> p = {0.5, 0.9, 0.001};
  const auto adjusted = holm_bonferroni(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(adjusted[i], p[i]);
    EXPECT_LE(adjusted[i], 1.0);
  }
}

TEST(HolmBonferroni, EmptyAndSingle) {
  EXPECT_TRUE(holm_bonferroni(std::vector<double>{}).empty());
  const auto single = holm_bonferroni(std::vector<double>{0.03});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 0.03);
}

TEST(HolmBonferroni, MorePowerfulThanPlainBonferroni) {
  // Holm adjusts the k-th smallest by (m - k), never more than m.
  const std::vector<double> p = {0.01, 0.011, 0.012, 0.013};
  const auto adjusted = holm_bonferroni(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_LE(adjusted[i], p[i] * static_cast<double>(p.size()) + 1e-12);
  }
}

}  // namespace
}  // namespace repro::stats
