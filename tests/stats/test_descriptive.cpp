// Descriptive statistics: known values, edge cases, and properties of the
// normal CDF/quantile pair and tie-aware ranking.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"

namespace repro::stats {
namespace {

TEST(Descriptive, MeanVarianceKnown) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyInputs) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(mean(empty)));
  EXPECT_TRUE(std::isnan(median(empty)));
  EXPECT_TRUE(std::isnan(min(empty)));
  EXPECT_TRUE(std::isnan(max(empty)));
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
}

TEST(Descriptive, SingleValue) {
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(mean(one), 3.0);
  EXPECT_DOUBLE_EQ(median(one), 3.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Quantile, Type7Interpolation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_NEAR(quantile(xs, 0.25), 1.75, 1e-12);  // numpy default
}

TEST(Quantile, RejectsOutOfRange) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, 1.1), std::invalid_argument);
}

TEST(Quantile, DoesNotMutateInput) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  (void)quantile(xs, 0.5);
  EXPECT_DOUBLE_EQ(xs[0], 3.0);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501, 1e-6);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.01), -2.326347874, 1e-6);
}

TEST(NormalQuantile, ExtremesAndErrors) {
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_THROW((void)normal_quantile(-0.5), std::invalid_argument);
}

/// Property: quantile(cdf(z)) ~ z over a range of z.
class NormalRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalRoundTrip, InverseConsistency) {
  const double z = GetParam();
  EXPECT_NEAR(normal_quantile(normal_cdf(z)), z, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(ZValues, NormalRoundTrip,
                         ::testing::Values(-3.0, -1.5, -0.5, 0.0, 0.7, 1.96, 2.8));

TEST(Ranks, NoTiesAreOneToN) {
  const std::vector<double> xs = {30.0, 10.0, 20.0};
  const auto ranks = ranks_with_ties(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(Ranks, TiesGetAverageRank) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  const auto ranks = ranks_with_ties(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Ranks, AllEqual) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  for (double r : ranks_with_ties(xs)) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(Ranks, SumIsInvariant) {
  // Property: rank sum is always n(n+1)/2 regardless of ties.
  repro::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs(50);
    for (auto& x : xs) x = static_cast<double>(rng.uniform_int(0, 9));
    const auto ranks = ranks_with_ties(xs);
    double sum = 0.0;
    for (double r : ranks) sum += r;
    EXPECT_NEAR(sum, 50.0 * 51.0 / 2.0, 1e-9);
  }
}

TEST(MeanCi, ContainsMeanAndShrinks) {
  repro::Rng rng(7);
  std::vector<double> small_sample, big_sample;
  for (int i = 0; i < 10; ++i) small_sample.push_back(rng.normal(10.0, 2.0));
  for (int i = 0; i < 1000; ++i) big_sample.push_back(rng.normal(10.0, 2.0));
  const Interval small_ci = mean_confidence_interval(small_sample);
  const Interval big_ci = mean_confidence_interval(big_sample);
  EXPECT_LT(small_ci.lo, mean(small_sample));
  EXPECT_GT(small_ci.hi, mean(small_sample));
  EXPECT_LT(big_ci.hi - big_ci.lo, small_ci.hi - small_ci.lo);
}

TEST(MeanCi, SinglePointDegenerate) {
  const std::vector<double> one = {4.0};
  const Interval ci = mean_confidence_interval(one);
  EXPECT_DOUBLE_EQ(ci.lo, 4.0);
  EXPECT_DOUBLE_EQ(ci.hi, 4.0);
}

TEST(MedianCi, BracketsMedian) {
  repro::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(5.0, 1.0));
  const Interval ci = median_confidence_interval(xs);
  const double m = median(xs);
  EXPECT_LE(ci.lo, m);
  EXPECT_GE(ci.hi, m);
  EXPECT_LT(ci.hi - ci.lo, 1.0);
}

}  // namespace
}  // namespace repro::stats
