// Kruskal-Wallis, Friedman and the chi-squared machinery behind them.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/nonparametric.hpp"

namespace repro::stats {
namespace {

TEST(ChiSquared, ClosedFormForTwoDof) {
  // With 2 dof, sf(x) = exp(-x/2) exactly.
  for (double x : {0.0, 1.0, 3.6, 8.0, 20.0}) {
    EXPECT_NEAR(chi_squared_sf(x, 2), std::exp(-x / 2.0), 1e-12);
  }
}

TEST(ChiSquared, KnownCriticalValues) {
  // Standard table: P(X >= 3.841 | 1 dof) = 0.05, P(X >= 11.345 | 3) = 0.01.
  EXPECT_NEAR(chi_squared_sf(3.841, 1), 0.05, 1e-3);
  EXPECT_NEAR(chi_squared_sf(11.345, 3), 0.01, 1e-3);
  EXPECT_NEAR(chi_squared_sf(0.0, 4), 1.0, 1e-12);
}

TEST(ChiSquared, RejectsBadArguments) {
  EXPECT_THROW((void)chi_squared_sf(-1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)chi_squared_sf(1.0, 0), std::invalid_argument);
}

TEST(RegularizedGammaQ, BoundsAndMonotonicity) {
  double previous = 1.0;
  for (double x = 0.0; x <= 20.0; x += 0.5) {
    const double q = regularized_gamma_q(2.5, x);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, previous + 1e-12);
    previous = q;
  }
}

TEST(KruskalWallis, HandComputedNoTies) {
  // Groups {1,2,3},{4,5,6},{7,8,9}: H = 7.2, p = exp(-3.6).
  const std::vector<std::vector<double>> groups = {
      {1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const auto result = kruskal_wallis(groups);
  EXPECT_NEAR(result.h, 7.2, 1e-12);
  EXPECT_EQ(result.dof, 2u);
  EXPECT_NEAR(result.p_value, std::exp(-3.6), 1e-10);
}

TEST(KruskalWallis, IdenticalGroupsNotSignificant) {
  const std::vector<std::vector<double>> groups = {
      {1.0, 2.0, 3.0, 4.0}, {1.0, 2.0, 3.0, 4.0}, {1.0, 2.0, 3.0, 4.0}};
  const auto result = kruskal_wallis(groups);
  EXPECT_GT(result.p_value, 0.9);
}

TEST(KruskalWallis, DetectsShiftedGroup) {
  repro::Rng rng(1);
  std::vector<std::vector<double>> groups(3);
  for (int i = 0; i < 40; ++i) {
    groups[0].push_back(rng.normal(0.0, 1.0));
    groups[1].push_back(rng.normal(0.0, 1.0));
    groups[2].push_back(rng.normal(1.5, 1.0));
  }
  EXPECT_LT(kruskal_wallis(groups).p_value, 1e-4);
}

TEST(KruskalWallis, ValidatesInput) {
  std::vector<std::vector<double>> one_group = {{1.0, 2.0}};
  EXPECT_THROW((void)kruskal_wallis(one_group), std::invalid_argument);
  std::vector<std::vector<double>> with_empty = {{1.0}, {}};
  EXPECT_THROW((void)kruskal_wallis(with_empty), std::invalid_argument);
}

TEST(Friedman, HandComputedConsistentRanking) {
  // 4 blocks, 3 treatments, identical ordering: chi2 = 8, p = exp(-4).
  const std::vector<std::vector<double>> blocks = {
      {1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}, {0.1, 0.2, 0.3}, {5.0, 6.0, 7.0}};
  const auto result = friedman(blocks);
  EXPECT_NEAR(result.chi2, 8.0, 1e-12);
  EXPECT_EQ(result.dof, 2u);
  EXPECT_NEAR(result.p_value, std::exp(-4.0), 1e-10);
  ASSERT_EQ(result.mean_ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(result.mean_ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(result.mean_ranks[2], 3.0);
}

TEST(Friedman, RandomRankingsNotSignificant) {
  repro::Rng rng(2);
  std::vector<std::vector<double>> blocks(20, std::vector<double>(4));
  for (auto& block : blocks) {
    for (auto& value : block) value = rng.uniform();
  }
  EXPECT_GT(friedman(blocks).p_value, 0.01);
}

TEST(Friedman, TiesAreHandled) {
  const std::vector<std::vector<double>> blocks = {
      {1.0, 1.0, 2.0}, {3.0, 3.0, 4.0}, {1.0, 2.0, 2.0}};
  const auto result = friedman(blocks);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

TEST(Friedman, ValidatesInput) {
  std::vector<std::vector<double>> one_block = {{1.0, 2.0}};
  EXPECT_THROW((void)friedman(one_block), std::invalid_argument);
  std::vector<std::vector<double>> ragged = {{1.0, 2.0}, {1.0, 2.0, 3.0}};
  EXPECT_THROW((void)friedman(ragged), std::invalid_argument);
}

}  // namespace
}  // namespace repro::stats
