// Mann-Whitney U tests: exact small-sample values verified against
// scipy.stats.mannwhitneyu, plus distributional properties of the
// approximate path the study actually exercises.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "stats/mann_whitney.hpp"

namespace repro::stats {
namespace {

TEST(MannWhitney, RejectsEmptySamples) {
  const std::vector<double> a = {1.0};
  const std::vector<double> empty;
  EXPECT_THROW((void)mann_whitney_u(a, empty), std::invalid_argument);
  EXPECT_THROW((void)mann_whitney_u(empty, a), std::invalid_argument);
}

TEST(MannWhitney, UStatisticsSumToProduct) {
  const std::vector<double> a = {1.0, 5.0, 9.0};
  const std::vector<double> b = {2.0, 3.0, 7.0, 8.0};
  const auto result = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(result.u_a + result.u_b, 12.0);
}

TEST(MannWhitney, ExactSeparatedSamples) {
  // scipy: mannwhitneyu([1,2,3],[4,5,6], method="exact") -> U=0, p=0.1
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  const auto result = mann_whitney_u(a, b);
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.u_a, 0.0);
  EXPECT_NEAR(result.p_value, 0.1, 1e-12);
}

TEST(MannWhitney, ExactOneSided) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  // H1: a stochastically less than b -> strongest evidence, p = 1/20.
  const auto less = mann_whitney_u(a, b, Alternative::kLess);
  EXPECT_NEAR(less.p_value, 0.05, 1e-12);
  const auto greater = mann_whitney_u(a, b, Alternative::kGreater);
  EXPECT_NEAR(greater.p_value, 1.0, 1e-12);
}

TEST(MannWhitney, ExactInterleaved) {
  // scipy: mannwhitneyu([1,3,5],[2,4,6], method="exact") -> U=3, p=0.7
  const std::vector<double> a = {1.0, 3.0, 5.0};
  const std::vector<double> b = {2.0, 4.0, 6.0};
  const auto result = mann_whitney_u(a, b);
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.u_a, 3.0);
  EXPECT_NEAR(result.p_value, 0.7, 1e-12);
}

TEST(MannWhitney, SymmetricUnderSwap) {
  const std::vector<double> a = {1.0, 4.0, 6.0, 9.0};
  const std::vector<double> b = {2.0, 3.0, 8.0};
  const auto ab = mann_whitney_u(a, b);
  const auto ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_DOUBLE_EQ(ab.u_a, ba.u_b);
}

TEST(MannWhitney, TiesForceApproximatePath) {
  const std::vector<double> a = {1.0, 2.0, 2.0};
  const std::vector<double> b = {2.0, 3.0, 4.0};
  const auto result = mann_whitney_u(a, b);
  EXPECT_FALSE(result.exact);
  EXPECT_GT(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

TEST(MannWhitney, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {5.0, 5.0, 5.0, 5.0};
  const auto result = mann_whitney_u(a, a);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(MannWhitney, LargeShiftedSamplesSignificant) {
  repro::Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(1.0, 1.0));
  }
  EXPECT_LT(mann_whitney_u(a, b).p_value, 0.001);
  EXPECT_TRUE(significantly_different(a, b, 0.01));
}

TEST(MannWhitney, LargeIdenticalDistributionsRarelySignificant) {
  repro::Rng rng(5);
  int significant = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 60; ++i) {
      a.push_back(rng.normal(0.0, 1.0));
      b.push_back(rng.normal(0.0, 1.0));
    }
    significant += significantly_different(a, b, 0.01);
  }
  // At alpha=0.01, expect ~0.5 false positives in 50 trials.
  EXPECT_LE(significant, 3);
}

TEST(MannWhitney, ExactAndApproxAgreeWithoutTies) {
  // Property: on tie-free data where both paths are defined, the normal
  // approximation should be close to the exact p-value.
  repro::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 12; ++i) a.push_back(rng.uniform(0.0, 1.0));
    for (int i = 0; i < 15; ++i) b.push_back(rng.uniform(0.2, 1.2));
    const auto exact = mann_whitney_u(a, b);
    ASSERT_TRUE(exact.exact);
    // Force the approximate path by appending one tie pair to copies.
    std::vector<double> a2 = a, b2 = b;
    a2.push_back(5.0);
    b2.push_back(5.0);
    const auto approx = mann_whitney_u(a2, b2);
    ASSERT_FALSE(approx.exact);
    EXPECT_NEAR(exact.p_value, approx.p_value, 0.12);
  }
}

/// Property sweep: p-values are valid probabilities for all alternatives
/// across a range of sample-size combinations.
class MwuShapeProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MwuShapeProperty, PValuesInRange) {
  const auto [n1, n2] = GetParam();
  repro::Rng rng(repro::seed_combine(11, n1 * 100 + n2));
  std::vector<double> a(n1), b(n2);
  for (auto& x : a) x = rng.normal(0.0, 1.0);
  for (auto& x : b) x = rng.normal(0.3, 1.5);
  for (auto alt : {Alternative::kTwoSided, Alternative::kLess, Alternative::kGreater}) {
    const auto result = mann_whitney_u(a, b, alt);
    EXPECT_GE(result.p_value, 0.0);
    EXPECT_LE(result.p_value, 1.0);
    EXPECT_GE(result.u_a, 0.0);
    EXPECT_LE(result.u_a, static_cast<double>(n1 * n2));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MwuShapeProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 9},
                      std::pair<std::size_t, std::size_t>{5, 5},
                      std::pair<std::size_t, std::size_t>{20, 20},
                      std::pair<std::size_t, std::size_t>{50, 8},
                      std::pair<std::size_t, std::size_t>{100, 100}));

}  // namespace
}  // namespace repro::stats
