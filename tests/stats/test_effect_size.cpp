// CLES / Vargha-Delaney A tests: the paper's Eq. 1 including tie handling.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "stats/effect_size.hpp"

namespace repro::stats {
namespace {

TEST(Cles, RejectsEmpty) {
  const std::vector<double> a = {1.0};
  const std::vector<double> empty;
  EXPECT_THROW((void)cles_greater(a, empty), std::invalid_argument);
}

TEST(Cles, FullySeparated) {
  const std::vector<double> low = {1.0, 2.0};
  const std::vector<double> high = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(cles_greater(high, low), 1.0);
  EXPECT_DOUBLE_EQ(cles_greater(low, high), 0.0);
}

TEST(Cles, IdenticalSamplesGiveHalf) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(cles_greater(xs, xs), 0.5);
}

TEST(Cles, TiesCountHalf) {
  // Pairs: (1,1): tie -> 0.5; by Eq. 1, A = 0.5.
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0};
  EXPECT_DOUBLE_EQ(cles_greater(a, b), 0.5);
}

TEST(Cles, HandComputedMixedCase) {
  // a={1,3}, b={2}: pairs (1>2)? 0, (3>2)? 1 -> A = 0.5.
  EXPECT_DOUBLE_EQ(cles_greater(std::vector<double>{1.0, 3.0},
                                std::vector<double>{2.0}),
                   0.5);
  // a={2,3}, b={1,2}: pairs 2>1=1, 2=2 -> .5, 3>1=1, 3>2=1 => 3.5/4.
  EXPECT_DOUBLE_EQ(cles_greater(std::vector<double>{2.0, 3.0},
                                std::vector<double>{1.0, 2.0}),
                   0.875);
}

TEST(Cles, ComplementProperty) {
  // Property: A(a,b) + A(b,a) = 1 for any samples.
  repro::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(17), b(23);
    for (auto& x : a) x = static_cast<double>(rng.uniform_int(0, 5));
    for (auto& x : b) x = static_cast<double>(rng.uniform_int(0, 5));
    EXPECT_NEAR(cles_greater(a, b) + cles_greater(b, a), 1.0, 1e-12);
  }
}

TEST(Cles, MatchesBruteForcePairCount) {
  // Property: the rank-based formula equals the direct O(n*m) definition.
  repro::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a(30), b(40);
    for (auto& x : a) x = static_cast<double>(rng.uniform_int(0, 8));
    for (auto& x : b) x = static_cast<double>(rng.uniform_int(0, 8));
    double brute = 0.0;
    for (double va : a) {
      for (double vb : b) brute += (va > vb) ? 1.0 : (va == vb ? 0.5 : 0.0);
    }
    brute /= static_cast<double>(a.size() * b.size());
    EXPECT_NEAR(cles_greater(a, b), brute, 1e-12);
  }
}

TEST(Cles, LessIsMirror) {
  const std::vector<double> fast = {1.0, 1.2};
  const std::vector<double> slow = {2.0, 2.2};
  EXPECT_DOUBLE_EQ(cles_less(fast, slow), 1.0);  // fast beats slow always
}

TEST(VarghaDelaney, MagnitudeLabels) {
  EXPECT_STREQ(vargha_delaney_magnitude(0.5), "negligible");
  EXPECT_STREQ(vargha_delaney_magnitude(0.58), "small");
  EXPECT_STREQ(vargha_delaney_magnitude(0.42), "small");  // symmetric
  EXPECT_STREQ(vargha_delaney_magnitude(0.67), "medium");
  EXPECT_STREQ(vargha_delaney_magnitude(0.95), "large");
}

}  // namespace
}  // namespace repro::stats
