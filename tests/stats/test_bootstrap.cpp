// Bootstrap confidence intervals and the two-sample mean-difference test.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "stats/bootstrap.hpp"

namespace repro::stats {
namespace {

TEST(Bootstrap, RejectsEmptySample) {
  repro::Rng rng(1);
  const std::vector<double> empty;
  EXPECT_THROW((void)bootstrap_confidence_interval(
                   empty, [](std::span<const double> xs) { return mean(xs); }, rng),
               std::invalid_argument);
}

TEST(Bootstrap, MeanCiCoversTrueMean) {
  repro::Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(10.0, 2.0));
  const Interval ci = bootstrap_confidence_interval(
      xs, [](std::span<const double> s) { return mean(s); }, rng, 1000);
  EXPECT_LT(ci.lo, 10.3);
  EXPECT_GT(ci.hi, 9.7);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(Bootstrap, MedianCiWorks) {
  repro::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 150; ++i) xs.push_back(rng.lognormal(0.0, 0.5));
  const Interval ci = bootstrap_confidence_interval(
      xs, [](std::span<const double> s) { return median(s); }, rng, 1000);
  EXPECT_GT(ci.lo, 0.5);
  EXPECT_LT(ci.hi, 2.0);
}

TEST(Bootstrap, TwoSampleDetectsDifference) {
  repro::Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 80; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(1.5, 1.0));
  }
  EXPECT_LT(bootstrap_mean_difference_p(a, b, rng, 500), 0.02);
}

TEST(Bootstrap, TwoSampleSameDistributionLargeP) {
  repro::Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 80; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(0.0, 1.0));
  }
  EXPECT_GT(bootstrap_mean_difference_p(a, b, rng, 500), 0.05);
}

TEST(Bootstrap, PValueNeverExactlyZero) {
  repro::Rng rng(6);
  const std::vector<double> a = {0.0, 0.1, 0.2};
  const std::vector<double> b = {100.0, 100.1, 100.2};
  const double p = bootstrap_mean_difference_p(a, b, rng, 200);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.05);
}

}  // namespace
}  // namespace repro::stats
