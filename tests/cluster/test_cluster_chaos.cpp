// Topology-level chaos against the real binaries: a sharded cluster
// (tuned primaries + hot standbys + tunelb) must survive whole-process
// faults — SIGKILL of a primary mid-campaign (headline: the full remote
// study stays byte-identical across the failover), a SIGSTOPped (slow /
// partitioned) shard being probed down and recovering on SIGCONT, and
// client-side endpoint-list failover.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "tests/cluster/cluster_test_util.hpp"

#ifndef REPRO_TUNED_BIN
#error "REPRO_TUNED_BIN must point at the tuned executable"
#endif
#ifndef REPRO_TUNE_CLIENT_BIN
#error "REPRO_TUNE_CLIENT_BIN must point at the tune_client executable"
#endif
#ifndef REPRO_TUNELB_BIN
#error "REPRO_TUNELB_BIN must point at the tunelb executable"
#endif

namespace repro::service {
namespace {

using cluster_test::Proc;
using cluster_test::fresh_dir;
using cluster_test::read_file;
using cluster_test::resilient_config;
using cluster_test::run;
using cluster_test::spawn;

/// Wait until the router reports `health` for shard `index` (poll via the
/// aggregated status op). Returns false on timeout.
bool wait_for_health(std::uint16_t router_port, std::size_t index,
                     const std::string& health,
                     std::chrono::milliseconds budget) {
  // Poll deadline bookkeeping; never feeds tuning results.
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      Client client(resilient_config(router_port));
      const Json status = client.status();
      const auto& shards = status.find("shards")->as_array();
      if (index < shards.size() &&
          shards[index].find("health")->as_string() == health)
        return true;
    } catch (const std::exception&) {
      // router busy/unreachable this instant; keep polling
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

// The headline drill. Baseline: the full five-algorithm remote study
// against a plain single daemon. Chaos run: the same study through
// tunelb -> (primary shipping to hot standby); the primary is SIGKILL'd
// mid-campaign and never restarted, the router promotes the standby, and
// the campaign CSV must still come out byte-identical — acknowledged
// tells survive the murder of the process that acknowledged them.
TEST(ClusterChaos, FullRemoteStudyByteIdenticalAcrossMidCampaignShardKill) {
  const std::string dir = fresh_dir();
  const std::vector<std::string> study = {
      REPRO_TUNE_CLIENT_BIN, "--benchmark", "mandelbrot", "--arch", "rtxtitan",
      "--budget",            "12",          "--seed",     "2022",   "--retries",
      "10"};

  // Uninterrupted baseline on a plain daemon.
  {
    Proc daemon({REPRO_TUNED_BIN, "--port", "0", "--state-dir", dir + "/plain"},
                dir + "/plain.log");
    ASSERT_NE(daemon.port, 0);
    std::vector<std::string> argv = study;
    argv.insert(argv.end(), {"--port", std::to_string(daemon.port), "--save-csv",
                             dir + "/full.csv"});
    ASSERT_EQ(run(argv, dir + "/full.out"), 0) << read_file(dir + "/full.out");
  }

  // One shard: primary ships its WAL to a hot standby; tunelb fronts it.
  Proc standby({REPRO_TUNED_BIN, "--port", "0", "--standby", "--state-dir",
                dir + "/standby"},
               dir + "/standby.log");
  ASSERT_NE(standby.port, 0);
  Proc primary({REPRO_TUNED_BIN, "--port", "0", "--state-dir", dir + "/primary",
                "--ship-to", std::to_string(standby.port)},
               dir + "/primary.log");
  ASSERT_NE(primary.port, 0);
  Proc router({REPRO_TUNELB_BIN, "--port", "0", "--shards",
               std::to_string(primary.port) + "/" + std::to_string(standby.port),
               "--probe-interval-ms", "200", "--probe-timeout-ms", "500"},
              dir + "/router.log");
  ASSERT_NE(router.port, 0);

  std::vector<std::string> argv = study;
  argv.insert(argv.end(), {"--port", std::to_string(router.port), "--save-csv",
                           dir + "/part.csv"});
  const pid_t campaign = spawn(argv, dir + "/part.out");
  ASSERT_GT(campaign, 0);

  // Mid-campaign = a few tells applied out of the study's 60 (5 algorithms
  // x budget 12). The router's aggregated `tells` counter is the only
  // signal fine-grained enough: the whole synthetic study runs in about a
  // second, so polling the CSV races campaign completion.
  bool mid_campaign = false;
  {
    Client probe(resilient_config(router.port));
    for (int i = 0; i < 3000; ++i) {
      try {
        const Json status = probe.status();
        const Json* tells = status.find("tells");
        if (tells != nullptr && tells->is_number() && tells->as_uint64() >= 3) {
          mid_campaign = true;
          break;
        }
      } catch (const std::exception&) {
        // router briefly busy; keep polling
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(mid_campaign) << read_file(dir + "/part.out");
  primary.kill9();

  int status = 0;
  (void)::waitpid(campaign, &status, 0);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << read_file(dir + "/part.out");

  EXPECT_EQ(read_file(dir + "/part.csv"), read_file(dir + "/full.csv"))
      << "the study diverged across a mid-campaign shard kill";

  // The router must have failed the shard over exactly once, onto the
  // standby's endpoint.
  Client probe(resilient_config(router.port));
  const Json router_status = probe.status();
  const auto& shards = router_status.find("shards")->as_array();
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].find("promotions")->as_uint64(), 1u);
  EXPECT_EQ(shards[0].find("endpoint")->as_string(),
            "127.0.0.1:" + std::to_string(standby.port));
}

TEST(ClusterChaos, SlowShardIsProbedDownAndRecoversOnResume) {
  const std::string dir = fresh_dir();
  Proc shard0({REPRO_TUNED_BIN, "--port", "0"}, dir + "/shard0.log");
  Proc shard1({REPRO_TUNED_BIN, "--port", "0"}, dir + "/shard1.log");
  ASSERT_NE(shard0.port, 0);
  ASSERT_NE(shard1.port, 0);
  Proc router({REPRO_TUNELB_BIN, "--port", "0", "--shards",
               std::to_string(shard0.port) + "," + std::to_string(shard1.port),
               "--probe-interval-ms", "100", "--probe-timeout-ms", "300",
               "--probe-failures", "2"},
              dir + "/router.log");
  ASSERT_NE(router.port, 0);
  ASSERT_TRUE(wait_for_health(router.port, 1, "up", std::chrono::seconds(10)));

  // A SIGSTOPped shard keeps accepting TCP (the kernel does) but answers
  // nothing — the partition/slow-shard case only a bounded probe catches.
  shard1.signal(SIGSTOP);
  ASSERT_TRUE(wait_for_health(router.port, 1, "down", std::chrono::seconds(15)));

  // Placement skips the down shard: every new session lands on shard 0.
  Client client(resilient_config(router.port));
  for (int i = 0; i < 6; ++i) {
    const std::string id =
        client.open(cluster_test::tiny_open("rs", 4, 60 + i),
                    "slow#" + std::to_string(i));
    EXPECT_EQ(id.rfind("0:", 0), 0u) << "placed on a down shard: " << id;
    client.close_session(id);
  }

  shard1.signal(SIGCONT);
  EXPECT_TRUE(wait_for_health(router.port, 1, "up", std::chrono::seconds(15)));
}

TEST(ClusterChaos, EndpointListRidesOverADeadFirstEndpoint) {
  const std::string dir = fresh_dir();
  Proc daemon({REPRO_TUNED_BIN, "--port", "0"}, dir + "/tuned.log");
  ASSERT_NE(daemon.port, 0);
  // Port 1 is dead; the deterministic walk must settle on the live daemon.
  const int exit_code = run(
      {REPRO_TUNE_CLIENT_BIN, "--endpoints", "1," + std::to_string(daemon.port),
       "--benchmark", "mandelbrot", "--arch", "rtxtitan", "--algorithms", "rs",
       "--budget", "6", "--seed", "7", "--retries", "3"},
      dir + "/client.out");
  EXPECT_EQ(exit_code, 0) << read_file(dir + "/client.out");
}

}  // namespace
}  // namespace repro::service
