#pragma once
// Shared fixtures for the cluster suite: spawning real `tuned` / `tunelb`
// child processes (with ready-line port scraping), fresh state dirs, and
// the byte-identity comparator the failover tests are built around.
//
// Process helpers live here (not in service_test_util.hpp) because only
// the cluster and chaos suites are allowed to fork — the service suite
// stays in-process by design.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "tests/service/service_test_util.hpp"

namespace repro::cluster_test {

inline std::string fresh_dir() {
  char templ[] = "/tmp/repro_cluster_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir;
}

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Spawn a child with stdout+stderr redirected to `out_path`.
inline pid_t spawn(const std::vector<std::string>& argv,
                   const std::string& out_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    (void)::dup2(fd, STDOUT_FILENO);
    (void)::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& arg : argv) args.push_back(const_cast<char*>(arg.c_str()));
  args.push_back(nullptr);
  ::execv(args[0], args.data());
  ::_exit(127);
}

/// Run a child to completion; exit code, or -1 on abnormal exit.
inline int run(const std::vector<std::string>& argv, const std::string& out_path) {
  const pid_t pid = spawn(argv, out_path);
  if (pid <= 0) return -1;
  int status = 0;
  (void)::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// A daemon child (tuned or tunelb). Scrapes the machine-readable
/// "ready port=" line; SIGKILL on destruction unless already reaped.
struct Proc {
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::string out_path;

  Proc(const std::vector<std::string>& argv, const std::string& log_path)
      : out_path(log_path) {
    pid = spawn(argv, out_path);
    if (pid <= 0) return;
    for (int i = 0; i < 500 && port == 0; ++i) {
      const std::string text = read_file(out_path);
      const std::size_t at = text.find("ready port=");
      if (at != std::string::npos) {
        port = static_cast<std::uint16_t>(
            std::stoul(text.substr(at + std::strlen("ready port="))));
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_NE(port, 0) << argv[0]
                       << " did not become ready: " << read_file(out_path);
  }

  void kill9() {
    if (pid <= 0) return;
    (void)::kill(pid, SIGKILL);
    (void)::waitpid(pid, nullptr, 0);
    pid = -1;
  }

  void signal(int signo) const {
    if (pid > 0) (void)::kill(pid, signo);
  }

  ~Proc() { kill9(); }
};

inline service::OpenParams tiny_open(const std::string& algorithm,
                                     std::size_t budget, std::uint64_t seed) {
  service::OpenParams params;
  params.algorithm = algorithm;
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

inline service::ClientConfig resilient_config(std::uint16_t port) {
  service::ClientConfig config;
  config.port = port;
  config.name = "clustertest";
  config.max_retries = 20;
  config.backoff_initial_ms = 25;
  config.backoff_max_ms = 400;
  return config;
}

inline bool same_result(const tuner::TuneResult& a, const tuner::TuneResult& b) {
  return a.best_config == b.best_config && a.found_valid == b.found_valid &&
         a.evaluations_used == b.evaluations_used &&
         std::memcmp(&a.best_value, &b.best_value, sizeof(double)) == 0;
}

}  // namespace repro::cluster_test
