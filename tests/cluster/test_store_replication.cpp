// Results-store replication across the hot-standby pair: ship-applied tells
// populate the standby's own store record-for-record (the ack barrier runs
// through the follower's fsync), so after a failover the promoted shard
// holds the identical tenant history — and warm-starts future sessions
// exactly like the primary it replaced would have.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "service/server.hpp"
#include "store/results_store.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace repro::service {
namespace {

using cluster_test::fresh_dir;
using cluster_test::resilient_config;
using cluster_test::same_result;
using cluster_test::tiny_open;
using service_test::synth_eval;

constexpr std::uint64_t kSalt = 17;

OpenParams tenant_open(const std::string& algorithm, std::size_t budget,
                       std::uint64_t seed, bool warm = false) {
  OpenParams params = tiny_open(algorithm, budget, seed);
  params.benchmark = "conv";
  params.arch = "simcard";
  params.warm_start = warm;
  return params;
}

/// ReplicatedPair with a results store on both sides.
struct StoredPair {
  std::string dir = fresh_dir();
  std::unique_ptr<TuneServer> standby;
  std::unique_ptr<TuneServer> primary;

  StoredPair() {
    ServerConfig standby_config;
    standby_config.standby = true;
    standby_config.limits.state_dir = dir + "/standby";
    standby_config.store_dir = dir + "/standby-store";
    standby = std::make_unique<TuneServer>(standby_config);
    standby->start();

    ServerConfig primary_config;
    primary_config.limits.state_dir = dir + "/primary";
    primary_config.store_dir = dir + "/primary-store";
    primary_config.limits.ship.port = standby->port();
    primary = std::make_unique<TuneServer>(primary_config);
    primary->start();
  }

  void crash_primary() {
    primary->stop();
    primary.reset();
  }
};

TEST(StoreReplication, ShippedTellsKeepBothStoresDigestEqual) {
  StoredPair pair;
  const OpenParams params = tenant_open("rs", 16, 11);
  const tuner::ParamSpace space = params.make_space();
  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(params, "store#1");
  for (int i = 0; i < 8; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, kSalt));
    // The tell ack passed through the standby's apply: both stores hold the
    // record already — digest equality at every step, not just at the end.
    ASSERT_EQ(pair.primary->store()->digest(), pair.standby->store()->digest())
        << "stores diverged after tell " << i;
  }
  ASSERT_TRUE(pair.primary->sessions().status().ship_connected);
  EXPECT_GE(pair.standby->store()->stats().records, 1u);
}

TEST(StoreReplication, ImportedSeedBatchesReachTheStandbyStore) {
  // Seed history produced on a standalone daemon, exported, and imported
  // into the replicated pair's primary: the import must ship to the standby
  // like live tells do, so a later failover keeps the seed rows too.
  std::vector<store::TenantSnapshot> seed;
  {
    ServerConfig config;
    config.store_dir = fresh_dir() + "/seed-store";
    TuneServer server(config);
    server.start();
    const OpenParams params = tenant_open("rs", 10, 5);
    const tuner::ParamSpace space = params.make_space();
    Client client(resilient_config(server.port()));
    (void)client.remote_minimize(params,
                                 [&space](const tuner::Configuration& c) {
                                   return synth_eval(space, c, kSalt);
                                 });
    seed = server.store()->export_tenants();
    server.stop();
  }
  ASSERT_FALSE(seed.empty());

  StoredPair pair;
  Client client(resilient_config(pair.primary->port()));
  ASSERT_GE(client.store_import(seed), 1u);
  EXPECT_GE(pair.standby->store()->stats().records, 1u);
  EXPECT_EQ(pair.primary->store()->digest(), pair.standby->store()->digest())
      << "imported seed batch did not replicate to the standby";

  // Redelivery is idempotent: importing the same batch again leaves both
  // stores where they were (dedup on each side).
  const std::uint64_t digest = pair.primary->store()->digest();
  EXPECT_EQ(client.store_import(seed), 0u);
  EXPECT_EQ(pair.primary->store()->digest(), digest);
  EXPECT_EQ(pair.standby->store()->digest(), digest);
}

TEST(StoreReplication, PromotedStandbyWarmStartsIdenticallyToItsPrimary) {
  StoredPair pair;
  const OpenParams seed_params = tenant_open("rs", 24, 3);
  const tuner::ParamSpace space = seed_params.make_space();
  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(seed_params, "seed#1");
  while (const auto config = client.ask(id)) {
    (void)client.tell(id, synth_eval(space, *config, kSalt));
  }
  client.close_session(id);
  ASSERT_EQ(pair.primary->store()->digest(), pair.standby->store()->digest());

  // Control: a third daemon seeded with a byte-copy of the replicated store
  // runs the warm session uninterrupted.
  const OpenParams warm = tenant_open("botpe", 16, 9, /*warm=*/true);
  tuner::TuneResult control;
  {
    ServerConfig config;
    config.store_dir = fresh_dir() + "/control-store";
    TuneServer server(config);
    server.start();
    Client control_client(resilient_config(server.port()));
    ASSERT_GE(server.store()->import_tenants(
                  pair.standby->store()->export_tenants()),
              1u);
    control = control_client
                  .remote_minimize(warm,
                                   [&space](const tuner::Configuration& c) {
                                     return synth_eval(space, c, kSalt);
                                   })
                  .result;
    server.stop();
  }

  // Failover: the promoted standby must derive the same prior from its own
  // replicated store and produce the identical warm-started search.
  pair.crash_primary();
  pair.standby->promote();
  Client promoted(resilient_config(pair.standby->port()));
  const tuner::TuneResult after_failover =
      promoted
          .remote_minimize(warm,
                           [&space](const tuner::Configuration& c) {
                             return synth_eval(space, c, kSalt);
                           })
          .result;
  EXPECT_TRUE(same_result(control, after_failover))
      << "promoted standby warm-started differently than its primary would have";
}

TEST(StoreReplication, StandbyStoreSurvivesItsOwnRestart) {
  StoredPair pair;
  const OpenParams params = tenant_open("rs", 12, 21);
  const tuner::ParamSpace space = params.make_space();
  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(params, "restart#1");
  for (int i = 0; i < 6; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, kSalt));
  }
  const std::uint64_t digest = pair.standby->store()->digest();

  // Restart the standby over its own journals AND its own store log: the
  // store reloads to the identical digest (ship resync then re-delivers the
  // records; dedup makes the replay invisible).
  const std::uint16_t standby_port = pair.standby->port();
  pair.standby->stop();
  pair.standby.reset();
  ServerConfig standby_config;
  standby_config.standby = true;
  standby_config.port = standby_port;
  standby_config.limits.state_dir = pair.dir + "/standby";
  standby_config.store_dir = pair.dir + "/standby-store";
  pair.standby = std::make_unique<TuneServer>(standby_config);
  pair.standby->start();
  EXPECT_EQ(pair.standby->store()->digest(), digest);

  // More tells after the resync: both sides keep agreeing.
  for (int i = 0; i < 3; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, kSalt));
  }
  EXPECT_EQ(pair.primary->store()->digest(), pair.standby->store()->digest());
}

}  // namespace
}  // namespace repro::service
