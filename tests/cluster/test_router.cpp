// In-process router tests: placement hashing, session-id namespacing,
// end-to-end session ops through `tunelb`'s Router over live TuneServers,
// aggregated status, role gating, and client-side endpoint failover.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "service/router.hpp"
#include "service/server.hpp"
#include "tests/cluster/cluster_test_util.hpp"
#include "tuner/registry.hpp"

namespace repro::service {
namespace {

using cluster_test::fresh_dir;
using cluster_test::resilient_config;
using cluster_test::same_result;
using cluster_test::tiny_open;
using service_test::synth_eval;

TEST(RouterUnit, Fnv1a64MatchesKnownVectors) {
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
}

TEST(RouterUnit, SplitSessionIdParsesAndRejects) {
  const auto ok = split_session_id("1:s42", 4);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->first, 1u);
  EXPECT_EQ(ok->second, "s42");
  EXPECT_FALSE(split_session_id("s42", 4).has_value());     // no prefix
  EXPECT_FALSE(split_session_id(":s42", 4).has_value());    // empty shard
  EXPECT_FALSE(split_session_id("9:s42", 4).has_value());   // out of range
  EXPECT_FALSE(split_session_id("x:s42", 4).has_value());   // non-numeric
  EXPECT_FALSE(split_session_id("1:", 4).has_value());      // empty sid
}

/// Two plain shards behind a router.
struct TwoShardCluster {
  TuneServer shard0;
  TuneServer shard1;
  std::unique_ptr<Router> router;

  TwoShardCluster() {
    shard0.start();
    shard1.start();
    RouterConfig config;
    config.shards = {{"127.0.0.1", shard0.port(), "127.0.0.1", 0},
                     {"127.0.0.1", shard1.port(), "127.0.0.1", 0}};
    config.probe_interval = std::chrono::milliseconds(0);  // probe_now() only
    config.probe_timeout = std::chrono::milliseconds(500);
    router = std::make_unique<Router>(config);
    router->start();
  }
};

TEST(Router, SessionLifecycleThroughRouterMatchesDirectShard) {
  TwoShardCluster cluster;
  const OpenParams params = tiny_open("rs", 12, 7);
  const tuner::ParamSpace space = params.make_space();

  // Baseline: the same session driven directly against a shard.
  Client direct(resilient_config(cluster.shard0.port()));
  const Client::RemoteResult baseline = direct.remote_minimize(
      params, [&space](const tuner::Configuration& c) { return synth_eval(space, c, 5); });

  Client client(resilient_config(cluster.router->port()));
  const std::string id = client.open(params, "lifecycle#1");
  EXPECT_NE(id.find(':'), std::string::npos) << "session id must be namespaced";
  while (const auto config = client.ask(id)) {
    (void)client.tell(id, synth_eval(space, *config, 5));
  }
  const Client::RemoteResult routed = client.result(id);
  client.close_session(id);
  EXPECT_TRUE(same_result(baseline.result, routed.result))
      << "a routed session diverged from a direct one";
}

TEST(Router, TokenAffinityReturnsTheSameSession) {
  TwoShardCluster cluster;
  Client client(resilient_config(cluster.router->port()));
  const OpenParams params = tiny_open("rs", 8, 3);
  const std::string first = client.open(params, "affinity#1");
  const std::string second = client.open(params, "affinity#1");
  EXPECT_EQ(first, second);
  client.close_session(first);
}

TEST(Router, AnonymousPlacementSpreadsAcrossShards) {
  TwoShardCluster cluster;
  Client client(resilient_config(cluster.router->port()));
  std::set<std::size_t> used;
  std::vector<std::string> ids;
  for (int i = 0; i < 16; ++i) {
    const std::string id = client.open(tiny_open("rs", 8, 100 + i));
    const auto split = split_session_id(id, 2);
    ASSERT_TRUE(split.has_value());
    used.insert(split->first);
    ids.push_back(id);
  }
  EXPECT_EQ(used.size(), 2u) << "16 anonymous opens never reached one shard";
  for (const std::string& id : ids) client.close_session(id);
}

TEST(Router, AggregatedStatusSumsShardsAndReportsHealth) {
  TwoShardCluster cluster;
  Client client(resilient_config(cluster.router->port()));
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(client.open(tiny_open("rs", 8, 200 + i)));
  const Json status = client.status();
  EXPECT_EQ(status.find("role")->as_string(), "router");
  EXPECT_EQ(status.find("live_sessions")->as_uint64(), 6u);
  const Json* shards = status.find("shards");
  ASSERT_NE(shards, nullptr);
  const auto& shard_entries = shards->as_array();
  ASSERT_EQ(shard_entries.size(), 2u);
  std::uint64_t placed = 0;
  for (const Json& entry : shard_entries) {
    EXPECT_EQ(entry.find("health")->as_string(), "up");
    placed += entry.find("sessions_placed")->as_uint64();
    const Json* shard_status = entry.find("status");
    ASSERT_NE(shard_status, nullptr) << "per-shard status must be embedded";
    EXPECT_EQ(shard_status->find("role")->as_string(), "primary");
    // These shards run without WAL; recovery stats appear (see
    // test_failover) only when durability is on.
    ASSERT_NE(shard_status->find("wal_enabled"), nullptr);
  }
  EXPECT_EQ(placed, 6u);
  for (const std::string& id : ids) client.close_session(id);
}

TEST(Router, StoreExportPagesAcrossShardsWithACompositeCursor) {
  // Store-configured shards, each holding a distinct tenant: the router's
  // "<shard>|<cursor>" paging must resume mid-shard, cross the shard
  // boundary, and stitch back to the full union.
  ServerConfig config0;
  config0.store_dir = fresh_dir() + "/s0-store";
  TuneServer shard0(config0);
  ServerConfig config1;
  config1.store_dir = fresh_dir() + "/s1-store";
  TuneServer shard1(config1);
  shard0.start();
  shard1.start();
  RouterConfig config;
  config.shards = {{"127.0.0.1", shard0.port(), "127.0.0.1", 0},
                   {"127.0.0.1", shard1.port(), "127.0.0.1", 0}};
  config.probe_interval = std::chrono::milliseconds(0);
  config.probe_timeout = std::chrono::milliseconds(500);
  Router router(config);
  router.start();

  const store::StoreKey key0{"conv", "arch0", "ffffffffffffffff"};
  const store::StoreKey key1{"conv", "arch1", "ffffffffffffffff"};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(shard0.store()->append(key0, {i, 1}, 10.0 + i, true));
    ASSERT_TRUE(shard1.store()->append(key1, {i, 2}, 20.0 + i, true));
  }

  Client client(resilient_config(router.port()));
  // Full export loops the cursor chain transparently: both tenants, all rows.
  const std::vector<store::TenantSnapshot> all = client.store_export();
  std::size_t rows = 0;
  for (const store::TenantSnapshot& tenant : all) rows += tenant.rows.size();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(rows, 10u);

  // Tiny explicit pages: a budget of 3 rows forces a mid-shard resume and a
  // page that spans the shard0 -> shard1 boundary.
  std::size_t paged = 0;
  int pages = 0;
  std::string cursor;
  while (true) {
    const Client::ExportPage page = client.store_export_page("", "", 3, cursor);
    ++pages;
    for (const store::TenantSnapshot& tenant : page.tenants)
      paged += tenant.rows.size();
    if (page.next_cursor.empty()) {
      EXPECT_FALSE(page.truncated);
      break;
    }
    EXPECT_NE(page.next_cursor.find('|'), std::string::npos)
        << "router cursors must be composite";
    cursor = page.next_cursor;
  }
  EXPECT_EQ(paged, rows);
  EXPECT_GE(pages, 4);

  // Re-importing the paged union into one shard dedups to the same rows.
  EXPECT_EQ(shard0.store()->import_tenants(all), 5u);
  router.stop();
}

TEST(Router, ShipOpsAndPromoteAreWrongRole) {
  TwoShardCluster cluster;
  Client client(resilient_config(cluster.router->port()));
  client.connect();
  Json request = Json::object();
  request.set("op", "ship_evict");
  request.set("session", "s1");
  try {
    (void)client.call(request);
    FAIL() << "ship_evict through the router must be refused";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kWrongRole);
  }
}

TEST(Router, AllShardsDownAnswersRetryLater) {
  RouterConfig config;
  // Ports 1 and 2: reserved, nothing listens there.
  config.shards = {{"127.0.0.1", 1, "127.0.0.1", 0},
                   {"127.0.0.1", 2, "127.0.0.1", 0}};
  config.probe_interval = std::chrono::milliseconds(0);
  config.probe_timeout = std::chrono::milliseconds(200);
  Router router(config);
  router.start();
  ClientConfig client_config = resilient_config(router.port());
  client_config.max_retries = 0;  // surface the pushback, don't wait it out
  Client client(client_config);
  try {
    (void)client.open(tiny_open("rs", 8, 1), "downtest#1");
    FAIL() << "placement with every shard down must push back";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kRetryLater);
    EXPECT_GT(error.retry_after_ms, 0u);
  }
  const std::vector<ShardSnapshot> shards = router.shards();
  EXPECT_EQ(shards[0].health, ShardHealth::kDown);
}

TEST(Router, ClientEndpointListFailsOverDeterministically) {
  TuneServer server_a;
  TuneServer server_b;
  server_a.start();
  server_b.start();
  ClientConfig config;
  config.name = "endpoints";
  config.max_retries = 10;
  config.backoff_initial_ms = 10;
  config.backoff_max_ms = 100;
  // First entry dead: the walk must deterministically settle on the third.
  config.endpoints = {{"127.0.0.1", 1},
                      {"127.0.0.1", server_a.port()},
                      {"127.0.0.1", server_b.port()}};
  Client client(config);
  client.connect();
  EXPECT_EQ(client.endpoint_index(), 1u);
  client.ping();
  // The preferred endpoint dies: the next reconnect walks the list again
  // (same order) and lands on the next live one.
  server_a.stop();
  client.disconnect();
  client.ping();
  EXPECT_EQ(client.endpoint_index(), 2u);
}

}  // namespace
}  // namespace repro::service
