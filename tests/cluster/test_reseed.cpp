// Self-healing replication: after a failover consumes a shard's standby,
// the router's prober attaches a replacement follower (a warm spare, or
// the deposed ex-primary once it auto-demotes and rejoins), the primary
// resyncs it store-snapshot-first with a digest gate, and the shard is
// ready for the next fault. The headline test SIGKILLs two primaries in a
// row mid-campaign and requires a byte-identical study — zero acknowledged
// tells lost across both faults.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/router.hpp"
#include "service/server.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace repro::service {
namespace {

using cluster_test::Proc;
using cluster_test::fresh_dir;
using cluster_test::resilient_config;
using cluster_test::same_result;
using cluster_test::tiny_open;
using service_test::synth_eval;

std::unique_ptr<TuneServer> start_standby(const std::string& state_dir,
                                          std::uint16_t port = 0) {
  ServerConfig config;
  config.standby = true;
  config.port = port;
  config.limits.state_dir = state_dir;
  auto server = std::make_unique<TuneServer>(config);
  server->start();
  return server;
}

TEST(Reseed, DoublePromoteRaceFlipsTheRoleExactlyOnce) {
  const std::string dir = fresh_dir();
  std::unique_ptr<TuneServer> standby = start_standby(dir + "/standby");
  // Two racing promotes (e.g. two routers both declaring the primary dead):
  // exactly one flips the role; the loser is a typed no-op, not an error.
  std::atomic<int> flipped{0};
  std::thread racer([&] {  // NOLINT(reprolint-raw-thread)
    if (standby->promote()) flipped.fetch_add(1);
  });
  if (standby->promote()) flipped.fetch_add(1);
  racer.join();
  EXPECT_EQ(flipped.load(), 1);
  EXPECT_FALSE(standby->standby());

  // Over the wire the retry/no-op is observable as "already_primary".
  Client client(resilient_config(standby->port()));
  (void)client.status();  // connect + hello
  Json promote = Json::object();
  promote.set("op", "promote");
  const Json reply = client.call(promote);
  EXPECT_TRUE(reply.find("ok")->as_bool());
  ASSERT_NE(reply.find("already_primary"), nullptr);
  EXPECT_TRUE(reply.find("already_primary")->as_bool());
  EXPECT_EQ(reply.find("role")->as_string(), "primary");
  standby->stop();
}

TEST(Reseed, ProberAttachesASpareAndTheShardSurvivesASecondCrash) {
  const OpenParams params = tiny_open("rs", 18, 42);
  const tuner::ParamSpace space = params.make_space();

  // Uninterrupted baseline on a plain server.
  TuneServer plain;
  plain.start();
  Client clean(resilient_config(plain.port()));
  const Client::RemoteResult baseline = clean.remote_minimize(
      params,
      [&space](const tuner::Configuration& c) { return synth_eval(space, c, 13); });
  plain.stop();

  const std::string dir = fresh_dir();
  std::unique_ptr<TuneServer> standby = start_standby(dir + "/standby");
  std::unique_ptr<TuneServer> spare = start_standby(dir + "/spare");
  ServerConfig primary_config;
  primary_config.limits.state_dir = dir + "/primary";
  primary_config.limits.ship.port = standby->port();
  auto primary = std::make_unique<TuneServer>(primary_config);
  primary->start();

  RouterConfig router_config;
  router_config.shards = {
      {"127.0.0.1", primary->port(), "127.0.0.1", standby->port()}};
  router_config.spares = {{"127.0.0.1", spare->port()}};
  router_config.probe_interval = std::chrono::milliseconds(0);  // probe_now only
  router_config.probe_timeout = std::chrono::milliseconds(500);
  Router router(router_config);
  router.start();

  Client client(resilient_config(router.port()));
  const std::string id = client.open(params, "reseed#double");
  for (int i = 0; i < 5; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 13));
  }

  // Fault 1: the primary dies; the forward failure promotes the standby.
  primary->stop();
  primary.reset();
  for (int i = 0; i < 2; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 13));
  }
  ASSERT_EQ(router.shards()[0].promotions, 1u);
  ASSERT_FALSE(router.shards()[0].has_standby);

  // One probe pass re-seeds: the deposed primary is dead, so the spare is
  // picked, resynced by the new primary, and adopted as the standby.
  router.probe_now();
  const std::vector<ShardSnapshot> healed = router.shards();
  EXPECT_TRUE(healed[0].has_standby);
  EXPECT_EQ(healed[0].reseeds, 1u);
  const StatusReport shipping = standby->sessions().status();
  EXPECT_TRUE(shipping.ship_enabled);
  EXPECT_TRUE(shipping.ship_connected);
  EXPECT_GE(shipping.ship.resyncs, 1u);

  // Fault 2: the new primary dies mid-campaign; the re-seeded spare takes
  // over and the study completes byte-identically — no acked tell lost
  // across either fault.
  standby->stop();
  standby.reset();
  while (const auto config = client.ask(id)) {
    (void)client.tell(id, synth_eval(space, *config, 13));
  }
  const Client::RemoteResult resumed = client.result(id);
  client.close_session(id);
  EXPECT_TRUE(same_result(baseline.result, resumed.result))
      << "study diverged across two crashes + a re-seed";
  const std::vector<ShardSnapshot> after = router.shards();
  EXPECT_EQ(after[0].promotions, 2u);
  EXPECT_EQ(after[0].port, spare->port());
  router.stop();
  spare->stop();
}

TEST(Reseed, DeposedPrimaryAutoDemotesAndIsReseededByTheNewPrimary) {
  const std::string dir = fresh_dir();
  std::unique_ptr<TuneServer> standby = start_standby(dir + "/standby");
  ServerConfig primary_config;
  primary_config.limits.state_dir = dir + "/primary";
  primary_config.limits.ship.port = standby->port();
  primary_config.auto_rejoin = true;
  primary_config.poll_interval = std::chrono::milliseconds(50);
  auto primary = std::make_unique<TuneServer>(primary_config);
  primary->start();

  const OpenParams params = tiny_open("rs", 16, 7);
  const tuner::ParamSpace space = params.make_space();
  Client client(resilient_config(primary->port()));
  const std::string id = client.open(params, "rejoin#1");
  for (int i = 0; i < 3; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 9));
  }

  // The standby is promoted behind the old primary's back (it lost a
  // failover race). Its next acknowledged tell cannot replicate — the
  // wrong_role answer fences the shipper, and auto_rejoin turns the fence
  // into a self-demotion: divergent journals dropped, role flipped back
  // to standby, zero operator action.
  standby->promote();
  const auto divergent = client.ask(id);
  ASSERT_TRUE(divergent.has_value());
  (void)client.tell(id, synth_eval(space, *divergent, 9));
  bool demoted = false;
  for (int i = 0; i < 200 && !(demoted = primary->standby()); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(demoted) << "fenced primary never demoted itself";
  EXPECT_EQ(primary->demotions(), 1u);
  EXPECT_EQ(primary->sessions().live(), 0u);  // divergent state is gone

  // The new primary re-seeds the rejoined follower from its own journals;
  // the divergent 4th tell (acked only by the deposed primary) is not
  // replayed — the shard's truth is the promoted side's 3-tell history.
  // status().tells is a lifetime counter that survives the demote reset,
  // so assert the delta, not the absolute.
  const std::size_t tells_before = primary->sessions().status().tells;
  ASSERT_TRUE(standby->sessions().reseed("127.0.0.1", primary->port()));
  EXPECT_EQ(primary->sessions().status().tells, tells_before + 3);
  EXPECT_EQ(primary->sessions().status().live_sessions, 1u);

  // New tells replicate to the rejoined follower like any hot standby's.
  Client promoted_client(resilient_config(standby->port()));
  for (int i = 0; i < 2; ++i) {
    const auto config = promoted_client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)promoted_client.tell(id, synth_eval(space, *config, 9));
  }
  EXPECT_EQ(primary->sessions().status().tells, tells_before + 5);
  const StatusReport shipping = standby->sessions().status();
  EXPECT_TRUE(shipping.ship_connected);
  EXPECT_FALSE(shipping.ship_fenced);
  standby->stop();
  primary->stop();
}

TEST(Reseed, ResyncResumesFromWatermarksWhenTheFollowerCrashesAndReturns) {
  const std::string dir = fresh_dir();
  std::unique_ptr<TuneServer> follower = start_standby(dir + "/follower");
  ServerConfig primary_config;
  primary_config.limits.state_dir = dir + "/primary";
  auto primary = std::make_unique<TuneServer>(primary_config);
  primary->start();

  const OpenParams params = tiny_open("rs", 16, 31);
  const tuner::ParamSpace space = params.make_space();
  Client client(resilient_config(primary->port()));
  const std::string id = client.open(params, "resume#1");
  for (int i = 0; i < 3; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 9));
  }

  // Runtime re-seed of a primary that was born without a follower: the
  // retargeted shipper resyncs the whole history and flips hot.
  ASSERT_TRUE(primary->sessions().reseed("127.0.0.1", follower->port()));
  EXPECT_EQ(follower->sessions().status().tells, 3u);

  // The follower crashes mid-service and comes back over its own journals
  // on the same port. The next ship reconnects and resyncs again; the
  // recovered follower acks the journal replays as duplicates (per-session
  // seq watermarks make the replay idempotent) instead of double-applying.
  const std::uint16_t follower_port = follower->port();
  follower->stop();
  follower.reset();
  follower = start_standby(dir + "/follower", follower_port);
  EXPECT_EQ(follower->sessions().status().recovery.sessions_recovered, 1u);
  for (int i = 0; i < 2; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 9));
  }
  const StatusReport status = primary->sessions().status();
  EXPECT_TRUE(status.ship_connected);
  EXPECT_GE(status.ship.resyncs, 2u);
  EXPECT_GE(status.ship.duplicates_acked, 3u);
  EXPECT_EQ(follower->sessions().status().tells, 5u);
  follower->stop();
  primary->stop();
}

TEST(Reseed, SigkillDoubleFaultThroughTheRouterIsByteIdentical) {
  const OpenParams params = tiny_open("rs", 20, 77);
  const tuner::ParamSpace space = params.make_space();

  // Uninterrupted baseline on a plain in-process server.
  TuneServer plain;
  plain.start();
  Client clean(resilient_config(plain.port()));
  const Client::RemoteResult baseline = clean.remote_minimize(
      params,
      [&space](const tuner::Configuration& c) { return synth_eval(space, c, 21); });
  plain.stop();

  const std::string dir = fresh_dir();
  Proc standby({REPRO_TUNED_BIN, "--standby", "--state-dir", dir + "/b"},
               dir + "/b.log");
  ASSERT_NE(standby.port, 0);
  Proc spare({REPRO_TUNED_BIN, "--standby", "--state-dir", dir + "/c"},
             dir + "/c.log");
  ASSERT_NE(spare.port, 0);
  Proc primary({REPRO_TUNED_BIN, "--state-dir", dir + "/a", "--ship-to",
                std::to_string(standby.port)},
               dir + "/a.log");
  ASSERT_NE(primary.port, 0);
  Proc router({REPRO_TUNELB_BIN, "--shards",
               std::to_string(primary.port) + "/" + std::to_string(standby.port),
               "--spares", std::to_string(spare.port), "--probe-interval-ms",
               "100", "--probe-timeout-ms", "1000", "--probe-failures", "2"},
              dir + "/lb.log");
  ASSERT_NE(router.port, 0);

  Client client(resilient_config(router.port));
  const std::string id = client.open(params, "sigkill#double");
  for (int i = 0; i < 5; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 21));
  }

  // Fault 1: SIGKILL the primary. Client retries ride out the failover;
  // the prober then re-seeds the promoted standby from the spare pool.
  primary.kill9();
  for (int i = 0; i < 5; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 21));
  }
  bool reseeded = false;
  for (int i = 0; i < 300 && !reseeded; ++i) {
    const Json status = client.status();
    const Json& shard = status.find("shards")->as_array()[0];
    reseeded = shard.find("reseeds")->as_uint64() >= 1 &&
               shard.find("has_standby")->as_bool();
    if (!reseeded) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(reseeded) << "prober never attached the spare: "
                        << cluster_test::read_file(dir + "/lb.log");

  // Fault 2: SIGKILL the new primary mid-campaign. The re-seeded spare is
  // promoted and the study must finish byte-identically — zero
  // acknowledged tells lost across both faults.
  standby.kill9();
  while (const auto config = client.ask(id)) {
    (void)client.tell(id, synth_eval(space, *config, 21));
  }
  const Client::RemoteResult resumed = client.result(id);
  client.close_session(id);
  EXPECT_TRUE(same_result(baseline.result, resumed.result))
      << "study diverged across two SIGKILLs; router log:\n"
      << cluster_test::read_file(dir + "/lb.log");
  const Json status = client.status();
  EXPECT_EQ(status.find("shards")->as_array()[0].find("promotions")->as_uint64(),
            2u);
}

}  // namespace
}  // namespace repro::service
