// In-process hot-standby failover: WAL shipping keeps a follower's live
// AskTellSessions in lockstep with the primary, promotion turns the
// follower into a serving primary with zero lost acknowledged tells, and
// the router re-routes idempotent ops across the swap. The headline loop
// runs every paper algorithm through a mid-session primary crash and
// requires a byte-identical result.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "service/router.hpp"
#include "service/server.hpp"
#include "tests/cluster/cluster_test_util.hpp"
#include "tuner/registry.hpp"

namespace repro::service {
namespace {

using cluster_test::fresh_dir;
using cluster_test::resilient_config;
using cluster_test::same_result;
using cluster_test::tiny_open;
using service_test::synth_eval;

/// Primary (WAL + shipping) and standby pair over fresh state dirs.
struct ReplicatedPair {
  std::string dir = fresh_dir();
  std::unique_ptr<TuneServer> standby;
  std::unique_ptr<TuneServer> primary;

  ReplicatedPair() {
    ServerConfig standby_config;
    standby_config.standby = true;
    standby_config.limits.state_dir = dir + "/standby";
    standby = std::make_unique<TuneServer>(standby_config);
    standby->start();

    ServerConfig primary_config;
    primary_config.limits.state_dir = dir + "/primary";
    primary_config.limits.ship.port = standby->port();
    primary = std::make_unique<TuneServer>(primary_config);
    primary->start();
  }

  void crash_primary() {
    // stop() severs connections and cancels sessions; the standby has the
    // acknowledged record stream, which is all a real crash leaves behind.
    primary->stop();
    primary.reset();
  }
};

TEST(Failover, AcknowledgedTellsAreLiveOnTheStandby) {
  ReplicatedPair pair;
  const OpenParams params = tiny_open("rs", 16, 11);
  const tuner::ParamSpace space = params.make_space();
  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(params, "live#1");
  for (int i = 0; i < 5; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 9));
  }
  // Every acknowledged tell is already applied on the standby's live
  // session — hot, not just journaled.
  const StatusReport primary_status = pair.primary->sessions().status();
  EXPECT_TRUE(primary_status.ship_enabled);
  EXPECT_TRUE(primary_status.ship_connected);
  EXPECT_FALSE(primary_status.ship_fenced);
  EXPECT_GE(primary_status.ship.records_shipped, 6u);  // open + 5 tells
  const StatusReport standby_status = pair.standby->sessions().status();
  EXPECT_EQ(standby_status.live_sessions, 1u);
  EXPECT_EQ(standby_status.tells, 5u);
}

TEST(Failover, StandbyRefusesSessionOpsUntilPromoted) {
  ReplicatedPair pair;
  Client primary_client(resilient_config(pair.primary->port()));
  const std::string id = primary_client.open(tiny_open("rs", 8, 3), "role#1");
  ClientConfig config = resilient_config(pair.standby->port());
  config.max_retries = 0;
  Client standby_client(config);
  try {
    (void)standby_client.open(tiny_open("rs", 8, 3));
    FAIL() << "a standby must refuse open";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kWrongRole);
  }
  pair.standby->promote();
  EXPECT_FALSE(pair.standby->standby());
  // Promoted: the shipped session answers normal ops under its own id.
  const Json status = standby_client.status();
  EXPECT_EQ(status.find("role")->as_string(), "primary");
  EXPECT_EQ(status.find("promotions")->as_uint64(), 1u);
  EXPECT_EQ(status.find("live_sessions")->as_uint64(), 1u);
  (void)id;
}

TEST(Failover, StalePrimaryFencesItselfAfterPromotion) {
  ReplicatedPair pair;
  const OpenParams params = tiny_open("rs", 16, 21);
  const tuner::ParamSpace space = params.make_space();
  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(params, "fence#1");
  const auto first = client.ask(id);
  ASSERT_TRUE(first.has_value());
  (void)client.tell(id, synth_eval(space, *first, 9));

  pair.standby->promote();
  // The stale primary keeps serving (availability over replication) but
  // its next ship gets wrong_role and fences the shipper permanently.
  const auto second = client.ask(id);
  ASSERT_TRUE(second.has_value());
  (void)client.tell(id, synth_eval(space, *second, 9));
  const StatusReport status = pair.primary->sessions().status();
  EXPECT_TRUE(status.ship_fenced);
  EXPECT_FALSE(status.ship_connected);
}

TEST(Failover, ShipperResyncsAfterStandbyRestartAndAcksDuplicates) {
  ReplicatedPair pair;
  const OpenParams params = tiny_open("rs", 16, 31);
  const tuner::ParamSpace space = params.make_space();
  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(params, "resync#1");
  for (int i = 0; i < 3; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 9));
  }
  // Restart the standby over its own journals on the same port: the next
  // ship reconnects and re-ships everything; the recovered follower acks
  // the replays as duplicates.
  const std::uint16_t standby_port = pair.standby->port();
  const std::string standby_dir = pair.dir + "/standby";
  pair.standby->stop();
  pair.standby.reset();
  ServerConfig standby_config;
  standby_config.standby = true;
  standby_config.port = standby_port;
  standby_config.limits.state_dir = standby_dir;
  pair.standby = std::make_unique<TuneServer>(standby_config);
  pair.standby->start();
  EXPECT_EQ(pair.standby->sessions().status().recovery.sessions_recovered, 1u);

  for (int i = 0; i < 2; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 9));
  }
  const StatusReport status = pair.primary->sessions().status();
  EXPECT_TRUE(status.ship_connected);
  EXPECT_GE(status.ship.resyncs, 2u);  // initial connect + reconnect
  EXPECT_GE(status.ship.duplicates_acked, 3u);
  EXPECT_EQ(pair.standby->sessions().status().tells, 5u);
}

TEST(Failover, RouterFailoverMidSessionIsByteIdenticalForEveryAlgorithm) {
  for (const std::string& algorithm : tuner::paper_algorithms()) {
    const OpenParams params = tiny_open(algorithm, 16, 42);
    const tuner::ParamSpace space = params.make_space();

    // Uninterrupted baseline on a plain server.
    TuneServer plain;
    plain.start();
    Client clean(resilient_config(plain.port()));
    const Client::RemoteResult baseline = clean.remote_minimize(
        params,
        [&space](const tuner::Configuration& c) { return synth_eval(space, c, 13); });
    plain.stop();

    // Replicated shard behind a router; crash the primary mid-session.
    ReplicatedPair pair;
    RouterConfig router_config;
    router_config.shards = {{"127.0.0.1", pair.primary->port(), "127.0.0.1",
                             pair.standby->port()}};
    router_config.probe_interval = std::chrono::milliseconds(0);
    router_config.probe_timeout = std::chrono::milliseconds(500);
    Router router(router_config);
    router.start();

    Client client(resilient_config(router.port()));
    const std::string id = client.open(params, "failover#" + algorithm);
    for (int i = 0; i < 5; ++i) {
      const auto config = client.ask(id);
      ASSERT_TRUE(config.has_value());
      (void)client.tell(id, synth_eval(space, *config, 13));
    }
    pair.crash_primary();
    while (const auto config = client.ask(id)) {
      (void)client.tell(id, synth_eval(space, *config, 13));
    }
    const Client::RemoteResult resumed = client.result(id);
    client.close_session(id);
    EXPECT_TRUE(same_result(baseline.result, resumed.result))
        << algorithm << " diverged across a primary crash + promotion";
    const std::vector<ShardSnapshot> shards = router.shards();
    EXPECT_EQ(shards[0].promotions, 1u) << algorithm;
    EXPECT_EQ(shards[0].port, pair.standby->port()) << algorithm;
    router.stop();
  }
}

}  // namespace
}  // namespace repro::service
