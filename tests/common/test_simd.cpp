// Bit-identity contract of the fixed-blocking SIMD kernels: every dispatch
// tier must produce byte-identical reductions (memcmp on the doubles, not
// EXPECT_DOUBLE_EQ — ULP-close is not good enough for the repro guarantee),
// and the seq:: kernels must reproduce the strict left-to-right loops the
// legacy hot paths were written with.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace {

using repro::simd::Tier;

/// Deterministic, non-trivial data: mixed magnitudes so reassociation
/// actually changes low bits (uniform [0,1) sums can mask order bugs).
std::vector<double> test_data(std::uint64_t seed, std::size_t n) {
  repro::Rng rng(seed);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-3.0, 3.0) * (i % 7 == 0 ? 1e6 : 1.0);
  }
  return x;
}

/// Sizes straddling every blocking boundary: empty, below kLanes, exact
/// multiples, off-by-one tails, and large-enough-to-vectorize.
const std::vector<std::size_t>& test_sizes() {
  static const std::vector<std::size_t> sizes = {0,  1,  2,  3,   4,   5,
                                                 7,  8,  15, 16,  17,  64,
                                                 97, 256, 1000, 1023};
  return sizes;
}

bool bytes_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// RAII tier restore so one test's override never leaks into another.
struct TierGuard {
  Tier saved = repro::simd::active_tier();
  ~TierGuard() { repro::simd::set_tier(saved); }
};

TEST(Simd, DetectedTierIsActivatable) {
  TierGuard guard;
  const Tier detected = repro::simd::detected_tier();
  EXPECT_EQ(repro::simd::set_tier(detected), detected);
  EXPECT_EQ(repro::simd::active_tier(), detected);
}

TEST(Simd, SetTierClampsToDetected) {
  TierGuard guard;
  const Tier detected = repro::simd::detected_tier();
  const Tier granted = repro::simd::set_tier(Tier::kAvx2);
  EXPECT_LE(static_cast<int>(granted), static_cast<int>(detected));
  EXPECT_EQ(repro::simd::active_tier(), granted);
  EXPECT_EQ(repro::simd::set_tier(Tier::kScalar), Tier::kScalar);
}

TEST(Simd, TierNamesAreStable) {
  EXPECT_EQ(std::string(repro::simd::tier_name(Tier::kScalar)), "scalar");
  EXPECT_EQ(std::string(repro::simd::tier_name(Tier::kSse2)), "sse2");
  EXPECT_EQ(std::string(repro::simd::tier_name(Tier::kAvx2)), "avx2");
}

TEST(Simd, BlockedKernelsAreBitIdenticalAcrossTiers) {
  TierGuard guard;
  for (const std::size_t n : test_sizes()) {
    const std::vector<double> a = test_data(0xA11CE + n, n);
    const std::vector<double> b = test_data(0xB0B0 + n, n);

    ASSERT_EQ(repro::simd::set_tier(Tier::kScalar), Tier::kScalar);
    const double dot0 = repro::simd::dot(a.data(), b.data(), n);
    const double dist0 = repro::simd::squared_distance(a.data(), b.data(), n);
    const double sq0 = repro::simd::sum_squares(a.data(), n);
    const double sum0 = repro::simd::sum(a.data(), n);

    for (const Tier tier : {Tier::kSse2, Tier::kAvx2}) {
      if (repro::simd::set_tier(tier) != tier) continue;  // unsupported here
      EXPECT_TRUE(bytes_equal(dot0, repro::simd::dot(a.data(), b.data(), n)))
          << "dot, n=" << n << ", tier=" << repro::simd::tier_name(tier);
      EXPECT_TRUE(bytes_equal(
          dist0, repro::simd::squared_distance(a.data(), b.data(), n)))
          << "sqdist, n=" << n << ", tier=" << repro::simd::tier_name(tier);
      EXPECT_TRUE(bytes_equal(sq0, repro::simd::sum_squares(a.data(), n)))
          << "sumsq, n=" << n << ", tier=" << repro::simd::tier_name(tier);
      EXPECT_TRUE(bytes_equal(sum0, repro::simd::sum(a.data(), n)))
          << "sum, n=" << n << ", tier=" << repro::simd::tier_name(tier);
    }
  }
}

TEST(Simd, BlockedScalarMatchesFixedBlockingReference) {
  TierGuard guard;
  ASSERT_EQ(repro::simd::set_tier(Tier::kScalar), Tier::kScalar);
  for (const std::size_t n : test_sizes()) {
    const std::vector<double> a = test_data(0xC0DE + n, n);
    const std::vector<double> b = test_data(0xFACE + n, n);
    // Hand-rolled schedule: lane i % 4, combined (s0+s1)+(s2+s3), tail
    // folded sequentially after the blocked body.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    const std::size_t blocked = n - n % repro::simd::kLanes;
    for (std::size_t i = 0; i < blocked; i += 4) {
      s0 += a[i] * b[i];
      s1 += a[i + 1] * b[i + 1];
      s2 += a[i + 2] * b[i + 2];
      s3 += a[i + 3] * b[i + 3];
    }
    double expected = (s0 + s1) + (s2 + s3);
    for (std::size_t i = blocked; i < n; ++i) expected += a[i] * b[i];
    EXPECT_TRUE(bytes_equal(expected, repro::simd::dot(a.data(), b.data(), n)))
        << "n=" << n;
  }
}

TEST(Simd, SeqKernelsMatchStrictSequentialLoops) {
  for (const std::size_t n : test_sizes()) {
    const std::vector<double> a = test_data(0x5EED + n, n);
    const std::vector<double> b = test_data(0xF00D + n, n);
    double dot = 0.0, dist = 0.0, sq = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot += a[i] * b[i];
      const double d = a[i] - b[i];
      dist += d * d;
      sq += a[i] * a[i];
      sum += a[i];
    }
    EXPECT_TRUE(bytes_equal(dot, repro::simd::seq::dot(a.data(), b.data(), n)));
    EXPECT_TRUE(bytes_equal(
        dist, repro::simd::seq::squared_distance(a.data(), b.data(), n)));
    EXPECT_TRUE(bytes_equal(sq, repro::simd::seq::sum_squares(a.data(), n)));
    EXPECT_TRUE(bytes_equal(sum, repro::simd::seq::sum(a.data(), n)));
  }
}

TEST(Simd, GatheredSumAndSquaresMatchesFusedLoop) {
  const std::size_t n = 257;
  const std::vector<double> y = test_data(0xD00D, n);
  repro::Rng rng(7);
  std::vector<std::size_t> indices(191);
  for (std::size_t& index : indices) {
    index = static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(n)));
    if (index >= n) index = n - 1;
  }
  const std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, indices.size()}, {3, 140}, {10, 10}, {190, 191}};
  for (const auto& [begin, end] : ranges) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double v = y[indices[i]];
      sum += v;
      sq += v * v;
    }
    double got_sum = -1.0, got_sq = -1.0;
    repro::simd::seq::gathered_sum_and_squares(y.data(), indices.data(), begin,
                                               end, got_sum, got_sq);
    EXPECT_TRUE(bytes_equal(sum, got_sum)) << begin << ".." << end;
    EXPECT_TRUE(bytes_equal(sq, got_sq)) << begin << ".." << end;
  }
}

TEST(Simd, BlockedOrderDiffersFromSequentialOnAdversarialData) {
  // Sanity check that the bit-identity assertions above are not vacuous:
  // with mixed magnitudes the blocked and sequential orders really do
  // produce different low bits for some size (otherwise the whole seq-vs-
  // blocked split in the GP would be pointless).
  TierGuard guard;
  ASSERT_EQ(repro::simd::set_tier(Tier::kScalar), Tier::kScalar);
  bool any_difference = false;
  for (const std::size_t n : {64u, 256u, 1000u}) {
    const std::vector<double> a = test_data(0xBEEF + n, n);
    const std::vector<double> b = test_data(0xCAFE + n, n);
    const double blocked = repro::simd::dot(a.data(), b.data(), n);
    const double sequential = repro::simd::seq::dot(a.data(), b.data(), n);
    if (!bytes_equal(blocked, sequential)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
