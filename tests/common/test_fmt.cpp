// Formatting shim tests: placeholder substitution, specs, escapes, errors.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/fmt.hpp"

namespace repro {
namespace {

TEST(Fmt, PlainPassThrough) { EXPECT_EQ(fmt("hello"), "hello"); }

TEST(Fmt, BasicSubstitution) {
  EXPECT_EQ(fmt("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(fmt("name={}", std::string("x")), "name=x");
  EXPECT_EQ(fmt("flag={}", true), "flag=true");
  EXPECT_EQ(fmt("c={}", 'z'), "c=z");
}

TEST(Fmt, UnsignedAndSigned) {
  EXPECT_EQ(fmt("{}", -5), "-5");
  EXPECT_EQ(fmt("{}", 18446744073709551615ull), "18446744073709551615");
}

TEST(Fmt, FloatPrecision) {
  EXPECT_EQ(fmt("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(fmt("{:.0f}", 2.7), "3");
  EXPECT_EQ(fmt("{:.3f}", -1.0), "-1.000");
}

TEST(Fmt, FloatDefaultUsesShortestReasonable) {
  EXPECT_EQ(fmt("{}", 2.5), "2.5");
}

TEST(Fmt, NanRendering) { EXPECT_EQ(fmt("{}", std::nan("")), "nan"); }

TEST(Fmt, WidthAndAlignment) {
  EXPECT_EQ(fmt("{:5}", 42), "   42");          // numbers right-align
  EXPECT_EQ(fmt("{:5}", std::string("ab")), "ab   ");  // strings left-align
  EXPECT_EQ(fmt("{:<5}", 42), "42   ");
  EXPECT_EQ(fmt("{:>5}", std::string("ab")), "   ab");
  EXPECT_EQ(fmt("{:^6}", std::string("ab")), "  ab  ");
}

TEST(Fmt, CombinedWidthPrecision) { EXPECT_EQ(fmt("{:>8.2f}", 3.14159), "    3.14"); }

TEST(Fmt, LiteralBraces) {
  EXPECT_EQ(fmt("{{}}"), "{}");
  EXPECT_EQ(fmt("a{{b}}c {}", 1), "a{b}c 1");
}

TEST(Fmt, ErrorOnTooFewArguments) {
  EXPECT_THROW((void)fmt("{} {}", 1), std::invalid_argument);
}

TEST(Fmt, ErrorOnUnbalancedBrace) {
  EXPECT_THROW((void)fmt("{oops", 1), std::invalid_argument);
}

TEST(Fmt, ErrorOnBadSpec) {
  EXPECT_THROW((void)fmt("{:q5}", 1), std::invalid_argument);
}

TEST(Pad, Behaviour) {
  EXPECT_EQ(pad("ab", 5, Align::kLeft), "ab   ");
  EXPECT_EQ(pad("ab", 5, Align::kRight), "   ab");
  EXPECT_EQ(pad("ab", 6, Align::kCenter), "  ab  ");
  EXPECT_EQ(pad("abcdef", 3, Align::kLeft), "abcdef");  // never truncates
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(fmt_double(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace repro
