// Logger: level gating (output goes to stderr; we only verify the gate and
// that formatting does not throw).

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace repro {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Log, EmittersDoNotThrow) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // gate everything below error
  EXPECT_NO_THROW(log_debug("value {}", 1));
  EXPECT_NO_THROW(log_info("value {}", 2.5));
  EXPECT_NO_THROW(log_warn("value {}", "text"));
  EXPECT_NO_THROW(log_error("value {}", true));
}

TEST(Log, MessagePathHandlesEmbeddedBraces) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_NO_THROW(log_error("literal {{}} and {}", 7));
}

TEST(Log, LinesCarryTimestampAndLevelOnStderr) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_info("hello");
  const std::string line = testing::internal::GetCapturedStderr();
  // "[HH:MM:SS.mmm] [INFO] hello\n"
  ASSERT_GE(line.size(), 15u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[3], ':');
  EXPECT_EQ(line[6], ':');
  EXPECT_EQ(line[9], '.');
  EXPECT_EQ(line[13], ']');
  EXPECT_NE(line.find("[INFO] hello"), std::string::npos);
  // Thread ids are debug-only noise.
  EXPECT_EQ(line.find("[t"), std::string::npos);
}

TEST(Log, ThreadIdAppearsOnlyAtDebugLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log_debug("probe");
  const std::string line = testing::internal::GetCapturedStderr();
  EXPECT_NE(line.find("[DEBUG]"), std::string::npos);
  EXPECT_NE(line.find("[t"), std::string::npos);
  EXPECT_NE(line.find("probe"), std::string::npos);
}

}  // namespace
}  // namespace repro
