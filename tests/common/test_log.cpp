// Logger: level gating (output goes to stderr; we only verify the gate and
// that formatting does not throw).

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace repro {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Log, EmittersDoNotThrow) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // gate everything below error
  EXPECT_NO_THROW(log_debug("value {}", 1));
  EXPECT_NO_THROW(log_info("value {}", 2.5));
  EXPECT_NO_THROW(log_warn("value {}", "text"));
  EXPECT_NO_THROW(log_error("value {}", true));
}

TEST(Log, MessagePathHandlesEmbeddedBraces) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_NO_THROW(log_error("literal {{}} and {}", 7));
}

}  // namespace
}  // namespace repro
