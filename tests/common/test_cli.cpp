// CLI parser tests: all accepted syntaxes, defaults, and error handling.

#include <gtest/gtest.h>

#include <array>

#include "common/cli.hpp"

namespace repro {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("name", "a name", "default");
  cli.add_option("count", "a count", "3");
  cli.add_option("rate", "a rate", "1.5");
  cli.add_flag("fast", "go fast");
  return cli;
}

TEST(Cli, DefaultsApplyWhenUnset) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_EQ(cli.get_int("count"), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_FALSE(cli.get_flag("fast"));
}

TEST(Cli, SpaceSeparatedValue) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--name", "alpha"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get("name"), "alpha");
}

TEST(Cli, EqualsValue) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--count=42"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("count"), 42);
}

TEST(Cli, FlagPresence) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--fast"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_flag("fast"));
}

TEST(Cli, FlagRejectsValue) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--fast=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UnknownFlagFails) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, MissingValueFails) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--name"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, PositionalsCollected) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "one", "--fast", "two"};
  ASSERT_TRUE(cli.parse(4, argv));
  ASSERT_EQ(cli.positionals().size(), 2u);
  EXPECT_EQ(cli.positionals()[0], "one");
  EXPECT_EQ(cli.positionals()[1], "two");
}

TEST(Cli, GetOptionalEmptyWhenNoDefaultNorValue) {
  CliParser cli("p", "d");
  cli.add_option("out", "output dir");
  const char* argv[] = {"p"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_FALSE(cli.get_optional("out").has_value());
}

TEST(Cli, UnregisteredGetThrows) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get("never"), std::out_of_range);
}

TEST(Cli, UsageListsOptions) {
  auto cli = make_parser();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--fast"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
}

}  // namespace
}  // namespace repro
