// Table/CSV/heatmap renderer tests.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"

namespace repro {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, RowArityEnforced) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({Cell{1LL}}), std::invalid_argument);
  table.add_row({Cell{1LL}, Cell{2LL}});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(Table, CsvBasic) {
  Table table({"name", "value"});
  table.add_row({std::string("x"), 1.5});
  table.add_row({std::string("y"), 2LL});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "name,value\nx,1.5000\ny,2\n");
}

TEST(Table, CsvEscaping) {
  Table table({"field"});
  table.add_row({std::string("a,b")});
  table.add_row({std::string("quote\"inside")});
  table.add_row({std::string("line\nbreak")});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "field\n\"a,b\"\n\"quote\"\"inside\"\n\"line\nbreak\"\n");
}

TEST(Table, PrecisionControlsDoubles) {
  Table table({"v"});
  table.set_precision(1);
  table.add_row({3.14159});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "v\n3.1\n");
}

TEST(Table, NanRenders) {
  Table table({"v"});
  table.add_row({std::nan("")});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "v\nnan\n");
}

TEST(Table, AsciiContainsHeaderRuleAndCells) {
  Table table({"alg", "pct"});
  table.add_row({std::string("RS"), 85.2});
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("alg"), std::string::npos);
  EXPECT_NE(ascii.find("RS"), std::string::npos);
  EXPECT_NE(ascii.find("85.2"), std::string::npos);
  EXPECT_NE(ascii.find("|---"), std::string::npos);
}

TEST(Table, WriteCsvFileFailsOnBadPath) {
  Table table({"v"});
  EXPECT_FALSE(table.write_csv_file("/nonexistent_dir_xyz/file.csv"));
}

TEST(Heatmap, RendersLabelsAndValues) {
  const std::string out = render_heatmap("title", {"r1", "r2"}, {"c1", "c2"},
                                         {{1.0, 2.0}, {3.0, 4.0}}, 1);
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find("c2"), std::string::npos);
  EXPECT_NE(out.find("4.0"), std::string::npos);
  // Hottest cell gets the densest shade.
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(Heatmap, HandlesNaNCells) {
  const std::string out =
      render_heatmap("t", {"r"}, {"c1", "c2"}, {{std::nan(""), 1.0}}, 1);
  EXPECT_NE(out.find("--"), std::string::npos);
}

TEST(Heatmap, ConstantMatrixDoesNotDivideByZero) {
  const std::string out = render_heatmap("t", {"r"}, {"c"}, {{5.0}}, 1);
  EXPECT_NE(out.find("5.0"), std::string::npos);
}

TEST(LineChart, RendersSeriesGlyphsAndLegend) {
  const std::string out = render_line_chart(
      "chart", {"25", "50", "100"}, {"RS", "GA"},
      {{1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}}, 10);
  EXPECT_NE(out.find("chart"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("o=RS"), std::string::npos);
  EXPECT_NE(out.find("x=GA"), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(LineChart, EmptySeriesSafe) {
  const std::string out = render_line_chart("c", {"1"}, {"s"}, {{}}, 5);
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace repro
