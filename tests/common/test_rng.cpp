// Tests for the deterministic RNG: reproducibility, range correctness,
// distributional sanity, and the sampling helpers every stochastic
// component of the study relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace repro {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng child = a.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == child());
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(4, 2), 4);  // hi < lo clamps to lo
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntChiSquareUniformity) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 50000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) counts[rng.next_below(kBuckets)]++;
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 9 dof, alpha=0.001 critical value ~27.9.
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  constexpr int kDraws = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.03);
}

TEST(Rng, LognormalIsPositiveWithUnitMedian) {
  Rng rng(23);
  std::vector<double> draws(10001);
  for (auto& d : draws) {
    d = rng.lognormal(0.0, 0.25);
    ASSERT_GT(d, 0.0);
  }
  std::nth_element(draws.begin(), draws.begin() + 5000, draws.end());
  EXPECT_NEAR(draws[5000], 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(37);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_index(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  rng.shuffle(std::span<int>(items));
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(43);
  const auto picks = rng.sample_indices(50, 10);
  EXPECT_EQ(picks.size(), 10u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t p : picks) EXPECT_LT(p, 50u);
}

TEST(Rng, SampleIndicesClampsOversizedRequest) {
  Rng rng(47);
  EXPECT_EQ(rng.sample_indices(5, 50).size(), 5u);
}

TEST(SeedHelpers, CombineIsDeterministicAndSensitive) {
  EXPECT_EQ(seed_combine(1, 2), seed_combine(1, 2));
  EXPECT_NE(seed_combine(1, 2), seed_combine(1, 3));
  EXPECT_NE(seed_combine(1, 2), seed_combine(2, 2));
}

TEST(SeedHelpers, StringSeedsDifferByContent) {
  EXPECT_EQ(seed_from_string("abc"), seed_from_string("abc"));
  EXPECT_NE(seed_from_string("abc"), seed_from_string("abd"));
  EXPECT_NE(seed_from_string(""), seed_from_string("a"));
}

/// Property sweep: bounded generation is unbiased for several bounds.
class RngBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundProperty, MeanMatchesHalfBound) {
  const std::uint64_t bound = GetParam();
  Rng rng(seed_combine(99, bound));
  double sum = 0.0;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.next_below(bound));
  const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
  EXPECT_NEAR(sum / kDraws, expected, std::max(1.0, expected * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundProperty,
                         ::testing::Values(2, 3, 10, 17, 256, 1000, 65536));

}  // namespace
}  // namespace repro
