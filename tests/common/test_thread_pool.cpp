// Thread pool and parallel_for behaviour: completeness, exception
// propagation, chunking edge cases, and future-based task submission.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace repro {
namespace {

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleElement) {
  ThreadPool pool(2);
  int value = 0;
  parallel_for(pool, 3, 4, [&](std::size_t i) { value = static_cast<int>(i); });
  EXPECT_EQ(value, 3);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 110, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  long expected = 0;
  for (long i = 10; i < 110; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("fail at 37");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ExplicitChunkCounts) {
  ThreadPool pool(4);
  for (std::size_t chunks : {1u, 2u, 7u, 100u, 1000u}) {
    std::atomic<int> counter{0};
    parallel_for(pool, 0, 100, [&](std::size_t) { counter.fetch_add(1); }, chunks);
    EXPECT_EQ(counter.load(), 100) << "chunks=" << chunks;
  }
}

TEST(ParallelFor, GlobalPoolOverload) {
  std::atomic<int> counter{0};
  parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, MatchesSequentialLoopForEveryChunkAndGrain) {
  // Slot-indexed writes: the parallel result must equal the sequential loop
  // element for element, independent of chunking.
  ThreadPool pool(4);
  const std::size_t n = 257;
  std::vector<double> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = static_cast<double>(i) * 1.5 - 3.0;
  }
  for (std::size_t chunks : {0u, 1u, 3u, 16u, 300u}) {
    for (std::size_t grain : {1u, 8u, 64u, 1000u}) {
      std::vector<double> got(n, 0.0);
      parallel_for(
          pool, 0, n,
          [&](std::size_t i) { got[i] = static_cast<double>(i) * 1.5 - 3.0; },
          chunks, grain);
      EXPECT_EQ(got, expected) << "chunks=" << chunks << " grain=" << grain;
    }
  }
}

TEST(ParallelFor, GrainCapsDispatchForTinyLoops) {
  // With grain >= n the loop must still cover every index (it runs as a
  // single chunk or inline).
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 5, [&](std::size_t) { counter.fetch_add(1); }, 0, 100);
  EXPECT_EQ(counter.load(), 5);
}

TEST(ParallelFor, NestedCallDoesNotDeadlock) {
  // A body that itself calls parallel_for on the same pool must complete:
  // the inner call detects it is on a worker thread and runs inline.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 8, [&](std::size_t) {
    EXPECT_TRUE(pool.on_worker_thread());
    parallel_for(pool, 0, 8, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, OnWorkerThreadFalseOnCaller) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPool, SubmitBatchRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  pool.submit_batch(std::move(tasks));
  while (done.load() < 64) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace repro
