// One error code, fully wired. Lexed, never compiled.

enum class ErrorCode {
  kFine,
};

const char* to_string(ErrorCode code);
