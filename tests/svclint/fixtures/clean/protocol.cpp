// kFine round-trips: to_string case plus error_code_from entry.
// Lexed, never compiled.

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kFine: return "fine";
  }
  return "unknown";
}

std::optional<ErrorCode> error_code_from(std::string_view text) {
  if (text == "fine") return ErrorCode::kFine;
  return std::nullopt;
}
