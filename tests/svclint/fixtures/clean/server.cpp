// Conforming daemon: the fsync barrier dominates every frame write, the one
// handled op is routed, and the one error code round-trips and is emitted.
// Lexed, never compiled.

bool handle_tell(Conn& conn) {
  const std::string sid = require_string(conn.request, "session");
  fsync(conn.fd);
  write_frame(conn.io, make_ok());
  return true;
}

void dispatch(Conn& conn, const std::string& op) {
  if (op == "tell") {
    handle_tell(conn);
    return;
  }
  write_frame(conn.io, make_error(ErrorCode::kFine, "unknown op"));
}
