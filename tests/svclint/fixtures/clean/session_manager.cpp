// Clean durability shape for the admission/replication layer: the resync
// replay journals (and fsyncs) before anything reaches the socket. Lexed,
// never compiled.

bool apply_resync_record(Conn& conn, const Record& record) {
  journal_append(conn, record);
  write_frame(conn.io, make_ok());  // after the barrier
  return true;
}

void journal_append(Conn& conn, const Record& record) {
  fsync(conn.fd);
}
