// Routes everything the daemon handles. Lexed, never compiled.

void route(Conn& conn, const std::string& op) {
  if (op == "tell") {
    forward(conn, op);
    return;
  }
  reject(conn, op);
}
