// Conforming corpus: locks are taken in the declared order and released in
// LIFO order, so no edge inverts and no cycle forms. Lexed, never compiled.

void append_row() {
  repro::MutexLock log(wal_mutex_);
  repro::MutexLock shard(cache);
}
