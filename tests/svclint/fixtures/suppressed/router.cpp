// Routes "tell" only; the daemon's dark-launched "mystery" op is suppressed
// at its dispatch site in server.cpp. Lexed, never compiled.

void route(Conn& conn, const std::string& op) {
  if (op == "tell") {
    forward(conn, op);
    return;
  }
  reject(conn, op);
}
