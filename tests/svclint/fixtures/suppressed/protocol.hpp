// kGhost is reserved for the next protocol revision and intentionally has
// no round-trip yet; the suppression must be counted, not leaked.
// Lexed, never compiled.

enum class ErrorCode {
  kFine,
  // Reserved for the v2 handshake; wired up when that revision ships.
  // NOLINTNEXTLINE(svclint-wire-drift)
  kGhost,
};

const char* to_string(ErrorCode code);
