// The bad-corpus resync hazard carrying a justified suppression: a quota
// pushback reply is not an ack — the open was refused, so nothing durable
// exists to barrier on. Lexed, never compiled.

bool apply_resync_record(Conn& conn, const Record& record) {
  // Typed retry_later pushback, not an ack: the record was not applied.
  // NOLINTNEXTLINE(svclint-durability)
  write_frame(conn.io, make_error(ErrorCode::kFine, "admission queue full"));
  journal_append(conn, record);
  write_frame(conn.io, make_ok());
  return true;
}

void journal_append(Conn& conn, const Record& record) {
  fsync(conn.fd);
}
