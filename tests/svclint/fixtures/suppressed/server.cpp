// The bad-corpus hazards, each carrying a justified suppression: an early
// error reply (no durable state exists yet) and a dark-launched op the
// router intentionally does not route. Lexed, never compiled.

bool handle_tell(Conn& conn) {
  // Protocol-error reply, not an ack: nothing durable exists yet.
  // NOLINTNEXTLINE(svclint-durability)
  write_frame(conn.io, make_error(ErrorCode::kFine, "bad payload"));
  fsync(conn.fd);
  write_frame(conn.io, make_ok());
  return true;
}

void dispatch(Conn& conn, const std::string& op) {
  if (op == "tell") {
    handle_tell(conn);
    return;
  }
  if (op == "mystery") {  // NOLINT(svclint-wire-drift) dark launch, router lands next rev
    handle_tell(conn);
    return;
  }
}
