// The bad-corpus inversion, sanctioned: shutdown eviction snapshots the WAL
// under the shard lock while no appender can run, so the inversion cannot
// deadlock. The justified NOLINT must count as suppressed, not leak.
// Lexed, never compiled.

void evict_row_at_shutdown() {
  repro::MutexLock shard(cache);
  repro::MutexLock log(wal_mutex_);  // NOLINT(svclint-lock-order) appenders quiesced
}
