// Seeded svclint-lock-order violations: one declared-order inversion and
// one two-function cycle reachable only through one level of call inlining.
// Lexed, never compiled.

// Inversion: the declared order is `wal_mutex_ -> cache` (outer first), but
// eviction takes the cache lock and then the WAL lock.
void evict_row() {
  repro::MutexLock shard(cache);
  repro::MutexLock log(wal_mutex_);
}

// Cycle: alpha_mu -> beta_mu observed through the grab_beta() call while
// beta_mu -> alpha_mu is taken directly elsewhere. Neither edge is declared,
// so only cycle detection catches the deadlock.
void lock_alpha_then_beta() {
  repro::MutexLock hold(alpha_mu);
  grab_beta();
}

void grab_beta() {
  repro::MutexLock hold(beta_mu);
}

void lock_beta_then_alpha() {
  repro::MutexLock first(beta_mu);
  repro::MutexLock second(alpha_mu);
}
