// Seeded svclint-durability violation (an ack reaches the socket before the
// fsync barrier) plus the daemon half of the wire-drift fixtures: an op the
// router has never heard of, and a reference that keeps kBadRequest "used".
// Lexed, never compiled.

bool handle_tell(Conn& conn) {
  write_frame(conn.io, make_ok());  // acked before the append is durable
  append_record(conn);
  write_frame(conn.io, make_ok());  // after the barrier: fine
  return true;
}

void append_record(Conn& conn) {
  fsync(conn.fd);
}

void dispatch(Conn& conn, const std::string& op) {
  if (op == "tell") {
    handle_tell(conn);
    return;
  }
  if (op == "snapshot") {  // handled here, unknown to the router
    handle_tell(conn);
    return;
  }
  write_frame(conn.io, make_error(ErrorCode::kBadRequest, "unknown op"));
}
