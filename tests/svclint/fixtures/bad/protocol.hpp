// Error-code half of the wire-drift fixture: kGhost has no to_string case,
// no error_code_from entry, and no use outside protocol.* — it cannot
// round-trip the wire. Lexed, never compiled.

enum class ErrorCode {
  kBadRequest,
  kGhost,
};

const char* to_string(ErrorCode code);
