// Router half of the wire-drift fixture: only "tell" is routed, so the
// daemon's "snapshot" op (server.cpp) is unreachable through the router.
// Lexed, never compiled.

void route(Conn& conn, const std::string& op) {
  if (op == "tell") {
    forward(conn, op);
    return;
  }
  reject(conn, op);
}
