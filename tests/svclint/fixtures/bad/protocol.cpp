// Round-trips kBadRequest only; kGhost (protocol.hpp) is left unwired.
// Lexed, never compiled.

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
  }
  return "unknown";
}

std::optional<ErrorCode> error_code_from(std::string_view text) {
  if (text == "bad_request") return ErrorCode::kBadRequest;
  return std::nullopt;
}
