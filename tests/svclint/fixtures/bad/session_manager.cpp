// Seeded svclint-durability violation in the admission/replication layer:
// a re-seed resync acks a shipped record back to the primary before the
// follower's journal append has hit the disk — a crash right after the ack
// would lose a record the primary believes is replicated. Lexed, never
// compiled.

bool apply_resync_record(Conn& conn, const Record& record) {
  write_frame(conn.io, make_ok());  // acked before the replay is durable
  journal_append(conn, record);
  return true;
}

void journal_append(Conn& conn, const Record& record) {
  fsync(conn.fd);
}
