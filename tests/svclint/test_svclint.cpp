// Unit tests for the svclint library: every rule family fires on the bad
// fixture corpus, every suppression is silenced and counted, the clean
// corpus produces nothing, lock-order files parse (and reject garbage),
// and the JSON report schema stays parseable and versioned.
//
// Fixture corpora live under fixtures/{bad,suppressed,clean}; each holds
// the same file roster (store/server/router/protocol.* plus api.md and a
// lock_order.txt) so the three runs differ only in hazards and NOLINTs.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "lintcore/lintcore.hpp"
#include "svclint.hpp"

namespace {

using lintcore::Finding;
using lintcore::Report;
using svclint::Options;
using svclint::SourceFile;

std::map<std::string, int> count_by_rule(const Report& report) {
  std::map<std::string, int> counts;
  for (const Finding& finding : report.findings) ++counts[finding.rule];
  return counts;
}

std::string fixture_path(const char* corpus, const char* name) {
  return std::string(SVCLINT_FIXTURE_DIR) + "/" + corpus + "/" + name;
}

SourceFile load(const char* corpus, const char* name) {
  SourceFile out;
  out.path = fixture_path(corpus, name);
  EXPECT_TRUE(lintcore::read_file(out.path, out.content)) << out.path;
  return out;
}

/// Load one fixture corpus (sources + docs + its lock-order file) and run
/// the full linter over it.
Report lint_corpus_dir(const char* corpus) {
  std::vector<SourceFile> sources;
  for (const char* name : {"store.cpp", "server.cpp", "session_manager.cpp",
                           "router.cpp", "protocol.hpp", "protocol.cpp"}) {
    sources.push_back(load(corpus, name));
  }
  const std::vector<SourceFile> docs = {load(corpus, "api.md")};

  Options options;
  std::string order_text;
  std::string error;
  EXPECT_TRUE(lintcore::read_file(fixture_path(corpus, "lock_order.txt"),
                                  order_text));
  EXPECT_TRUE(svclint::parse_lock_order(order_text, options.lock_order, error))
      << error;
  return svclint::lint_corpus(sources, docs, options);
}

TEST(Svclint, RuleSetIsStable) {
  const std::vector<std::string> expected = {
      "svclint-lock-order", "svclint-durability", "svclint-wire-drift"};
  EXPECT_EQ(svclint::rule_names(), expected);
}

TEST(Svclint, BadCorpusTripsEveryRuleFamily) {
  const Report report = lint_corpus_dir("bad");
  const auto counts = count_by_rule(report);
  for (const std::string& rule : svclint::rule_names()) {
    EXPECT_TRUE(counts.count(rule) != 0 && counts.at(rule) >= 1)
        << "rule never fired: " << rule;
  }
  EXPECT_EQ(report.suppressed, 0u);
  // 6 sources + 1 doc.
  EXPECT_EQ(report.files_scanned, 7u);
  for (const Finding& finding : report.findings) {
    EXPECT_GT(finding.line, 0) << finding.rule;
    EXPECT_FALSE(finding.snippet.empty()) << finding.rule;
    EXPECT_FALSE(finding.message.empty()) << finding.rule;
  }
}

TEST(Svclint, BadCorpusFindsTheSeededHazards) {
  const Report report = lint_corpus_dir("bad");
  const auto counts = count_by_rule(report);
  // Lock order: the declared-order inversion plus the inlined-call cycle.
  EXPECT_EQ(counts.at("svclint-lock-order"), 2);
  // Durability: the pre-barrier ack in server.cpp and the pre-journal
  // resync ack in session_manager.cpp, never the post-barrier ones.
  EXPECT_EQ(counts.at("svclint-durability"), 2);
  // Wire drift: unrouted op, ghost error code, undocumented-field and
  // unhandled-op doc entries.
  EXPECT_EQ(counts.at("svclint-wire-drift"), 4);

  bool cycle = false;
  bool inversion = false;
  bool ghost_code = false;
  for (const Finding& finding : report.findings) {
    if (finding.message.find("lock-order cycle") != std::string::npos) {
      cycle = true;
    }
    if (finding.message.find("declared order") != std::string::npos) {
      inversion = true;
    }
    if (finding.message.find("kGhost") != std::string::npos) {
      ghost_code = true;
    }
  }
  EXPECT_TRUE(cycle);
  EXPECT_TRUE(inversion);
  EXPECT_TRUE(ghost_code);
}

TEST(Svclint, SuppressedCorpusIsCleanAndCounted) {
  const Report report = lint_corpus_dir("suppressed");
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().rule << " leaked at "
      << report.findings.front().file << ":" << report.findings.front().line;
  // One suppression per family hazard: lock inversion, early ack, quota
  // pushback reply, dark daemon op, reserved error code, reserved doc field.
  EXPECT_EQ(report.suppressed, 6u);
}

TEST(Svclint, CleanCorpusHasNothingToSay) {
  const Report report = lint_corpus_dir("clean");
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().rule << " fired at "
      << report.findings.front().file << ":" << report.findings.front().line;
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(Svclint, LockOrderFileParses) {
  std::vector<std::pair<std::string, std::string>> order;
  std::string error;
  const std::string text =
      "# comment\n"
      "a -> b\n"
      "  outer_mu  ->  inner_mu  # trailing comment\n"
      "\n";
  ASSERT_TRUE(svclint::parse_lock_order(text, order, error)) << error;
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (std::pair<std::string, std::string>{"a", "b"}));
  EXPECT_EQ(order[1],
            (std::pair<std::string, std::string>{"outer_mu", "inner_mu"}));
}

TEST(Svclint, LockOrderFileRejectsGarbage) {
  std::vector<std::pair<std::string, std::string>> order;
  std::string error;
  EXPECT_FALSE(svclint::parse_lock_order("no arrow here\n", order, error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  error.clear();
  EXPECT_FALSE(svclint::parse_lock_order("-> inner\n", order, error));
  EXPECT_NE(error.find("empty lock name"), std::string::npos);
}

TEST(Svclint, JsonReportSchemaIsStable) {
  Report report;
  report.files_scanned = 4;
  report.suppressed = 1;
  report.findings.push_back({"src/service/server.cpp", 12,
                             "svclint-durability", "message with \"quotes\"",
                             "write_frame(io, reply);"});

  const repro::Json parsed = repro::Json::parse(svclint::to_json(report));
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.find("tool")->as_string(), "svclint");
  EXPECT_EQ(parsed.find("schema_version")->as_int64(), 1);
  EXPECT_EQ(parsed.find("files_scanned")->as_int64(), 4);
  EXPECT_EQ(parsed.find("suppressed")->as_int64(), 1);
  const auto& findings = parsed.find("findings")->as_array();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].find("file")->as_string(), "src/service/server.cpp");
  EXPECT_EQ(findings[0].find("line")->as_int64(), 12);
  EXPECT_EQ(findings[0].find("rule")->as_string(), "svclint-durability");
  EXPECT_EQ(findings[0].find("message")->as_string(),
            "message with \"quotes\"");
  EXPECT_EQ(findings[0].find("snippet")->as_string(),
            "write_frame(io, reply);");
}

TEST(Svclint, JsonEmptyReportParses) {
  const repro::Json parsed = repro::Json::parse(svclint::to_json(Report{}));
  EXPECT_TRUE(parsed.find("findings")->as_array().empty());
  EXPECT_EQ(parsed.find("files_scanned")->as_int64(), 0);
  EXPECT_EQ(parsed.find("tool")->as_string(), "svclint");
}

}  // namespace
