// Crash-recovery tests for the session WAL: a SessionManager destroyed with
// live sessions (destruction == kill -9 as far as the journal is concerned;
// cancel_all writes no terminal records by design) must be reconstructible
// by a fresh manager over the same state dir, and the recovered sessions
// must finish byte-identical to never-interrupted runs — for every paper
// algorithm, at several crash points.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "service/session_manager.hpp"
#include "service/session_wal.hpp"
#include "tests/service/service_test_util.hpp"
#include "tuner/registry.hpp"

namespace repro::service {
namespace {

using service_test::synth_eval;

/// Fresh per-test state dir under the build tree's TMPDIR.
std::string fresh_state_dir() {
  char templ[] = "/tmp/repro_wal_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir;
}

SessionLimits limits_with(const std::string& state_dir) {
  SessionLimits limits;
  limits.state_dir = state_dir;
  return limits;
}

OpenParams tiny_open(const std::string& algorithm, std::size_t budget,
                     std::uint64_t seed) {
  OpenParams params;
  params.algorithm = algorithm;
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

struct Driven {
  tuner::TuneResult result;
  std::uint64_t next_seq = 1;
};

/// Run a session's ask/tell loop against the synthetic objective, starting
/// at tell seq `next_seq`, for at most `max_tells` tells (SIZE_MAX = to
/// completion). Returns the result when the search terminated.
Driven drive(SessionManager& manager, const std::string& id,
             const tuner::ParamSpace& space, std::uint64_t salt,
             std::uint64_t next_seq, std::size_t max_tells,
             bool fetch_result = true) {
  Driven out;
  out.next_seq = next_seq;
  std::size_t tells = 0;
  while (tells < max_tells) {
    const std::optional<tuner::Configuration> config = manager.ask(id);
    if (!config) break;
    manager.tell(id, synth_eval(space, *config, salt), out.next_seq++);
    ++tells;
  }
  if (fetch_result && tells < max_tells) out.result = manager.result(id).result;
  return out;
}

bool same_result(const tuner::TuneResult& a, const tuner::TuneResult& b) {
  return a.best_config == b.best_config && a.found_valid == b.found_valid &&
         a.evaluations_used == b.evaluations_used &&
         std::memcmp(&a.best_value, &b.best_value, sizeof(double)) == 0;
}

// The tentpole acceptance check: for every paper algorithm, crash after k
// tells, recover in a fresh manager, finish — byte-identical to an
// uninterrupted run with the same seeds.
TEST(CrashRecovery, EveryPaperAlgorithmSurvivesAMidSessionCrash) {
  const std::size_t budget = 24;
  const std::uint64_t salt = 2022;
  for (const std::string& algorithm : tuner::paper_algorithms()) {
    const OpenParams params = tiny_open(algorithm, budget, 77);
    const tuner::ParamSpace space = params.make_space();

    // Uninterrupted baseline (durability off: proves recovery adds nothing).
    tuner::TuneResult baseline;
    {
      SessionManager manager;
      const std::string id = manager.open(params);
      baseline = drive(manager, id, space, salt, 1, SIZE_MAX).result;
      manager.close(id);
    }

    for (const std::size_t crash_after : {std::size_t{0}, std::size_t{7}}) {
      const std::string dir = fresh_state_dir();
      std::string id;
      {
        SessionManager manager(limits_with(dir));
        id = manager.open(params);
        (void)drive(manager, id, space, salt, 1, crash_after,
                    /*fetch_result=*/false);
        // Manager destroyed with the session live: the crash. No close
        // record is written; the journal holds open + crash_after tells.
      }
      SessionManager recovered(limits_with(dir));
      const RecoveryStats stats = recovered.recover();
      ASSERT_EQ(stats.sessions_recovered, 1u)
          << algorithm << " crash_after=" << crash_after;
      EXPECT_EQ(stats.tells_replayed, crash_after);
      EXPECT_EQ(stats.sessions_failed, 0u);
      EXPECT_EQ(recovered.live(), 1u);

      const tuner::TuneResult resumed =
          drive(recovered, id, space, salt, crash_after + 1, SIZE_MAX).result;
      EXPECT_TRUE(same_result(baseline, resumed))
          << algorithm << " diverged after recovery at tell " << crash_after;
      recovered.close(id);
    }
  }
}

TEST(CrashRecovery, RecoveryIsIdempotentAcrossRepeatedCrashes) {
  // Crash, recover, make progress, crash again, recover again: the journal
  // accretes across incarnations and the final result still matches.
  const OpenParams params = tiny_open("rs", 20, 5);
  const tuner::ParamSpace space = params.make_space();
  const std::uint64_t salt = 11;

  tuner::TuneResult baseline;
  {
    SessionManager manager;
    const std::string id = manager.open(params);
    baseline = drive(manager, id, space, salt, 1, SIZE_MAX).result;
  }

  const std::string dir = fresh_state_dir();
  std::string id;
  std::uint64_t seq = 1;
  {
    SessionManager manager(limits_with(dir));
    id = manager.open(params);
    seq = drive(manager, id, space, salt, seq, 5, false).next_seq;
  }
  {
    SessionManager manager(limits_with(dir));
    ASSERT_EQ(manager.recover().tells_replayed, 5u);
    seq = drive(manager, id, space, salt, seq, 6, false).next_seq;
  }
  SessionManager manager(limits_with(dir));
  ASSERT_EQ(manager.recover().tells_replayed, 11u);
  const tuner::TuneResult resumed =
      drive(manager, id, space, salt, seq, SIZE_MAX).result;
  EXPECT_TRUE(same_result(baseline, resumed));
}

TEST(CrashRecovery, TornTailIsDroppedAndTheSessionStillRecovers) {
  const OpenParams params = tiny_open("rs", 16, 3);
  const tuner::ParamSpace space = params.make_space();
  const std::string dir = fresh_state_dir();
  std::string id;
  {
    SessionManager manager(limits_with(dir));
    id = manager.open(params);
    (void)drive(manager, id, space, 9, 1, 6, false);
  }
  // Simulate a kill mid-append: an unterminated partial record at the tail.
  {
    std::ofstream out(wal_path(dir, id), std::ios::app);
    out << "{\"wal\":\"tell\",\"seq\":7,\"con";  // no newline
  }
  SessionManager recovered(limits_with(dir));
  const RecoveryStats stats = recovered.recover();
  EXPECT_EQ(stats.sessions_recovered, 1u);
  EXPECT_EQ(stats.torn_tails, 1u);
  // The torn record is gone; the next applied tell is seq 7 again.
  EXPECT_EQ(stats.tells_replayed, 6u);
  const tuner::TuneResult resumed = drive(recovered, id, space, 9, 7, SIZE_MAX).result;
  EXPECT_TRUE(resumed.evaluations_used > 0);
}

TEST(CrashRecovery, MalformedInteriorRecordLosesOnlyThatSession) {
  const std::string dir = fresh_state_dir();
  std::string broken_id;
  std::string healthy_id;
  const OpenParams params = tiny_open("rs", 12, 1);
  const tuner::ParamSpace space = params.make_space();
  {
    SessionManager manager(limits_with(dir));
    broken_id = manager.open(params);
    healthy_id = manager.open(params);
    (void)drive(manager, broken_id, space, 1, 1, 3, false);
    (void)drive(manager, healthy_id, space, 2, 1, 3, false);
  }
  // Corrupt an *interior* record of one journal (flip its line to garbage
  // while keeping the newline): unrecoverable by the torn-tail rule.
  {
    std::ifstream in(wal_path(dir, broken_id));
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::size_t first_newline = text.find('\n');
    ASSERT_NE(first_newline, std::string::npos);
    text[first_newline + 1] = '#';
    std::ofstream out(wal_path(dir, broken_id), std::ios::trunc);
    out << text;
  }
  SessionManager recovered(limits_with(dir));
  const RecoveryStats stats = recovered.recover();
  EXPECT_EQ(stats.sessions_failed, 1u);
  EXPECT_EQ(stats.sessions_recovered, 1u);
  EXPECT_EQ(recovered.live(), 1u);
  // The healthy session is usable; the broken id reads as never-existed.
  EXPECT_NO_THROW((void)recovered.ask(healthy_id));
  EXPECT_THROW((void)recovered.ask(broken_id), ProtocolError);
}

TEST(CrashRecovery, CloseRecordWithoutUnlinkIsDiscardedOnRecovery) {
  // A crash landing between append_close() and unlink() leaves a journal
  // with a clean terminal record; recovery finishes the unlink.
  const std::string dir = fresh_state_dir();
  const OpenParams params = tiny_open("rs", 8, 2);
  const std::string path = wal_path(dir, "s1");
  {
    auto wal = SessionWal::create(path, "s1", "", params);
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(wal->append_close());
  }
  SessionManager recovered(limits_with(dir));
  const RecoveryStats stats = recovered.recover();
  EXPECT_EQ(stats.closed_discarded, 1u);
  EXPECT_EQ(stats.sessions_recovered, 0u);
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // journal deleted
}

TEST(CrashRecovery, EvictionRecordBecomesATombstoneAcrossRestart) {
  const std::string dir = fresh_state_dir();
  const OpenParams params = tiny_open("rs", 8, 2);
  const std::string path = wal_path(dir, "s1");
  {
    auto wal = SessionWal::create(path, "s1", "", params);
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(wal->append_evicted());
  }
  SessionManager recovered(limits_with(dir));
  const RecoveryStats stats = recovered.recover();
  EXPECT_EQ(stats.evicted_tombstones, 1u);
  EXPECT_EQ(recovered.live(), 0u);
  // Distinguishable from never-existed even after the restart.
  try {
    (void)recovered.ask("s1");
    FAIL() << "expected session_evicted";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kSessionEvicted);
  }
  try {
    (void)recovered.ask("s999");
    FAIL() << "expected unknown_session";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kUnknownSession);
  }
}

TEST(CrashRecovery, DuplicateTellSeqIsAcknowledgedNotReapplied) {
  const OpenParams params = tiny_open("rs", 10, 4);
  const tuner::ParamSpace space = params.make_space();
  SessionManager manager(limits_with(fresh_state_dir()));
  const std::string id = manager.open(params);

  const std::optional<tuner::Configuration> config = manager.ask(id);
  ASSERT_TRUE(config.has_value());
  const tuner::Evaluation eval = synth_eval(space, *config, 6);
  const SessionManager::TellAck first = manager.tell(id, eval, 1);
  EXPECT_FALSE(first.duplicate);
  // The retry after a lost ack: same seq, acknowledged without re-applying.
  const SessionManager::TellAck replay = manager.tell(id, eval, 1);
  EXPECT_TRUE(replay.duplicate);
  EXPECT_EQ(manager.status().duplicate_tells, 1u);
  // A gap is a client bug, not a retry.
  try {
    (void)manager.tell(id, eval, 5);
    FAIL() << "expected bad_request";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kBadRequest);
  }
  manager.close(id);
}

TEST(CrashRecovery, OpenTokenDedupesAgainstRecoveredSessions) {
  // A client that opened with a token, lost the response, and found the
  // daemon restarted must get its recovered session back — not a twin.
  const OpenParams params = tiny_open("rs", 10, 8);
  const std::string dir = fresh_state_dir();
  std::string id;
  {
    SessionManager manager(limits_with(dir));
    id = manager.open(params, "campaign#1/rs/8");
  }
  SessionManager recovered(limits_with(dir));
  ASSERT_EQ(recovered.recover().sessions_recovered, 1u);
  EXPECT_EQ(recovered.open(params, "campaign#1/rs/8"), id);
  EXPECT_EQ(recovered.live(), 1u);
}

}  // namespace
}  // namespace repro::service
