// Record-level WAL-shipping edge cases: a follower left behind by a torn
// journal tail, whole-journal duplicate delivery after a reconnect, and
// the promotion race where a tell was acknowledged by the primary but the
// client's ack was lost — the retried seq must come back as a duplicate
// on the promoted follower, never as a double apply.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>

#include "service/server.hpp"
#include "service/session_wal.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace repro::service {
namespace {

using cluster_test::fresh_dir;
using cluster_test::read_file;
using cluster_test::resilient_config;
using cluster_test::same_result;
using cluster_test::tiny_open;
using service_test::synth_eval;

struct ReplicatedPair {
  std::string dir = fresh_dir();
  std::unique_ptr<TuneServer> standby;
  std::unique_ptr<TuneServer> primary;

  ReplicatedPair() {
    ServerConfig standby_config;
    standby_config.standby = true;
    standby_config.limits.state_dir = dir + "/standby";
    standby = std::make_unique<TuneServer>(standby_config);
    standby->start();

    ServerConfig primary_config;
    primary_config.limits.state_dir = dir + "/primary";
    primary_config.limits.ship.port = standby->port();
    primary = std::make_unique<TuneServer>(primary_config);
    primary->start();
  }

  /// Stop + restart the standby on the same port over the same journals.
  void restart_standby() {
    const std::uint16_t port = standby->port();
    standby->stop();
    standby.reset();
    ServerConfig config;
    config.standby = true;
    config.port = port;
    config.limits.state_dir = dir + "/standby";
    standby = std::make_unique<TuneServer>(config);
    standby->start();
  }
};

/// Tear the final record off a journal: keep everything up to the last
/// complete line's newline, then append an unterminated fragment.
void tear_tail(const std::string& path) {
  std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  const std::size_t last_line_start = text.rfind('\n', text.size() - 2);
  ASSERT_NE(last_line_start, std::string::npos);
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text.substr(0, last_line_start + 1) << "{\"op\":\"tel";
}

TEST(WalShipEdge, FollowerBehindByTornTailCatchesUpOnResync) {
  ReplicatedPair pair;
  const OpenParams params = tiny_open("rs", 16, 51);
  const tuner::ParamSpace space = params.make_space();
  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(params, "torn#1");
  for (int i = 0; i < 4; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 17));
  }

  // Crash the follower and tear the last record (tell seq 4) off its
  // journal: it restarts one acknowledged tell behind the primary.
  pair.standby->stop();
  pair.standby.reset();
  const std::vector<std::string> journals =
      list_session_wals(pair.dir + "/standby");
  ASSERT_EQ(journals.size(), 1u);
  tear_tail(journals[0]);
  const WalSession torn = load_session_wal(journals[0]);
  EXPECT_TRUE(torn.torn_tail);
  ASSERT_EQ(torn.tells.size(), 3u);

  ServerConfig config;
  config.standby = true;
  config.limits.state_dir = pair.dir + "/standby";
  pair.standby = std::make_unique<TuneServer>(config);
  pair.standby->start();
  EXPECT_EQ(pair.standby->sessions().status().tells, 3u);

  // Point the primary's shipper at the restarted follower (fresh
  // ephemeral port): reconnect -> resync re-ships the whole journal;
  // seqs 1..3 come back as duplicates, seq 4 closes the gap.
  // (The primary cannot re-dial a moved port, so re-create it over its
  // own journals with the new ship target — same records either way.)
  pair.primary->stop();
  pair.primary.reset();
  ServerConfig primary_config;
  primary_config.limits.state_dir = pair.dir + "/primary";
  primary_config.limits.ship.port = pair.standby->port();
  pair.primary = std::make_unique<TuneServer>(primary_config);
  pair.primary->start();

  const StatusReport primary_status = pair.primary->sessions().status();
  EXPECT_TRUE(primary_status.ship_connected);
  EXPECT_GE(primary_status.ship.duplicates_acked, 3u);
  EXPECT_EQ(pair.standby->sessions().status().tells, 4u)
      << "the torn-off tell never reached the follower's live session";
}

TEST(WalShipEdge, WholeJournalDuplicateDeliveryIsIdempotent) {
  ReplicatedPair pair;
  const OpenParams params = tiny_open("rs", 16, 61);
  const tuner::ParamSpace space = params.make_space();

  // Baseline for the final byte-identity check.
  TuneServer plain;
  plain.start();
  Client clean(resilient_config(plain.port()));
  const Client::RemoteResult baseline = clean.remote_minimize(
      params,
      [&space](const tuner::Configuration& c) { return synth_eval(space, c, 19); });
  plain.stop();

  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(params, "dup#1");
  for (int i = 0; i < 5; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 19));
  }
  // Follower restart with an *intact* journal: the resync re-ships open +
  // all five tells and every one must come back a duplicate ack.
  pair.restart_standby();
  {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 19));
  }
  const StatusReport primary_status = pair.primary->sessions().status();
  EXPECT_GE(primary_status.ship.resyncs, 2u);
  EXPECT_GE(primary_status.ship.duplicates_acked, 5u);
  EXPECT_EQ(pair.standby->sessions().status().tells, 6u);

  // And the replica still mirrors the primary bit-for-bit: promote it and
  // finish the session there.
  pair.primary->stop();
  pair.primary.reset();
  pair.standby->promote();
  Client resumed_client(resilient_config(pair.standby->port()));
  while (const auto config = resumed_client.ask(id)) {
    (void)resumed_client.tell(id, synth_eval(space, *config, 19));
  }
  const Client::RemoteResult resumed = resumed_client.result(id);
  EXPECT_TRUE(same_result(baseline.result, resumed.result));
}

TEST(WalShipEdge, PromotionRaceRetriedInFlightTellIsADuplicate) {
  ReplicatedPair pair;
  const OpenParams params = tiny_open("rs", 16, 71);
  const tuner::ParamSpace space = params.make_space();

  TuneServer plain;
  plain.start();
  Client clean(resilient_config(plain.port()));
  const Client::RemoteResult baseline = clean.remote_minimize(
      params,
      [&space](const tuner::Configuration& c) { return synth_eval(space, c, 23); });
  plain.stop();

  Client client(resilient_config(pair.primary->port()));
  const std::string id = client.open(params, "race#1");
  for (int i = 0; i < 5; ++i) {
    const auto config = client.ask(id);
    ASSERT_TRUE(config.has_value());
    (void)client.tell(id, synth_eval(space, *config, 23));
  }
  // The in-flight tell: seq 6 reaches the primary (journaled + shipped,
  // so it IS acknowledged durably) but the client never sees the ack.
  const auto sixth = client.ask(id);
  ASSERT_TRUE(sixth.has_value());
  Json in_flight = Json::object();
  in_flight.set("op", "tell");
  in_flight.set("session", id);
  in_flight.set("seq", std::uint64_t{6});
  encode_evaluation_into(in_flight, synth_eval(space, *sixth, 23));
  (void)client.call(in_flight);  // ack dropped on the floor by this test

  // The primary dies; the follower is promoted.
  pair.primary->stop();
  pair.primary.reset();
  pair.standby->promote();

  // The client's retry of seq 6 lands on the new primary: it must be
  // acknowledged as a duplicate, not applied a second time.
  Client retry(resilient_config(pair.standby->port()));
  retry.connect();
  const Json ack = retry.call(in_flight);
  const Json* duplicate = ack.find("duplicate");
  ASSERT_NE(duplicate, nullptr);
  EXPECT_TRUE(duplicate->as_bool());

  // Finish on the promoted follower: raw tells with explicit seqs so the
  // watermark keeps advancing exactly as a reconnecting client would.
  std::uint64_t seq = 7;
  while (const auto config = retry.ask(id)) {
    Json tell = Json::object();
    tell.set("op", "tell");
    tell.set("session", id);
    tell.set("seq", seq++);
    encode_evaluation_into(tell, synth_eval(space, *config, 23));
    (void)retry.call(tell);
  }
  const Client::RemoteResult resumed = retry.result(id);
  EXPECT_TRUE(same_result(baseline.result, resumed.result))
      << "the promotion race double-applied or dropped the in-flight tell";
}

}  // namespace
}  // namespace repro::service
