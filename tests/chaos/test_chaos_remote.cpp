// End-to-end chaos: a remote tuning campaign driven through a
// fault-injecting client (seeded drops, torn writes, short reads, delays)
// with retries/reconnect/idempotency enabled must produce results
// byte-identical to a fault-free campaign — and the server must come out
// healthy, with every injected fault absorbed by the resilience machinery.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"
#include "tests/service/service_test_util.hpp"
#include "tuner/registry.hpp"

namespace repro::service {
namespace {

using service_test::client_config;
using service_test::synth_objective;
using service_test::tiny_space;

OpenParams tiny_open(const std::string& algorithm, std::size_t budget,
                     std::uint64_t seed) {
  OpenParams params;
  params.algorithm = algorithm;
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

bool same_result(const tuner::TuneResult& a, const tuner::TuneResult& b) {
  return a.best_config == b.best_config && a.found_valid == b.found_valid &&
         a.evaluations_used == b.evaluations_used &&
         std::memcmp(&a.best_value, &b.best_value, sizeof(double)) == 0;
}

ClientConfig chaos_config(std::uint16_t port, double rate, std::uint64_t seed) {
  ClientConfig config = client_config(port, "chaos");
  config.max_retries = 16;
  config.backoff_initial_ms = 1;
  config.backoff_max_ms = 8;
  config.chaos = ChaosModel::with_rate(rate);
  config.chaos.delay_us = 100;  // keep injected delays negligible
  config.chaos_seed = seed;
  return config;
}

TEST(ChaosRemote, CampaignUnderChaosIsByteIdenticalToCleanRun) {
  ServerConfig server_config;
  server_config.connection_threads = 4;
  TuneServer server(server_config);
  server.start();
  const tuner::ParamSpace space = tiny_space();

  for (const std::string& algorithm : tuner::paper_algorithms()) {
    const OpenParams params = tiny_open(algorithm, 18, 31);
    const tuner::Objective objective = synth_objective(space, /*salt=*/55);

    Client clean(client_config(server.port(), "clean"));
    clean.connect();
    const Client::RemoteResult baseline = clean.remote_minimize(params, objective);
    clean.disconnect();

    // 12% of operations fault; deterministic seed per algorithm, so this
    // test never flakes — the same faults land in the same places forever.
    Client chaotic(chaos_config(server.port(), 0.12,
                                seed_from_string("chaos:" + algorithm)));
    const Client::RemoteResult stressed = chaotic.remote_minimize(params, objective);
    EXPECT_TRUE(same_result(baseline.result, stressed.result))
        << algorithm << " diverged under chaos (retries=" << chaotic.retries()
        << " reconnects=" << chaotic.reconnects() << ")";
    chaotic.disconnect();
  }

  // The machinery was actually exercised: faults landed server-side too
  // (torn frames surface as mid-frame EOFs on healthy connections).
  EXPECT_GT(server.connections_accepted(), 5u);
  server.stop();
}

TEST(ChaosRemote, FaultsActuallyFiredAndWereRetried) {
  TuneServer server((ServerConfig()));
  server.start();
  const tuner::ParamSpace space = tiny_space();
  const OpenParams params = tiny_open("rs", 30, 9);

  Client chaotic(chaos_config(server.port(), 0.25, 4242));
  const Client::RemoteResult result =
      chaotic.remote_minimize(params, synth_objective(space, 55));
  EXPECT_TRUE(result.result.evaluations_used > 0);
  // At a 25% fault rate over ~60+ framed exchanges the campaign cannot have
  // run clean: retries and reconnects must be nonzero (deterministic seed).
  EXPECT_GT(chaotic.retries(), 0u);
  EXPECT_GT(chaotic.reconnects(), 0u);
  chaotic.disconnect();
  server.stop();
}

TEST(ChaosRemote, AdmissionPushbackIsHonoredByBackoff) {
  // A one-session server: the second open gets RETRY_LATER and must succeed
  // after the first session closes — the client waits out the hint instead
  // of failing.
  ServerConfig config;
  config.limits.max_sessions = 1;
  config.limits.retry_after_ms = 20;
  TuneServer server(config);
  server.start();

  Client first(client_config(server.port(), "first"));
  first.connect();
  const std::string held = first.open(tiny_open("rs", 10, 1));

  ClientConfig retry_config = client_config(server.port(), "second");
  retry_config.max_retries = 30;
  retry_config.backoff_initial_ms = 1;
  Client second(retry_config);
  second.connect();

  std::thread releaser([&first, &held] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    first.close_session(held);
  });
  // Blocks through several RETRY_LATER rounds, then succeeds.
  const std::string id = second.open(tiny_open("rs", 10, 2), "second#1");
  EXPECT_FALSE(id.empty());
  releaser.join();
  second.close_session(id);
  first.disconnect();
  second.disconnect();
  server.stop();
}

}  // namespace
}  // namespace repro::service
