// ChaosSocket unit tests: a disabled injector is a bit-exact pass-through
// that never draws, the same seed replays the same fault placement, and an
// injected fault kills the real socket so the peer observes a genuine
// mid-frame EOF rather than a simulated one.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/socket.hpp"
#include "service/chaos_socket.hpp"
#include "service/protocol.hpp"

namespace repro::service {
namespace {

struct LoopbackPair {
  ListenSocket listener;
  Socket client;
  Socket server;

  LoopbackPair() {
    listener = ListenSocket::listen_loopback(0);
    client = Socket::connect_loopback(listener.port());
    EXPECT_EQ(listener.accept(&server), Socket::Io::kOk);
  }
};

/// Drive `writes` frame writes through an injector and record, per write,
/// whether it survived. The fault script of a seeded injector is exactly
/// this vector plus its counters.
std::vector<bool> write_script(ChaosSocket& chaos, std::size_t writes) {
  std::vector<bool> survived;
  const std::string frame = "{\"op\":\"ping\"}\n";
  for (std::size_t i = 0; i < writes; ++i) {
    survived.push_back(chaos.write_all(frame.data(), frame.size()));
    if (!survived.back()) break;  // the connection is dead past a drop
  }
  return survived;
}

TEST(ChaosSocket, DisabledIsAPassThroughThatNeverDraws) {
  LoopbackPair pair;
  ChaosSocket chaos(pair.client);
  ASSERT_FALSE(chaos.enabled());

  const std::string frame = "{\"a\":1}\n";
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(chaos.write_all(frame.data(), frame.size()));
  }
  // Everything arrives intact on the peer.
  FrameReader reader(pair.server);
  std::string line;
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
    EXPECT_EQ(line, "{\"a\":1}");
  }
  EXPECT_EQ(chaos.counters().drops, 0u);
  EXPECT_EQ(chaos.counters().torn_writes, 0u);
  EXPECT_EQ(chaos.counters().short_reads, 0u);
  EXPECT_EQ(chaos.counters().delays, 0u);
}

TEST(ChaosSocket, SameSeedReplaysTheSameFaultScript) {
  const ChaosModel model = ChaosModel::with_rate(0.4);
  ASSERT_TRUE(model.enabled);

  std::vector<bool> first;
  ChaosCounters first_counters;
  {
    LoopbackPair pair;
    ChaosSocket chaos(pair.client, model, /*seed=*/12345);
    first = write_script(chaos, 64);
    first_counters = chaos.counters();
  }
  {
    LoopbackPair pair;
    ChaosSocket chaos(pair.client, model, /*seed=*/12345);
    EXPECT_EQ(write_script(chaos, 64), first);
    EXPECT_EQ(chaos.counters().drops, first_counters.drops);
    EXPECT_EQ(chaos.counters().torn_writes, first_counters.torn_writes);
    EXPECT_EQ(chaos.counters().delays, first_counters.delays);
  }
  // At a 40% fault rate a 64-write script cannot run clean.
  EXPECT_FALSE(first.empty());
  EXPECT_FALSE(first.back());
}

TEST(ChaosSocket, InjectedDropSurfacesAsRealMidFrameEofOnThePeer) {
  // Force the very first write to die: rate 1.0 means every draw faults.
  ChaosModel model = ChaosModel::with_rate(1.0);
  model.delay_probability = 0.0;  // keep the test instant
  LoopbackPair pair;
  ChaosSocket chaos(pair.client, model, /*seed=*/7);

  const std::string frame = "{\"op\":\"status\",\"pad\":\"xxxxxxxxxxxxxxxx\"}\n";
  EXPECT_FALSE(chaos.write_all(frame.data(), frame.size()));
  EXPECT_GE(chaos.counters().drops + chaos.counters().torn_writes, 1u);

  // The peer sees either an orderly close (clean drop: nothing sent) or a
  // torn stream (prefix sent, then EOF) — never a complete frame.
  FrameReader reader(pair.server);
  std::string line;
  FrameStatus status = reader.next(&line);
  while (status == FrameStatus::kTimeout) status = reader.next(&line);
  EXPECT_TRUE(status == FrameStatus::kClosed || status == FrameStatus::kMidFrameEof);
}

TEST(ChaosSocket, ShortReadsFragmentButDoNotCorrupt) {
  // Short reads only: the frame must reassemble byte-identically.
  ChaosModel model;
  model.enabled = true;
  model.short_read_probability = 1.0;
  LoopbackPair pair;
  const std::string frame = "{\"op\":\"ping\",\"pad\":\"0123456789abcdef\"}\n";
  ASSERT_TRUE(pair.client.write_all(frame.data(), frame.size()));

  ChaosSocket chaos(pair.server, model, /*seed=*/99);
  std::string assembled;
  char buffer[256];
  while (assembled.size() < frame.size()) {
    std::size_t got = 0;
    ASSERT_EQ(chaos.read_some(buffer, sizeof(buffer), &got), Socket::Io::kOk);
    ASSERT_GT(got, 0u);
    ASSERT_LE(got, 4u);  // capped capacity: the fragmentation actually happened
    assembled.append(buffer, got);
  }
  EXPECT_EQ(assembled, frame);
  EXPECT_GE(chaos.counters().short_reads, frame.size() / 4);
}

}  // namespace
}  // namespace repro::service
