// Process-level crash tests against the real binaries: a `tuned` daemon
// SIGKILL'd mid-session must come back (same --state-dir, same port) with
// the session recovered from its WAL, and a resilient client must ride
// through the restart to a result byte-identical to an uninterrupted run.
// Also the campaign-level drill: a tune_client study killed at every cell
// boundary and resumed (--save-csv/--resume/--stop-after) against
// daemon restarts produces a byte-identical campaign CSV.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "tests/service/service_test_util.hpp"
#include "tuner/registry.hpp"

#ifndef REPRO_TUNED_BIN
#error "REPRO_TUNED_BIN must point at the tuned executable"
#endif
#ifndef REPRO_TUNE_CLIENT_BIN
#error "REPRO_TUNE_CLIENT_BIN must point at the tune_client executable"
#endif

namespace repro::service {
namespace {

using service_test::synth_eval;

std::string fresh_dir() {
  char templ[] = "/tmp/repro_chaos_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Spawn a child with stdout+stderr redirected to `out_path`. Returns the
/// child pid (or -1).
pid_t spawn(const std::vector<std::string>& argv, const std::string& out_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    (void)::dup2(fd, STDOUT_FILENO);
    (void)::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& arg : argv) args.push_back(const_cast<char*>(arg.c_str()));
  args.push_back(nullptr);
  ::execv(args[0], args.data());
  ::_exit(127);
}

/// A `tuned` child process. SIGKILL on destruction unless already reaped.
struct Daemon {
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::string out_path;

  Daemon(const std::string& state_dir, std::uint16_t fixed_port,
         const std::string& log_path)
      : out_path(log_path) {
    pid = spawn({REPRO_TUNED_BIN, "--port", std::to_string(fixed_port),
                 "--state-dir", state_dir},
                out_path);
    if (pid <= 0) return;
    // Wait for the machine-readable ready line (recovery happens first, so
    // this also synchronizes with WAL replay).
    for (int i = 0; i < 500 && port == 0; ++i) {
      const std::string text = read_file(out_path);
      const std::size_t at = text.find("ready port=");
      if (at != std::string::npos) {
        port = static_cast<std::uint16_t>(
            std::stoul(text.substr(at + std::strlen("ready port="))));
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_NE(port, 0) << "tuned did not become ready: " << read_file(out_path);
  }

  void kill9() {
    if (pid <= 0) return;
    (void)::kill(pid, SIGKILL);
    (void)::waitpid(pid, nullptr, 0);
    pid = -1;
  }

  ~Daemon() { kill9(); }
};

/// Run a child to completion and return its exit code (-1 on abnormal exit).
int run(const std::vector<std::string>& argv, const std::string& out_path) {
  const pid_t pid = spawn(argv, out_path);
  if (pid <= 0) return -1;
  int status = 0;
  (void)::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

OpenParams tiny_open(const std::string& algorithm, std::size_t budget,
                     std::uint64_t seed) {
  OpenParams params;
  params.algorithm = algorithm;
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

ClientConfig resilient_config(std::uint16_t port) {
  ClientConfig config;
  config.port = port;
  config.name = "killtest";
  config.max_retries = 20;
  config.backoff_initial_ms = 25;
  config.backoff_max_ms = 400;
  return config;
}

bool same_result(const tuner::TuneResult& a, const tuner::TuneResult& b) {
  return a.best_config == b.best_config && a.found_valid == b.found_valid &&
         a.evaluations_used == b.evaluations_used &&
         std::memcmp(&a.best_value, &b.best_value, sizeof(double)) == 0;
}

TEST(DaemonKill, Sigkill9MidSessionRecoversByteIdenticalForEveryAlgorithm) {
  const tuner::ParamSpace space =
      tiny_open("rs", 1, 1).make_space();  // shared by all cells
  for (const std::string& algorithm : tuner::paper_algorithms()) {
    const std::string dir = fresh_dir();
    const OpenParams params = tiny_open(algorithm, 16, 42);
    auto daemon = std::make_unique<Daemon>(dir, 0, dir + "/tuned1.log");
    const std::uint16_t port = daemon->port;

    // Uninterrupted baseline against the same daemon.
    Client clean(resilient_config(port));
    const Client::RemoteResult baseline =
        clean.remote_minimize(params, [&space](const tuner::Configuration& c) {
          return synth_eval(space, c, 13);
        });
    clean.disconnect();

    // Interrupted run: open with a token, apply 5 tells, SIGKILL the
    // daemon, restart it on the same port over the same state dir, and
    // let the client's retry machinery carry the session to completion.
    Client client(resilient_config(port));
    const std::string id = client.open(params, "kill#" + algorithm);
    for (int i = 0; i < 5; ++i) {
      const std::optional<tuner::Configuration> config = client.ask(id);
      ASSERT_TRUE(config.has_value());
      (void)client.tell(id, synth_eval(space, *config, 13));
    }
    daemon->kill9();
    daemon = std::make_unique<Daemon>(dir, port, dir + "/tuned2.log");
    ASSERT_EQ(daemon->port, port);

    tuner::TuneResult resumed;
    while (const std::optional<tuner::Configuration> config = client.ask(id)) {
      (void)client.tell(id, synth_eval(space, *config, 13));
    }
    resumed = client.result(id).result;
    client.close_session(id);
    EXPECT_GT(client.reconnects(), 0u) << algorithm;
    EXPECT_TRUE(same_result(baseline.result, resumed))
        << algorithm << " diverged across a daemon SIGKILL";
    client.disconnect();
  }
}

TEST(DaemonKill, CampaignKilledAtEveryCellBoundaryRecoversTheSameCsv) {
  const std::string dir = fresh_dir();
  const std::vector<std::string> common = {
      REPRO_TUNE_CLIENT_BIN, "--benchmark", "mandelbrot", "--arch", "rtxtitan",
      "--budget",            "12",          "--seed",     "2022",   "--retries",
      "3"};

  // One-shot baseline campaign (all five paper cells).
  {
    Daemon daemon(dir + "/state", 0, dir + "/tuned_full.log");
    std::vector<std::string> argv = common;
    argv.insert(argv.end(), {"--port", std::to_string(daemon.port), "--save-csv",
                             dir + "/full.csv"});
    ASSERT_EQ(run(argv, dir + "/full.out"), 0) << read_file(dir + "/full.out");
  }

  // Interrupted campaign: the client exits after every single cell
  // (--stop-after 1 == a kill at the cell boundary) and the daemon is
  // SIGKILL'd and restarted between cells. --resume must stitch the exact
  // same CSV back together.
  for (int cell = 0; cell < 5; ++cell) {
    // Per-cell log path: the ready-line parser must never read a stale
    // "ready port=" left by the previous incarnation.
    Daemon daemon(dir + "/state", 0,
                  dir + "/tuned_part" + std::to_string(cell) + ".log");
    std::vector<std::string> argv = common;
    argv.insert(argv.end(), {"--port", std::to_string(daemon.port), "--save-csv",
                             dir + "/part.csv", "--resume", "--stop-after", "1"});
    ASSERT_EQ(run(argv, dir + "/part.out"), 0)
        << "cell " << cell << ": " << read_file(dir + "/part.out");
    daemon.kill9();
  }
  EXPECT_EQ(read_file(dir + "/part.csv"), read_file(dir + "/full.csv"));
}

}  // namespace
}  // namespace repro::service
