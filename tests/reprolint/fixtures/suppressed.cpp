// Fixture: every hazard below carries a NOLINT directive, exercising each
// suppression spelling (rule list, NOLINTNEXTLINE, bare NOLINT, and the
// "reprolint" wildcard list entry). The linter must report zero findings
// here and count exactly four suppressions. Never compiled — data for
// tests/reprolint/test_reprolint.cpp.
#include <chrono>
#include <random>
#include <thread>

int suppressed_rand() { return rand(); }  // NOLINT(reprolint-rand) fixture: rule-list suppression

long suppressed_clock() {
  // NOLINTNEXTLINE(reprolint-wall-clock) fixture: next-line suppression
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

unsigned suppressed_device() {
  std::random_device device;  // NOLINT fixture: bare NOLINT silences every rule
  return device();
}

void suppressed_thread() {
  std::thread worker([] {});  // NOLINT(reprolint) fixture: wildcard list entry
  worker.join();
}
