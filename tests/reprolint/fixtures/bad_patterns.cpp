// Fixture: deliberately nondeterministic code. Every reprolint rule must
// fire at least once in this file. It is never compiled — it is data for
// the gate-demonstration test (reprolint_detects_banned_patterns) and for
// tests/reprolint/test_reprolint.cpp.
#include <atomic>
#include <chrono>
#include <immintrin.h>
#include <execution>
#include <numeric>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

int bad_rand() { return rand(); }

unsigned bad_seed_source() {
  std::random_device device;
  return device();
}

long bad_wall_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_c_clock() {
  timespec ts{};
  clock_gettime(0, &ts);
  return ts.tv_sec;
}

int bad_unseeded_engine() {
  std::mt19937 engine;
  return static_cast<int>(engine());
}

double bad_distribution(std::mt19937& engine) {
  std::uniform_real_distribution<double> distribution(0.0, 1.0);
  return distribution(engine);
}

void bad_shuffle(std::vector<int>& values, std::mt19937& engine) {
  std::shuffle(values.begin(), values.end(), engine);
}

int bad_iteration(const std::unordered_map<int, int>& table) {
  int sum = 0;
  for (const auto& [key, value] : table) sum += key * value;
  return sum;
}

std::atomic<double> bad_shared_total{0.0};

double bad_parallel_reduce(const std::vector<double>& values) {
  return std::reduce(std::execution::par, values.begin(), values.end());
}

// Horizontal SIMD reduce: lane-combination order comes from the instruction,
// so switching dispatch tiers reassociates the sum. (Fixture only — never
// compiled; the intrinsic needs an AVX-512 target.)
double bad_simd_reduce(__m512d accumulator) {
  return _mm512_reduce_add_pd(accumulator);
}

void bad_raw_thread() {
  std::thread worker([] {});
  worker.join();
}
