// Fixture: hazards that the shipped allowlist forgives in specific paths
// (wall clocks in logging/benchmarks, raw threads in the pool and tests).
// The unit test lints this content under allowlisted and non-allowlisted
// virtual paths to verify path scoping; the CLI gate test scans it as a
// plain positive. Never compiled.
#include <chrono>
#include <thread>

long allowlisted_timestamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

void allowlisted_driver_thread() {
  std::thread driver([] {});
  driver.join();
}
