// Unit tests for the reprolint library: every rule fires on the bad
// fixture, every suppression spelling silences (and is counted), the
// allowlist is path-scoped, unordered-container names propagate across
// files, and the JSON report schema stays parseable and versioned.
//
// Hazard patterns appear below only inside string literals — the
// tokenizer never lints string contents, so this file stays clean under
// the tree gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "common/json.hpp"
#include "reprolint.hpp"

namespace {

using reprolint::Finding;
using reprolint::Options;
using reprolint::Report;

std::map<std::string, int> count_by_rule(const Report& report) {
  std::map<std::string, int> counts;
  for (const Finding& finding : report.findings) ++counts[finding.rule];
  return counts;
}

Report lint_fixture(const char* name, const Options& options) {
  Report report;
  const std::string path = std::string(REPROLINT_FIXTURE_DIR) + "/" + name;
  EXPECT_TRUE(reprolint::lint_file(path, options, report)) << path;
  return report;
}

TEST(Reprolint, RuleSetIsStable) {
  const std::vector<std::string> expected = {
      "reprolint-rand",
      "reprolint-random-device",
      "reprolint-wall-clock",
      "reprolint-unseeded-rng",
      "reprolint-nonportable-random",
      "reprolint-unordered-iteration",
      "reprolint-nondet-reduction",
      "reprolint-raw-thread"};
  EXPECT_EQ(reprolint::rule_names(), expected);
}

TEST(Reprolint, BadFixtureTripsEveryRule) {
  const Report report = lint_fixture("bad_patterns.cpp", Options{});
  const auto counts = count_by_rule(report);
  for (const std::string& rule : reprolint::rule_names()) {
    EXPECT_TRUE(counts.count(rule) != 0 && counts.at(rule) >= 1)
        << "rule never fired: " << rule;
  }
  EXPECT_EQ(report.suppressed, 0u);
  EXPECT_EQ(report.files_scanned, 1u);
  for (const Finding& finding : report.findings) {
    EXPECT_GT(finding.line, 0) << finding.rule;
    EXPECT_FALSE(finding.snippet.empty()) << finding.rule;
    EXPECT_FALSE(finding.message.empty()) << finding.rule;
  }
}

TEST(Reprolint, SuppressedFixtureIsCleanAndCounted) {
  const Report report = lint_fixture("suppressed.cpp", Options{});
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().rule << " leaked at line "
      << report.findings.front().line;
  // One per suppression spelling: rule list, NOLINTNEXTLINE, bare NOLINT,
  // and the `reprolint` wildcard list entry.
  EXPECT_EQ(report.suppressed, 4u);
}

TEST(Reprolint, NolintOnlyCoversItsOwnLineAndRule) {
  const std::string src =
      "int a() { return rand(); }  // NOLINT(reprolint-rand) ok\n"
      "int b() { return rand(); }\n"
      "// NOLINTNEXTLINE(reprolint-rand)\n"
      "int c() { return rand(); }\n"
      "int d() { return rand(); }  // NOLINT(reprolint-wall-clock) wrong rule\n";
  Report report;
  reprolint::lint_content("src/x.cpp", src, Options{}, report);
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[0].line, 2);
  EXPECT_EQ(report.findings[1].line, 5);
  EXPECT_EQ(report.suppressed, 2u);
}

TEST(Reprolint, DefaultAllowlistIsPathScoped) {
  const std::string clock_src =
      "long stamp() {\n"
      "  return std::chrono::system_clock::now().time_since_epoch().count();\n"
      "}\n";
  const Options options = reprolint::default_options();

  Report allowed;
  reprolint::lint_content("src/common/log.cpp", clock_src, options, allowed);
  EXPECT_TRUE(allowed.findings.empty());
  EXPECT_EQ(allowed.suppressed, 0u);  // allowlisted, not NOLINT-suppressed

  Report flagged;
  reprolint::lint_content("src/harness/study.cpp", clock_src, options, flagged);
  ASSERT_EQ(flagged.findings.size(), 1u);
  EXPECT_EQ(flagged.findings[0].rule, "reprolint-wall-clock");
}

TEST(Reprolint, AllowlistedFixtureUnderVirtualPaths) {
  // The same fixture content is clean under allowlisted paths and dirty
  // under an ordinary source path.
  const std::string path = std::string(REPROLINT_FIXTURE_DIR) + "/allowlisted.cpp";
  Report bare;
  ASSERT_TRUE(reprolint::lint_file(path, Options{}, bare));
  ASSERT_EQ(bare.findings.size(), 2u);

  const Options options = reprolint::default_options();
  for (const Finding& finding : bare.findings) {
    Report report;
    const char* virtual_path = finding.rule == "reprolint-wall-clock"
                                   ? "bench/micro/bench_micro.cpp"
                                   : "tests/race/test_race_thread_pool.cpp";
    reprolint::lint_content(virtual_path, finding.snippet, options, report);
    EXPECT_TRUE(report.findings.empty()) << finding.rule;
  }
}

TEST(Reprolint, SimdHorizontalReduceFiresAndJustifiedNolintSilences) {
  // An unordered SIMD lane reduction is a nondet-reduction hazard; the
  // sanctioned fixed-order use in common/simd.cpp carries a justified
  // NOLINT, which must count as suppressed rather than leak a finding.
  const std::string bare =
      "double total(__m256d acc) { return _mm256_hadd_pd(acc, acc)[0]; }\n";
  Report flagged;
  reprolint::lint_content("src/x.cpp", bare, Options{}, flagged);
  ASSERT_EQ(flagged.findings.size(), 1u);
  EXPECT_EQ(flagged.findings[0].rule, "reprolint-nondet-reduction");
  EXPECT_EQ(flagged.findings[0].line, 1);

  const std::string justified =
      "const __m128d pair = _mm_hadd_pd(a, b);  "
      "// NOLINT(reprolint-nondet-reduction) fixed pairwise combine\n";
  Report suppressed;
  reprolint::lint_content("src/x.cpp", justified, Options{}, suppressed);
  EXPECT_TRUE(suppressed.findings.empty());
  EXPECT_EQ(suppressed.suppressed, 1u);
}

TEST(Reprolint, UnorderedNamesPropagateAcrossFiles) {
  // Declaration in one file, iteration in another: only the cross-file
  // name set makes the second file's range-for detectable.
  const std::string header = "std::unordered_map<int, long> totals_;\n";
  const std::string source =
      "long sum() {\n"
      "  long s = 0;\n"
      "  for (const auto& [k, v] : totals_) s += v;\n"
      "  return s;\n"
      "}\n";

  Report without;
  reprolint::lint_content("src/a.cpp", source, Options{}, without);
  EXPECT_TRUE(without.findings.empty());

  Options options;
  reprolint::collect_unordered_names(header, options.unordered_names);
  EXPECT_EQ(options.unordered_names.count("totals_"), 1u);
  Report with;
  reprolint::lint_content("src/a.cpp", source, options, with);
  ASSERT_EQ(with.findings.size(), 1u);
  EXPECT_EQ(with.findings[0].rule, "reprolint-unordered-iteration");
  EXPECT_EQ(with.findings[0].line, 3);
}

TEST(Reprolint, NestedUnorderedInsideOrderedContainerIsNotCollected) {
  std::unordered_set<std::string> names;
  reprolint::collect_unordered_names(
      "std::map<int, std::unordered_set<int>> by_key_;\n", names);
  EXPECT_EQ(names.count("by_key_"), 0u);
}

TEST(Reprolint, JsonReportSchemaIsStable) {
  Report report;
  report.files_scanned = 3;
  report.suppressed = 2;
  report.findings.push_back({"src/a \"quoted\".cpp", 7, "reprolint-rand",
                             "message with \\ backslash", "rand();\ttabbed"});

  const repro::Json parsed = repro::Json::parse(reprolint::to_json(report));
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.find("tool")->as_string(), "reprolint");
  EXPECT_EQ(parsed.find("schema_version")->as_int64(), 1);
  EXPECT_EQ(parsed.find("files_scanned")->as_int64(), 3);
  EXPECT_EQ(parsed.find("suppressed")->as_int64(), 2);
  const auto& findings = parsed.find("findings")->as_array();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].find("file")->as_string(), "src/a \"quoted\".cpp");
  EXPECT_EQ(findings[0].find("line")->as_int64(), 7);
  EXPECT_EQ(findings[0].find("rule")->as_string(), "reprolint-rand");
  EXPECT_EQ(findings[0].find("message")->as_string(), "message with \\ backslash");
  EXPECT_EQ(findings[0].find("snippet")->as_string(), "rand();\ttabbed");
}

TEST(Reprolint, JsonEmptyReportParses) {
  const repro::Json parsed = repro::Json::parse(reprolint::to_json(Report{}));
  EXPECT_TRUE(parsed.find("findings")->as_array().empty());
  EXPECT_EQ(parsed.find("files_scanned")->as_int64(), 0);
}

TEST(Reprolint, HazardsInsideStringsAndCommentsAreIgnored) {
  const std::string src =
      "const char* kDoc = \"call rand() and std::random_device here\";\n"
      "// rand() in a comment, std::thread too\n"
      "/* std::system_clock::now() in a block comment */\n"
      "const char* kRaw = R\"(rand(); std::shuffle)\";\n";
  Report report;
  reprolint::lint_content("src/doc.cpp", src, Options{}, report);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 0u);
}

}  // namespace
