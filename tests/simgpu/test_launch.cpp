// Launch configuration and geometry derivation, including the paper's
// work-group constraint and the extent-clamping rules.

#include <gtest/gtest.h>

#include "simgpu/arch.hpp"
#include "simgpu/launch.hpp"

namespace repro::simgpu {
namespace {

TEST(KernelConfig, RangeValidation) {
  EXPECT_TRUE((KernelConfig{1, 1, 1, 1, 1, 1}).in_range());
  EXPECT_TRUE((KernelConfig{16, 16, 16, 8, 8, 8}).in_range());
  EXPECT_FALSE((KernelConfig{0, 1, 1, 1, 1, 1}).in_range());
  EXPECT_FALSE((KernelConfig{17, 1, 1, 1, 1, 1}).in_range());
  EXPECT_FALSE((KernelConfig{1, 1, 1, 9, 1, 1}).in_range());
}

TEST(KernelConfig, WorkGroupConstraint) {
  EXPECT_TRUE((KernelConfig{1, 1, 1, 8, 8, 4}).satisfies_wg_constraint());   // 256
  EXPECT_FALSE((KernelConfig{1, 1, 1, 8, 8, 5}).satisfies_wg_constraint());  // 320
  EXPECT_FALSE((KernelConfig{1, 1, 1, 8, 8, 8}).satisfies_wg_constraint());  // 512
}

TEST(KernelConfig, Accessors) {
  const KernelConfig config{2, 3, 4, 5, 6, 7};
  EXPECT_EQ(config.wg_threads(), 210u);
  EXPECT_EQ(config.coarsening(), 24u);
  EXPECT_NE(config.to_string().find("c=(2,3,4)"), std::string::npos);
}

TEST(Geometry, BasicDerivation) {
  const GpuArch arch = titan_v();
  const GridExtent extent{1024, 512, 1};
  const KernelConfig config{2, 1, 1, 8, 4, 1};
  const LaunchGeometry geometry = derive_geometry(extent, config, arch);
  EXPECT_EQ(geometry.threads_x, 512u);
  EXPECT_EQ(geometry.threads_y, 512u);
  EXPECT_EQ(geometry.threads_z, 1u);
  EXPECT_EQ(geometry.wgs_x, 64u);
  EXPECT_EQ(geometry.wgs_y, 128u);
  EXPECT_EQ(geometry.wg_threads, 32u);
  EXPECT_EQ(geometry.warps_per_wg, 1u);
  EXPECT_DOUBLE_EQ(geometry.lane_efficiency, 1.0);
}

TEST(Geometry, CeilDivisionAndPartialWarps) {
  const GpuArch arch = titan_v();
  const GridExtent extent{100, 1, 1};
  const KernelConfig config{3, 1, 1, 7, 1, 1};
  const LaunchGeometry geometry = derive_geometry(extent, config, arch);
  EXPECT_EQ(geometry.threads_x, 34u);  // ceil(100/3)
  EXPECT_EQ(geometry.wgs_x, 5u);       // ceil(34/7)
  EXPECT_EQ(geometry.warps_per_wg, 1u);
  EXPECT_DOUBLE_EQ(geometry.lane_efficiency, 7.0 / 32.0);
}

TEST(Geometry, MultiWarpWorkGroup) {
  const GpuArch arch = titan_v();
  const GridExtent extent{4096, 4096, 4};
  const KernelConfig config{1, 1, 1, 8, 8, 2};  // 128 threads
  const LaunchGeometry geometry = derive_geometry(extent, config, arch);
  EXPECT_EQ(geometry.warps_per_wg, 4u);
  EXPECT_DOUBLE_EQ(geometry.lane_efficiency, 1.0);
}

TEST(Geometry, WgZClampsOn2DGrid) {
  // Same request on a 2-D grid: wg_z collapses to 1 -> 64 threads, 2 warps.
  const GpuArch arch = titan_v();
  const LaunchGeometry geometry =
      derive_geometry({4096, 4096, 1}, {1, 1, 1, 8, 8, 2}, arch);
  EXPECT_EQ(geometry.wg_threads, 64u);
  EXPECT_EQ(geometry.warps_per_wg, 2u);
}

TEST(ClampToExtent, CoarseningClampsToExtent) {
  const KernelConfig config{16, 16, 16, 2, 2, 2};
  const KernelConfig eff = clamp_to_extent(config, {8192, 4, 1});
  EXPECT_EQ(eff.coarsen_x, 16u);
  EXPECT_EQ(eff.coarsen_y, 4u);
  EXPECT_EQ(eff.coarsen_z, 1u);
}

TEST(ClampToExtent, WgClampsToThreadGrid) {
  // 2-D kernel: wg_z must collapse to 1 (dead parameter).
  const KernelConfig config{1, 1, 1, 8, 8, 4};
  const KernelConfig eff = clamp_to_extent(config, {8192, 8192, 1});
  EXPECT_EQ(eff.wg_z, 1u);
  EXPECT_EQ(eff.wg_x, 8u);
  // 1-D kernel: wg_y and wg_z both collapse.
  const KernelConfig eff1d = clamp_to_extent(config, {8192, 1, 1});
  EXPECT_EQ(eff1d.wg_y, 1u);
  EXPECT_EQ(eff1d.wg_z, 1u);
}

TEST(ClampToExtent, InteractsWithCoarsening) {
  // extent.y = 8, coarsen_y = 8 -> 1 thread in y -> wg_y clamps to 1.
  const KernelConfig config{1, 8, 1, 4, 4, 1};
  const KernelConfig eff = clamp_to_extent(config, {64, 8, 1});
  EXPECT_EQ(eff.wg_y, 1u);
}

TEST(LaneCoords, XFastestLinearization) {
  const KernelConfig config{1, 1, 1, 4, 2, 2};
  EXPECT_EQ(lane_coords(0, config), (std::array<std::uint32_t, 3>{0, 0, 0}));
  EXPECT_EQ(lane_coords(3, config), (std::array<std::uint32_t, 3>{3, 0, 0}));
  EXPECT_EQ(lane_coords(4, config), (std::array<std::uint32_t, 3>{0, 1, 0}));
  EXPECT_EQ(lane_coords(8, config), (std::array<std::uint32_t, 3>{0, 0, 1}));
  EXPECT_EQ(lane_coords(15, config), (std::array<std::uint32_t, 3>{3, 1, 1}));
}

/// Property: total threads always cover the extent (no element unassigned).
class GeometryCoverage : public ::testing::TestWithParam<KernelConfig> {};

TEST_P(GeometryCoverage, ThreadsCoverExtent) {
  const GpuArch arch = gtx980();
  const GridExtent extent{777, 333, 1};
  const KernelConfig config = GetParam();
  const LaunchGeometry geometry = derive_geometry(extent, config, arch);
  const KernelConfig eff = clamp_to_extent(config, extent);
  EXPECT_GE(geometry.threads_x * eff.coarsen_x, extent.x);
  EXPECT_GE(geometry.threads_y * eff.coarsen_y, extent.y);
  EXPECT_GE(geometry.wgs_x * eff.wg_x, geometry.threads_x);
  EXPECT_GE(geometry.wgs_y * eff.wg_y, geometry.threads_y);
  EXPECT_GT(geometry.lane_efficiency, 0.0);
  EXPECT_LE(geometry.lane_efficiency, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Configs, GeometryCoverage,
                         ::testing::Values(KernelConfig{1, 1, 1, 1, 1, 1},
                                           KernelConfig{16, 16, 16, 8, 8, 4},
                                           KernelConfig{3, 5, 7, 2, 3, 1},
                                           KernelConfig{16, 1, 1, 1, 8, 1},
                                           KernelConfig{2, 9, 1, 5, 5, 2}));

}  // namespace
}  // namespace repro::simgpu
