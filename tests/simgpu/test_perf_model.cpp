// Analytical performance model: validity rules, determinism, landscape
// structure (the features the study depends on), and the memoizing cache.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "simgpu/arch.hpp"
#include "simgpu/perf_model.hpp"

namespace repro::simgpu {
namespace {

KernelCostSpec streaming_kernel(std::uint64_t width = 4096, std::uint64_t height = 4096) {
  KernelCostSpec spec;
  spec.name = "stream_test";
  spec.extent = {width, height, 1};
  spec.flops_per_element = 2.0;
  WarpAccessSpec pattern;
  pattern.element_bytes = 4;
  pattern.pitch_x = width;
  pattern.pitch_y = height;
  spec.loads = {pattern};
  spec.stores = {pattern};
  spec.codegen_lottery_sigma = 0.0;  // deterministic structure for tests
  return spec;
}

TEST(PerfModel, RejectsOutOfRange) {
  const PerfModel model(streaming_kernel());
  const auto result = model.evaluate(titan_v(), {0, 1, 1, 1, 1, 1});
  EXPECT_FALSE(result.valid);
  EXPECT_STREQ(result.invalid_reason, "parameter out of range");
}

TEST(PerfModel, RejectsWgConstraintViolation) {
  const PerfModel model(streaming_kernel());
  const auto result = model.evaluate(titan_v(), {1, 1, 1, 8, 8, 8});
  EXPECT_FALSE(result.valid);
  EXPECT_STREQ(result.invalid_reason, "work-group constraint violated");
}

TEST(PerfModel, ValidConfigHasPositiveTime) {
  const PerfModel model(streaming_kernel());
  const auto result = model.evaluate(titan_v(), {1, 1, 1, 8, 4, 1});
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.time_us, titan_v().launch_overhead_us);
  EXPECT_GT(result.occupancy, 0.0);
  EXPECT_LE(result.occupancy, 1.0);
}

TEST(PerfModel, Deterministic) {
  const PerfModel model(streaming_kernel());
  const auto a = model.evaluate(titan_v(), {3, 2, 1, 4, 8, 1});
  const auto b = model.evaluate(titan_v(), {3, 2, 1, 4, 8, 1});
  EXPECT_DOUBLE_EQ(a.time_us, b.time_us);
}

TEST(PerfModel, DeadZParametersDoNotMatterFor2D) {
  // After extent clamping, coarsen_z and wg_z are dead for 2-D kernels.
  const PerfModel model(streaming_kernel());
  const auto base = model.evaluate(titan_v(), {2, 2, 1, 8, 4, 1});
  const auto z_heavy = model.evaluate(titan_v(), {2, 2, 16, 8, 4, 8});
  ASSERT_TRUE(base.valid);
  ASSERT_TRUE(z_heavy.valid);
  EXPECT_DOUBLE_EQ(base.time_us, z_heavy.time_us);
}

TEST(PerfModel, TinyWorkGroupsArePunished) {
  const PerfModel model(streaming_kernel());
  const auto good = model.evaluate(titan_v(), {1, 1, 1, 8, 4, 1});
  const auto lonely = model.evaluate(titan_v(), {1, 1, 1, 1, 1, 1});
  ASSERT_TRUE(good.valid);
  ASSERT_TRUE(lonely.valid);
  EXPECT_GT(lonely.time_us, 3.0 * good.time_us);
  EXPECT_LT(lonely.lane_efficiency, 0.05);
}

TEST(PerfModel, ExtremeCoarseningIsWorseThanModerate) {
  const PerfModel model(streaming_kernel());
  const auto moderate = model.evaluate(titan_v(), {2, 1, 1, 8, 4, 1});
  const auto extreme = model.evaluate(titan_v(), {16, 16, 1, 8, 4, 1});
  ASSERT_TRUE(moderate.valid);
  ASSERT_TRUE(extreme.valid);
  EXPECT_GT(extreme.time_us, moderate.time_us);
}

TEST(PerfModel, MemoryBoundKernelScalesWithBandwidth) {
  // Pure streaming: Titan V (653 GB/s) must beat GTX 980 (224 GB/s).
  KernelCostSpec spec = streaming_kernel(8192, 8192);
  spec.flops_per_element = 0.5;
  const PerfModel model(spec);
  const auto old_gpu = model.evaluate(gtx980(), {1, 1, 1, 8, 4, 1});
  const auto new_gpu = model.evaluate(titan_v(), {1, 1, 1, 8, 4, 1});
  ASSERT_TRUE(old_gpu.valid && new_gpu.valid);
  EXPECT_GT(old_gpu.time_us / new_gpu.time_us, 1.8);
}

TEST(PerfModel, SharedTilingKneeAppears) {
  KernelCostSpec spec = streaming_kernel();
  spec.shared_tiling_available = true;
  spec.stencil_radius = 3;
  const PerfModel model(spec);
  // Small tile fits; a huge wg*coarsening tile must not.
  const auto small = model.evaluate(titan_v(), {1, 1, 1, 8, 8, 1});
  const auto huge = model.evaluate(titan_v(), {16, 16, 1, 8, 8, 1});
  ASSERT_TRUE(small.valid && huge.valid);
  EXPECT_TRUE(small.used_shared_tiling);
  EXPECT_FALSE(huge.used_shared_tiling);
}

TEST(PerfModel, CodegenLotteryIsStableAndBounded) {
  KernelCostSpec spec = streaming_kernel();
  spec.codegen_lottery_sigma = 0.05;
  const PerfModel model(spec);
  const PerfModel model_clean(streaming_kernel());
  const KernelConfig config{2, 3, 1, 4, 4, 1};
  const auto noisy_a = model.evaluate(titan_v(), config);
  const auto noisy_b = model.evaluate(titan_v(), config);
  const auto clean = model_clean.evaluate(titan_v(), config);
  EXPECT_DOUBLE_EQ(noisy_a.time_us, noisy_b.time_us);  // stable, not noise
  EXPECT_NEAR(noisy_a.time_us / clean.time_us, 1.0, 0.30);
}

TEST(CachedPerfModel, PackUnpackRoundTrip) {
  for (std::size_t index : {std::size_t{0}, std::size_t{1}, std::size_t{4095},
                            std::size_t{123456}, CachedPerfModel::table_size() - 1}) {
    const KernelConfig config = CachedPerfModel::unpack(index);
    EXPECT_TRUE(config.in_range());
    EXPECT_EQ(CachedPerfModel::pack(config), index);
  }
}

TEST(CachedPerfModel, MatchesDirectEvaluation) {
  const PerfModel model(streaming_kernel());
  const CachedPerfModel cache(model, titan_v());
  for (const KernelConfig& config :
       {KernelConfig{1, 1, 1, 8, 4, 1}, KernelConfig{5, 2, 3, 2, 2, 2},
        KernelConfig{16, 16, 16, 1, 1, 1}}) {
    const auto direct = model.evaluate(titan_v(), model.effective_config(config));
    const double cached = cache.time_us(config);
    ASSERT_TRUE(direct.valid);
    EXPECT_NEAR(cached, direct.time_us, direct.time_us * 1e-6);
  }
}

TEST(CachedPerfModel, InvalidConfigsAreNaN) {
  const PerfModel model(streaming_kernel());
  const CachedPerfModel cache(model, titan_v());
  EXPECT_TRUE(std::isnan(cache.time_us({1, 1, 1, 8, 8, 8})));
  EXPECT_TRUE(std::isnan(cache.time_us({0, 1, 1, 1, 1, 1})));
}

TEST(CachedPerfModel, EquivalentConfigsShareSlot) {
  const PerfModel model(streaming_kernel());
  const CachedPerfModel cache(model, titan_v());
  // 2-D kernel: any coarsen_z / wg_z collapses to the same effective class.
  EXPECT_DOUBLE_EQ(cache.time_us({2, 2, 1, 4, 4, 1}),
                   cache.time_us({2, 2, 9, 4, 4, 7}));
}

/// Property sweep: every in-range, constraint-satisfying configuration is
/// either valid with a finite positive runtime, or cleanly invalid.
class PerfModelTotality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PerfModelTotality, EvaluateIsTotal) {
  const PerfModel model(streaming_kernel(512, 512));
  repro::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::size_t index = rng.next_below(CachedPerfModel::table_size());
    const KernelConfig config = CachedPerfModel::unpack(index);
    const auto result = model.evaluate(titan_v(), config);
    if (config.satisfies_wg_constraint()) {
      ASSERT_TRUE(result.valid) << config.to_string();
      EXPECT_TRUE(std::isfinite(result.time_us));
      EXPECT_GT(result.time_us, 0.0);
    } else {
      EXPECT_FALSE(result.valid);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerfModelTotality, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace repro::simgpu
