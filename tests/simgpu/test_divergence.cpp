// Warp divergence model: uniform fields cost nothing, sharp fields cost
// max-over-lanes, and thread coarsening smooths lane work.

#include <gtest/gtest.h>

#include "simgpu/arch.hpp"
#include "simgpu/divergence.hpp"

namespace repro::simgpu {
namespace {

const GridExtent kExtent{4096, 4096, 1};

TEST(Divergence, EmptyFieldIsNeutral) {
  EXPECT_DOUBLE_EQ(
      warp_divergence_factor({1, 1, 1, 8, 4, 1}, titan_v(), kExtent, nullptr), 1.0);
}

TEST(Divergence, UniformFieldIsNeutral) {
  const auto factor = warp_divergence_factor({1, 1, 1, 8, 4, 1}, titan_v(), kExtent,
                                             [](double, double) { return 3.0; });
  EXPECT_DOUBLE_EQ(factor, 1.0);
}

TEST(Divergence, SingleLaneWarpIsNeutral) {
  const auto factor = warp_divergence_factor({1, 1, 1, 1, 1, 1}, titan_v(), kExtent,
                                             [](double x, double) { return x; });
  EXPECT_DOUBLE_EQ(factor, 1.0);
}

TEST(Divergence, SharpFieldPenalizesWideWarps) {
  // Checkerboard at lane scale: every other column costs 10x.
  const IntensityField field = [](double x, double) {
    return (static_cast<int>(x * 4096.0) % 2 == 0) ? 10.0 : 1.0;
  };
  const double factor =
      warp_divergence_factor({1, 1, 1, 8, 4, 1}, titan_v(), kExtent, field);
  EXPECT_GT(factor, 1.2);
}

TEST(Divergence, ZeroFieldIsNeutral) {
  const auto factor = warp_divergence_factor({1, 1, 1, 8, 4, 1}, titan_v(), kExtent,
                                             [](double, double) { return 0.0; });
  EXPECT_DOUBLE_EQ(factor, 1.0);
}

TEST(Divergence, AlwaysAtLeastOne) {
  const IntensityField field = [](double x, double y) { return x * y + 0.1; };
  for (const KernelConfig& config :
       {KernelConfig{1, 1, 1, 8, 4, 1}, KernelConfig{4, 4, 1, 2, 8, 1},
        KernelConfig{16, 16, 1, 8, 8, 1}}) {
    EXPECT_GE(warp_divergence_factor(config, titan_v(), kExtent, field), 1.0);
  }
}

TEST(Divergence, CoarseningSmoothsSharpFields) {
  // Averaging a fine checkerboard inside each lane's block reduces the
  // max/mean ratio: coarse threads see the mean, fine threads the extremes.
  const IntensityField field = [](double x, double) {
    return (static_cast<int>(x * 4096.0) % 2 == 0) ? 10.0 : 1.0;
  };
  const double fine =
      warp_divergence_factor({1, 1, 1, 8, 4, 1}, titan_v(), kExtent, field);
  const double coarse =
      warp_divergence_factor({8, 1, 1, 8, 4, 1}, titan_v(), kExtent, field);
  EXPECT_LT(coarse, fine);
}

}  // namespace
}  // namespace repro::simgpu
