// Measurement-noise model: multiplicative, unbiased-in-median, outliers
// only inflate.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "simgpu/noise.hpp"

namespace repro::simgpu {
namespace {

TEST(NoiseModel, MedianMatchesTruth) {
  NoiseModel noise;
  noise.sigma = 0.02;
  noise.outlier_probability = 0.0;
  repro::Rng rng(1);
  std::vector<double> samples(4001);
  for (auto& s : samples) s = noise.sample(1000.0, rng);
  std::nth_element(samples.begin(), samples.begin() + 2000, samples.end());
  EXPECT_NEAR(samples[2000], 1000.0, 10.0);
}

TEST(NoiseModel, SamplesArePositiveAndScaleWithTruth) {
  NoiseModel noise;
  repro::Rng rng(2);
  for (double truth : {1.0, 100.0, 1e6}) {
    for (int i = 0; i < 200; ++i) {
      const double s = noise.sample(truth, rng);
      EXPECT_GT(s, truth * 0.8);
      EXPECT_LT(s, truth * 1.4);
    }
  }
}

TEST(NoiseModel, OutliersOnlyInflate) {
  NoiseModel noise;
  noise.sigma = 1e-9;  // isolate the outlier term
  noise.outlier_probability = 1.0;
  noise.outlier_max_fraction = 0.10;
  repro::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double s = noise.sample(100.0, rng);
    EXPECT_GE(s, 100.0 - 1e-3);
    EXPECT_LE(s, 110.0 + 1e-3);
  }
}

TEST(NoiseModel, ZeroSigmaNoOutliersIsExact) {
  NoiseModel noise;
  noise.sigma = 0.0;
  noise.outlier_probability = 0.0;
  repro::Rng rng(4);
  EXPECT_DOUBLE_EQ(noise.sample(123.0, rng), 123.0);
}

TEST(NoiseModel, HigherSigmaSpreadsMore) {
  NoiseModel tight, loose;
  tight.sigma = 0.01;
  loose.sigma = 0.10;
  tight.outlier_probability = loose.outlier_probability = 0.0;
  repro::Rng rng_a(5), rng_b(5);
  double tight_spread = 0.0, loose_spread = 0.0;
  for (int i = 0; i < 2000; ++i) {
    tight_spread += std::abs(tight.sample(100.0, rng_a) - 100.0);
    loose_spread += std::abs(loose.sample(100.0, rng_b) - 100.0);
  }
  EXPECT_GT(loose_spread, 3.0 * tight_spread);
}

}  // namespace
}  // namespace repro::simgpu
