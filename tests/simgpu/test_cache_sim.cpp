// Set-associative LRU cache simulator tests.

#include <gtest/gtest.h>

#include "simgpu/cache_sim.hpp"

namespace repro::simgpu {
namespace {

TEST(CacheSim, ValidatesGeometry) {
  EXPECT_THROW(CacheSim(1024, 0, 4), std::invalid_argument);
  EXPECT_THROW(CacheSim(1024, 33, 4), std::invalid_argument);  // not pow2
  EXPECT_THROW(CacheSim(1024, 32, 0), std::invalid_argument);
  EXPECT_THROW(CacheSim(96, 32, 2), std::invalid_argument);  // 3 lines / 2 ways
  EXPECT_THROW(CacheSim(32 * 2 * 3, 32, 2), std::invalid_argument);  // 3 sets
}

TEST(CacheSim, GeometryDerivation) {
  CacheSim cache(4096, 32, 4);
  EXPECT_EQ(cache.num_sets(), 32u);
  EXPECT_EQ(cache.ways(), 4u);
  EXPECT_EQ(cache.line_bytes(), 32u);
}

TEST(CacheSim, ColdMissThenHit) {
  CacheSim cache(1024, 32, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(31));   // same line
  EXPECT_FALSE(cache.access(32));  // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheSim, HitRate) {
  CacheSim cache(1024, 32, 2);
  (void)cache.access(0);
  (void)cache.access(0);
  (void)cache.access(0);
  (void)cache.access(0);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.75);
}

TEST(CacheSim, LruEvictionOrder) {
  // Direct-mapped-per-set behaviour with 2 ways: the least recently used of
  // two conflicting lines is evicted by a third.
  CacheSim cache(64, 32, 2);  // 1 set, 2 ways
  (void)cache.access(0);      // miss, set {0}
  (void)cache.access(32);     // miss, set {0,32}
  (void)cache.access(0);      // hit, 32 becomes LRU
  (void)cache.access(64);     // miss, evicts 32
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(32));  // was evicted
}

TEST(CacheSim, ConflictMissesInDirectMapped) {
  CacheSim cache(128, 32, 1);  // 4 sets, direct-mapped
  // Addresses 0 and 128 map to the same set and thrash.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(cache.access(0));
    EXPECT_FALSE(cache.access(128));
  }
  // Full associativity of same capacity would keep both.
  CacheSim assoc(128, 32, 4);  // 1 set, 4 ways
  (void)assoc.access(0);
  (void)assoc.access(128);
  EXPECT_TRUE(assoc.access(0));
  EXPECT_TRUE(assoc.access(128));
}

TEST(CacheSim, StreamingHasNoReuse) {
  CacheSim cache(4096, 32, 4);
  for (std::uint64_t address = 0; address < 1 << 16; address += 32) {
    EXPECT_FALSE(cache.access(address));
  }
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(CacheSim, WorkingSetSmallerThanCacheFullyHits) {
  CacheSim cache(8192, 32, 4);
  // Touch 4 KiB twice; second pass must be all hits.
  for (std::uint64_t address = 0; address < 4096; address += 32) (void)cache.access(address);
  const std::uint64_t misses_after_first = cache.misses();
  for (std::uint64_t address = 0; address < 4096; address += 32) {
    EXPECT_TRUE(cache.access(address));
  }
  EXPECT_EQ(cache.misses(), misses_after_first);
}

TEST(CacheSim, ResetClearsEverything) {
  CacheSim cache(1024, 32, 2);
  (void)cache.access(0);
  (void)cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.accesses(), 0u);
  EXPECT_FALSE(cache.access(0));  // cold again
}

}  // namespace
}  // namespace repro::simgpu
