// Occupancy calculator: each limiting resource, warp-granular allocation,
// and the architecture differences that shape the landscapes.

#include <gtest/gtest.h>

#include "simgpu/arch.hpp"
#include "simgpu/launch.hpp"
#include "simgpu/occupancy.hpp"

namespace repro::simgpu {
namespace {

LaunchGeometry geometry_for(const GpuArch& arch, std::uint32_t wg_threads) {
  KernelConfig config{1, 1, 1, 1, 1, 1};
  // Shape an (artificial) work group with the requested thread count by
  // setting wg_x only when possible; otherwise fall back to a flat spec.
  LaunchGeometry geometry;
  geometry.threads_x = 1 << 20;
  geometry.threads_y = 1;
  geometry.threads_z = 1;
  geometry.wgs_x = geometry.threads_x / std::max<std::uint32_t>(wg_threads, 1);
  geometry.wgs_y = 1;
  geometry.wgs_z = 1;
  geometry.wg_threads = wg_threads;
  geometry.warps_per_wg = (wg_threads + arch.warp_size - 1) / arch.warp_size;
  geometry.lane_efficiency =
      static_cast<double>(wg_threads) / (geometry.warps_per_wg * arch.warp_size);
  (void)config;
  return geometry;
}

TEST(Occupancy, FullOccupancyWithModestResources) {
  const GpuArch arch = titan_v();
  const auto occ = compute_occupancy(arch, geometry_for(arch, 256), 32, 0);
  EXPECT_TRUE(occ.launchable);
  EXPECT_EQ(occ.active_wgs_per_sm, 8u);   // 2048 / 256
  EXPECT_EQ(occ.active_warps_per_sm, 64u);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
  EXPECT_STREQ(occ.limiter, "threads");
}

TEST(Occupancy, WgSlotLimited) {
  const GpuArch arch = titan_v();  // 32 slots
  const auto occ = compute_occupancy(arch, geometry_for(arch, 32), 16, 0);
  EXPECT_EQ(occ.active_wgs_per_sm, 32u);
  EXPECT_STREQ(occ.limiter, "wg_slots");
  EXPECT_DOUBLE_EQ(occ.occupancy, 0.5);  // 32 of 64 warps
}

TEST(Occupancy, RegisterLimited) {
  const GpuArch arch = titan_v();
  // 128 regs x 256 threads = 32768 regs per wg -> 2 wgs on a 64k file.
  const auto occ = compute_occupancy(arch, geometry_for(arch, 256), 128, 0);
  EXPECT_EQ(occ.active_wgs_per_sm, 2u);
  EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, SharedMemoryLimited) {
  const GpuArch arch = titan_v();  // 96 KiB per SM
  const auto occ = compute_occupancy(arch, geometry_for(arch, 64), 16, 40960);
  EXPECT_EQ(occ.active_wgs_per_sm, 2u);  // 96k / 40k
  EXPECT_STREQ(occ.limiter, "shared");
}

TEST(Occupancy, PartialWarpsAllocateWholeWarps) {
  const GpuArch arch = titan_v();
  // 48 threads pad to 2 warps (64 threads): 2048/64 = 32 wgs, slot-limited.
  const auto occ = compute_occupancy(arch, geometry_for(arch, 48), 16, 0);
  EXPECT_EQ(occ.active_warps_per_sm, 64u);
  EXPECT_EQ(occ.active_wgs_per_sm, 32u);
}

TEST(Occupancy, NotLaunchableWhenWgExceedsLimits) {
  const GpuArch arch = titan_v();
  auto geometry = geometry_for(arch, 2048);  // > max_wg_threads (1024)
  const auto occ = compute_occupancy(arch, geometry, 16, 0);
  EXPECT_FALSE(occ.launchable);
}

TEST(Occupancy, NotLaunchableWhenSharedExceedsWgMax) {
  const GpuArch arch = titan_v();
  const auto occ = compute_occupancy(arch, geometry_for(arch, 64), 16, 1 << 20);
  EXPECT_FALSE(occ.launchable);
  EXPECT_STREQ(occ.limiter, "shared");
}

TEST(Occupancy, NotLaunchableWhenRegistersOversubscribe) {
  GpuArch arch = titan_v();
  arch.regs_per_sm = 4096;
  const auto occ = compute_occupancy(arch, geometry_for(arch, 1024), 255, 0);
  EXPECT_FALSE(occ.launchable);
  EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, TuringReachesFullWithHalfTheThreads) {
  // Same kernel shape: full occupancy on Turing at 1024 threads/SM but only
  // half on Volta — an architecture-dependent landscape feature.
  const auto volta = compute_occupancy(titan_v(), geometry_for(titan_v(), 128), 32, 0);
  const auto turing =
      compute_occupancy(rtx_titan(), geometry_for(rtx_titan(), 128), 32, 0);
  EXPECT_EQ(volta.active_wgs_per_sm, 16u);
  EXPECT_EQ(turing.active_wgs_per_sm, 8u);  // 1024 / 128
  EXPECT_DOUBLE_EQ(turing.occupancy, 1.0);
  EXPECT_DOUBLE_EQ(volta.occupancy, 1.0);
}

/// Property: occupancy never exceeds 1 and never increases when registers grow.
class OccupancyRegisterMonotone : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OccupancyRegisterMonotone, MonotoneInRegisters) {
  const GpuArch arch = gtx980();
  const std::uint32_t wg_threads = GetParam();
  double previous = 2.0;
  for (std::uint32_t regs = 16; regs <= 256; regs += 16) {
    const auto occ = compute_occupancy(
        arch, geometry_for(arch, wg_threads),
        std::min(regs, arch.max_regs_per_thread), 0);
    if (!occ.launchable) break;
    EXPECT_LE(occ.occupancy, 1.0);
    EXPECT_LE(occ.occupancy, previous + 1e-12);
    previous = occ.occupancy;
  }
}

INSTANTIATE_TEST_SUITE_P(WgSizes, OccupancyRegisterMonotone,
                         ::testing::Values(32, 64, 100, 256, 512, 1024));

}  // namespace
}  // namespace repro::simgpu
