// MeanCache: sharded memo table semantics — hit/miss, first-store-wins,
// NaN values, and thread safety under concurrent mixed access.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "simgpu/mean_cache.hpp"

namespace repro::simgpu {
namespace {

TEST(MeanCache, MissThenHit) {
  MeanCache cache;
  double value = 0.0;
  EXPECT_FALSE(cache.lookup(42, value));
  cache.store(42, 3.25);
  ASSERT_TRUE(cache.lookup(42, value));
  EXPECT_EQ(value, 3.25);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.lookups(), 2u);
}

TEST(MeanCache, FirstStoreWins) {
  MeanCache cache;
  cache.store(7, 1.0);
  cache.store(7, 2.0);  // duplicate stores keep the first value
  double value = 0.0;
  ASSERT_TRUE(cache.lookup(7, value));
  EXPECT_EQ(value, 1.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MeanCache, NanIsALegalValue) {
  MeanCache cache;
  const double nan = std::nan("");
  cache.store(9, nan);
  double value = 0.0;
  ASSERT_TRUE(cache.lookup(9, value));
  EXPECT_TRUE(std::isnan(value));
}

TEST(MeanCache, KeysSpreadAcrossShardsWithoutCollision) {
  MeanCache cache(8);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    cache.store(key, static_cast<double>(key) * 0.5);
  }
  EXPECT_EQ(cache.size(), 1000u);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    double value = 0.0;
    ASSERT_TRUE(cache.lookup(key, value)) << key;
    EXPECT_EQ(value, static_cast<double>(key) * 0.5) << key;
  }
}

TEST(MeanCache, ConcurrentMixedAccessIsConsistent) {
  MeanCache cache(4);
  constexpr std::uint64_t kKeys = 512;
  // Every thread stores the same deterministic value per key (the
  // production invariant), so whichever store lands first is correct.
  auto worker = [&] {
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      double value = 0.0;
      if (cache.lookup(key, value)) {
        EXPECT_EQ(value, static_cast<double>(key) + 0.25);
      } else {
        cache.store(key, static_cast<double>(key) + 0.25);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), kKeys);
}

}  // namespace
}  // namespace repro::simgpu
