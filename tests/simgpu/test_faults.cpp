// Fault injection: disabled injectors are inert, rates are respected,
// device resets poison a sticky episode, and streams are deterministic.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <vector>

#include "simgpu/faults.hpp"

namespace repro::simgpu {
namespace {

TEST(FaultModel, WithRateSplitsAndDisablesAtZero) {
  const FaultModel off = FaultModel::with_rate(0.0);
  EXPECT_FALSE(off.enabled);

  const FaultModel model = FaultModel::with_rate(0.10);
  EXPECT_TRUE(model.enabled);
  EXPECT_DOUBLE_EQ(model.transient_probability, 0.07);
  EXPECT_DOUBLE_EQ(model.timeout_probability, 0.02);
  EXPECT_DOUBLE_EQ(model.reset_probability, 0.01);
  EXPECT_NEAR(model.transient_probability + model.timeout_probability +
                  model.reset_probability,
              0.10, 1e-12);
}

TEST(FaultInjector, DefaultConstructedIsDisabledAndInert) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(injector.next(), FaultKind::kNone);
  EXPECT_EQ(injector.poisoned_remaining(), 0u);
}

TEST(FaultInjector, DisabledModelNeverFaultsRegardlessOfProbabilities) {
  FaultModel model;  // enabled stays false
  model.transient_probability = 1.0;
  FaultInjector injector(model, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(injector.next(), FaultKind::kNone);
}

TEST(FaultInjector, CertainTransientAlwaysFires) {
  FaultModel model;
  model.enabled = true;
  model.transient_probability = 1.0;
  FaultInjector injector(model, 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(injector.next(), FaultKind::kTransient);
}

TEST(FaultInjector, ResetPoisonsFollowingMeasurements) {
  FaultModel model;
  model.enabled = true;
  model.reset_probability = 1.0;
  model.reset_poison_count = 3;
  FaultInjector injector(model, 11);
  EXPECT_EQ(injector.next(), FaultKind::kDeviceReset);
  EXPECT_EQ(injector.poisoned_remaining(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(injector.next(), FaultKind::kPoisoned);
  EXPECT_EQ(injector.poisoned_remaining(), 0u);
  // Episode over; with reset certain, the next fresh draw resets again.
  EXPECT_EQ(injector.next(), FaultKind::kDeviceReset);
}

TEST(FaultInjector, EmpiricalRatesTrackTheModel) {
  const FaultModel model = FaultModel::with_rate(0.20);
  FaultInjector injector(model, 123);
  std::map<FaultKind, std::size_t> tally;
  const std::size_t n = 20000;
  std::size_t fresh = 0;  // poisoned follow-ups are not independent draws
  for (std::size_t i = 0; i < n; ++i) {
    const FaultKind kind = injector.next();
    ++tally[kind];
    if (kind != FaultKind::kPoisoned) ++fresh;
  }
  const double transient_rate =
      static_cast<double>(tally[FaultKind::kTransient]) / fresh;
  const double timeout_rate =
      static_cast<double>(tally[FaultKind::kTimeout]) / fresh;
  const double reset_rate =
      static_cast<double>(tally[FaultKind::kDeviceReset]) / fresh;
  EXPECT_NEAR(transient_rate, model.transient_probability, 0.01);
  EXPECT_NEAR(timeout_rate, model.timeout_probability, 0.01);
  EXPECT_NEAR(reset_rate, model.reset_probability, 0.005);
  EXPECT_EQ(tally[FaultKind::kPoisoned],
            tally[FaultKind::kDeviceReset] * model.reset_poison_count);
}

TEST(FaultInjector, SameSeedSameStream) {
  const FaultModel model = FaultModel::with_rate(0.30);
  FaultInjector a(model, 99), b(model, 99), c(model, 100);
  std::vector<FaultKind> sa, sb, sc;
  for (int i = 0; i < 500; ++i) {
    sa.push_back(a.next());
    sb.push_back(b.next());
    sc.push_back(c.next());
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(FaultKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(FaultKind::kNone), "none");
  EXPECT_STREQ(to_string(FaultKind::kTransient), "transient");
  EXPECT_STREQ(to_string(FaultKind::kTimeout), "timeout");
  EXPECT_STREQ(to_string(FaultKind::kDeviceReset), "device_reset");
  EXPECT_STREQ(to_string(FaultKind::kPoisoned), "poisoned");
}

}  // namespace
}  // namespace repro::simgpu
