// Trace-based execution engine: grid coverage, trace recording, agreement
// between traced coalescing statistics and the analytical prediction, and
// cache replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "simgpu/device.hpp"

namespace repro::simgpu {
namespace {

TEST(Device, RejectsInvalidConfigs) {
  const Device device(titan_v());
  EXPECT_THROW(device.run({16, 16, 1}, {0, 1, 1, 1, 1, 1}, [](const ThreadCtx&) {}),
               std::invalid_argument);
  EXPECT_THROW(device.run({16, 16, 1}, {1, 1, 1, 8, 8, 8}, [](const ThreadCtx&) {}),
               std::invalid_argument);
}

/// Property: every element of the grid is visited exactly once, for a range
/// of coarsening / work-group shapes (including non-dividing ones).
class DeviceCoverage : public ::testing::TestWithParam<KernelConfig> {};

TEST_P(DeviceCoverage, EachElementVisitedOnce) {
  const Device device(titan_v());
  const GridExtent extent{67, 45, 1};
  std::vector<std::atomic<int>> visits(extent.x * extent.y);
  const KernelConfig config = GetParam();
  const KernelConfig eff = clamp_to_extent(config, extent);
  device.run(extent, config, [&](const ThreadCtx& ctx) {
    for_each_coarsened_element(ctx, eff, extent,
                               [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
                                 visits[y * extent.x + x].fetch_add(1);
                               });
  });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Configs, DeviceCoverage,
                         ::testing::Values(KernelConfig{1, 1, 1, 1, 1, 1},
                                           KernelConfig{2, 3, 1, 8, 4, 1},
                                           KernelConfig{16, 16, 16, 8, 8, 2},
                                           KernelConfig{5, 7, 1, 3, 3, 3},
                                           KernelConfig{16, 1, 1, 1, 8, 1}));

TEST(Device, ThreadCtxIdentityIsConsistent) {
  const Device device(titan_v());
  const GridExtent extent{32, 8, 1};
  const KernelConfig config{1, 1, 1, 8, 4, 1};
  TraceRecorder trace;  // force serial execution for deterministic checks
  device.run(extent, config, [&](const ThreadCtx& ctx) {
    EXPECT_LT(ctx.lane, 32u);
    EXPECT_EQ(ctx.warp, ctx.wg_linear);  // 1 warp per wg here
  }, &trace);
}

TEST(TracedBuffer, RecordsOnlyWhenTraceAttached) {
  const Device device(titan_v());
  const GridExtent extent{64, 1, 1};
  TracedBuffer<float> buffer(0, 64, 1.0f);
  // Untraced run: no recorder, reads still work.
  device.run(extent, {1, 1, 1, 8, 1, 1}, [&](const ThreadCtx& ctx) {
    (void)buffer.read(ctx, ctx.gx);
  });
  TraceRecorder trace;
  device.run(extent, {1, 1, 1, 8, 1, 1}, [&](const ThreadCtx& ctx) {
    (void)buffer.read(ctx, ctx.gx);
  }, &trace);
  EXPECT_EQ(trace.total_accesses(), 64u);
}

/// The central validation: traced per-warp coalescing statistics equal the
/// analytical model's predictions on an interior, sector-aligned warp.
class TraceVsAnalytic : public ::testing::TestWithParam<KernelConfig> {};

TEST_P(TraceVsAnalytic, StreamingPatternMatches) {
  const GpuArch arch = titan_v();
  const Device device(arch);
  const KernelConfig config = GetParam();
  const GridExtent extent{4096, 64, 1};
  const KernelConfig eff = clamp_to_extent(config, extent);

  WarpAccessSpec spec;
  spec.element_bytes = 4;
  spec.pitch_x = extent.x;
  spec.pitch_y = extent.y;

  TracedBuffer<float> buffer(7, extent.x * extent.y);
  TraceRecorder trace;
  device.run(extent, config, [&](const ThreadCtx& ctx) {
    for_each_coarsened_element(ctx, eff, extent,
                               [&](std::uint64_t x, std::uint64_t y, std::uint64_t) {
                                 (void)buffer.read(ctx, y * extent.x + x);
                               });
  }, &trace);

  const CoalescingStats predicted = analyze_warp_accesses(eff, arch, spec);

  // Pick an interior warp whose base address is 256-byte aligned, matching
  // the analytical anchor: work-group index (8, 1) is always aligned since
  // 8 * wg_x * coarsen_x * 4 bytes is a multiple of 32.
  const LaunchGeometry geometry = derive_geometry(extent, eff, arch);
  ASSERT_GT(geometry.wgs_x, 8u);
  ASSERT_GT(geometry.wgs_y, 1u);
  const std::uint64_t wg = geometry.wgs_x + 8;  // (8, 1)
  const std::uint64_t warp = wg * geometry.warps_per_wg;
  const CoalescingStats traced = trace.warp_stats(warp, 7, arch.sector_bytes);

  EXPECT_EQ(traced.useful_bytes, predicted.useful_bytes) << eff.to_string();
  EXPECT_EQ(traced.transactions, predicted.transactions) << eff.to_string();
  EXPECT_EQ(traced.dram_sectors, predicted.dram_sectors) << eff.to_string();
  EXPECT_EQ(traced.steps, predicted.steps) << eff.to_string();
}

INSTANTIATE_TEST_SUITE_P(Configs, TraceVsAnalytic,
                         ::testing::Values(KernelConfig{1, 1, 1, 8, 4, 1},
                                           KernelConfig{2, 1, 1, 8, 4, 1},
                                           KernelConfig{4, 2, 1, 8, 4, 1},
                                           KernelConfig{1, 1, 1, 4, 8, 1},
                                           KernelConfig{8, 4, 1, 2, 4, 1}));

TEST(TraceRecorder, TotalStatsAggregateAcrossWarps) {
  const GpuArch arch = titan_v();
  const Device device(arch);
  const GridExtent extent{256, 4, 1};
  const KernelConfig config{1, 1, 1, 8, 4, 1};
  TracedBuffer<float> buffer(1, extent.x * extent.y);
  TraceRecorder trace;
  device.run(extent, config, [&](const ThreadCtx& ctx) {
    (void)buffer.read(ctx, ctx.gy * extent.x + ctx.gx);
  }, &trace);
  const CoalescingStats total = trace.total_stats(1, arch.sector_bytes);
  EXPECT_EQ(total.useful_bytes, extent.x * extent.y * 4);
  // Fully coalesced streaming: one sector per 8 floats.
  EXPECT_EQ(total.dram_sectors, extent.x * extent.y / 8);
}

TEST(TraceRecorder, CacheReplayDetectsReuse) {
  const GpuArch arch = titan_v();
  const Device device(arch);
  const GridExtent extent{64, 64, 1};
  const KernelConfig config{1, 1, 1, 8, 4, 1};
  TracedBuffer<float> buffer(2, extent.x * extent.y);
  TraceRecorder trace;
  // 3x3 stencil with clamping: neighbouring threads re-read shared pixels.
  device.run(extent, config, [&](const ThreadCtx& ctx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t x = std::clamp<std::int64_t>(ctx.gx + dx, 0, extent.x - 1);
        const std::int64_t y = std::clamp<std::int64_t>(ctx.gy + dy, 0, extent.y - 1);
        (void)buffer.read(ctx, y * extent.x + x);
      }
    }
  }, &trace);
  CacheSim cache(1 << 20, 32, 16);  // big enough to hold the whole image
  const double hit_rate = trace.replay_through_cache(2, cache);
  // 9 reads per pixel, ~1 compulsory miss per sector -> high hit rate.
  EXPECT_GT(hit_rate, 0.85);
}

}  // namespace
}  // namespace repro::simgpu
