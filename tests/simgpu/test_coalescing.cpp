// Coalescing analysis: hand-computed sector counts for canonical patterns
// and the fast-path == exact-path equivalence property the performance
// model relies on.

#include <gtest/gtest.h>

#include "simgpu/arch.hpp"
#include "simgpu/coalescing.hpp"

namespace repro::simgpu {
namespace {

WarpAccessSpec streaming_spec(std::uint64_t pitch = 8192) {
  WarpAccessSpec spec;
  spec.element_bytes = 4;
  spec.pitch_x = pitch;
  spec.pitch_y = 8192;
  spec.offsets = {{0, 0, 0}};
  return spec;
}

TEST(Coalescing, UnitStrideFullWarpIsPerfect) {
  const GpuArch arch = titan_v();
  const KernelConfig config{1, 1, 1, 8, 4, 1};  // 32 lanes, contiguous x
  const auto stats = analyze_warp_accesses(config, arch, streaming_spec());
  // 8 lanes per row * 4 rows; each row of 8 floats = exactly one 32B sector.
  EXPECT_EQ(stats.steps, 1u);
  EXPECT_EQ(stats.useful_bytes, 32u * 4u);
  EXPECT_EQ(stats.transactions, 4u);
  EXPECT_EQ(stats.dram_sectors, 4u);
  EXPECT_DOUBLE_EQ(stats.dram_efficiency(arch.sector_bytes), 1.0);
  EXPECT_DOUBLE_EQ(stats.transaction_efficiency(arch.sector_bytes), 1.0);
}

TEST(Coalescing, WideRowPerfectCoalescing) {
  const GpuArch arch = titan_v();
  const KernelConfig config{1, 1, 1, 8, 8, 2};  // 128 lanes; warp covers 32 in x? no:
  // wg 8x8x2 -> first warp = lanes 0..31 = x 0..7, y 0..3.
  const auto stats = analyze_warp_accesses(config, arch, streaming_spec());
  EXPECT_DOUBLE_EQ(stats.dram_efficiency(arch.sector_bytes), 1.0);
}

TEST(Coalescing, BlockedCoarseningInflatesTransactionsNotTraffic) {
  const GpuArch arch = titan_v();
  const KernelConfig coarse{4, 1, 1, 8, 4, 1};
  const auto stats = analyze_warp_accesses(coarse, arch, streaming_spec());
  // Each lane touches 4 consecutive floats; the loop-wide footprint is
  // contiguous so DRAM efficiency stays 1, but per-step lanes are strided
  // (stride 4 floats = 16B), so each step touches ~2x the sectors.
  EXPECT_DOUBLE_EQ(stats.dram_efficiency(arch.sector_bytes), 1.0);
  EXPECT_LT(stats.transaction_efficiency(arch.sector_bytes), 0.6);
  EXPECT_EQ(stats.steps, 4u);
}

TEST(Coalescing, PartialWarpWastesSectors) {
  const GpuArch arch = titan_v();
  const KernelConfig tiny{1, 1, 1, 1, 1, 1};  // 1 lane
  const auto stats = analyze_warp_accesses(tiny, arch, streaming_spec());
  EXPECT_EQ(stats.useful_bytes, 4u);
  EXPECT_EQ(stats.dram_sectors, 1u);
  EXPECT_DOUBLE_EQ(stats.dram_efficiency(arch.sector_bytes), 4.0 / 32.0);
}

TEST(Coalescing, StencilFootprintCountsHalo) {
  const GpuArch arch = titan_v();
  WarpAccessSpec spec = streaming_spec();
  spec.offsets.clear();
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) spec.offsets.push_back({dx, dy, 0});
  }
  const KernelConfig config{1, 1, 1, 8, 4, 1};
  const auto stats = analyze_warp_accesses(config, arch, spec);
  EXPECT_EQ(stats.steps, 9u);
  EXPECT_EQ(stats.useful_bytes, 32u * 9u * 4u);
  // Footprint: 6 rows (4 + halo 2); the x range is 10 floats starting one
  // element *before* the 256B-aligned warp base, so each row spans 3
  // sectors (bytes -4..36 relative to the sector-aligned base).
  EXPECT_EQ(stats.dram_sectors, 18u);
}

TEST(Coalescing, ElementStraddlingSectors) {
  const GpuArch arch = titan_v();
  WarpAccessSpec spec = streaming_spec();
  spec.element_bytes = 8;  // doubles: 4 elements per 32B sector
  const KernelConfig config{1, 1, 1, 8, 4, 1};
  const auto stats = analyze_warp_accesses(config, arch, spec);
  EXPECT_DOUBLE_EQ(stats.dram_efficiency(arch.sector_bytes), 1.0);
}

/// Property: the fast path must agree exactly with the brute-force path for
/// rectangular stencils on sector-aligned pitches — every field.
struct FastPathCase {
  KernelConfig config;
  int stencil_radius;
};

class CoalescingFastPath : public ::testing::TestWithParam<FastPathCase> {};

TEST_P(CoalescingFastPath, MatchesExact) {
  const GpuArch arch = titan_v();
  const auto& param = GetParam();
  WarpAccessSpec spec = streaming_spec();
  if (param.stencil_radius > 0) {
    spec.offsets.clear();
    for (int dy = -param.stencil_radius; dy <= param.stencil_radius; ++dy) {
      for (int dx = -param.stencil_radius; dx <= param.stencil_radius; ++dx) {
        spec.offsets.push_back({dx, dy, 0});
      }
    }
  }
  const auto exact = analyze_warp_accesses(param.config, arch, spec);
  const auto fast = analyze_warp_accesses_fast(param.config, arch, spec);
  EXPECT_EQ(exact.useful_bytes, fast.useful_bytes);
  EXPECT_EQ(exact.transactions, fast.transactions);
  EXPECT_EQ(exact.dram_sectors, fast.dram_sectors);
  EXPECT_EQ(exact.steps, fast.steps);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CoalescingFastPath,
    ::testing::Values(FastPathCase{{1, 1, 1, 8, 4, 1}, 0},
                      FastPathCase{{4, 2, 1, 8, 4, 1}, 0},
                      FastPathCase{{3, 3, 1, 4, 4, 2}, 0},
                      FastPathCase{{2, 2, 1, 8, 4, 1}, 1},
                      FastPathCase{{1, 4, 1, 8, 8, 1}, 3},
                      FastPathCase{{5, 3, 1, 2, 8, 2}, 2},
                      FastPathCase{{16, 1, 1, 1, 1, 1}, 0},
                      FastPathCase{{7, 5, 1, 3, 3, 3}, 1},
                      FastPathCase{{2, 2, 2, 4, 2, 4}, 0}));

TEST(Coalescing, FastPathFallsBackOnUnalignedPitch) {
  const GpuArch arch = titan_v();
  WarpAccessSpec spec = streaming_spec(1000);  // 4000 B per row: not sector-aligned
  const KernelConfig config{2, 2, 1, 8, 4, 1};
  const auto exact = analyze_warp_accesses(config, arch, spec);
  const auto fast = analyze_warp_accesses_fast(config, arch, spec);
  EXPECT_EQ(exact.transactions, fast.transactions);
  EXPECT_EQ(exact.dram_sectors, fast.dram_sectors);
}

}  // namespace
}  // namespace repro::simgpu
