// Architecture descriptor sanity: the testbed matches the paper's GPUs and
// the parameters that differentiate the landscapes are present.

#include <gtest/gtest.h>

#include "simgpu/arch.hpp"

namespace repro::simgpu {
namespace {

TEST(Arch, TestbedHasPapersThreeGpus) {
  const auto& gpus = testbed();
  ASSERT_EQ(gpus.size(), 3u);
  EXPECT_EQ(gpus[0].name, "gtx980");
  EXPECT_EQ(gpus[1].name, "titanv");
  EXPECT_EQ(gpus[2].name, "rtxtitan");
}

TEST(Arch, LookupByName) {
  EXPECT_EQ(arch_by_name("titanv").sm_count, 80u);
  EXPECT_THROW((void)arch_by_name("gtx1080"), std::out_of_range);
}

TEST(Arch, TuringHalvesResidentThreads) {
  // The defining architectural difference of the newest GPU in the study.
  EXPECT_EQ(gtx980().max_threads_per_sm, 2048u);
  EXPECT_EQ(titan_v().max_threads_per_sm, 2048u);
  EXPECT_EQ(rtx_titan().max_threads_per_sm, 1024u);
}

TEST(Arch, GenerationalThroughputOrdering) {
  EXPECT_LT(gtx980().fp32_gflops, titan_v().fp32_gflops);
  EXPECT_LT(titan_v().fp32_gflops, rtx_titan().fp32_gflops);
  EXPECT_LT(gtx980().dram_bw_gbps, titan_v().dram_bw_gbps);
  EXPECT_LT(gtx980().l2_bytes, titan_v().l2_bytes);
  EXPECT_LT(titan_v().l2_bytes, rtx_titan().l2_bytes);
}

TEST(Arch, MaxWarpsDerived) {
  EXPECT_EQ(titan_v().max_warps_per_sm(), 64u);
  EXPECT_EQ(rtx_titan().max_warps_per_sm(), 32u);
}

TEST(Arch, PositiveModelParameters) {
  for (const GpuArch& arch : testbed()) {
    EXPECT_GT(arch.sm_count, 0u) << arch.name;
    EXPECT_GT(arch.fp32_gflops, 0.0) << arch.name;
    EXPECT_GT(arch.dram_bw_gbps, 0.0) << arch.name;
    EXPECT_GT(arch.mem_latency_cycles, 0.0) << arch.name;
    EXPECT_GT(arch.launch_overhead_us, 0.0) << arch.name;
    EXPECT_GT(arch.noise_sigma, 0.0) << arch.name;
    EXPECT_EQ(arch.warp_size, 32u) << arch.name;
  }
}

}  // namespace
}  // namespace repro::simgpu
