// Race-stress tests for simgpu::MeanCache's mutex-striped shards: many
// threads hammering overlapping key ranges must never corrupt an entry or
// lose the first-store-wins guarantee. Values are a pure function of the
// key, mirroring the production contract (deterministic per-configuration
// means), so every surviving entry is checkable after the storm.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "simgpu/mean_cache.hpp"

namespace {

double value_for(std::uint64_t key) {
  // Deterministic, well-spread payload; occasionally NaN to exercise the
  // cache's "NaN memoizes invalid" contract under contention.
  const std::uint64_t h = repro::splitmix64(key);
  if ((h & 0xff) == 0) return std::nan("");
  return 1.0 + static_cast<double>(h >> 11) * 0x1.0p-53;
}

TEST(RaceMeanCache, ConcurrentStoreLookupOverlappingKeys) {
  repro::simgpu::MeanCache cache(8);
  constexpr std::uint64_t kKeys = 512;
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 8;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the same key set from a different offset so
        // lookups and stores interleave on shared shards.
        for (std::uint64_t i = 0; i < kKeys; ++i) {
          const std::uint64_t key = (i + t * 131) % kKeys;
          double got = 0.0;
          if (cache.lookup(key, got)) {
            const double want = value_for(key);
            if (std::isnan(want)) {
              EXPECT_TRUE(std::isnan(got)) << "key " << key;
            } else {
              EXPECT_EQ(got, want) << "key " << key;
            }
          } else {
            cache.store(key, value_for(key));
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(cache.size(), kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    double got = 0.0;
    ASSERT_TRUE(cache.lookup(key, got)) << "key " << key;
    const double want = value_for(key);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got)) << "key " << key;
    } else {
      EXPECT_EQ(got, want) << "key " << key;
    }
  }
  EXPECT_GE(cache.lookups(), kKeys);
  EXPECT_GE(cache.hits(), cache.size());
}

TEST(RaceMeanCache, DuplicateStoresKeepOneConsistentValue) {
  // All threads race to store the same small key set first; whichever wins,
  // the table must end up with exactly one entry per key holding the
  // deterministic value (all writers compute the same bits).
  repro::simgpu::MeanCache cache(2);
  constexpr std::uint64_t kKeys = 32;
  constexpr std::size_t kThreads = 4;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int round = 0; round < 50; ++round) {
        for (std::uint64_t key = 0; key < kKeys; ++key) {
          cache.store(key, value_for(key));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(cache.size(), kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    double got = 0.0;
    ASSERT_TRUE(cache.lookup(key, got));
    const double want = value_for(key);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_EQ(got, want);
    }
  }
}

}  // namespace
