// Race-stress tests for repro::ThreadPool (run under the `tsan` preset to
// surface data races; they must also pass — fast — in every other build).
//
// The pool's contract under concurrency: tasks submitted from any number of
// threads all run exactly once; destruction drains the queue; parallel_for
// is safe to call from several driver threads at once and from inside a
// worker (inline fallback).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace {

using repro::ThreadPool;

TEST(RaceThreadPool, ConcurrentSubmittersAllTasksRunOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kDrivers = 4;
  constexpr std::size_t kTasksPerDriver = 200;
  std::atomic<std::size_t> executed{0};

  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (std::size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&pool, &executed] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerDriver);
      for (std::size_t i = 0; i < kTasksPerDriver; ++i) {
        futures.push_back(pool.submit(
            [&executed] { executed.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (auto& driver : drivers) driver.join();
  EXPECT_EQ(executed.load(), kDrivers * kTasksPerDriver);
}

TEST(RaceThreadPool, DestructionDrainsQueuedBatch) {
  std::atomic<std::size_t> executed{0};
  constexpr std::size_t kTasks = 500;
  {
    ThreadPool pool(2);
    std::vector<std::function<void()>> batch;
    batch.reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
      batch.emplace_back(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.submit_batch(std::move(batch));
    // Destructor runs here: shutdown must not drop queued tasks.
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(RaceThreadPool, ParallelForFromConcurrentDrivers) {
  ThreadPool pool(4);
  constexpr std::size_t kDrivers = 3;
  constexpr std::size_t kItems = 512;
  std::vector<std::vector<int>> buffers(kDrivers, std::vector<int>(kItems, 0));

  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (std::size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&pool, &buffers, d] {
      repro::parallel_for(pool, 0, kItems, [&buffers, d](std::size_t i) {
        buffers[d][i] += static_cast<int>(i % 7) + 1;
      });
    });
  }
  for (auto& driver : drivers) driver.join();
  for (std::size_t d = 0; d < kDrivers; ++d) {
    long long sum = std::accumulate(buffers[d].begin(), buffers[d].end(), 0LL);
    long long expect = 0;
    for (std::size_t i = 0; i < kItems; ++i) expect += static_cast<int>(i % 7) + 1;
    EXPECT_EQ(sum, expect) << "driver " << d;
  }
}

TEST(RaceThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<std::size_t>> counts(kOuter);
  repro::parallel_for(pool, 0, kOuter, [&](std::size_t o) {
    // Nested call from a worker: must degrade to the inline loop rather
    // than deadlock the fully-occupied pool.
    repro::parallel_for(pool, 0, kInner, [&counts, o](std::size_t) {
      counts[o].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t o = 0; o < kOuter; ++o) EXPECT_EQ(counts[o].load(), kInner);
}

TEST(RaceThreadPool, ExceptionFromChunkPropagatesOnce) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      repro::parallel_for(pool, 0, 256,
                          [&ran](std::size_t i) {
                            ran.fetch_add(1, std::memory_order_relaxed);
                            if (i == 100) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1u);
}

}  // namespace
