// Race-stress tests for the service SessionManager: idle eviction racing
// live open/ask/tell/close traffic, and the session-limit check racing
// concurrent opens. Every operation either succeeds or surfaces a typed
// ProtocolError — never a crash, hang, or corrupted counter. Run under the
// `tsan` preset to surface lock-discipline bugs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "service/session_manager.hpp"
#include "tests/service/service_test_util.hpp"

namespace repro::service {
namespace {

using service_test::synth_eval;
using service_test::tiny_space;

OpenParams tiny_open(std::uint64_t seed, std::size_t budget) {
  OpenParams params;
  params.algorithm = "rs";
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

TEST(RaceSessionManager, EvictionRacesLiveTraffic) {
  SessionLimits limits;
  limits.max_sessions = 64;
  limits.idle_timeout = std::chrono::milliseconds(1);  // evict aggressively
  SessionManager manager(limits);
  const tuner::ParamSpace space = tiny_space();
  const std::uint64_t salt = seed_from_string("race-evict");

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> interrupted{0};

  // Eviction thread: hammers evict_idle() with a 1ms idle budget, so
  // sessions paused between driver steps routinely get ripped away.
  std::thread evictor([&manager, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      manager.evict_idle();
      std::this_thread::yield();
    }
  });

  constexpr std::size_t kDrivers = 3;
  constexpr std::size_t kRoundsPerDriver = 20;
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (std::size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (std::size_t round = 0; round < kRoundsPerDriver; ++round) {
        try {
          const std::string id =
              manager.open(tiny_open(seed_combine(d, round), /*budget=*/8));
          while (auto config = manager.ask(id)) {
            manager.tell(id, synth_eval(space, *config, salt));
            if (round % 4 == 1) std::this_thread::yield();  // widen the window
          }
          (void)manager.result(id);
          manager.close(id);
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const ProtocolError&) {
          // Session was evicted (or closed) under us — a legal outcome of
          // the race; the driver just moves on to its next session.
          interrupted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  stop.store(true, std::memory_order_relaxed);
  evictor.join();

  EXPECT_EQ(completed.load() + interrupted.load(), kDrivers * kRoundsPerDriver);
  const StatusReport report = manager.status();
  // Conservation: every opened session is live, closed, or evicted.
  EXPECT_EQ(report.opened, report.live_sessions + report.closed + report.evicted);
  manager.cancel_all();
  EXPECT_EQ(manager.live(), 0u);
}

TEST(RaceSessionManager, ConcurrentOpensRespectSessionLimit) {
  SessionLimits limits;
  limits.max_sessions = 4;
  limits.idle_timeout = std::chrono::milliseconds(0);  // disable eviction
  SessionManager manager(limits);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kAttemptsPerThread = 12;
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};

  std::vector<std::thread> openers;
  openers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    openers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kAttemptsPerThread; ++i) {
        try {
          const std::string id =
              manager.open(tiny_open(seed_combine(t, i), /*budget=*/4));
          accepted.fetch_add(1, std::memory_order_relaxed);
          EXPECT_LE(manager.live(), limits.max_sessions);
          manager.close(id);
        } catch (const ProtocolError& error) {
          EXPECT_EQ(error.code, ErrorCode::kSessionLimit);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& opener : openers) opener.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kAttemptsPerThread);
  EXPECT_EQ(manager.live(), 0u);
  const StatusReport report = manager.status();
  EXPECT_EQ(report.opened, accepted.load());
  EXPECT_EQ(report.closed, accepted.load());
}

TEST(RaceSessionManager, CancelAllRacesBlockedResult) {
  // result() blocks until the search finishes; cancel_all() must eject the
  // blocked caller with kSessionClosed instead of deadlocking.
  SessionManager manager;
  const std::string id = manager.open(tiny_open(42, /*budget=*/1000));

  std::atomic<bool> ejected{false};
  std::thread caller([&manager, &id, &ejected] {
    try {
      (void)manager.result(id);  // parks: the session never gets a tell
    } catch (const ProtocolError& error) {
      // kUnknownSession covers the (rare) schedule where cancel_all() wins
      // the race and removes the session before result() even looks it up.
      EXPECT_TRUE(error.code == ErrorCode::kSessionClosed ||
                  error.code == ErrorCode::kUnknownSession)
          << static_cast<int>(error.code);
      ejected.store(true, std::memory_order_relaxed);
    }
  });
  // Give the caller a chance to park in result() before cancelling.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  manager.cancel_all();
  caller.join();
  EXPECT_TRUE(ejected.load());
}

}  // namespace
}  // namespace repro::service
