// Race-stress tests for AskTellSession: many sessions driven concurrently
// from raw threads must each stay bit-identical to a serial in-process
// minimize() run with the same seed, and cancel() racing a parked ask()
// must always unblock the caller with SessionCancelled (never hang or
// crash). Run under the `tsan` preset to surface ordering bugs in the
// proxy handshake.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "tests/service/service_test_util.hpp"
#include "tuner/ask_tell.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/registry.hpp"

namespace repro::tuner {
namespace {

using service_test::synth_eval;
using service_test::synth_objective;
using service_test::tiny_space;

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(RaceAskTell, ConcurrentSessionsBitIdenticalToSerialMinimize) {
  const ParamSpace space = tiny_space();
  const std::uint64_t salt = seed_from_string("race-ask-tell");
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kBudget = 30;
  const std::string algo = "rs";

  // Serial references, computed up front.
  std::vector<TuneResult> expected;
  expected.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    Rng rng(seed_combine(7001, s));
    Evaluator evaluator(space, synth_objective(space, salt), kBudget);
    expected.push_back(make_algorithm(algo)->minimize(space, evaluator, rng));
  }

  // All sessions live at once, each driven by its own external loop.
  std::vector<std::unique_ptr<AskTellSession>> sessions;
  sessions.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    sessions.push_back(std::make_unique<AskTellSession>(
        space, make_algorithm(algo), kBudget, seed_combine(7001, s)));
  }
  std::vector<TuneResult> actual(kSessions);
  std::vector<std::thread> drivers;
  drivers.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&space, &sessions, &actual, salt, s] {
      AskTellSession& session = *sessions[s];
      while (auto config = session.ask()) {
        session.tell(synth_eval(space, *config, salt));
      }
      actual[s] = session.result();
    });
  }
  for (auto& driver : drivers) driver.join();

  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(actual[s].best_config, expected[s].best_config) << "session " << s;
    EXPECT_TRUE(bitwise_equal(actual[s].best_value, expected[s].best_value))
        << "session " << s;
    EXPECT_EQ(actual[s].evaluations_used, expected[s].evaluations_used)
        << "session " << s;
  }
}

TEST(RaceAskTell, CancelRacingParkedAskUnblocksDriver) {
  const ParamSpace space = tiny_space();
  const std::uint64_t salt = seed_from_string("race-cancel");
  constexpr int kIterations = 24;

  for (int iteration = 0; iteration < kIterations; ++iteration) {
    AskTellSession session(space, make_algorithm("rs"), /*budget=*/1000,
                           seed_combine(9100, iteration));
    // Vary how far the session progresses before the cancel lands so the
    // race covers parked-in-proxy, mid-tell, and mid-ask windows.
    const int head_start = iteration % 5;

    std::thread driver([&] {
      try {
        for (;;) {
          auto config = session.ask();
          if (!config) break;
          session.tell(synth_eval(space, *config, salt));
        }
      } catch (const SessionCancelled&) {
        // Expected exit for most iterations.
      }
    });
    for (int i = 0; i < head_start; ++i) std::this_thread::yield();
    session.cancel();
    driver.join();

    // Post-cancel the session must refuse further asks immediately.
    EXPECT_THROW((void)session.ask(), SessionCancelled);
  }
}

TEST(RaceAskTell, DestructionWhileDriversStillAsking) {
  // Destroying a session races the driver's next ask(): the driver must be
  // ejected via SessionCancelled before the destructor finishes joining.
  const ParamSpace space = tiny_space();
  const std::uint64_t salt = seed_from_string("race-dtor");

  for (int iteration = 0; iteration < 12; ++iteration) {
    auto session = std::make_unique<AskTellSession>(
        space, make_algorithm("rs"), /*budget=*/1000, seed_combine(77, iteration));
    std::thread driver([&space, &session, salt] {
      try {
        for (;;) {
          auto config = session->ask();
          if (!config) break;
          session->tell(synth_eval(space, *config, salt));
        }
      } catch (const SessionCancelled&) {
      }
    });
    std::this_thread::yield();
    session->cancel();  // cancel first: ~AskTellSession joins, driver exits
    driver.join();
    session.reset();
  }
}

}  // namespace
}  // namespace repro::tuner
