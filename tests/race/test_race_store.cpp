// Race-stress tests for the results store: concurrent appenders, readers
// and exporters over shared tenants must never corrupt the index, lose the
// first-value-wins guarantee, or let the on-disk log drift out of replay
// agreement with the live in-memory state. Values are a pure function of
// the config (mirroring the production contract of deterministic
// per-configuration measurements), so every surviving record is checkable
// after the storm. Runs fast in ordinary builds; the `tsan` preset is where
// the lock discipline is actually proven.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "store/results_store.hpp"

namespace repro::store {
namespace {

std::string fresh_dir() {
  char templ[] = "/tmp/repro_store_race_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir;
}

StoreKey key_for(int tenant) {
  return StoreKey{"bench" + std::to_string(tenant), "arch",
                  "0123456789abcdef"};
}

double value_for(int tenant, int i) {
  std::uint64_t state = seed_combine(static_cast<std::uint64_t>(tenant),
                                     static_cast<std::uint64_t>(i) + 1);
  return 1.0 + static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

TEST(RaceStore, ConcurrentAppendsQueriesAndExportsStayConsistent) {
  StoreOptions options;
  options.capacity = 0;
  options.shards = 4;
  ResultsStore store(options);
  store.load();

  constexpr std::size_t kWriters = 4;
  constexpr int kTenants = 3;
  constexpr int kRecords = 200;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (std::size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&store, t] {
      // Every writer walks every (tenant, i) pair from a different offset:
      // most appends collide with another writer's and must dedup cleanly.
      for (int step = 0; step < kTenants * kRecords; ++step) {
        const int flat = (step + static_cast<int>(t) * 271) % (kTenants * kRecords);
        const int tenant = flat / kRecords;
        const int i = flat % kRecords;
        (void)store.append(key_for(tenant), {i / 100, i % 100, tenant},
                           value_for(tenant, i), true);
      }
    });
  }
  // Readers run concurrently: queries, stats, exports and digests must be
  // internally consistent snapshots, never crashes or torn reads.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&store, r] {
      for (int round = 0; round < 50; ++round) {
        const std::vector<StoreRecord> rows = store.query(key_for(round % kTenants));
        for (const StoreRecord& row : rows) {
          ASSERT_EQ(row.config.size(), 3u);
          const int tenant = row.config[2];
          const int i = row.config[0] * 100 + row.config[1];
          ASSERT_EQ(row.value, value_for(tenant, i));
        }
        (void)store.stats();
        if (r == 0) (void)store.digest();
        (void)store.export_tenants("bench" + std::to_string(round % kTenants));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.records, static_cast<std::size_t>(kTenants * kRecords));
  EXPECT_EQ(stats.tenants, static_cast<std::size_t>(kTenants));
  EXPECT_EQ(stats.appends, static_cast<std::uint64_t>(kTenants * kRecords));
  EXPECT_EQ(stats.duplicates,
            static_cast<std::uint64_t>((kWriters - 1) * kTenants * kRecords));
  for (int tenant = 0; tenant < kTenants; ++tenant) {
    const std::vector<StoreRecord> rows = store.query(key_for(tenant));
    ASSERT_EQ(rows.size(), static_cast<std::size_t>(kRecords)) << tenant;
    for (const StoreRecord& row : rows) {
      const int i = row.config[0] * 100 + row.config[1];
      EXPECT_EQ(row.value, value_for(tenant, i));
    }
  }
}

TEST(RaceStore, ConcurrentPersistentAppendsReplayToTheSameDigest) {
  // Whatever interleaving the writers produce, the log must record it in
  // exactly the order the index applied it: a reload replays the log and
  // must land on the identical digest.
  const std::string dir = fresh_dir();
  StoreOptions options;
  options.dir = dir;
  options.fsync_appends = false;  // keep the storm fast; ordering is the point
  std::uint64_t live_digest = 0;
  {
    ResultsStore store(options);
    store.load();
    constexpr std::size_t kWriters = 4;
    constexpr int kRecords = 150;
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (std::size_t t = 0; t < kWriters; ++t) {
      threads.emplace_back([&store, t] {
        for (int i = 0; i < kRecords; ++i) {
          const int flat = (i + static_cast<int>(t) * 37) % kRecords;
          (void)store.append(key_for(0), {flat / 100, flat % 100, 0},
                             value_for(0, flat), true);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    live_digest = store.digest();
  }
  ResultsStore reloaded(options);
  reloaded.load();
  EXPECT_EQ(reloaded.digest(), live_digest);
}

TEST(RaceStore, ConcurrentAppendsUnderCapacityPressureStayBounded) {
  const std::string dir = fresh_dir();
  StoreOptions options;
  options.dir = dir;
  options.capacity = 64;
  options.compact_slack = 32;
  options.fsync_appends = false;
  std::uint64_t live_digest = 0;
  {
    ResultsStore store(options);
    store.load();
    constexpr std::size_t kWriters = 4;
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (std::size_t t = 0; t < kWriters; ++t) {
      threads.emplace_back([&store, t] {
        for (int i = 0; i < 200; ++i) {
          const int id = static_cast<int>(t) * 1000 + i;
          (void)store.append(key_for(id % 2), {id / 100, id % 100, id % 2},
                             value_for(id % 2, id), true);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.records, 64u);
    EXPECT_GE(stats.evictions, 1u);
    live_digest = store.digest();
  }
  // Eviction + compaction under contention still leaves a log that replays
  // to the live state.
  ResultsStore reloaded(options);
  reloaded.load();
  EXPECT_EQ(reloaded.stats().records, 64u);
  EXPECT_EQ(reloaded.digest(), live_digest);
}

}  // namespace
}  // namespace repro::store
