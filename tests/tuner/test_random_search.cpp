// Random Search: budget usage, constraint awareness, determinism.

#include <gtest/gtest.h>

#include "tests/tuner/test_objectives.hpp"
#include "tuner/random_search.hpp"

namespace repro::tuner {
namespace {

TEST(RandomSearch, UsesExactlyTheBudget) {
  const ParamSpace space = paper_search_space();
  std::size_t calls = 0;
  Evaluator evaluator(space, testing::bowl_objective(&calls), 50);
  RandomSearch rs;
  repro::Rng rng(1);
  const TuneResult result = rs.minimize(space, evaluator, rng);
  EXPECT_EQ(result.evaluations_used, 50u);
  EXPECT_EQ(calls, 50u);
  EXPECT_TRUE(result.found_valid);
}

TEST(RandomSearch, OnlyProposesExecutableConfigs) {
  const ParamSpace space = paper_search_space();
  bool all_executable = true;
  Evaluator evaluator(space, [&](const Configuration& config) {
    all_executable &= space.is_executable(config);
    return Evaluation{1.0, true};
  }, 100);
  RandomSearch rs;
  repro::Rng rng(2);
  (void)rs.minimize(space, evaluator, rng);
  EXPECT_TRUE(all_executable);
}

TEST(RandomSearch, DeterministicGivenSeed) {
  const ParamSpace space = paper_search_space();
  RandomSearch rs;
  TuneResult results[2];
  for (int run = 0; run < 2; ++run) {
    Evaluator evaluator(space, testing::bowl_objective(), 40);
    repro::Rng rng(77);
    results[run] = rs.minimize(space, evaluator, rng);
  }
  EXPECT_EQ(results[0].best_config, results[1].best_config);
  EXPECT_DOUBLE_EQ(results[0].best_value, results[1].best_value);
}

TEST(RandomSearch, MoreBudgetNeverHurtsOnAverage) {
  const ParamSpace space = paper_search_space();
  RandomSearch rs;
  double small_sum = 0.0, large_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Evaluator small(space, testing::bowl_objective(), 10);
    Evaluator large(space, testing::bowl_objective(), 200);
    repro::Rng rng_a(seed), rng_b(seed + 1000);
    small_sum += rs.minimize(space, small, rng_a).best_value;
    large_sum += rs.minimize(space, large, rng_b).best_value;
  }
  EXPECT_LT(large_sum, small_sum);
}

TEST(RandomSearch, ReportsBestObserved) {
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, testing::bowl_objective(), 400);
  RandomSearch rs;
  repro::Rng rng(5);
  const TuneResult result = rs.minimize(space, evaluator, rng);
  // With 400 draws on the bowl the best should be quite close to 1.
  EXPECT_LT(result.best_value, 30.0);
  EXPECT_DOUBLE_EQ(result.best_value, evaluator.best_value());
}

}  // namespace
}  // namespace repro::tuner
