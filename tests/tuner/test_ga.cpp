// Genetic Algorithm: budget accounting, constraint repair, and the
// improvement-with-budget behaviour the paper reports (weak at 25,
// strong at 200+).

#include <gtest/gtest.h>

#include "tests/tuner/test_objectives.hpp"
#include "tuner/ga/genetic.hpp"

namespace repro::tuner {
namespace {

TEST(Ga, NeverExceedsBudget) {
  const ParamSpace space = paper_search_space();
  std::size_t calls = 0;
  Evaluator evaluator(space, testing::bowl_objective(&calls), 57);
  GeneticAlgorithm ga;
  repro::Rng rng(1);
  const TuneResult result = ga.minimize(space, evaluator, rng);
  EXPECT_LE(calls, 57u);
  EXPECT_EQ(result.evaluations_used, calls);
  EXPECT_TRUE(result.found_valid);
}

TEST(Ga, UsesWholeBudgetOnLargeSpaces) {
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, testing::bowl_objective(), 200);
  GeneticAlgorithm ga;
  repro::Rng rng(2);
  const TuneResult result = ga.minimize(space, evaluator, rng);
  EXPECT_EQ(result.evaluations_used, 200u);
}

TEST(Ga, OnlyEvaluatesExecutableConfigs) {
  const ParamSpace space = paper_search_space();
  bool all_executable = true;
  Evaluator evaluator(space, [&](const Configuration& config) {
    all_executable &= space.is_executable(config);
    double value = 1.0;
    for (int v : config) value += (v - 4) * (v - 4);
    return Evaluation{value, true};
  }, 120);
  GeneticAlgorithm ga;
  repro::Rng rng(3);
  (void)ga.minimize(space, evaluator, rng);
  EXPECT_TRUE(all_executable);
}

TEST(Ga, ImprovesWithBudget) {
  const ParamSpace space = paper_search_space();
  GeneticAlgorithm ga;
  double small_total = 0.0, large_total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Evaluator small(space, testing::bowl_objective(), 25);
    Evaluator large(space, testing::bowl_objective(), 400);
    repro::Rng rng_small(seed), rng_large(seed + 100);
    small_total += ga.minimize(space, small, rng_small).best_value;
    large_total += ga.minimize(space, large, rng_large).best_value;
  }
  EXPECT_LT(large_total, small_total);
}

TEST(Ga, LargeBudgetNearlySolvesTheBowl) {
  const ParamSpace space = paper_search_space();
  GeneticAlgorithm ga;
  Evaluator evaluator(space, testing::bowl_objective(), 400);
  repro::Rng rng(7);
  const TuneResult result = ga.minimize(space, evaluator, rng);
  EXPECT_LT(result.best_value, 4.0);  // optimum is 1.0
}

TEST(Ga, BeatsRandomAtHighBudget) {
  const ParamSpace space = paper_search_space();
  GeneticAlgorithm ga;
  double ga_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Evaluator evaluator(space, testing::bowl_objective(), 300);
    repro::Rng rng(seed);
    ga_total += ga.minimize(space, evaluator, rng).best_value;
    random_total += testing::random_baseline(space, 300, seed + 900);
  }
  EXPECT_LT(ga_total, random_total);
}

TEST(Ga, HandlesNoisyObjective) {
  const ParamSpace space = paper_search_space();
  GeneticAlgorithm ga;
  repro::Rng noise_rng(11);
  Evaluator evaluator(space, testing::noisy_bowl_objective(noise_rng), 150);
  repro::Rng rng(12);
  const TuneResult result = ga.minimize(space, evaluator, rng);
  EXPECT_TRUE(result.found_valid);
  EXPECT_LT(result.best_value, 60.0);
}

TEST(Ga, TinyBudgetStillReturnsSomething) {
  const ParamSpace space = paper_search_space();
  GeneticAlgorithm ga;
  Evaluator evaluator(space, testing::bowl_objective(), 3);
  repro::Rng rng(13);
  const TuneResult result = ga.minimize(space, evaluator, rng);
  EXPECT_TRUE(result.found_valid);
  EXPECT_EQ(result.evaluations_used, 3u);
}

}  // namespace
}  // namespace repro::tuner
