// Random Forest tuner: the paper's train-then-predict-top-10 protocol.

#include <gtest/gtest.h>

#include "tests/tuner/test_objectives.hpp"
#include "tuner/forest/rf_tuner.hpp"

namespace repro::tuner {
namespace {

RfTunerOptions fast_options() {
  RfTunerOptions options;
  options.forest.n_estimators = 25;
  options.candidate_pool = 512;
  return options;
}

TEST(RfTuner, UsesFullBudget) {
  const ParamSpace space = paper_search_space();
  std::size_t calls = 0;
  Evaluator evaluator(space, testing::bowl_objective(&calls), 60);
  RandomForestTuner tuner(fast_options());
  repro::Rng rng(1);
  const TuneResult result = tuner.minimize(space, evaluator, rng);
  EXPECT_EQ(result.evaluations_used, 60u);
  EXPECT_TRUE(result.found_valid);
}

TEST(RfTuner, SplitsBudgetTrainingPlusTenPredictions) {
  const ParamSpace space = paper_search_space();
  std::vector<Configuration> proposals;
  Evaluator evaluator(space, [&](const Configuration& config) {
    proposals.push_back(config);
    double value = 1.0;
    for (int v : config) value += (v - 4) * (v - 4);
    return Evaluation{value, true};
  }, 50);
  RandomForestTuner tuner(fast_options());
  repro::Rng rng(2);
  (void)tuner.minimize(space, evaluator, rng);
  EXPECT_EQ(proposals.size(), 50u);
}

TEST(RfTuner, BeatsRandomOnLearnableLandscape) {
  // The bowl is trivially learnable: RF's top-10 predictions should land
  // near the optimum more reliably than random draws.
  const ParamSpace space = paper_search_space();
  RandomForestTuner tuner(fast_options());
  double rf_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Evaluator evaluator(space, testing::bowl_objective(), 100);
    repro::Rng rng(seed);
    rf_total += tuner.minimize(space, evaluator, rng).best_value;
    random_total += testing::random_baseline(space, 100, seed + 500);
  }
  EXPECT_LT(rf_total, random_total);
}

TEST(RfTuner, TinyBudgetDegradesGracefully) {
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, testing::bowl_objective(), 5);
  RandomForestTuner tuner(fast_options());
  repro::Rng rng(3);
  const TuneResult result = tuner.minimize(space, evaluator, rng);
  EXPECT_TRUE(result.found_valid);
  EXPECT_LE(result.evaluations_used, 5u);
}

TEST(RfTuner, OnlyProposesExecutableConfigs) {
  const ParamSpace space = paper_search_space();
  bool all_executable = true;
  Evaluator evaluator(space, [&](const Configuration& config) {
    all_executable &= space.is_executable(config);
    double value = 1.0;
    for (int v : config) value += (v - 4) * (v - 4);
    return Evaluation{value, true};
  }, 40);
  RandomForestTuner tuner(fast_options());
  repro::Rng rng(4);
  (void)tuner.minimize(space, evaluator, rng);
  EXPECT_TRUE(all_executable);
}

}  // namespace
}  // namespace repro::tuner
