// ParamSpace: codec round trips, constraint handling, sampling, and the
// paper's concrete 6-parameter space.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tuner/search_space.hpp"

namespace repro::tuner {
namespace {

TEST(ParamSpace, RejectsEmptyRange) {
  EXPECT_THROW(ParamSpace({{"bad", 5, 4}}), std::invalid_argument);
}

TEST(ParamSpace, SizeIsProductOfCardinalities) {
  const ParamSpace space({{"a", 0, 9}, {"b", 1, 4}});
  EXPECT_EQ(space.size(), 40u);
}

TEST(ParamSpace, PaperSpaceMatchesThePaper) {
  const ParamSpace space = paper_search_space();
  EXPECT_EQ(space.num_params(), 6u);
  EXPECT_EQ(space.size(), 2097152u);  // 16^3 * 8^3, Section V-C
  EXPECT_TRUE(space.has_constraint());
  EXPECT_TRUE(space.is_executable({1, 1, 1, 8, 8, 4}));    // product 256
  EXPECT_FALSE(space.is_executable({1, 1, 1, 8, 8, 5}));   // product 320
  EXPECT_FALSE(space.is_executable({1, 1, 1, 8, 8, 8}));   // product 512
}

TEST(ParamSpace, InRangeChecks) {
  const ParamSpace space = paper_search_space();
  EXPECT_TRUE(space.in_range({16, 16, 16, 8, 8, 8}));  // in range, not executable
  EXPECT_FALSE(space.in_range({0, 1, 1, 1, 1, 1}));
  EXPECT_FALSE(space.in_range({1, 1, 1, 1, 1}));  // wrong arity
}

TEST(ParamSpace, EncodeDecodeKnownPoints) {
  const ParamSpace space = paper_search_space();
  EXPECT_EQ(space.encode({1, 1, 1, 1, 1, 1}), 0u);
  EXPECT_EQ(space.decode(0), (Configuration{1, 1, 1, 1, 1, 1}));
  EXPECT_EQ(space.encode({16, 16, 16, 8, 8, 8}), space.size() - 1);
}

TEST(ParamSpace, EncodeRejectsOutOfRange) {
  const ParamSpace space = paper_search_space();
  EXPECT_THROW((void)space.encode({0, 1, 1, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW((void)space.decode(space.size()), std::out_of_range);
}

TEST(ParamSpace, RoundTripProperty) {
  const ParamSpace space = paper_search_space();
  repro::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Configuration config = space.sample(rng);
    EXPECT_EQ(space.decode(space.encode(config)), config);
  }
}

TEST(ParamSpace, SampleIsInRange) {
  const ParamSpace space = paper_search_space();
  repro::Rng rng(5);
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(space.in_range(space.sample(rng)));
}

TEST(ParamSpace, SampleExecutableRespectsConstraint) {
  const ParamSpace space = paper_search_space();
  repro::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(space.is_executable(space.sample_executable(rng)));
  }
}

TEST(ParamSpace, SampleExecutableThrowsWhenImpossible) {
  const ParamSpace space({{"a", 0, 1}}, [](const Configuration&) { return false; });
  repro::Rng rng(9);
  EXPECT_THROW((void)space.sample_executable(rng, 100), std::runtime_error);
}

TEST(ParamSpace, UnconstrainedSamplingCoversInvalidRegion) {
  // SMBO methods sample the full space: some draws must violate the
  // constraint (the invalid fraction of the paper space is ~7%).
  const ParamSpace space = paper_search_space();
  repro::Rng rng(11);
  int invalid = 0;
  for (int i = 0; i < 4000; ++i) invalid += !space.is_executable(space.sample(rng));
  EXPECT_GT(invalid, 100);
  EXPECT_LT(invalid, 1200);
}

TEST(ParamSpace, NormalizeMapsToUnitCube) {
  const ParamSpace space = paper_search_space();
  const auto lo = space.normalize({1, 1, 1, 1, 1, 1});
  const auto hi = space.normalize({16, 16, 16, 8, 8, 8});
  for (double v : lo) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : hi) EXPECT_DOUBLE_EQ(v, 1.0);
  const auto mid = space.normalize({8, 8, 8, 4, 4, 4});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(mid[i], 7.0 / 15.0, 1e-12);
}

TEST(ParamSpace, NormalizeDegenerateDimension) {
  const ParamSpace space({{"fixed", 3, 3}});
  EXPECT_DOUBLE_EQ(space.normalize({3})[0], 0.5);
}

TEST(ParamSpace, ClampPullsIntoRange) {
  const ParamSpace space = paper_search_space();
  const Configuration clamped = space.clamp({-5, 99, 3, 0, 9, 4});
  EXPECT_EQ(clamped, (Configuration{1, 16, 3, 1, 8, 4}));
}

}  // namespace
}  // namespace repro::tuner
