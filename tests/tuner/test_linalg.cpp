// Dense linear algebra for the GP: Cholesky, triangular solves, properties.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "tuner/gp/linalg.hpp"

namespace repro::tuner {
namespace {

Matrix random_spd(std::size_t n, repro::Rng& rng) {
  // A = B B^T + n*I is symmetric positive definite.
  Matrix b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b.at(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += b.at(i, k) * b.at(j, k);
      a.at(i, j) = sum + (i == j ? static_cast<double>(n) : 0.0);
    }
  }
  return a;
}

TEST(Linalg, CholeskyKnown2x2) {
  Matrix a(2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 3.0;
  ASSERT_TRUE(cholesky_inplace(a));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_NEAR(a.at(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Linalg, CholeskyFailsOnIndefinite) {
  Matrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_inplace(a));
}

TEST(Linalg, CholeskyReconstructsMatrix) {
  repro::Rng rng(1);
  for (std::size_t n : {1u, 3u, 8u, 20u}) {
    Matrix a = random_spd(n, rng);
    const Matrix original = a;
    ASSERT_TRUE(cholesky_inplace(a));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k <= j; ++k) sum += a.at(i, k) * a.at(j, k);
        EXPECT_NEAR(sum, original.at(i, j), 1e-9) << "n=" << n;
      }
    }
  }
}

TEST(Linalg, SolvesRecoverKnownVector) {
  repro::Rng rng(2);
  const std::size_t n = 12;
  Matrix a = random_spd(n, rng);
  const Matrix original = a;
  ASSERT_TRUE(cholesky_inplace(a));
  std::vector<double> x_true(n), b(n, 0.0), x(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += original.at(i, j) * x_true[j];
  }
  solve_cholesky(a, b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Linalg, TriangularSolvesInverses) {
  // solve_lower then multiply back by L gives the original vector.
  repro::Rng rng(3);
  Matrix a = random_spd(6, rng);
  ASSERT_TRUE(cholesky_inplace(a));
  std::vector<double> b = {1, -2, 3, 0.5, -1, 2};
  std::vector<double> y(6), back(6, 0.0);
  solve_lower(a, b, y);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t k = 0; k <= i; ++k) back[i] += a.at(i, k) * y[k];
  }
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
}

TEST(Linalg, LogDiagSumIsHalfLogDet) {
  Matrix a(2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 0.0;
  a.at(1, 0) = 0.0;
  a.at(1, 1) = 9.0;  // det 36
  ASSERT_TRUE(cholesky_inplace(a));
  EXPECT_NEAR(log_diag_sum(a), 0.5 * std::log(36.0), 1e-12);
}

// --- PackedCholesky: the append-row incremental factor ----------------------

std::vector<double> matrix_row(const Matrix& a, std::size_t i) {
  std::vector<double> row(i + 1);
  for (std::size_t j = 0; j <= i; ++j) row[j] = a.at(i, j);
  return row;
}

TEST(PackedCholesky, AppendRowsBitIdenticalToFullFactorization) {
  // Building the factor row by row must reproduce cholesky_inplace bit for
  // bit (not just to tolerance): entries come from the same ascending-k dot
  // products and the same pivot divisions, in the same order.
  repro::Rng rng(7);
  for (std::size_t n : {1u, 2u, 5u, 13u, 32u}) {
    Matrix a = random_spd(n, rng);
    Matrix full = a;
    ASSERT_TRUE(cholesky_inplace(full));

    PackedCholesky inc;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(inc.append_row(matrix_row(a, i))) << "n=" << n << " i=" << i;
    }
    ASSERT_EQ(inc.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double expected = full.at(i, j);
        const double got = inc.at(i, j);
        EXPECT_EQ(std::memcmp(&expected, &got, sizeof(double)), 0)
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(PackedCholesky, FromLowerMatchesAppendRows) {
  repro::Rng rng(8);
  Matrix a = random_spd(9, rng);
  Matrix full = a;
  ASSERT_TRUE(cholesky_inplace(full));
  const PackedCholesky via_matrix = PackedCholesky::from_lower(full);
  PackedCholesky via_append;
  for (std::size_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(via_append.append_row(matrix_row(a, i)));
  }
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double lhs = via_matrix.at(i, j);
      const double rhs = via_append.at(i, j);
      EXPECT_EQ(std::memcmp(&lhs, &rhs, sizeof(double)), 0);
    }
  }
}

TEST(PackedCholesky, FailedAppendLeavesFactorUsable) {
  // Appending a row that breaks positive definiteness must fail exactly
  // where cholesky_inplace would, and leave the existing factor intact so
  // the caller can retry (jitter escalation) or keep using it.
  PackedCholesky chol;
  ASSERT_TRUE(chol.append_row(std::vector<double>{4.0}));
  ASSERT_TRUE(chol.append_row(std::vector<double>{2.0, 3.0}));
  const double d00 = chol.at(0, 0);
  const double d10 = chol.at(1, 0);
  const double d11 = chol.at(1, 1);

  // Row making the matrix singular: third row = first row scaled, diag too
  // small. With rows (4,2,4),(2,3,2),(4,2,4) the Schur complement is 0.
  EXPECT_FALSE(chol.append_row(std::vector<double>{4.0, 2.0, 4.0}));
  EXPECT_EQ(chol.size(), 2u);
  EXPECT_EQ(chol.at(0, 0), d00);
  EXPECT_EQ(chol.at(1, 0), d10);
  EXPECT_EQ(chol.at(1, 1), d11);

  // The same 3x3 matrix fails the reference factorization too.
  Matrix a(3);
  a.at(0, 0) = 4.0; a.at(0, 1) = 2.0; a.at(0, 2) = 4.0;
  a.at(1, 0) = 2.0; a.at(1, 1) = 3.0; a.at(1, 2) = 2.0;
  a.at(2, 0) = 4.0; a.at(2, 1) = 2.0; a.at(2, 2) = 4.0;
  EXPECT_FALSE(cholesky_inplace(a));

  // And a workable third row still appends afterwards.
  EXPECT_TRUE(chol.append_row(std::vector<double>{1.0, 1.0, 5.0}));
  EXPECT_EQ(chol.size(), 3u);
}

TEST(PackedCholesky, SolvesMatchMatrixSolves) {
  repro::Rng rng(9);
  const std::size_t n = 11;
  Matrix a = random_spd(n, rng);
  Matrix full = a;
  ASSERT_TRUE(cholesky_inplace(full));
  const PackedCholesky packed = PackedCholesky::from_lower(full);

  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-2.0, 2.0);
  std::vector<double> x_matrix(n), x_packed(n);
  solve_cholesky(full, b, x_matrix);
  packed.solve(b, x_packed);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::memcmp(&x_matrix[i], &x_packed[i], sizeof(double)), 0) << i;
  }
  EXPECT_EQ(packed.log_diag_sum(), log_diag_sum(full));
}

TEST(PackedCholesky, ClearResetsToEmpty) {
  PackedCholesky chol;
  ASSERT_TRUE(chol.append_row(std::vector<double>{1.0}));
  chol.clear();
  EXPECT_EQ(chol.size(), 0u);
  ASSERT_TRUE(chol.append_row(std::vector<double>{9.0}));
  EXPECT_EQ(chol.at(0, 0), 3.0);
}

}  // namespace
}  // namespace repro::tuner
