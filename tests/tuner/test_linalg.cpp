// Dense linear algebra for the GP: Cholesky, triangular solves, properties.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "tuner/gp/linalg.hpp"

namespace repro::tuner {
namespace {

Matrix random_spd(std::size_t n, repro::Rng& rng) {
  // A = B B^T + n*I is symmetric positive definite.
  Matrix b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b.at(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += b.at(i, k) * b.at(j, k);
      a.at(i, j) = sum + (i == j ? static_cast<double>(n) : 0.0);
    }
  }
  return a;
}

TEST(Linalg, CholeskyKnown2x2) {
  Matrix a(2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 3.0;
  ASSERT_TRUE(cholesky_inplace(a));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_NEAR(a.at(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Linalg, CholeskyFailsOnIndefinite) {
  Matrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_inplace(a));
}

TEST(Linalg, CholeskyReconstructsMatrix) {
  repro::Rng rng(1);
  for (std::size_t n : {1u, 3u, 8u, 20u}) {
    Matrix a = random_spd(n, rng);
    const Matrix original = a;
    ASSERT_TRUE(cholesky_inplace(a));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k <= j; ++k) sum += a.at(i, k) * a.at(j, k);
        EXPECT_NEAR(sum, original.at(i, j), 1e-9) << "n=" << n;
      }
    }
  }
}

TEST(Linalg, SolvesRecoverKnownVector) {
  repro::Rng rng(2);
  const std::size_t n = 12;
  Matrix a = random_spd(n, rng);
  const Matrix original = a;
  ASSERT_TRUE(cholesky_inplace(a));
  std::vector<double> x_true(n), b(n, 0.0), x(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += original.at(i, j) * x_true[j];
  }
  solve_cholesky(a, b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Linalg, TriangularSolvesInverses) {
  // solve_lower then multiply back by L gives the original vector.
  repro::Rng rng(3);
  Matrix a = random_spd(6, rng);
  ASSERT_TRUE(cholesky_inplace(a));
  std::vector<double> b = {1, -2, 3, 0.5, -1, 2};
  std::vector<double> y(6), back(6, 0.0);
  solve_lower(a, b, y);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t k = 0; k <= i; ++k) back[i] += a.at(i, k) * y[k];
  }
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
}

TEST(Linalg, LogDiagSumIsHalfLogDet) {
  Matrix a(2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 0.0;
  a.at(1, 0) = 0.0;
  a.at(1, 1) = 9.0;  // det 36
  ASSERT_TRUE(cholesky_inplace(a));
  EXPECT_NEAR(log_diag_sum(a), 0.5 * std::log(36.0), 1e-12);
}

}  // namespace
}  // namespace repro::tuner
