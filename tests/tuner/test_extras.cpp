// CLTune baseline algorithms (SA, PSO): budget behaviour and improvement.

#include <gtest/gtest.h>

#include "tests/tuner/test_objectives.hpp"
#include "tuner/extras/pso.hpp"
#include "tuner/extras/simulated_annealing.hpp"

namespace repro::tuner {
namespace {

TEST(SimulatedAnnealing, UsesBudgetAndFindsValid) {
  const ParamSpace space = paper_search_space();
  std::size_t calls = 0;
  Evaluator evaluator(space, testing::bowl_objective(&calls), 80);
  SimulatedAnnealing sa;
  repro::Rng rng(1);
  const TuneResult result = sa.minimize(space, evaluator, rng);
  EXPECT_LE(calls, 80u);
  EXPECT_TRUE(result.found_valid);
}

TEST(SimulatedAnnealing, OnlyProposesExecutable) {
  const ParamSpace space = paper_search_space();
  bool all_executable = true;
  Evaluator evaluator(space, [&](const Configuration& config) {
    all_executable &= space.is_executable(config);
    return Evaluation{1.0, true};
  }, 50);
  SimulatedAnnealing sa;
  repro::Rng rng(2);
  (void)sa.minimize(space, evaluator, rng);
  EXPECT_TRUE(all_executable);
}

TEST(SimulatedAnnealing, BeatsRandomOnLocalStructure) {
  const ParamSpace space = paper_search_space();
  SimulatedAnnealing sa;
  double sa_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Evaluator evaluator(space, testing::bowl_objective(), 150);
    repro::Rng rng(seed);
    sa_total += sa.minimize(space, evaluator, rng).best_value;
    random_total += testing::random_baseline(space, 150, seed + 123);
  }
  EXPECT_LT(sa_total, random_total);
}

TEST(ParticleSwarm, UsesBudgetAndFindsValid) {
  const ParamSpace space = paper_search_space();
  std::size_t calls = 0;
  Evaluator evaluator(space, testing::bowl_objective(&calls), 80);
  ParticleSwarm pso;
  repro::Rng rng(3);
  const TuneResult result = pso.minimize(space, evaluator, rng);
  EXPECT_LE(calls, 80u);
  EXPECT_TRUE(result.found_valid);
}

TEST(ParticleSwarm, OnlyProposesExecutable) {
  const ParamSpace space = paper_search_space();
  bool all_executable = true;
  Evaluator evaluator(space, [&](const Configuration& config) {
    all_executable &= space.is_executable(config);
    return Evaluation{1.0, true};
  }, 60);
  ParticleSwarm pso;
  repro::Rng rng(4);
  (void)pso.minimize(space, evaluator, rng);
  EXPECT_TRUE(all_executable);
}

TEST(ParticleSwarm, ConvergesTowardTheBowlMinimum) {
  const ParamSpace space = paper_search_space();
  ParticleSwarm pso;
  double pso_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Evaluator evaluator(space, testing::bowl_objective(), 200);
    repro::Rng rng(seed);
    pso_total += pso.minimize(space, evaluator, rng).best_value;
    random_total += testing::random_baseline(space, 200, seed + 321);
  }
  EXPECT_LT(pso_total, random_total);
}

}  // namespace
}  // namespace repro::tuner
