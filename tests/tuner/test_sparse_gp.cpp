// Large-history sparse-GP fallback: activation threshold, deterministic
// landmark selection (pure in seed/options/n, independent of the fit-call
// schedule), SIMD-tier byte-identity of the blocked factors, and the
// guarantee that disabling (or simply never reaching) sparse mode leaves
// the exact path byte-identical.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "tuner/gp/gp_regressor.hpp"

namespace repro::tuner {
namespace {

bool bytes_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Deterministic 2-D history with a smooth trend plus seeded noise.
void make_history(std::size_t n, std::vector<std::vector<double>>& x,
                  std::vector<double>& y, std::uint64_t seed = 17) {
  repro::Rng rng(seed);
  x.clear();
  y.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    x.push_back({a, b});
    y.push_back(std::sin(5.0 * a) + 0.5 * b * b + 0.05 * rng.normal());
  }
}

/// Small-scale sparse config so tests exercise the fallback with dozens of
/// points instead of the production-default thousands.
SparseGpOptions tiny_sparse() {
  SparseGpOptions sparse;
  sparse.threshold = 24;
  sparse.landmarks = 12;
  sparse.refresh_factor = 1.25;
  return sparse;
}

const std::vector<std::vector<double>>& probes() {
  static const std::vector<std::vector<double>> points = {
      {0.1, 0.9}, {0.5, 0.5}, {0.77, 0.23}, {0.0, 1.0}};
  return points;
}

TEST(SparseGp, StaysExactAtOrBelowThreshold) {
  GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-4});
  gp.set_sparse_options(tiny_sparse());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_history(24, x, y);  // n == threshold: strictly-greater activation
  ASSERT_TRUE(gp.fit(x, y));
  EXPECT_EQ(gp.mode(), SurrogateMode::kExact);
  EXPECT_EQ(gp.sparse_refreshes(), 0u);
  EXPECT_EQ(gp.landmarks_active(), 0u);
  EXPECT_EQ(gp.num_points(), 24u);
}

TEST(SparseGp, EngagesAboveThresholdWithLandmarkCore) {
  GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-4});
  const SparseGpOptions sparse = tiny_sparse();
  gp.set_sparse_options(sparse);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_history(40, x, y);
  ASSERT_TRUE(gp.fit(x, y));
  EXPECT_EQ(gp.mode(), SurrogateMode::kSparse);
  EXPECT_GE(gp.sparse_refreshes(), 1u);
  EXPECT_EQ(gp.landmarks_active(), sparse.landmarks);
  // Active set = landmark core + exact tail, strictly smaller than the
  // history (that is the entire point of the fallback).
  EXPECT_LT(gp.num_points(), 40u);
  for (const auto& p : probes()) {
    EXPECT_TRUE(std::isfinite(gp.predict(p).mean));
    EXPECT_GE(gp.predict(p).variance, 0.0);
  }
}

TEST(SparseGp, SelectionIsDeterministicUnderFixedSeedAndOptions) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_history(60, x, y);

  GpRegressor first(GpHyperparams{0.3, 1.0, 1e-4});
  GpRegressor second(GpHyperparams{0.3, 1.0, 1e-4});
  first.set_sparse_options(tiny_sparse());
  second.set_sparse_options(tiny_sparse());
  ASSERT_TRUE(first.fit(x, y));
  ASSERT_TRUE(second.fit(x, y));
  ASSERT_EQ(first.mode(), SurrogateMode::kSparse);
  EXPECT_EQ(first.num_points(), second.num_points());
  EXPECT_EQ(first.landmarks_active(), second.landmarks_active());
  for (const auto& p : probes()) {
    EXPECT_TRUE(bytes_equal(first.predict(p).mean, second.predict(p).mean));
    EXPECT_TRUE(
        bytes_equal(first.predict(p).variance, second.predict(p).variance));
  }
}

TEST(SparseGp, SelectionIsIndependentOfFitCallSchedule) {
  // One regressor sees the history grow a point at a time (crossing the
  // exact->sparse flip and several landmark refreshes); the other fits once
  // at the final size. The landmark grid is a pure function of (options, n),
  // so both must land on byte-identical posteriors.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_history(70, x, y);

  GpRegressor incremental(GpHyperparams{0.3, 1.0, 1e-4});
  GpRegressor oneshot(GpHyperparams{0.3, 1.0, 1e-4});
  incremental.set_sparse_options(tiny_sparse());
  oneshot.set_sparse_options(tiny_sparse());

  for (std::size_t n = 2; n <= x.size(); ++n) {
    ASSERT_TRUE(incremental.fit(std::span(x.data(), n), std::span(y.data(), n)));
  }
  ASSERT_TRUE(oneshot.fit(x, y));
  ASSERT_EQ(incremental.mode(), SurrogateMode::kSparse);
  ASSERT_EQ(oneshot.mode(), SurrogateMode::kSparse);
  EXPECT_EQ(incremental.num_points(), oneshot.num_points());
  EXPECT_EQ(incremental.landmarks_active(), oneshot.landmarks_active());
  // The schedule determines how many refreshes were *observed*, but not the
  // final selection.
  EXPECT_GE(incremental.sparse_refreshes(), oneshot.sparse_refreshes());
  ASSERT_EQ(incremental.cholesky().size(), oneshot.cholesky().size());
  for (std::size_t r = 0; r < incremental.cholesky().size(); ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      ASSERT_TRUE(
          bytes_equal(incremental.cholesky().at(r, c), oneshot.cholesky().at(r, c)))
          << "L(" << r << "," << c << ")";
    }
  }
  for (const auto& p : probes()) {
    EXPECT_TRUE(bytes_equal(incremental.predict(p).mean, oneshot.predict(p).mean));
    EXPECT_TRUE(
        bytes_equal(incremental.predict(p).variance, oneshot.predict(p).variance));
  }
}

TEST(SparseGp, ScalarAndSimdTiersProduceByteIdenticalSparseFits) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_history(64, x, y);

  const simd::Tier saved = simd::active_tier();
  ASSERT_EQ(simd::set_tier(simd::Tier::kScalar), simd::Tier::kScalar);
  GpRegressor scalar_gp(GpHyperparams{0.3, 1.0, 1e-4});
  scalar_gp.set_sparse_options(tiny_sparse());
  ASSERT_TRUE(scalar_gp.fit(x, y));
  ASSERT_EQ(scalar_gp.mode(), SurrogateMode::kSparse);
  std::vector<double> scalar_alpha(scalar_gp.alpha().begin(),
                                   scalar_gp.alpha().end());
  std::vector<GpPrediction> scalar_predictions;
  for (const auto& p : probes()) scalar_predictions.push_back(scalar_gp.predict(p));

  for (const simd::Tier tier : {simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::set_tier(tier) != tier) continue;  // CPU lacks this tier
    GpRegressor simd_gp(GpHyperparams{0.3, 1.0, 1e-4});
    simd_gp.set_sparse_options(tiny_sparse());
    ASSERT_TRUE(simd_gp.fit(x, y));
    ASSERT_EQ(simd_gp.mode(), SurrogateMode::kSparse);

    // chol_ byte-identity, entry by entry.
    ASSERT_EQ(simd_gp.cholesky().size(), scalar_gp.cholesky().size());
    for (std::size_t r = 0; r < simd_gp.cholesky().size(); ++r) {
      for (std::size_t c = 0; c <= r; ++c) {
        ASSERT_TRUE(
            bytes_equal(simd_gp.cholesky().at(r, c), scalar_gp.cholesky().at(r, c)))
            << "tier " << simd::tier_name(tier) << " L(" << r << "," << c << ")";
      }
    }
    // alpha_ byte-identity.
    ASSERT_EQ(simd_gp.alpha().size(), scalar_alpha.size());
    EXPECT_EQ(std::memcmp(simd_gp.alpha().data(), scalar_alpha.data(),
                          scalar_alpha.size() * sizeof(double)),
              0)
        << simd::tier_name(tier);
    // Prediction byte-identity.
    for (std::size_t i = 0; i < probes().size(); ++i) {
      const GpPrediction prediction = simd_gp.predict(probes()[i]);
      EXPECT_TRUE(bytes_equal(prediction.mean, scalar_predictions[i].mean))
          << simd::tier_name(tier);
      EXPECT_TRUE(bytes_equal(prediction.variance, scalar_predictions[i].variance))
          << simd::tier_name(tier);
    }
  }
  simd::set_tier(saved);
}

TEST(SparseGp, DisabledOptionsReproduceTheExactPathByteForByte) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_history(50, x, y);

  GpRegressor plain(GpHyperparams{0.3, 1.0, 1e-4});  // defaults: inert sparse
  GpRegressor disabled(GpHyperparams{0.3, 1.0, 1e-4});
  SparseGpOptions off;
  off.threshold = 0;  // enabled() == false
  disabled.set_sparse_options(off);
  ASSERT_TRUE(plain.fit(x, y));
  ASSERT_TRUE(disabled.fit(x, y));
  EXPECT_EQ(plain.mode(), SurrogateMode::kExact);
  EXPECT_EQ(disabled.mode(), SurrogateMode::kExact);
  for (const auto& p : probes()) {
    EXPECT_TRUE(bytes_equal(plain.predict(p).mean, disabled.predict(p).mean));
    EXPECT_TRUE(
        bytes_equal(plain.predict(p).variance, disabled.predict(p).variance));
  }
}

TEST(SparseGp, ChangingOptionsResetsFittedState) {
  GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-4});
  gp.set_sparse_options(tiny_sparse());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_history(40, x, y);
  ASSERT_TRUE(gp.fit(x, y));
  ASSERT_EQ(gp.mode(), SurrogateMode::kSparse);

  SparseGpOptions wider = tiny_sparse();
  wider.landmarks = 20;
  gp.set_sparse_options(wider);
  EXPECT_FALSE(gp.fitted());
  EXPECT_EQ(gp.mode(), SurrogateMode::kExact);
  EXPECT_EQ(gp.landmarks_active(), 0u);
  ASSERT_TRUE(gp.fit(x, y));  // refits cleanly under the new options
  EXPECT_EQ(gp.mode(), SurrogateMode::kSparse);
  EXPECT_EQ(gp.landmarks_active(), 20u);
}

TEST(SparseGp, ModeNamesAreStable) {
  EXPECT_STREQ(surrogate_mode_name(SurrogateMode::kExact), "exact");
  EXPECT_STREQ(surrogate_mode_name(SurrogateMode::kSparse), "sparse");
}

}  // namespace
}  // namespace repro::tuner
