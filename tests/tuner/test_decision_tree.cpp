// CART regression tree: fitting behaviour, split quality, and limits.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "tuner/forest/decision_tree.hpp"

namespace repro::tuner {
namespace {

std::vector<std::vector<double>> grid_1d(int n) {
  std::vector<std::vector<double>> xs;
  for (int i = 0; i < n; ++i) xs.push_back({static_cast<double>(i)});
  return xs;
}

TEST(DecisionTree, RejectsEmptyOrMismatched) {
  DecisionTree tree;
  repro::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  EXPECT_THROW(tree.fit(x, y, {}, rng), std::invalid_argument);
  x.push_back({1.0});
  EXPECT_THROW(tree.fit(x, y, {}, rng), std::invalid_argument);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  const DecisionTree tree;
  const std::vector<double> x = {1.0};
  EXPECT_THROW((void)tree.predict(x), std::logic_error);
}

TEST(DecisionTree, ConstantTargetGivesSingleLeaf) {
  DecisionTree tree;
  repro::Rng rng(2);
  const auto x = grid_1d(10);
  const std::vector<double> y(10, 5.0);
  tree.fit(x, y, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{3.0}), 5.0);
}

TEST(DecisionTree, LearnsStepFunctionExactly) {
  DecisionTree tree;
  repro::Rng rng(3);
  const auto x = grid_1d(20);
  std::vector<double> y(20);
  for (int i = 0; i < 20; ++i) y[i] = i < 10 ? -1.0 : 2.0;
  tree.fit(x, y, {}, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{4.0}), -1.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{14.0}), 2.0);
}

TEST(DecisionTree, InterpolatesTrainingPointsWithUnboundedDepth) {
  DecisionTree tree;
  repro::Rng rng(4);
  const auto x = grid_1d(16);
  std::vector<double> y(16);
  for (int i = 0; i < 16; ++i) y[i] = std::sin(static_cast<double>(i));
  TreeOptions options;
  options.max_depth = 32;
  options.min_samples_leaf = 1;
  tree.fit(x, y, options, rng);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(tree.predict(x[i]), y[i], 1e-12);
  }
}

TEST(DecisionTree, MaxDepthLimitsTreeSize) {
  DecisionTree deep, shallow;
  repro::Rng rng(5);
  const auto x = grid_1d(64);
  std::vector<double> y(64);
  for (int i = 0; i < 64; ++i) y[i] = static_cast<double>(i % 7);
  TreeOptions deep_opt;
  deep_opt.max_depth = 20;
  TreeOptions shallow_opt;
  shallow_opt.max_depth = 2;
  deep.fit(x, y, deep_opt, rng);
  shallow.fit(x, y, shallow_opt, rng);
  EXPECT_LE(shallow.depth(), 2u);
  EXPECT_LT(shallow.node_count(), deep.node_count());
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  DecisionTree tree;
  repro::Rng rng(6);
  const auto x = grid_1d(10);
  std::vector<double> y = {0, 0, 0, 0, 0, 10, 10, 10, 10, 10};
  TreeOptions options;
  options.min_samples_leaf = 5;
  tree.fit(x, y, options, rng);
  // Only the midpoint split keeps 5 per side; deeper splits are blocked.
  EXPECT_EQ(tree.node_count(), 3u);
}

TEST(DecisionTree, SplitsOnTheInformativeFeature) {
  DecisionTree tree;
  repro::Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  repro::Rng noise(8);
  for (int i = 0; i < 100; ++i) {
    const double informative = noise.uniform(0.0, 1.0);
    const double distractor = noise.uniform(0.0, 1.0);
    x.push_back({distractor, informative});
    y.push_back(informative > 0.5 ? 10.0 : 0.0);
  }
  tree.fit(x, y, {}, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.9, 0.1}), 0.0, 1.0);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.1, 0.9}), 10.0, 1.0);
}

TEST(DecisionTree, TiedFeatureValuesDoNotSplit) {
  DecisionTree tree;
  repro::Rng rng(9);
  std::vector<std::vector<double>> x(8, {1.0});
  std::vector<double> y = {0, 1, 2, 3, 4, 5, 6, 7};
  tree.fit(x, y, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.0}), 3.5);
}

}  // namespace
}  // namespace repro::tuner
