// Gaussian process regressor: kernel shape, interpolation, uncertainty,
// hyperparameter selection, and the Expected Improvement acquisition.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "tuner/gp/bo_gp.hpp"
#include "tuner/gp/gp_regressor.hpp"

namespace repro::tuner {
namespace {

TEST(Matern52, KernelShape) {
  EXPECT_DOUBLE_EQ(matern52(0.0, 0.5, 2.0), 2.0);  // k(0) = signal variance
  // Monotone decreasing in distance.
  double previous = matern52(0.0, 0.5, 1.0);
  for (double r = 0.1; r < 3.0; r += 0.1) {
    const double value = matern52(r, 0.5, 1.0);
    EXPECT_LT(value, previous);
    previous = value;
  }
  // Longer lengthscale decays more slowly.
  EXPECT_GT(matern52(1.0, 2.0, 1.0), matern52(1.0, 0.2, 1.0));
}

std::vector<std::vector<double>> grid_points(int n) {
  std::vector<std::vector<double>> xs;
  for (int i = 0; i < n; ++i) xs.push_back({static_cast<double>(i) / (n - 1)});
  return xs;
}

TEST(GpRegressor, RejectsBadTrainingSet) {
  GpRegressor gp;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  EXPECT_THROW((void)gp.fit(x, y), std::invalid_argument);
  EXPECT_THROW((void)gp.predict(std::vector<double>{0.0}), std::logic_error);
}

TEST(GpRegressor, InterpolatesWithLowNoise) {
  GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-8});
  const auto x = grid_points(7);
  std::vector<double> y;
  for (const auto& p : x) y.push_back(std::sin(4.0 * p[0]));
  ASSERT_TRUE(gp.fit(x, y));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const GpPrediction prediction = gp.predict(x[i]);
    EXPECT_NEAR(prediction.mean, y[i], 1e-3);
    EXPECT_LT(prediction.variance, 1e-3);
  }
}

TEST(GpRegressor, UncertaintyGrowsAwayFromData) {
  GpRegressor gp(GpHyperparams{0.1, 1.0, 1e-6});
  const auto x = grid_points(5);  // in [0, 1]
  const std::vector<double> y = {0.0, 1.0, 0.5, -0.5, 0.2};
  ASSERT_TRUE(gp.fit(x, y));
  const double var_near = gp.predict(std::vector<double>{0.5}).variance;
  const double var_far = gp.predict(std::vector<double>{3.0}).variance;
  EXPECT_GT(var_far, var_near);
}

TEST(GpRegressor, PredictionBetweenPointsIsSmooth) {
  GpRegressor gp(GpHyperparams{0.5, 1.0, 1e-6});
  const std::vector<std::vector<double>> x = {{0.0}, {1.0}};
  const std::vector<double> y = {0.0, 10.0};
  ASSERT_TRUE(gp.fit(x, y));
  const double mid = gp.predict(std::vector<double>{0.5}).mean;
  EXPECT_GT(mid, 2.0);
  EXPECT_LT(mid, 8.0);
}

TEST(GpRegressor, MeanRevertsToDataMeanFarAway) {
  GpRegressor gp(GpHyperparams{0.2, 1.0, 1e-4});
  const auto x = grid_points(6);
  const std::vector<double> y = {4.0, 6.0, 5.0, 5.5, 4.5, 5.0};  // mean 5
  ASSERT_TRUE(gp.fit(x, y));
  EXPECT_NEAR(gp.predict(std::vector<double>{50.0}).mean, 5.0, 0.2);
}

TEST(GpRegressor, HyperparameterSearchPrefersExplainingLengthscale) {
  // A slowly varying function should select a long-ish lengthscale, and the
  // optimized LML must be at least as good as both extreme fixed choices.
  repro::Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 25; ++i) {
    const double p = rng.uniform(0.0, 1.0);
    x.push_back({p});
    y.push_back(std::sin(3.0 * p) + 0.02 * rng.normal());
  }
  GpRegressor gp;
  ASSERT_TRUE(gp.optimize_hyperparams(x, y));
  const double optimized_lml = gp.log_marginal_likelihood();

  GpRegressor short_gp(GpHyperparams{0.1, 1.0, 1e-3});
  GpRegressor long_gp(GpHyperparams{1.0, 1.0, 1e-1});
  ASSERT_TRUE(short_gp.fit(x, y));
  ASSERT_TRUE(long_gp.fit(x, y));
  EXPECT_GE(optimized_lml + 1e-9, short_gp.log_marginal_likelihood());
  EXPECT_GE(optimized_lml + 1e-9, long_gp.log_marginal_likelihood());
}

TEST(GpRegressor, SurvivesDuplicatePoints) {
  GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-10});
  const std::vector<std::vector<double>> x = {{0.5}, {0.5}, {0.5}};
  const std::vector<double> y = {1.0, 1.1, 0.9};
  EXPECT_TRUE(gp.fit(x, y));  // jitter escalation must rescue this
  EXPECT_NEAR(gp.predict(std::vector<double>{0.5}).mean, 1.0, 0.2);
}

TEST(ExpectedImprovement, ZeroVarianceIsDeterministicImprovement) {
  EXPECT_DOUBLE_EQ(expected_improvement(5.0, 0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_improvement(3.0, 0.0, 4.0), 1.0);
}

TEST(ExpectedImprovement, IncreasesWithUncertainty) {
  const double low = expected_improvement(5.0, 0.01, 4.0);
  const double high = expected_improvement(5.0, 4.0, 4.0);
  EXPECT_GT(high, low);
}

TEST(ExpectedImprovement, DecreasesWithWorseMean) {
  const double good = expected_improvement(3.9, 1.0, 4.0);
  const double bad = expected_improvement(6.0, 1.0, 4.0);
  EXPECT_GT(good, bad);
}

TEST(ExpectedImprovement, NonNegative) {
  for (double mean : {-5.0, 0.0, 5.0, 50.0}) {
    for (double variance : {0.0, 0.1, 10.0}) {
      EXPECT_GE(expected_improvement(mean, variance, 1.0), 0.0);
    }
  }
}


// --- incremental (append-row) refits vs the reference path ------------------

TEST(GpRegressor, IncrementalFitBitIdenticalToReference) {
  // Grow a training set one observation at a time, as BO GP does, and
  // compare the incremental regressor against a from-scratch reference fit
  // at every step: factor, weights, LML, and predictions must match bit for
  // bit, including through hyperparameter searches and a non-prefix refit.
  repro::Rng rng(1234);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  GpRegressor incremental;
  GpRegressor reference;
  reference.set_incremental(false);

  const std::vector<double> query = {0.3, 0.8, 0.1, 0.6, 0.4, 0.9};
  for (std::size_t step = 0; step < 60; ++step) {
    std::vector<double> point(6);
    for (auto& v : point) v = rng.uniform();
    double target = 0.0;
    for (double v : point) target += (v - 0.5) * (v - 0.5);
    xs.push_back(std::move(point));
    ys.push_back(target + 0.05 * rng.normal());
    if (xs.size() < 2) continue;

    bool ok_inc = false;
    bool ok_ref = false;
    if (step % 20 == 0) {
      ok_inc = incremental.optimize_hyperparams(xs, ys);
      ok_ref = reference.optimize_hyperparams(xs, ys);
    } else {
      ok_inc = incremental.fit(xs, ys);
      ok_ref = reference.fit(xs, ys);
    }
    ASSERT_EQ(ok_inc, ok_ref) << "step " << step;
    if (!ok_inc) continue;

    // Selected hyperparameters agree exactly.
    ASSERT_EQ(incremental.hyperparams().lengthscale,
              reference.hyperparams().lengthscale);
    ASSERT_EQ(incremental.hyperparams().noise_variance,
              reference.hyperparams().noise_variance);
    ASSERT_EQ(incremental.log_marginal_likelihood(),
              reference.log_marginal_likelihood());

    // chol_ and alpha_ agree bitwise.
    const auto& ci = incremental.cholesky();
    const auto& cr = reference.cholesky();
    ASSERT_EQ(ci.size(), cr.size());
    for (std::size_t i = 0; i < ci.size(); ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double a = ci.at(i, j);
        const double b = cr.at(i, j);
        ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
            << "step " << step << " chol(" << i << "," << j << ")";
      }
    }
    const auto ai = incremental.alpha();
    const auto ar = reference.alpha();
    ASSERT_EQ(ai.size(), ar.size());
    for (std::size_t i = 0; i < ai.size(); ++i) {
      ASSERT_EQ(std::memcmp(&ai[i], &ar[i], sizeof(double)), 0)
          << "step " << step << " alpha[" << i << "]";
    }

    const GpPrediction pi = incremental.predict(query);
    const GpPrediction pr = reference.predict(query);
    ASSERT_EQ(std::memcmp(&pi.mean, &pr.mean, sizeof(double)), 0);
    ASSERT_EQ(std::memcmp(&pi.variance, &pr.variance, sizeof(double)), 0);
  }
  // The incremental machinery actually engaged (appends dominate).
  EXPECT_GT(incremental.incremental_rows(), 100u);
  EXPECT_EQ(reference.incremental_rows(), 0u);
}

TEST(GpRegressor, IncrementalHandlesNonPrefixRefit) {
  // Replacing the training set (e.g. BO GP past its max_train_points cap
  // keeps best+recent halves, which is not a prefix) must reset the caches
  // and still match the reference bitwise.
  repro::Rng rng(99);
  auto make_set = [&](std::size_t n) {
    std::pair<std::vector<std::vector<double>>, std::vector<double>> set;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> point(4);
      for (auto& v : point) v = rng.uniform();
      set.second.push_back(point[0] + 0.2 * point[2] + 0.01 * rng.normal());
      set.first.push_back(std::move(point));
    }
    return set;
  };

  GpRegressor incremental;
  GpRegressor reference;
  reference.set_incremental(false);

  const auto first = make_set(20);
  ASSERT_TRUE(incremental.fit(first.first, first.second));
  // Entirely different set of a smaller size: not a prefix.
  const auto second = make_set(15);
  ASSERT_TRUE(incremental.fit(second.first, second.second));
  ASSERT_TRUE(reference.fit(second.first, second.second));

  ASSERT_EQ(incremental.cholesky().size(), reference.cholesky().size());
  for (std::size_t i = 0; i < incremental.cholesky().size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double a = incremental.cholesky().at(i, j);
      const double b = reference.cholesky().at(i, j);
      ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    }
  }
}

TEST(GpRegressor, IncrementalSurvivesNonSpdEscalation) {
  // Duplicate points make K singular at tiny jitter; the escalation ladder
  // must end at the same jitter (hence the same factor) in both modes.
  std::vector<std::vector<double>> xs = {{0.5}, {0.5}, {0.5}, {0.9}};
  std::vector<double> ys = {1.0, 1.0, 1.0, 2.0};
  GpRegressor incremental(GpHyperparams{0.3, 1.0, 1e-9});
  GpRegressor reference(GpHyperparams{0.3, 1.0, 1e-9});
  reference.set_incremental(false);
  const bool ok_inc = incremental.fit(xs, ys);
  const bool ok_ref = reference.fit(xs, ys);
  ASSERT_EQ(ok_inc, ok_ref);
  if (!ok_inc) return;
  ASSERT_EQ(incremental.cholesky().size(), reference.cholesky().size());
  for (std::size_t i = 0; i < incremental.cholesky().size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double a = incremental.cholesky().at(i, j);
      const double b = reference.cholesky().at(i, j);
      ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    }
  }
}

}  // namespace
}  // namespace repro::tuner
