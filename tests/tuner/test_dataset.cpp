// Pre-collected dataset: collection, subdivision (the paper's protocol),
// and best-of extraction.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tuner/dataset.hpp"

namespace repro::tuner {
namespace {

ParamSpace small_space() {
  return ParamSpace({{"a", 0, 99}},
                    [](const Configuration& c) { return c[0] % 2 == 0; });
}

TEST(Dataset, CollectRespectsConstraintAndCount) {
  const ParamSpace space = small_space();
  repro::Rng rng(1);
  const Dataset dataset = Dataset::collect(
      space,
      [](const Configuration& c) { return Evaluation{static_cast<double>(c[0]), true}; },
      50, rng);
  EXPECT_EQ(dataset.size(), 50u);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(dataset.entry(i).config[0] % 2, 0);
    EXPECT_TRUE(dataset.entry(i).valid);
  }
}

TEST(Dataset, SubdivisionSlicesAreDisjointAndOrdered) {
  std::vector<DatasetEntry> entries(20);
  for (int i = 0; i < 20; ++i) {
    entries[i] = {{i}, static_cast<double>(i), true};
  }
  const Dataset dataset(std::move(entries));
  const auto first = dataset.subdivision(5, 0);
  const auto second = dataset.subdivision(5, 1);
  EXPECT_EQ(first.size(), 5u);
  EXPECT_DOUBLE_EQ(first[0].value, 0.0);
  EXPECT_DOUBLE_EQ(second[0].value, 5.0);
  EXPECT_THROW((void)dataset.subdivision(5, 4), std::out_of_range);
  EXPECT_THROW((void)dataset.subdivision(21, 0), std::out_of_range);
}

TEST(Dataset, BestOfSkipsInvalid) {
  std::vector<DatasetEntry> entries = {
      {{0}, 0.5, false},  // best value but invalid
      {{1}, 3.0, true},
      {{2}, 2.0, true},
  };
  const Dataset dataset(std::move(entries));
  EXPECT_DOUBLE_EQ(Dataset::best_of(dataset.all()), 2.0);
}

TEST(Dataset, BestOfAllInvalidIsNaN) {
  std::vector<DatasetEntry> entries = {{{0}, 1.0, false}};
  const Dataset dataset(std::move(entries));
  EXPECT_TRUE(std::isnan(Dataset::best_of(dataset.all())));
}

TEST(Dataset, CsvRoundTrip) {
  std::vector<DatasetEntry> entries = {
      {{2, 3, 4, 5, 6, 7}, 123.456, true},
      {{1, 1, 1, 1, 1, 1}, 0.25, false},
      {{16, 16, 16, 8, 8, 4}, 1e6, true},
  };
  const Dataset original(std::move(entries));
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_dataset.csv").string();
  ASSERT_TRUE(original.save_csv(path));

  const ParamSpace space = paper_search_space();
  const Dataset loaded = Dataset::load_csv(path, space);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.entry(i).config, original.entry(i).config);
    EXPECT_DOUBLE_EQ(loaded.entry(i).value, original.entry(i).value);
    EXPECT_EQ(loaded.entry(i).valid, original.entry(i).valid);
  }
  std::remove(path.c_str());
}

TEST(Dataset, CsvLoadValidatesRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_dataset_bad.csv").string();
  const ParamSpace space = paper_search_space();
  {
    std::ofstream out(path);
    out << "p0,p1,p2,p3,p4,p5,value,valid\n1,2,3\n";
  }
  EXPECT_THROW((void)Dataset::load_csv(path, space), std::runtime_error);
  {
    std::ofstream out(path);
    out << "p0,p1,p2,p3,p4,p5,value,valid\n99,1,1,1,1,1,1.0,1\n";
  }
  EXPECT_THROW((void)Dataset::load_csv(path, space), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW((void)Dataset::load_csv("/no_such_dir/x.csv", space),
               std::runtime_error);
}

TEST(Dataset, CsvSaveFailsOnBadPath) {
  const Dataset dataset;
  EXPECT_FALSE(dataset.save_csv("/no_such_dir_xyz/d.csv"));
}

}  // namespace
}  // namespace repro::tuner
