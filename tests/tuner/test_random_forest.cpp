// Random Forest regressor: ensemble behaviour and regression quality.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "tuner/forest/random_forest.hpp"

namespace repro::tuner {
namespace {

struct SyntheticData {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

SyntheticData make_data(std::size_t n, std::uint64_t seed) {
  SyntheticData data;
  repro::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    data.x.push_back({a, b});
    data.y.push_back(3.0 * a * a + b + 0.05 * rng.normal());
  }
  return data;
}

TEST(RandomForest, RejectsBadInput) {
  RandomForestRegressor forest;
  repro::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  EXPECT_THROW(forest.fit(x, y, rng), std::invalid_argument);
  EXPECT_THROW((void)forest.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(RandomForest, BuildsRequestedEnsemble) {
  ForestOptions options;
  options.n_estimators = 17;
  RandomForestRegressor forest(options);
  repro::Rng rng(2);
  const auto data = make_data(50, 3);
  forest.fit(data.x, data.y, rng);
  EXPECT_TRUE(forest.fitted());
  EXPECT_EQ(forest.size(), 17u);
}

TEST(RandomForest, BeatsMeanBaselineOnHeldOut) {
  RandomForestRegressor forest;
  repro::Rng rng(4);
  const auto train = make_data(300, 5);
  const auto test = make_data(100, 6);
  forest.fit(train.x, train.y, rng);
  double mean_y = 0.0;
  for (double v : train.y) mean_y += v;
  mean_y /= static_cast<double>(train.y.size());
  double forest_sse = 0.0, baseline_sse = 0.0;
  for (std::size_t i = 0; i < test.x.size(); ++i) {
    const double p = forest.predict(test.x[i]);
    forest_sse += (p - test.y[i]) * (p - test.y[i]);
    baseline_sse += (mean_y - test.y[i]) * (mean_y - test.y[i]);
  }
  EXPECT_LT(forest_sse, 0.3 * baseline_sse);
}

TEST(RandomForest, DeterministicGivenSeed) {
  const auto data = make_data(80, 7);
  double predictions[2];
  for (int run = 0; run < 2; ++run) {
    RandomForestRegressor forest;
    repro::Rng rng(99);
    forest.fit(data.x, data.y, rng);
    predictions[run] = forest.predict(std::vector<double>{0.3, 0.7});
  }
  EXPECT_DOUBLE_EQ(predictions[0], predictions[1]);
}

TEST(RandomForest, EnsembleSpreadIsSmallerOnTrainingData) {
  RandomForestRegressor forest;
  repro::Rng rng(8);
  const auto data = make_data(200, 9);
  forest.fit(data.x, data.y, rng);
  const double spread_on_train = forest.predict_stddev(data.x[0]);
  // Far outside the training distribution, trees disagree more (or equal).
  const double spread_outside = forest.predict_stddev(std::vector<double>{5.0, -4.0});
  EXPECT_GE(spread_outside + 1e-9, 0.0);
  EXPECT_GE(spread_on_train, 0.0);
}

TEST(RandomForest, WithoutBootstrapAllTreesAgree) {
  ForestOptions options;
  options.bootstrap = false;
  options.tree.max_features = 0;  // all features -> identical deterministic trees
  RandomForestRegressor forest(options);
  repro::Rng rng(10);
  const auto data = make_data(60, 11);
  forest.fit(data.x, data.y, rng);
  EXPECT_NEAR(forest.predict_stddev(data.x[5]), 0.0, 1e-6);
}

}  // namespace
}  // namespace repro::tuner
