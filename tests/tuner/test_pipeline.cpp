// The pipelined ask helper: every index generated before it is scored,
// generation strictly ascending on the calling thread, exactly one score
// per index, serial fallback inside a pool worker, and stats accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "tuner/pipeline.hpp"

namespace repro::tuner {
namespace {

TEST(AskPipeline, GeneratesAscendingAndScoresEveryIndexOnce) {
  ThreadPool& pool = ThreadPool::global();
  const std::size_t count = 300;
  std::vector<int> generated(count, 0);
  std::vector<std::atomic<int>> scored(count);
  std::size_t last_generated = 0;
  bool ascending = true;

  AskPipelineStats stats;
  pipelined_ask(
      pool, count,
      [&](std::size_t i) {
        if (i < last_generated) ascending = false;
        last_generated = i;
        generated[i] = 1;
      },
      [&](std::size_t i) {
        // Generation of index i must have happened before its score runs.
        EXPECT_EQ(generated[i], 1) << i;
        scored[i].fetch_add(1, std::memory_order_relaxed);
      },
      &stats, {64});

  EXPECT_TRUE(ascending);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(generated[i], 1) << i;
    EXPECT_EQ(scored[i].load(), 1) << i;
  }
  EXPECT_EQ(stats.batches, (count + 63) / 64);
  EXPECT_EQ(stats.inline_runs, 0u);
}

TEST(AskPipeline, SmallCountRunsInline) {
  ThreadPool& pool = ThreadPool::global();
  std::vector<int> scored(10, 0);
  AskPipelineStats stats;
  pipelined_ask(
      pool, scored.size(), [](std::size_t) {},
      [&](std::size_t i) { ++scored[i]; }, &stats, {64});
  for (const int s : scored) EXPECT_EQ(s, 1);
  EXPECT_EQ(stats.inline_runs, 1u);
}

TEST(AskPipeline, ZeroCountIsANoOp) {
  AskPipelineStats stats;
  pipelined_ask(
      ThreadPool::global(), 0, [](std::size_t) { FAIL(); },
      [](std::size_t) { FAIL(); }, &stats);
  EXPECT_EQ(stats.batches, 0u);
}

TEST(AskPipeline, NestedOnPoolWorkerFallsBackToSerial) {
  ThreadPool& pool = ThreadPool::global();
  AskPipelineStats stats;
  auto task = pool.submit([&] {
    pipelined_ask(
        pool, 500, [](std::size_t) {}, [](std::size_t) {}, &stats, {32});
  });
  task.get();
  EXPECT_EQ(stats.inline_runs, 1u);  // would deadlock if it tried to overlap
}

TEST(AskPipeline, ProcessTotalsAccumulate) {
  const AskPipelineStats before = ask_pipeline_totals();
  pipelined_ask(
      ThreadPool::global(), 200, [](std::size_t) {}, [](std::size_t) {},
      nullptr, {50});
  const AskPipelineStats after = ask_pipeline_totals();
  EXPECT_EQ(after.batches - before.batches, 4u);
}

TEST(AskPipeline, ScoreExceptionPropagatesWithoutHanging) {
  ThreadPool& pool = ThreadPool::global();
  EXPECT_THROW(
      pipelined_ask(
          pool, 256, [](std::size_t) {},
          [](std::size_t i) {
            if (i == 70) throw std::runtime_error("boom");
          },
          nullptr, {64}),
      std::runtime_error);
  // The pool must still be usable afterwards (futures were drained).
  auto probe = pool.submit([] { return 7; });
  EXPECT_EQ(probe.get(), 7);
}

}  // namespace
}  // namespace repro::tuner
