// Multi-fidelity machinery: FidelityEvaluator accounting, HyperBand's
// bracket behaviour, and BOHB's model-guided sampling.

#include <gtest/gtest.h>

#include <cmath>

#include "tuner/evaluator.hpp"
#include "tuner/multifidelity/hyperband.hpp"

namespace repro::tuner {
namespace {

/// Synthetic multi-fidelity bowl: the full-fidelity optimum is at all-4s;
/// lower fidelities see the same bowl plus a fidelity-dependent distortion
/// and more noise — rank-correlated but imperfect proxies.
MultiFidelityObjective mf_bowl(repro::Rng& noise_rng) {
  return [&noise_rng](const Configuration& config, double fidelity) {
    double value = 1.0;
    for (int v : config) value += static_cast<double>((v - 4) * (v - 4));
    // Low fidelity distorts: it slightly prefers larger parameter values.
    double distortion = 0.0;
    for (int v : config) distortion += v;
    value += (1.0 - fidelity) * 0.3 * distortion;
    const double sigma = 0.02 + 0.1 * (1.0 - fidelity);
    return Evaluation{value * noise_rng.lognormal(0.0, sigma), true};
  };
}

TEST(FidelityEvaluator, ChargesFractionalUnits) {
  const ParamSpace space = paper_search_space();
  repro::Rng noise(1);
  FidelityEvaluator evaluator(space, mf_bowl(noise), 2.0);
  (void)evaluator.evaluate({4, 4, 4, 4, 4, 4}, 0.5);
  (void)evaluator.evaluate({4, 4, 4, 4, 4, 4}, 0.25);
  EXPECT_NEAR(evaluator.used(), 0.75, 1e-12);
  EXPECT_EQ(evaluator.evaluations(), 2u);
  EXPECT_NEAR(evaluator.remaining(), 1.25, 1e-12);
}

TEST(FidelityEvaluator, ThrowsWhenUnitsRunOut) {
  const ParamSpace space = paper_search_space();
  repro::Rng noise(2);
  FidelityEvaluator evaluator(space, mf_bowl(noise), 1.0);
  (void)evaluator.evaluate({4, 4, 4, 4, 4, 4}, 1.0);
  EXPECT_TRUE(evaluator.exhausted());
  EXPECT_THROW((void)evaluator.evaluate({4, 4, 4, 4, 4, 4}, 0.1), BudgetExhausted);
}

TEST(FidelityEvaluator, OnlyFullFidelitySetsBest) {
  const ParamSpace space = paper_search_space();
  repro::Rng noise(3);
  FidelityEvaluator evaluator(space, mf_bowl(noise), 10.0);
  (void)evaluator.evaluate({4, 4, 4, 4, 4, 4}, 0.5);
  EXPECT_FALSE(evaluator.has_best());
  (void)evaluator.evaluate({5, 4, 4, 4, 4, 4}, 1.0);
  ASSERT_TRUE(evaluator.has_best());
  EXPECT_EQ(evaluator.best_config(), (Configuration{5, 4, 4, 4, 4, 4}));
}

TEST(FidelityEvaluator, RejectsBadInput) {
  const ParamSpace space = paper_search_space();
  repro::Rng noise(4);
  EXPECT_THROW(FidelityEvaluator(space, mf_bowl(noise), 0.0), std::invalid_argument);
  FidelityEvaluator evaluator(space, mf_bowl(noise), 1.0);
  EXPECT_THROW((void)evaluator.evaluate({0, 0, 0, 0, 0, 0}, 1.0),
               std::invalid_argument);
}

TEST(HyperBand, StaysWithinBudgetAndFindsValid) {
  const ParamSpace space = paper_search_space();
  repro::Rng noise(5);
  FidelityEvaluator evaluator(space, mf_bowl(noise), 60.0);
  HyperBand hb;
  repro::Rng rng(6);
  const FidelityTuneResult result = hb.minimize(space, evaluator, rng);
  EXPECT_TRUE(result.found_valid);
  EXPECT_LE(result.units_used, 60.0 + 1e-9);
  // Multi-fidelity: more evaluations than full-fidelity budget units.
  EXPECT_GT(result.evaluations, 60u);
}

TEST(HyperBand, BeatsPureRandomAtEqualCost) {
  const ParamSpace space = paper_search_space();
  double hb_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    repro::Rng noise_a(seed), noise_b(seed + 50);
    FidelityEvaluator hb_eval(space, mf_bowl(noise_a), 40.0);
    HyperBand hb;
    repro::Rng rng_a(seed + 100);
    hb_total += hb.minimize(space, hb_eval, rng_a).best_value;

    // Random search at the same cost: 40 full-fidelity evaluations.
    repro::Rng rng_b(seed + 200);
    const MultiFidelityObjective objective = mf_bowl(noise_b);
    double best = 1e300;
    Configuration best_config;
    for (int i = 0; i < 40; ++i) {
      const Configuration config = space.sample_executable(rng_b);
      const Evaluation eval = objective(config, 1.0);
      if (eval.value < best) best = eval.value;
    }
    random_total += best;
  }
  EXPECT_LT(hb_total, random_total);
}

TEST(Bohb, StaysWithinBudgetAndFindsValid) {
  const ParamSpace space = paper_search_space();
  repro::Rng noise(7);
  FidelityEvaluator evaluator(space, mf_bowl(noise), 60.0);
  Bohb bohb;
  repro::Rng rng(8);
  const FidelityTuneResult result = bohb.minimize(space, evaluator, rng);
  EXPECT_TRUE(result.found_valid);
  EXPECT_LE(result.units_used, 60.0 + 1e-9);
}

TEST(Bohb, ModelGuidanceHelpsOnAverage) {
  const ParamSpace space = paper_search_space();
  double bohb_total = 0.0, hb_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    repro::Rng noise_a(seed + 10), noise_b(seed + 60);
    FidelityEvaluator bohb_eval(space, mf_bowl(noise_a), 80.0);
    FidelityEvaluator hb_eval(space, mf_bowl(noise_b), 80.0);
    Bohb bohb;
    HyperBand hb;
    repro::Rng rng_a(seed + 300), rng_b(seed + 400);
    bohb_total += bohb.minimize(space, bohb_eval, rng_a).best_value;
    hb_total += hb.minimize(space, hb_eval, rng_b).best_value;
  }
  // BOHB should not be worse than HB by more than noise on a learnable bowl.
  EXPECT_LT(bohb_total, hb_total * 1.25);
}

TEST(HyperBand, DeterministicGivenSeed) {
  const ParamSpace space = paper_search_space();
  FidelityTuneResult results[2];
  for (int run = 0; run < 2; ++run) {
    repro::Rng noise(77);
    FidelityEvaluator evaluator(space, mf_bowl(noise), 30.0);
    HyperBand hb;
    repro::Rng rng(78);
    results[run] = hb.minimize(space, evaluator, rng);
  }
  EXPECT_EQ(results[0].best_config, results[1].best_config);
  EXPECT_DOUBLE_EQ(results[0].units_used, results[1].units_used);
}

}  // namespace
}  // namespace repro::tuner
