#pragma once
// Shared synthetic objectives for the search-algorithm tests: cheap,
// deterministic landscapes with a known optimum on the paper's space.

#include <cmath>
#include <cstddef>

#include "common/rng.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/search_space.hpp"

namespace repro::tuner::testing {

/// Smooth separable bowl with the optimum at (4, 4, 4, 4, 4, 4); minimum 1.
inline Objective bowl_objective(std::size_t* call_count = nullptr) {
  return [call_count](const Configuration& config) {
    if (call_count != nullptr) ++(*call_count);
    double value = 1.0;
    for (int v : config) {
      value += static_cast<double>((v - 4) * (v - 4));
    }
    return Evaluation{value, true};
  };
}

/// Bowl with multiplicative measurement noise (the realistic case).
inline Objective noisy_bowl_objective(repro::Rng& rng, double sigma = 0.05) {
  return [&rng, sigma](const Configuration& config) {
    double value = 1.0;
    for (int v : config) value += static_cast<double>((v - 4) * (v - 4));
    return Evaluation{value * rng.lognormal(0.0, sigma), true};
  };
}

/// Bowl where the constraint-violating region reports failures, exercising
/// the SMBO invalid-configuration path.
inline Objective gated_bowl_objective(const ParamSpace& space) {
  return [&space](const Configuration& config) {
    if (!space.is_executable(config)) return Evaluation{};
    double value = 1.0;
    for (int v : config) value += static_cast<double>((v - 4) * (v - 4));
    return Evaluation{value, true};
  };
}

/// Expected value of the bowl for a uniform random executable draw,
/// estimated once for "beats random" assertions.
inline double random_baseline(const ParamSpace& space, std::size_t budget,
                              std::uint64_t seed) {
  repro::Rng rng(seed);
  double best = 1e300;
  const Objective objective = bowl_objective();
  for (std::size_t i = 0; i < budget; ++i) {
    const Evaluation eval = objective(space.sample_executable(rng));
    best = std::min(best, eval.value);
  }
  return best;
}

}  // namespace repro::tuner::testing
