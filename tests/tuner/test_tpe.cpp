// BO TPE: Parzen estimator behaviour and the tuner's search dynamics.

#include <gtest/gtest.h>

#include <array>

#include "tests/tuner/test_objectives.hpp"
#include "tuner/tpe/bo_tpe.hpp"

namespace repro::tuner {
namespace {

TEST(ParzenCategorical, RejectsEmptyRange) {
  EXPECT_THROW(ParzenCategorical(3, 2, 1.0), std::invalid_argument);
}

TEST(ParzenCategorical, PriorIsUniform) {
  const ParzenCategorical parzen(1, 4, 1.0);
  for (int v = 1; v <= 4; ++v) EXPECT_DOUBLE_EQ(parzen.probability(v), 0.25);
  EXPECT_DOUBLE_EQ(parzen.probability(0), 0.0);
  EXPECT_DOUBLE_EQ(parzen.probability(5), 0.0);
}

TEST(ParzenCategorical, ObservationsShiftMass) {
  ParzenCategorical parzen(1, 4, 1.0);
  parzen.add(2);
  parzen.add(2);
  parzen.add(3);
  // weights: {1, 3, 2, 1} / 7
  EXPECT_DOUBLE_EQ(parzen.probability(2), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(parzen.probability(1), 1.0 / 7.0);
}

TEST(ParzenCategorical, ProbabilitiesSumToOne) {
  ParzenCategorical parzen(0, 9, 0.5);
  repro::Rng rng(1);
  for (int i = 0; i < 50; ++i) parzen.add(static_cast<int>(rng.uniform_int(0, 9)));
  double total = 0.0;
  for (int v = 0; v <= 9; ++v) total += parzen.probability(v);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ParzenCategorical, SamplingFollowsWeights) {
  ParzenCategorical parzen(0, 2, 0.01);
  for (int i = 0; i < 98; ++i) parzen.add(1);
  repro::Rng rng(2);
  std::array<int, 3> counts{};
  for (int i = 0; i < 3000; ++i) counts[parzen.sample(rng)]++;
  EXPECT_GT(counts[1], 2800);
}

TEST(ParzenCategorical, AddRejectsOutOfRange) {
  ParzenCategorical parzen(1, 4, 1.0);
  EXPECT_THROW(parzen.add(5), std::out_of_range);
}

TEST(BoTpe, UsesExactBudget) {
  const ParamSpace space = paper_search_space();
  std::size_t calls = 0;
  Evaluator evaluator(space, testing::bowl_objective(&calls), 45);
  BoTpe tpe;
  repro::Rng rng(3);
  const TuneResult result = tpe.minimize(space, evaluator, rng);
  EXPECT_EQ(calls, 45u);
  EXPECT_TRUE(result.found_valid);
}

TEST(BoTpe, BeatsRandomBeyondStartup) {
  const ParamSpace space = paper_search_space();
  BoTpe tpe;
  double tpe_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Evaluator evaluator(space, testing::bowl_objective(), 100);
    repro::Rng rng(seed);
    tpe_total += tpe.minimize(space, evaluator, rng).best_value;
    random_total += testing::random_baseline(space, 100, seed + 333);
  }
  EXPECT_LT(tpe_total, random_total);
}

TEST(BoTpe, StartupPhaseIsPureRandom) {
  // With budget <= n_startup, TPE degenerates to random search over the
  // unconstrained space.
  BoTpeOptions options;
  options.n_startup = 20;
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, testing::bowl_objective(), 15);
  BoTpe tpe(options);
  repro::Rng rng(4);
  const TuneResult result = tpe.minimize(space, evaluator, rng);
  EXPECT_EQ(result.evaluations_used, 15u);
}

TEST(BoTpe, SurvivesInvalidRegions) {
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, testing::gated_bowl_objective(space), 60);
  BoTpe tpe;
  repro::Rng rng(5);
  const TuneResult result = tpe.minimize(space, evaluator, rng);
  ASSERT_TRUE(result.found_valid);
  EXPECT_TRUE(space.is_executable(result.best_config));
}

TEST(BoTpe, HandlesAllInvalidObjective) {
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, [](const Configuration&) { return Evaluation{}; }, 30);
  BoTpe tpe;
  repro::Rng rng(6);
  EXPECT_FALSE(tpe.minimize(space, evaluator, rng).found_valid);
}

TEST(BoTpe, DeterministicGivenSeed) {
  const ParamSpace space = paper_search_space();
  BoTpe tpe;
  TuneResult results[2];
  for (int run = 0; run < 2; ++run) {
    Evaluator evaluator(space, testing::bowl_objective(), 50);
    repro::Rng rng(88);
    results[run] = tpe.minimize(space, evaluator, rng);
  }
  EXPECT_EQ(results[0].best_config, results[1].best_config);
}

TEST(BoTpe, PipelinedAskProducesIdenticalTuneResult) {
  // With a batch smaller than the candidate pool the scorer overlaps with
  // generation; generation order and the RNG stream are untouched, so the
  // trace must match the serial path exactly.
  const ParamSpace space = paper_search_space();
  BoTpeOptions piped;
  piped.pipelined_ask = true;
  piped.pipeline_batch = 8;  // ei_candidates (24) spans several batches
  BoTpeOptions serial;
  serial.pipelined_ask = false;

  for (std::uint64_t seed : {5u, 19u}) {
    Evaluator eval_piped(space, testing::bowl_objective(), 50);
    repro::Rng rng_piped(seed);
    const TuneResult a = BoTpe(piped).minimize(space, eval_piped, rng_piped);

    Evaluator eval_serial(space, testing::bowl_objective(), 50);
    repro::Rng rng_serial(seed);
    const TuneResult b = BoTpe(serial).minimize(space, eval_serial, rng_serial);

    EXPECT_EQ(a.best_config, b.best_config) << "seed " << seed;
    EXPECT_EQ(a.best_value, b.best_value) << "seed " << seed;
    EXPECT_EQ(rng_piped(), rng_serial()) << "seed " << seed;
  }
}

TEST(BoTpe, ConstraintAwareModeNeverProposesInvalid) {
  const ParamSpace space = paper_search_space();
  bool all_executable = true;
  Evaluator evaluator(space, [&](const Configuration& config) {
    all_executable &= space.is_executable(config);
    double value = 1.0;
    for (int v : config) value += (v - 4) * (v - 4);
    return Evaluation{value, true};
  }, 45);
  BoTpeOptions options;
  options.constraint_aware = true;
  BoTpe tpe(options);
  repro::Rng rng(22);
  (void)tpe.minimize(space, evaluator, rng);
  EXPECT_TRUE(all_executable);
}

}  // namespace
}  // namespace repro::tuner
