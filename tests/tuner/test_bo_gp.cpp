// BO GP tuner: budget behaviour, failure handling, and sample efficiency
// relative to random search on a smooth landscape.

#include <gtest/gtest.h>

#include "tests/tuner/test_objectives.hpp"
#include "tuner/gp/bo_gp.hpp"

namespace repro::tuner {
namespace {

TEST(BoGp, UsesExactBudget) {
  const ParamSpace space = paper_search_space();
  std::size_t calls = 0;
  Evaluator evaluator(space, testing::bowl_objective(&calls), 30);
  BoGp bo;
  repro::Rng rng(1);
  const TuneResult result = bo.minimize(space, evaluator, rng);
  EXPECT_EQ(calls, 30u);
  EXPECT_TRUE(result.found_valid);
}

TEST(BoGp, InitializationFractionIsEightPercent) {
  // For budget 100: 8 random draws, then model-driven proposals. We detect
  // the boundary by counting proposals before the first repeat pattern is
  // irrelevant — instead verify min_init applies for tiny budgets.
  BoGpOptions options;
  options.init_fraction = 0.08;
  options.min_init = 2;
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, testing::bowl_objective(), 10);
  BoGp bo(options);
  repro::Rng rng(2);
  EXPECT_TRUE(bo.minimize(space, evaluator, rng).found_valid);
}

TEST(BoGp, MoreSampleEfficientThanRandomOnSmoothLandscape) {
  const ParamSpace space = paper_search_space();
  BoGp bo;
  double bo_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Evaluator evaluator(space, testing::bowl_objective(), 40);
    repro::Rng rng(seed);
    bo_total += bo.minimize(space, evaluator, rng).best_value;
    random_total += testing::random_baseline(space, 40, seed + 777);
  }
  EXPECT_LT(bo_total, random_total);
}

TEST(BoGp, NearlySolvesBowlWithModestBudget) {
  const ParamSpace space = paper_search_space();
  BoGp bo;
  Evaluator evaluator(space, testing::bowl_objective(), 60);
  repro::Rng rng(9);
  const TuneResult result = bo.minimize(space, evaluator, rng);
  EXPECT_LT(result.best_value, 8.0);  // optimum 1.0; random-60 is ~60+
}

TEST(BoGp, SurvivesInvalidRegions) {
  // SMBO searches unconstrained: failures must be absorbed, and the final
  // answer must still be a valid configuration.
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, testing::gated_bowl_objective(space), 40);
  BoGp bo;
  repro::Rng rng(4);
  const TuneResult result = bo.minimize(space, evaluator, rng);
  ASSERT_TRUE(result.found_valid);
  EXPECT_TRUE(space.is_executable(result.best_config));
}

TEST(BoGp, HandlesAllInvalidObjective) {
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, [](const Configuration&) { return Evaluation{}; }, 15);
  BoGp bo;
  repro::Rng rng(5);
  const TuneResult result = bo.minimize(space, evaluator, rng);
  EXPECT_FALSE(result.found_valid);
  EXPECT_EQ(result.evaluations_used, 15u);
}

TEST(BoGp, DeterministicGivenSeed) {
  const ParamSpace space = paper_search_space();
  BoGp bo;
  TuneResult results[2];
  for (int run = 0; run < 2; ++run) {
    Evaluator evaluator(space, testing::bowl_objective(), 25);
    repro::Rng rng(42);
    results[run] = bo.minimize(space, evaluator, rng);
  }
  EXPECT_EQ(results[0].best_config, results[1].best_config);
}

TEST(BoGp, NoisyObjectiveStillConverges) {
  const ParamSpace space = paper_search_space();
  repro::Rng noise_rng(6);
  Evaluator evaluator(space, testing::noisy_bowl_objective(noise_rng, 0.1), 50);
  BoGp bo;
  repro::Rng rng(7);
  const TuneResult result = bo.minimize(space, evaluator, rng);
  EXPECT_TRUE(result.found_valid);
  EXPECT_LT(result.best_value, 40.0);
}

TEST(BoGp, ConstraintAwareModeNeverProposesInvalid) {
  const ParamSpace space = paper_search_space();
  bool all_executable = true;
  Evaluator evaluator(space, [&](const Configuration& config) {
    all_executable &= space.is_executable(config);
    double value = 1.0;
    for (int v : config) value += (v - 4) * (v - 4);
    return Evaluation{value, true};
  }, 35);
  BoGpOptions options;
  options.constraint_aware = true;
  BoGp bo(options);
  repro::Rng rng(21);
  (void)bo.minimize(space, evaluator, rng);
  EXPECT_TRUE(all_executable);
}


TEST(BoGp, IncrementalGpProducesIdenticalTuneResult) {
  // The incremental-Cholesky surrogate is a pure wall-clock optimization:
  // with the same seed, the full tuning trace — every proposal, every
  // measurement — must be identical with it on or off.
  const ParamSpace space = paper_search_space();
  BoGpOptions fast;
  fast.incremental_gp = true;
  BoGpOptions slow;
  slow.incremental_gp = false;

  for (std::uint64_t seed : {3u, 11u}) {
    std::size_t calls_fast = 0;
    Evaluator eval_fast(space, testing::bowl_objective(&calls_fast), 45);
    repro::Rng rng_fast(seed);
    const TuneResult a = BoGp(fast).minimize(space, eval_fast, rng_fast);

    std::size_t calls_slow = 0;
    Evaluator eval_slow(space, testing::bowl_objective(&calls_slow), 45);
    repro::Rng rng_slow(seed);
    const TuneResult b = BoGp(slow).minimize(space, eval_slow, rng_slow);

    EXPECT_EQ(calls_fast, calls_slow) << "seed " << seed;
    EXPECT_EQ(a.best_config, b.best_config) << "seed " << seed;
    EXPECT_EQ(a.best_value, b.best_value) << "seed " << seed;
    EXPECT_EQ(a.evaluations_used, b.evaluations_used) << "seed " << seed;
    // The RNG streams advanced identically (same number of draws).
    EXPECT_EQ(rng_fast(), rng_slow()) << "seed " << seed;
  }
}

TEST(BoGp, PipelinedAskProducesIdenticalTuneResult) {
  // The double-buffered ask pipeline only reorders *when* scoring work runs
  // relative to candidate generation — generation stays sequential on the
  // proposing thread (RNG stream untouched) and scoring is pure per index,
  // so the full trace must match the serial path bit for bit.
  const ParamSpace space = paper_search_space();
  BoGpOptions piped;
  piped.pipelined_ask = true;
  BoGpOptions serial;
  serial.pipelined_ask = false;

  for (std::uint64_t seed : {3u, 11u}) {
    std::size_t calls_piped = 0;
    Evaluator eval_piped(space, testing::bowl_objective(&calls_piped), 45);
    repro::Rng rng_piped(seed);
    const TuneResult a = BoGp(piped).minimize(space, eval_piped, rng_piped);

    std::size_t calls_serial = 0;
    Evaluator eval_serial(space, testing::bowl_objective(&calls_serial), 45);
    repro::Rng rng_serial(seed);
    const TuneResult b = BoGp(serial).minimize(space, eval_serial, rng_serial);

    EXPECT_EQ(calls_piped, calls_serial) << "seed " << seed;
    EXPECT_EQ(a.best_config, b.best_config) << "seed " << seed;
    EXPECT_EQ(a.best_value, b.best_value) << "seed " << seed;
    EXPECT_EQ(rng_piped(), rng_serial()) << "seed " << seed;
  }
}

TEST(BoGp, SparseSurrogateModeStillTunesDeterministically) {
  // Force the sparse fallback to engage mid-run (threshold far below the
  // budget) and check the tuner stays deterministic and functional. The
  // trace legitimately differs from exact mode — the surrogate is an
  // approximation — but it must not diverge between identical runs.
  const ParamSpace space = paper_search_space();
  BoGpOptions options;
  options.sparse.threshold = 16;
  options.sparse.landmarks = 8;
  options.max_train_points = 256;  // keep history above the sparse threshold
  TuneResult results[2];
  for (int run = 0; run < 2; ++run) {
    Evaluator evaluator(space, testing::bowl_objective(), 40);
    repro::Rng rng(42);
    results[run] = BoGp(options).minimize(space, evaluator, rng);
  }
  EXPECT_TRUE(results[0].found_valid);
  EXPECT_EQ(results[0].best_config, results[1].best_config);
  EXPECT_EQ(results[0].best_value, results[1].best_value);
}

}  // namespace
}  // namespace repro::tuner
