// Algorithm registry: names, aliases, construction, errors.

#include <gtest/gtest.h>

#include "tuner/registry.hpp"

namespace repro::tuner {
namespace {

TEST(Registry, PaperSetMatchesStudy) {
  const auto& ids = paper_algorithms();
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[0], "rs");
  EXPECT_EQ(ids[1], "rf");
  EXPECT_EQ(ids[2], "ga");
  EXPECT_EQ(ids[3], "bogp");
  EXPECT_EQ(ids[4], "botpe");
}

TEST(Registry, AllIdsConstruct) {
  for (const std::string& id : all_algorithms()) {
    const auto algorithm = make_algorithm(id);
    ASSERT_NE(algorithm, nullptr) << id;
    EXPECT_FALSE(algorithm->name().empty());
  }
}

TEST(Registry, DisplayNamesMatchThePaper) {
  EXPECT_EQ(display_name("rs"), "RS");
  EXPECT_EQ(display_name("rf"), "RF");
  EXPECT_EQ(display_name("ga"), "GA");
  EXPECT_EQ(display_name("bogp"), "BO GP");
  EXPECT_EQ(display_name("botpe"), "BO TPE");
}

TEST(Registry, AliasesAndNormalization) {
  EXPECT_EQ(make_algorithm("BO GP")->name(), "BO GP");
  EXPECT_EQ(make_algorithm("bo_gp")->name(), "BO GP");
  EXPECT_EQ(make_algorithm("Random-Search")->name(), "RS");
  EXPECT_EQ(make_algorithm("TPE")->name(), "BO TPE");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_algorithm("gradient-descent"), std::out_of_range);
}

TEST(Registry, ExtrasIncludeCltuneAndOpenTunerBaselines) {
  EXPECT_EQ(make_algorithm("sa")->name(), "SA");
  EXPECT_EQ(make_algorithm("pso")->name(), "PSO");
  EXPECT_EQ(make_algorithm("opentuner")->name(), "AUC Bandit");
  EXPECT_EQ(all_algorithms().size(), 8u);
}

TEST(Registry, InstancesAreIndependent) {
  const auto a = make_algorithm("ga");
  const auto b = make_algorithm("ga");
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace repro::tuner
