// AUC-bandit ensemble (OpenTuner baseline): budget behaviour, constraint
// awareness, and credit-assignment dynamics.

#include <gtest/gtest.h>

#include "tests/tuner/test_objectives.hpp"
#include "tuner/extras/auc_bandit.hpp"

namespace repro::tuner {
namespace {

TEST(AucBandit, UsesExactBudget) {
  const ParamSpace space = paper_search_space();
  std::size_t calls = 0;
  Evaluator evaluator(space, testing::bowl_objective(&calls), 70);
  AucBandit bandit;
  repro::Rng rng(1);
  const TuneResult result = bandit.minimize(space, evaluator, rng);
  EXPECT_EQ(calls, 70u);
  EXPECT_TRUE(result.found_valid);
}

TEST(AucBandit, OnlyProposesExecutableConfigs) {
  const ParamSpace space = paper_search_space();
  bool all_executable = true;
  Evaluator evaluator(space, [&](const Configuration& config) {
    all_executable &= space.is_executable(config);
    double value = 1.0;
    for (int v : config) value += (v - 4) * (v - 4);
    return Evaluation{value, true};
  }, 80);
  AucBandit bandit;
  repro::Rng rng(2);
  (void)bandit.minimize(space, evaluator, rng);
  EXPECT_TRUE(all_executable);
}

TEST(AucBandit, BeatsRandomOnLocalStructure) {
  const ParamSpace space = paper_search_space();
  AucBandit bandit;
  double bandit_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Evaluator evaluator(space, testing::bowl_objective(), 150);
    repro::Rng rng(seed);
    bandit_total += bandit.minimize(space, evaluator, rng).best_value;
    random_total += testing::random_baseline(space, 150, seed + 4242);
  }
  EXPECT_LT(bandit_total, random_total);
}

TEST(AucBandit, ImprovesWithBudget) {
  const ParamSpace space = paper_search_space();
  AucBandit bandit;
  double small_total = 0.0, large_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Evaluator small(space, testing::bowl_objective(), 20);
    Evaluator large(space, testing::bowl_objective(), 300);
    repro::Rng rng_a(seed), rng_b(seed + 77);
    small_total += bandit.minimize(space, small, rng_a).best_value;
    large_total += bandit.minimize(space, large, rng_b).best_value;
  }
  EXPECT_LT(large_total, small_total);
}

TEST(AucBandit, SurvivesAllInvalidObjective) {
  const ParamSpace space = paper_search_space();
  Evaluator evaluator(space, [](const Configuration&) { return Evaluation{}; }, 20);
  AucBandit bandit;
  repro::Rng rng(5);
  const TuneResult result = bandit.minimize(space, evaluator, rng);
  EXPECT_FALSE(result.found_valid);
  EXPECT_EQ(result.evaluations_used, 20u);
}

TEST(AucBandit, DeterministicGivenSeed) {
  const ParamSpace space = paper_search_space();
  AucBandit bandit;
  TuneResult results[2];
  for (int run = 0; run < 2; ++run) {
    Evaluator evaluator(space, testing::bowl_objective(), 60);
    repro::Rng rng(31);
    results[run] = bandit.minimize(space, evaluator, rng);
  }
  EXPECT_EQ(results[0].best_config, results[1].best_config);
}

}  // namespace
}  // namespace repro::tuner
