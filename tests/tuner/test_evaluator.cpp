// Evaluator: budget accounting, measurement caching, best tracking.

#include <gtest/gtest.h>

#include "tuner/evaluator.hpp"

namespace repro::tuner {
namespace {

ParamSpace tiny_space() { return ParamSpace({{"a", 0, 9}, {"b", 0, 9}}); }

TEST(Evaluator, ChargesBudgetPerFreshMeasurement) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration&) {
    ++calls;
    return Evaluation{1.0, true};
  }, 3);
  (void)evaluator.evaluate({0, 0});
  (void)evaluator.evaluate({1, 0});
  EXPECT_EQ(evaluator.used(), 2u);
  EXPECT_EQ(evaluator.remaining(), 1u);
  EXPECT_EQ(calls, 2);
}

TEST(Evaluator, CachedRepeatsAreFree) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration& c) {
    ++calls;
    return Evaluation{static_cast<double>(c[0]), true};
  }, 2);
  const Evaluation first = evaluator.evaluate({4, 0});
  const Evaluation again = evaluator.evaluate({4, 0});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(evaluator.used(), 1u);
  EXPECT_DOUBLE_EQ(first.value, again.value);
}

TEST(Evaluator, ThrowsWhenExhausted) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration&) {
    return Evaluation{1.0, true};
  }, 1);
  (void)evaluator.evaluate({0, 0});
  EXPECT_TRUE(evaluator.exhausted());
  EXPECT_THROW((void)evaluator.evaluate({1, 1}), BudgetExhausted);
  // Cached lookups still work after exhaustion.
  EXPECT_NO_THROW((void)evaluator.evaluate({0, 0}));
}

TEST(Evaluator, RejectsOutOfRangeConfigs) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration&) {
    return Evaluation{1.0, true};
  }, 5);
  EXPECT_THROW((void)evaluator.evaluate({50, 0}), std::invalid_argument);
}

TEST(Evaluator, TracksBestValidOnly) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration& c) {
    if (c[0] == 0) return Evaluation{0.001, false};  // invalid, best value
    return Evaluation{static_cast<double>(c[0]), true};
  }, 10);
  (void)evaluator.evaluate({0, 0});
  EXPECT_FALSE(evaluator.has_best());
  (void)evaluator.evaluate({5, 0});
  (void)evaluator.evaluate({3, 0});
  (void)evaluator.evaluate({7, 0});
  ASSERT_TRUE(evaluator.has_best());
  EXPECT_DOUBLE_EQ(evaluator.best_value(), 3.0);
  EXPECT_EQ(evaluator.best_config(), (Configuration{3, 0}));
}

TEST(Evaluator, RemainingSaturatesAtZero) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration&) {
    return Evaluation{1.0, true};
  }, 2);
  EXPECT_EQ(evaluator.remaining(), 2u);
  (void)evaluator.evaluate({0, 0});
  (void)evaluator.evaluate({1, 0});
  EXPECT_EQ(evaluator.remaining(), 0u);
  EXPECT_TRUE(evaluator.exhausted());
  // Cached lookups after exhaustion must not move the counters.
  (void)evaluator.evaluate({0, 0});
  EXPECT_EQ(evaluator.remaining(), 0u);
  EXPECT_EQ(evaluator.used(), 2u);
}

TEST(Evaluator, StatusNormalizationForLegacyObjectives) {
  const ParamSpace space = tiny_space();
  // Objective that never sets status: valid => kOk, invalid => kInvalid.
  Evaluator evaluator(space, [](const Configuration& c) {
    return Evaluation{1.0, c[0] == 0};
  }, 4);
  EXPECT_EQ(evaluator.evaluate({0, 0}).status, EvalStatus::kOk);
  EXPECT_EQ(evaluator.evaluate({1, 0}).status, EvalStatus::kInvalid);
  EXPECT_EQ(evaluator.counters().ok, 1u);
  EXPECT_EQ(evaluator.counters().invalid, 1u);
  EXPECT_FALSE(evaluator.counters().any());
}

TEST(Evaluator, RetriesTransientAndChargesBudgetPerAttempt) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  // First two attempts fail transiently, third succeeds.
  Evaluator evaluator(space, [&](const Configuration&) {
    ++calls;
    Evaluation eval;
    if (calls <= 2) {
      eval.status = EvalStatus::kTransient;
      return eval;
    }
    return Evaluation{42.0, true};
  }, 10);
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_us = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_us = 150.0;
  evaluator.set_retry_policy(policy);

  const Evaluation result = evaluator.evaluate({5, 5});
  EXPECT_EQ(result.status, EvalStatus::kOk);
  EXPECT_DOUBLE_EQ(result.value, 42.0);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(evaluator.used(), 3u);  // every retry consumed budget
  EXPECT_EQ(evaluator.counters().transient, 2u);
  EXPECT_EQ(evaluator.counters().retries, 2u);
  EXPECT_EQ(evaluator.counters().retry_successes, 1u);
  // 100 then min(200, 150) = 150 of simulated backoff.
  EXPECT_DOUBLE_EQ(evaluator.counters().backoff_us, 250.0);
  EXPECT_TRUE(evaluator.counters().any());
}

TEST(Evaluator, RetryStopsAtBudgetBoundary) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration&) {
    ++calls;
    Evaluation eval;
    eval.status = EvalStatus::kTransient;
    return eval;
  }, 2);
  RetryPolicy policy;
  policy.max_retries = 10;
  evaluator.set_retry_policy(policy);

  const Evaluation result = evaluator.evaluate({1, 1});
  EXPECT_EQ(result.status, EvalStatus::kTransient);
  EXPECT_EQ(calls, 2);  // initial + 1 retry, then budget gone
  EXPECT_TRUE(evaluator.exhausted());
  EXPECT_EQ(evaluator.counters().retry_successes, 0u);
}

TEST(Evaluator, TransientResultsAreNotCached) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration&) {
    ++calls;
    Evaluation eval;
    if (calls == 1) {
      eval.status = EvalStatus::kTransient;
      return eval;
    }
    return Evaluation{7.0, true};
  }, 10);
  // No retry policy: the transient result is returned as-is but not cached,
  // so re-proposing the configuration measures it again.
  EXPECT_EQ(evaluator.evaluate({2, 2}).status, EvalStatus::kTransient);
  const Evaluation second = evaluator.evaluate({2, 2});
  EXPECT_EQ(second.status, EvalStatus::kOk);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(evaluator.used(), 2u);
  // Now cached: no further charge.
  (void)evaluator.evaluate({2, 2});
  EXPECT_EQ(evaluator.used(), 2u);
}

TEST(Evaluator, TimeoutAndCrashCountersAndBestExcludesFaults) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration& c) {
    Evaluation eval;
    if (c[0] == 0) {
      eval.value = 1e6;  // elapsed wall budget of the hung kernel
      eval.status = EvalStatus::kTimeout;
      return eval;
    }
    if (c[0] == 1) {
      eval.status = EvalStatus::kCrashed;
      return eval;
    }
    return Evaluation{static_cast<double>(c[0]), true};
  }, 10);
  EXPECT_EQ(evaluator.evaluate({0, 0}).status, EvalStatus::kTimeout);
  EXPECT_EQ(evaluator.evaluate({1, 0}).status, EvalStatus::kCrashed);
  (void)evaluator.evaluate({5, 0});
  EXPECT_EQ(evaluator.counters().timeout, 1u);
  EXPECT_EQ(evaluator.counters().crashed, 1u);
  EXPECT_EQ(evaluator.counters().faults(), 2u);
  ASSERT_TRUE(evaluator.has_best());
  EXPECT_DOUBLE_EQ(evaluator.best_value(), 5.0);  // timeout value is not "best"
}

TEST(FailureCountersTest, AccumulateAndAny) {
  FailureCounters a, b;
  EXPECT_FALSE(a.any());
  a.ok = 5;
  a.invalid = 3;
  EXPECT_FALSE(a.any());  // plain outcomes are not anomalies
  b.transient = 2;
  b.retries = 1;
  b.backoff_us = 100.0;
  EXPECT_TRUE(b.any());
  a += b;
  EXPECT_EQ(a.ok, 5u);
  EXPECT_EQ(a.transient, 2u);
  EXPECT_EQ(a.retries, 1u);
  EXPECT_DOUBLE_EQ(a.backoff_us, 100.0);
  EXPECT_TRUE(a.any());
}

TEST(EvalStatusNames, AllDistinct) {
  EXPECT_STREQ(to_string(EvalStatus::kOk), "ok");
  EXPECT_STREQ(to_string(EvalStatus::kInvalid), "invalid");
  EXPECT_STREQ(to_string(EvalStatus::kTransient), "transient");
  EXPECT_STREQ(to_string(EvalStatus::kTimeout), "timeout");
  EXPECT_STREQ(to_string(EvalStatus::kCrashed), "crashed");
}


TEST(Evaluator, CacheCapacityEvictsFifo) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration&) {
    ++calls;
    return Evaluation{1.0, true};
  }, 100);
  evaluator.set_cache_capacity(3);

  (void)evaluator.evaluate({0, 0});
  (void)evaluator.evaluate({1, 0});
  (void)evaluator.evaluate({2, 0});
  EXPECT_EQ(evaluator.cache_size(), 3u);
  // Fourth insert evicts {0,0}, the oldest entry.
  (void)evaluator.evaluate({3, 0});
  EXPECT_EQ(evaluator.cache_size(), 3u);
  EXPECT_EQ(calls, 4);

  // Still-resident entries are served from cache...
  (void)evaluator.evaluate({3, 0});
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(evaluator.used(), 4u);
  // ...but the evicted one is measured (and charged) again.
  (void)evaluator.evaluate({0, 0});
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(evaluator.used(), 5u);
}

TEST(Evaluator, ShrinkingCapacityTrimsOldestEntries) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration&) {
    ++calls;
    return Evaluation{1.0, true};
  }, 100);
  for (int a = 0; a < 5; ++a) (void)evaluator.evaluate({a, 0});
  EXPECT_EQ(evaluator.cache_size(), 5u);
  evaluator.set_cache_capacity(2);
  EXPECT_EQ(evaluator.cache_size(), 2u);
  // The two newest survive.
  (void)evaluator.evaluate({3, 0});
  (void)evaluator.evaluate({4, 0});
  EXPECT_EQ(calls, 5);
  // The oldest were dropped.
  (void)evaluator.evaluate({0, 0});
  EXPECT_EQ(calls, 6);
}

TEST(Evaluator, DefaultCapacityNeverEvictsWithinAnyStudyBudget) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration&) {
    return Evaluation{1.0, true};
  }, 100);
  // The default is derived from the budget: fresh measurements are the only
  // inserts (at most one per budget unit), so capacity >= budget can never
  // evict within the study.
  EXPECT_EQ(evaluator.cache_capacity(), Evaluator::default_cache_capacity(100));
  EXPECT_GE(evaluator.cache_capacity(), evaluator.budget());
  for (int a = 0; a < 10; ++a) (void)evaluator.evaluate({a, 1});
  EXPECT_EQ(evaluator.cache_size(), 10u);
  EXPECT_EQ(evaluator.cache_evictions(), 0u);
}

TEST(Evaluator, DerivedCapacityScalesWithBudgetAboveTheFloor) {
  // Tiny budgets keep the floor; large budgets get 2x-budget headroom.
  EXPECT_EQ(Evaluator::default_cache_capacity(0), 1024u);
  EXPECT_EQ(Evaluator::default_cache_capacity(100), 1024u);
  EXPECT_EQ(Evaluator::default_cache_capacity(512), 1024u);
  EXPECT_EQ(Evaluator::default_cache_capacity(4096), 8192u);
  for (std::size_t budget : {1u, 100u, 1000u, 100000u}) {
    EXPECT_GE(Evaluator::default_cache_capacity(budget), budget);
  }
}

TEST(Evaluator, WarnsOnceWhenEvictionChurnExceedsTenPercent) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration&) {
    ++calls;
    return Evaluation{1.0, true};
  }, 100);
  evaluator.set_cache_capacity(2);
  // 12 distinct configurations through a 2-entry cache: 12 insertions,
  // 10 evictions — far past the 10% churn threshold.
  for (int a = 0; a < 6; ++a) {
    (void)evaluator.evaluate({a, 1});
    (void)evaluator.evaluate({a, 2});
  }
  EXPECT_EQ(evaluator.cache_insertions(), 12u);
  EXPECT_EQ(evaluator.cache_evictions(), 10u);
  // Re-proposing an evicted configuration costs budget again.
  (void)evaluator.evaluate({0, 1});
  EXPECT_EQ(calls, 13);
}

}  // namespace
}  // namespace repro::tuner
