// Evaluator: budget accounting, measurement caching, best tracking.

#include <gtest/gtest.h>

#include "tuner/evaluator.hpp"

namespace repro::tuner {
namespace {

ParamSpace tiny_space() { return ParamSpace({{"a", 0, 9}, {"b", 0, 9}}); }

TEST(Evaluator, ChargesBudgetPerFreshMeasurement) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration&) {
    ++calls;
    return Evaluation{1.0, true};
  }, 3);
  (void)evaluator.evaluate({0, 0});
  (void)evaluator.evaluate({1, 0});
  EXPECT_EQ(evaluator.used(), 2u);
  EXPECT_EQ(evaluator.remaining(), 1u);
  EXPECT_EQ(calls, 2);
}

TEST(Evaluator, CachedRepeatsAreFree) {
  const ParamSpace space = tiny_space();
  int calls = 0;
  Evaluator evaluator(space, [&](const Configuration& c) {
    ++calls;
    return Evaluation{static_cast<double>(c[0]), true};
  }, 2);
  const Evaluation first = evaluator.evaluate({4, 0});
  const Evaluation again = evaluator.evaluate({4, 0});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(evaluator.used(), 1u);
  EXPECT_DOUBLE_EQ(first.value, again.value);
}

TEST(Evaluator, ThrowsWhenExhausted) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration&) {
    return Evaluation{1.0, true};
  }, 1);
  (void)evaluator.evaluate({0, 0});
  EXPECT_TRUE(evaluator.exhausted());
  EXPECT_THROW((void)evaluator.evaluate({1, 1}), BudgetExhausted);
  // Cached lookups still work after exhaustion.
  EXPECT_NO_THROW((void)evaluator.evaluate({0, 0}));
}

TEST(Evaluator, RejectsOutOfRangeConfigs) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration&) {
    return Evaluation{1.0, true};
  }, 5);
  EXPECT_THROW((void)evaluator.evaluate({50, 0}), std::invalid_argument);
}

TEST(Evaluator, TracksBestValidOnly) {
  const ParamSpace space = tiny_space();
  Evaluator evaluator(space, [](const Configuration& c) {
    if (c[0] == 0) return Evaluation{0.001, false};  // invalid, best value
    return Evaluation{static_cast<double>(c[0]), true};
  }, 10);
  (void)evaluator.evaluate({0, 0});
  EXPECT_FALSE(evaluator.has_best());
  (void)evaluator.evaluate({5, 0});
  (void)evaluator.evaluate({3, 0});
  (void)evaluator.evaluate({7, 0});
  ASSERT_TRUE(evaluator.has_best());
  EXPECT_DOUBLE_EQ(evaluator.best_value(), 3.0);
  EXPECT_EQ(evaluator.best_config(), (Configuration{3, 0}));
}

}  // namespace
}  // namespace repro::tuner
