// Results store wired through the daemon: acknowledged tells land in the
// store, the store_stats/store_export/store_import ops round-trip over the
// wire, a store-enabled daemon with warm start disabled stays byte-identical
// to a plain one, warm-started sessions are deterministic across daemons
// holding equal stores, and WAL recovery replays a warm session from its
// *journaled* prior while repopulating a fresh store.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "service/server.hpp"
#include "store/fingerprint.hpp"
#include "store/results_store.hpp"
#include "tests/service/service_test_util.hpp"
#include "tuner/registry.hpp"

namespace repro::service {
namespace {

using service_test::client_config;
using service_test::synth_eval;

constexpr std::uint64_t kSalt = 55;

std::string fresh_dir() {
  char templ[] = "/tmp/repro_store_svc_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// Tenant-identified open over the tiny custom space.
OpenParams tenant_open(const std::string& algorithm, std::size_t budget,
                       std::uint64_t seed, bool warm = false) {
  OpenParams params;
  params.algorithm = algorithm;
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  params.benchmark = "mandelbrot";
  params.arch = "rtxtitan";
  params.warm_start = warm;
  return params;
}

store::StoreKey tenant_key(const OpenParams& params) {
  return store::StoreKey{params.benchmark, params.arch, space_fingerprint_of(params)};
}

ServerConfig store_config(const std::string& dir) {
  ServerConfig config;
  config.store_dir = dir;
  return config;
}

/// Drive a full remote session; returns the result.
Client::RemoteResult run_remote(Client& client, const OpenParams& params) {
  const tuner::ParamSpace space = params.make_space();
  return client.remote_minimize(params, [&space](const tuner::Configuration& c) {
    return synth_eval(space, c, kSalt);
  });
}

bool same_result(const tuner::TuneResult& a, const tuner::TuneResult& b) {
  return a.best_config == b.best_config && a.found_valid == b.found_valid &&
         a.evaluations_used == b.evaluations_used && a.best_value == b.best_value;
}

TEST(StoreService, AcknowledgedTellsLandInTheStore) {
  TuneServer server(store_config(fresh_dir()));
  server.start();
  ASSERT_NE(server.store(), nullptr);
  Client client(client_config(server.port()));
  client.connect();
  const OpenParams params = tenant_open("rs", 12, 5);
  (void)run_remote(client, params);

  // Every acknowledged tell was appended (minus in-session duplicates the
  // dedup rule swallows).
  const store::StoreStats stats = server.store()->stats();
  EXPECT_EQ(stats.appends + stats.duplicates, 12u);
  EXPECT_GE(server.store()->tenant_rows(tenant_key(params)), 1u);
  EXPECT_EQ(stats.tenants, 1u);

  // The wire view agrees.
  const Json wire = client.store_stats();
  EXPECT_TRUE(wire.find("store_enabled")->as_bool());
  EXPECT_EQ(wire.find("records")->as_uint64(),
            static_cast<std::uint64_t>(stats.records));
  const Json status = client.status();
  EXPECT_TRUE(status.find("store_enabled")->as_bool());
  EXPECT_EQ(status.find("store")->find("records")->as_uint64(),
            static_cast<std::uint64_t>(stats.records));
  client.disconnect();
  server.stop();
}

TEST(StoreService, AnonymousSessionsStayOutOfTheStore) {
  TuneServer server(store_config(fresh_dir()));
  server.start();
  Client client(client_config(server.port()));
  client.connect();
  OpenParams params = tenant_open("rs", 8, 5);
  params.benchmark.clear();  // no tenant identity -> no store writes
  (void)run_remote(client, params);
  EXPECT_EQ(server.store()->stats().records, 0u);
  client.disconnect();
  server.stop();
}

TEST(StoreService, ExportImportRoundTripsOverTheWire) {
  TuneServer source(store_config(fresh_dir()));
  source.start();
  Client source_client(client_config(source.port()));
  source_client.connect();
  (void)run_remote(source_client, tenant_open("rs", 16, 7));

  TuneServer target(store_config(fresh_dir()));
  target.start();
  Client target_client(client_config(target.port()));
  target_client.connect();

  const std::vector<store::TenantSnapshot> tenants = source_client.store_export();
  ASSERT_FALSE(tenants.empty());
  const std::size_t imported = target_client.store_import(tenants);
  EXPECT_GE(imported, 1u);
  EXPECT_EQ(target.store()->digest(), source.store()->digest());
  // Replayed import: pure duplicates, identical digest.
  EXPECT_EQ(target_client.store_import(tenants), 0u);
  EXPECT_EQ(target.store()->digest(), source.store()->digest());

  source_client.disconnect();
  target_client.disconnect();
  source.stop();
  target.stop();
}

TEST(StoreService, ExportPagesOverTheWireWithCursors) {
  TuneServer server(store_config(fresh_dir()));
  server.start();
  Client client(client_config(server.port()));
  client.connect();
  (void)run_remote(client, tenant_open("rs", 16, 7));
  const std::vector<store::TenantSnapshot> all = client.store_export();
  std::size_t total = 0;
  for (const store::TenantSnapshot& tenant : all) total += tenant.rows.size();
  ASSERT_GE(total, 4u);

  // Page with a tiny limit: each page is exact, the cursor chain terminates,
  // and the stitched rows equal the unpaged export.
  std::size_t paged = 0;
  std::string cursor;
  std::size_t pages = 0;
  while (true) {
    const Client::ExportPage page = client.store_export_page("", "", 3, cursor);
    ++pages;
    for (const store::TenantSnapshot& tenant : page.tenants)
      paged += tenant.rows.size();
    ASSERT_EQ(page.truncated, !page.next_cursor.empty());
    if (page.next_cursor.empty()) break;
    cursor = page.next_cursor;
  }
  EXPECT_EQ(paged, total);
  EXPECT_EQ(pages, (total + 2) / 3);

  // A garbage cursor is a typed protocol error, not a silent full restart.
  try {
    (void)client.store_export_page("", "", 0, "not-a-cursor");
    FAIL() << "malformed cursor must be refused";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kBadRequest);
  }
  client.disconnect();
  server.stop();
}

TEST(StoreService, IncompatibleImportIsRejectedWithATypedError) {
  TuneServer server(store_config(fresh_dir()));
  server.start();
  Client client(client_config(server.port()));
  client.connect();

  store::TenantSnapshot tenant;
  tenant.key = store::StoreKey{"bench", "arch", "ffffffffffffffff"};
  tenant.rows.push_back(store::StoreRecord{{1, 2, 3}, 10.0, true});
  EXPECT_EQ(client.store_import({tenant}), 1u);
  tenant.rows = {store::StoreRecord{{1, 2}, 5.0, true}};
  try {
    (void)client.store_import({tenant});
    FAIL() << "a dimensionality clash must be refused";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kBadRequest);
    EXPECT_NE(std::string(error.what()).find("holds"), std::string::npos);
  }
  client.disconnect();
  server.stop();
}

TEST(StoreService, StoreOpsWithoutAStoreAnswerCleanly) {
  TuneServer server;  // no store_dir
  server.start();
  Client client(client_config(server.port()));
  client.connect();
  const Json stats = client.store_stats();
  EXPECT_FALSE(stats.find("store_enabled")->as_bool());
  EXPECT_THROW((void)client.store_export(), ProtocolError);
  client.disconnect();
  server.stop();
}

TEST(StoreService, OpenRequestFingerprintsAreCanonical) {
  // A default open resolves to the paper space; a custom open fingerprints
  // its declarative description. Both must match the store library's own
  // derivation, or daemons would scatter one tenant across several keys.
  const OpenParams paper;
  EXPECT_EQ(space_fingerprint_of(paper), store::paper_space_fingerprint());
  const OpenParams custom = tenant_open("rs", 8, 1);
  EXPECT_EQ(space_fingerprint_of(custom),
            store::space_fingerprint(custom.params, custom.constraint));
}

TEST(StoreService, ColdPathIsByteIdenticalWithAStoreAttached) {
  // Warm start off: a store-enabled daemon (recording every tell) must
  // produce bit-identical results to a plain daemon for all five paper
  // algorithms — the store is an observer, never a participant.
  TuneServer plain;
  plain.start();
  TuneServer stored(store_config(fresh_dir()));
  stored.start();
  for (const std::string& algorithm : tuner::paper_algorithms()) {
    const OpenParams params = tenant_open(algorithm, 16, 42);
    Client plain_client(client_config(plain.port()));
    plain_client.connect();
    const Client::RemoteResult baseline = run_remote(plain_client, params);
    plain_client.disconnect();
    Client stored_client(client_config(stored.port()));
    stored_client.connect();
    const Client::RemoteResult observed = run_remote(stored_client, params);
    stored_client.disconnect();
    EXPECT_TRUE(same_result(baseline.result, observed.result))
        << algorithm << " diverged with a results store attached";
  }
  EXPECT_GE(stored.store()->stats().records, 1u);
  plain.stop();
  stored.stop();
}

TEST(StoreService, WarmStartOnAColdStoreIsByteIdenticalToCold) {
  TuneServer plain;
  plain.start();
  TuneServer stored(store_config(fresh_dir()));
  stored.start();
  for (const std::string& algorithm : {std::string("bogp"), std::string("botpe")}) {
    Client plain_client(client_config(plain.port()));
    plain_client.connect();
    const Client::RemoteResult cold =
        run_remote(plain_client, tenant_open(algorithm, 16, 9));
    plain_client.disconnect();
    // warm_start=true against an empty tenant: the derived prior is empty,
    // which the contract requires to be exactly the cold path. Use a
    // distinct benchmark per algorithm so the first run's tells cannot seed
    // the second algorithm's tenant.
    OpenParams params = tenant_open(algorithm, 16, 9, /*warm=*/true);
    params.benchmark = "cold-" + algorithm;
    Client stored_client(client_config(stored.port()));
    stored_client.connect();
    const Client::RemoteResult warm = run_remote(stored_client, params);
    stored_client.disconnect();
    EXPECT_TRUE(same_result(cold.result, warm.result)) << algorithm;
  }
  plain.stop();
  stored.stop();
}

TEST(StoreService, WarmStartIsDeterministicAcrossDaemonsWithEqualStores) {
  // Seed daemon A's store with a real session, copy it to daemon B via
  // export/import, then warm-start the same open on both: byte-identical.
  TuneServer a(store_config(fresh_dir()));
  a.start();
  Client client_a(client_config(a.port()));
  client_a.connect();
  (void)run_remote(client_a, tenant_open("rs", 24, 3));

  TuneServer b(store_config(fresh_dir()));
  b.start();
  Client client_b(client_config(b.port()));
  client_b.connect();
  (void)client_b.store_import(client_a.store_export());
  ASSERT_EQ(a.store()->digest(), b.store()->digest());

  const OpenParams warm = tenant_open("botpe", 16, 11, /*warm=*/true);
  const Client::RemoteResult on_a = run_remote(client_a, warm);
  const Client::RemoteResult on_b = run_remote(client_b, warm);
  EXPECT_TRUE(same_result(on_a.result, on_b.result))
      << "equal stores must warm-start identically";

  // And the prior demonstrably participated: a cold daemon diverges.
  TuneServer plain;
  plain.start();
  Client plain_client(client_config(plain.port()));
  plain_client.connect();
  const Client::RemoteResult cold =
      run_remote(plain_client, tenant_open("botpe", 16, 11));
  EXPECT_FALSE(same_result(cold.result, on_a.result))
      << "the warm prior left the search untouched";
  plain_client.disconnect();
  plain.stop();
  client_a.disconnect();
  client_b.disconnect();
  a.stop();
  b.stop();
}

TEST(StoreService, RecoveryReplaysTheJournaledPriorAndRepopulatesAFreshStore) {
  const std::string state_dir = fresh_dir();
  const OpenParams warm = tenant_open("botpe", 16, 21, /*warm=*/true);
  const tuner::ParamSpace space = warm.make_space();

  // A prior every daemon in this test can be seeded with.
  store::TenantSnapshot seed;
  seed.key = tenant_key(warm);
  for (int a = 1; a <= 8; ++a) {
    const tuner::Configuration config = {a, 9 - a, a % 6};
    const tuner::Evaluation eval = synth_eval(space, config, kSalt);
    seed.rows.push_back(store::StoreRecord{config, eval.value, eval.valid});
  }

  // Control: an uninterrupted warm session on its own daemon.
  tuner::TuneResult control;
  {
    TuneServer server(store_config(fresh_dir()));
    server.start();
    Client client(client_config(server.port()));
    client.connect();
    ASSERT_GE(client.store_import({seed}), 1u);
    control = run_remote(client, warm).result;
    client.disconnect();
    server.stop();
  }

  // Interrupted run: journal to state_dir, crash after 5 tells.
  {
    ServerConfig config = store_config(fresh_dir());
    config.limits.state_dir = state_dir;
    TuneServer server(config);
    server.start();
    Client client(client_config(server.port()));
    client.connect();
    ASSERT_GE(client.store_import({seed}), 1u);
    const std::string id = client.open(warm, "recover#warm");
    for (int i = 0; i < 5; ++i) {
      const auto proposal = client.ask(id);
      ASSERT_TRUE(proposal.has_value());
      (void)client.tell(id, synth_eval(space, *proposal, kSalt));
    }
    client.disconnect();
    server.stop();  // crash: the WAL (including the open's prior) survives
  }

  // Restart over the same journals with a FRESH, EMPTY store. The warm
  // session must resume byte-identically — proof the prior comes from the
  // journal, not from a store that no longer holds it — and the replayed
  // tells must repopulate the new store.
  ServerConfig config = store_config(fresh_dir());
  config.limits.state_dir = state_dir;
  TuneServer server(config);
  server.start();
  ASSERT_EQ(server.sessions().status().recovery.sessions_recovered, 1u);
  Client client(client_config(server.port()));
  client.connect();
  const std::string id = client.open(warm, "recover#warm");  // same token
  while (const auto proposal = client.ask(id)) {
    (void)client.tell(id, synth_eval(space, *proposal, kSalt));
  }
  const Client::RemoteResult resumed = client.result(id);
  EXPECT_TRUE(same_result(control, resumed.result))
      << "warm session diverged across crash + recovery";
  EXPECT_GE(server.store()->tenant_rows(seed.key), 1u)
      << "replayed tells did not repopulate the fresh store";
  client.close_session(id);
  client.disconnect();
  server.stop();
}

}  // namespace
}  // namespace repro::service
