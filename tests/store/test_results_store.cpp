// ResultsStore semantics: first-value-wins dedup, typed incompatibility
// rejection, deterministic FIFO eviction, persistence round-trips (live,
// recovered and compacted stores must agree on digest()), the session-WAL
// torn-tail rules, and the export/import surface.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "store/results_store.hpp"

namespace repro::store {
namespace {

std::string fresh_dir() {
  char templ[] = "/tmp/repro_store_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir;
}

StoreKey key_a() { return StoreKey{"mandelbrot", "rtxtitan", "aaaaaaaaaaaaaaaa"}; }
StoreKey key_b() { return StoreKey{"sobel", "gtx980", "bbbbbbbbbbbbbbbb"}; }

StoreOptions memory_options() {
  StoreOptions options;
  options.capacity = 0;
  return options;
}

TEST(ResultsStore, AppendAndQueryRoundtripInInsertionOrder) {
  ResultsStore store(memory_options());
  store.load();
  EXPECT_TRUE(store.append(key_a(), {1, 2, 3}, 10.0, true));
  EXPECT_TRUE(store.append(key_a(), {4, 5, 6}, 20.0, true));
  EXPECT_TRUE(store.append(key_a(), {7, 8, 9}, std::nan(""), false));
  const std::vector<StoreRecord> rows = store.query(key_a());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].config, (tuner::Configuration{1, 2, 3}));
  EXPECT_EQ(rows[0].value, 10.0);
  EXPECT_TRUE(rows[0].valid);
  EXPECT_EQ(rows[1].config, (tuner::Configuration{4, 5, 6}));
  EXPECT_TRUE(std::isnan(rows[2].value));
  EXPECT_FALSE(rows[2].valid);
  EXPECT_EQ(store.tenant_rows(key_a()), 3u);
  EXPECT_EQ(store.tenant_rows(key_b()), 0u);
  EXPECT_EQ(store.tenant_count(), 1u);
}

TEST(ResultsStore, QueryMaxRowsKeepsTheMostRecentTail) {
  ResultsStore store(memory_options());
  store.load();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.append(key_a(), {i, i, i}, i, true));
  const std::vector<StoreRecord> tail = store.query(key_a(), 2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].config, (tuner::Configuration{3, 3, 3}));
  EXPECT_EQ(tail[1].config, (tuner::Configuration{4, 4, 4}));
}

TEST(ResultsStore, FirstValueWinsOnDuplicateConfigs) {
  ResultsStore store(memory_options());
  store.load();
  EXPECT_TRUE(store.append(key_a(), {1, 2, 3}, 10.0, true));
  // Re-appending the same config (a WAL replay, a ship duplicate, a repeat
  // measurement) is a counted no-op: the stored value never changes.
  EXPECT_FALSE(store.append(key_a(), {1, 2, 3}, 99.0, true));
  const std::vector<StoreRecord> rows = store.query(key_a());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].value, 10.0);
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.appends, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
}

TEST(ResultsStore, DimensionMismatchThrowsTypedError) {
  ResultsStore store(memory_options());
  store.load();
  ASSERT_TRUE(store.append(key_a(), {1, 2, 3}, 10.0, true));
  EXPECT_THROW((void)store.append(key_a(), {1, 2}, 5.0, true), IncompatibleSpaceError);
  // The typed error is also a StoreError (one catch site covers both).
  try {
    (void)store.append(key_a(), {9, 9, 9, 9}, 5.0, true);
    FAIL() << "4-dim append into a 3-dim tenant must throw";
  } catch (const StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("mandelbrot"), std::string::npos);
  }
  EXPECT_EQ(store.stats().rejected, 2u);
  // A different tenant with different dimensionality is fine.
  EXPECT_TRUE(store.append(key_b(), {1, 2}, 5.0, true));
}

TEST(ResultsStore, PersistedStoreReloadsByteIdentical) {
  const std::string dir = fresh_dir();
  std::uint64_t live_digest = 0;
  {
    StoreOptions options;
    options.dir = dir;
    ResultsStore store(options);
    store.load();
    EXPECT_TRUE(store.persistent());
    ASSERT_TRUE(store.append(key_a(), {1, 2, 3}, 10.5, true));
    ASSERT_TRUE(store.append(key_a(), {4, 5, 6}, std::nan(""), false));
    ASSERT_TRUE(store.append(key_b(), {7, 8}, 20.25, true));
    live_digest = store.digest();
  }
  StoreOptions options;
  options.dir = dir;
  ResultsStore reloaded(options);
  reloaded.load();
  const StoreStats stats = reloaded.stats();
  EXPECT_EQ(stats.loaded_records, 3u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(reloaded.digest(), live_digest);
  const std::vector<StoreRecord> rows = reloaded.query(key_a());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].value, 10.5);
  EXPECT_TRUE(std::isnan(rows[1].value));
}

TEST(ResultsStore, LoadTwiceThrows) {
  ResultsStore store(memory_options());
  store.load();
  EXPECT_THROW(store.load(), StoreError);
}

TEST(ResultsStore, TornFinalLineIsDroppedAndTruncatedAway) {
  const std::string dir = fresh_dir();
  {
    StoreOptions options;
    options.dir = dir;
    ResultsStore store(options);
    store.load();
    ASSERT_TRUE(store.append(key_a(), {1, 2, 3}, 10.0, true));
    ASSERT_TRUE(store.append(key_a(), {4, 5, 6}, 20.0, true));
  }
  // Simulate a crash mid-append: an unterminated JSON fragment at the tail.
  {
    std::ofstream out(dir + "/results.log", std::ios::app | std::ios::binary);
    out << R"({"b":"mandelbrot","a":"rtxtitan","s":"aaaa)";
  }
  std::uint64_t digest = 0;
  {
    StoreOptions options;
    options.dir = dir;
    ResultsStore store(options);
    store.load();
    const StoreStats stats = store.stats();
    EXPECT_TRUE(stats.torn_tail);
    EXPECT_EQ(stats.loaded_records, 2u);
    // The tail was ftruncate'd away, so the next append lands cleanly.
    ASSERT_TRUE(store.append(key_a(), {7, 8, 9}, 30.0, true));
    digest = store.digest();
  }
  StoreOptions options;
  options.dir = dir;
  ResultsStore store(options);
  store.load();
  EXPECT_FALSE(store.stats().torn_tail);
  EXPECT_EQ(store.stats().loaded_records, 3u);
  EXPECT_EQ(store.digest(), digest);
}

TEST(ResultsStore, MalformedInteriorRecordIsAHardError) {
  const std::string dir = fresh_dir();
  {
    StoreOptions options;
    options.dir = dir;
    ResultsStore store(options);
    store.load();
    ASSERT_TRUE(store.append(key_a(), {1, 2, 3}, 10.0, true));
  }
  // An append-only log killed mid-write can only be damaged at its end;
  // interior damage means external corruption and must refuse to load.
  std::string text;
  {
    std::ifstream in(dir + "/results.log", std::ios::binary);
    std::getline(in, text);
  }
  {
    std::ofstream out(dir + "/results.log", std::ios::trunc | std::ios::binary);
    out << "this is not json\n" << text << "\n";
  }
  StoreOptions options;
  options.dir = dir;
  ResultsStore store(options);
  EXPECT_THROW(store.load(), StoreError);
}

TEST(ResultsStore, CapacityEvictsOldestFirstAndReplaysIdentically) {
  const std::string dir = fresh_dir();
  StoreOptions options;
  options.dir = dir;
  options.capacity = 4;
  std::uint64_t live_digest = 0;
  {
    ResultsStore store(options);
    store.load();
    for (int i = 0; i < 6; ++i)
      ASSERT_TRUE(store.append(key_a(), {i, i, i}, 10.0 + i, true));
    // Global FIFO: the two oldest rows are gone, the four newest survive.
    const std::vector<StoreRecord> rows = store.query(key_a());
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].config, (tuner::Configuration{2, 2, 2}));
    EXPECT_EQ(rows[3].config, (tuner::Configuration{5, 5, 5}));
    EXPECT_EQ(store.stats().evictions, 2u);
    live_digest = store.digest();
  }
  // Reload replays the full log through the same capacity rule: the
  // surviving set (and digest) is a pure function of the append stream.
  ResultsStore reloaded(options);
  reloaded.load();
  EXPECT_EQ(reloaded.stats().records, 4u);
  EXPECT_EQ(reloaded.stats().evictions, 2u);
  EXPECT_EQ(reloaded.digest(), live_digest);
}

TEST(ResultsStore, CompactionDropsDeadLinesAndPreservesDigest) {
  const std::string dir = fresh_dir();
  StoreOptions options;
  options.dir = dir;
  options.capacity = 3;
  options.compact_slack = 1u << 20;  // keep auto-compaction out of the way
  std::uint64_t digest = 0;
  {
    ResultsStore store(options);
    store.load();
    for (int i = 0; i < 10; ++i)
      ASSERT_TRUE(store.append(key_a(), {i, i, i}, 1.0 + i, true));
    EXPECT_EQ(store.stats().log_records, 10u);
    digest = store.digest();
    EXPECT_EQ(store.compact(), 7u);
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.log_records, 3u);
    EXPECT_EQ(stats.compactions, 1u);
    EXPECT_EQ(store.digest(), digest);
    // The compacted log keeps accepting appends.
    ASSERT_TRUE(store.append(key_a(), {11, 11, 11}, 99.0, true));
    digest = store.digest();
  }
  ResultsStore reloaded(options);
  reloaded.load();
  EXPECT_EQ(reloaded.digest(), digest);
}

TEST(ResultsStore, AutoCompactionTriggersPastTheSlack) {
  const std::string dir = fresh_dir();
  StoreOptions options;
  options.dir = dir;
  options.capacity = 2;
  options.compact_slack = 4;
  ResultsStore store(options);
  store.load();
  // Dead lines pile up at one per append once the capacity is full;
  // compaction fires when they exceed max(slack, live) and the log shrinks
  // back to the live set.
  for (int i = 0; i < 16; ++i)
    ASSERT_TRUE(store.append(key_a(), {i, i, i}, 1.0 + i, true));
  const StoreStats stats = store.stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_LE(stats.log_records, 8u);
  EXPECT_EQ(stats.records, 2u);
}

TEST(ResultsStore, ExportIsSortedFilteredAndCapped) {
  ResultsStore store(memory_options());
  store.load();
  ASSERT_TRUE(store.append(key_b(), {1, 2}, 5.0, true));
  ASSERT_TRUE(store.append(key_b(), {3, 4}, 6.0, true));
  ASSERT_TRUE(store.append(key_a(), {1, 2, 3}, 10.0, true));
  const std::vector<TenantSnapshot> all = store.export_tenants();
  ASSERT_EQ(all.size(), 2u);
  // Sorted by key: mandelbrot < sobel.
  EXPECT_EQ(all[0].key.benchmark, "mandelbrot");
  EXPECT_EQ(all[1].key.benchmark, "sobel");
  const std::vector<TenantSnapshot> filtered = store.export_tenants("sobel");
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].rows.size(), 2u);
  const std::vector<TenantSnapshot> arch_miss = store.export_tenants("", "nosucharch");
  EXPECT_TRUE(arch_miss.empty());
  const std::vector<TenantSnapshot> capped = store.export_tenants("", "", 2);
  std::size_t rows = 0;
  for (const TenantSnapshot& tenant : capped) rows += tenant.rows.size();
  EXPECT_EQ(rows, 2u);
}

TEST(ResultsStore, ExportPageResumesWhereThePreviousPageStopped) {
  ResultsStore store(memory_options());
  store.load();
  ASSERT_TRUE(store.append(key_b(), {1, 2}, 5.0, true));
  ASSERT_TRUE(store.append(key_b(), {3, 4}, 6.0, true));
  ASSERT_TRUE(store.append(key_b(), {5, 6}, 7.0, true));
  ASSERT_TRUE(store.append(key_a(), {1, 2, 3}, 10.0, true));

  // Page through 4 rows at 2 per page; rejoin the slices and compare with
  // the unpaged export.
  std::vector<TenantSnapshot> paged;
  std::string flat;
  std::size_t row = 0;
  int pages = 0;
  while (true) {
    const ResultsStore::ExportPage page = store.export_page("", "", 2, flat, row);
    ++pages;
    for (const TenantSnapshot& tenant : page.tenants) {
      if (!paged.empty() && paged.back().key.flat() == tenant.key.flat()) {
        paged.back().rows.insert(paged.back().rows.end(), tenant.rows.begin(),
                                 tenant.rows.end());
      } else {
        paged.push_back(tenant);
      }
    }
    if (!page.more) break;
    flat = page.next_tenant_flat;
    row = page.next_row;
  }
  EXPECT_EQ(pages, 2);

  const std::vector<TenantSnapshot> all = store.export_tenants();
  ASSERT_EQ(paged.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(paged[i].key.flat(), all[i].key.flat());
    ASSERT_EQ(paged[i].rows.size(), all[i].rows.size());
    for (std::size_t j = 0; j < all[i].rows.size(); ++j) {
      EXPECT_EQ(paged[i].rows[j].config, all[i].rows[j].config);
    }
  }

  // `more` is exact: a page ending exactly at the last row reports done.
  const ResultsStore::ExportPage tail = store.export_page("", "", 4, "", 0);
  EXPECT_FALSE(tail.more);
  // Resuming past the end of a tenant yields the next tenant, not a stall.
  const ResultsStore::ExportPage after =
      store.export_page("", "", 0, all[0].key.flat(), all[0].rows.size());
  ASSERT_EQ(after.tenants.size(), 1u);
  EXPECT_EQ(after.tenants[0].key.flat(), all[1].key.flat());
  EXPECT_FALSE(after.more);
}

TEST(ResultsStore, ImportRoundTripsAndDeduplicates) {
  ResultsStore source(memory_options());
  source.load();
  ASSERT_TRUE(source.append(key_a(), {1, 2, 3}, 10.0, true));
  ASSERT_TRUE(source.append(key_b(), {1, 2}, 5.0, true));
  ResultsStore target(memory_options());
  target.load();
  EXPECT_EQ(target.import_tenants(source.export_tenants()), 2u);
  EXPECT_EQ(target.digest(), source.digest());
  // Re-import is a pure no-op (dedup), so replayed imports are idempotent.
  EXPECT_EQ(target.import_tenants(source.export_tenants()), 0u);
  EXPECT_EQ(target.digest(), source.digest());
}

TEST(ResultsStore, DuplicateAppendWritesNothingToTheLog) {
  const std::string dir = fresh_dir();
  StoreOptions options;
  options.dir = dir;
  ResultsStore store(options);
  store.load();
  ASSERT_TRUE(store.append(key_a(), {1, 2, 3}, 10.0, true));
  const std::uint64_t bytes = store.stats().log_bytes;
  EXPECT_FALSE(store.append(key_a(), {1, 2, 3}, 10.0, true));
  EXPECT_EQ(store.stats().log_bytes, bytes);
}

TEST(ResultsStore, EmptyConfigurationIsRefused) {
  ResultsStore store(memory_options());
  store.load();
  EXPECT_THROW((void)store.append(key_a(), {}, 1.0, true), StoreError);
}

}  // namespace
}  // namespace repro::store
