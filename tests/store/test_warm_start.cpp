// Warm-start contract (tuner/warm_start.hpp): a null or empty prior is
// byte-identical to the cold algorithm, a real prior is consumed
// deterministically, prior rows never spend budget and never leak into the
// reported best, and compatible_rows() filters structurally unusable rows.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tests/service/service_test_util.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/registry.hpp"
#include "tuner/warm_start.hpp"

namespace repro::tuner {
namespace {

using service_test::synth_eval;
using service_test::tiny_space;

const std::vector<std::string> kWarmAlgorithms = {"bogp", "botpe", "rf"};
constexpr std::uint64_t kSalt = 77;

bool same_result(const TuneResult& a, const TuneResult& b) {
  return a.best_config == b.best_config && a.found_valid == b.found_valid &&
         a.evaluations_used == b.evaluations_used &&
         std::memcmp(&a.best_value, &b.best_value, sizeof(double)) == 0;
}

/// Run one algorithm over the synthetic objective, recording the exact
/// evaluation trajectory (the strongest byte-identity signal available).
TuneResult run(const std::string& id, const PriorHandle& prior, std::uint64_t seed,
               std::vector<Configuration>* trajectory = nullptr,
               std::size_t budget = 24) {
  const ParamSpace space = tiny_space();
  const Objective objective = [&space, trajectory](const Configuration& config) {
    if (trajectory != nullptr) trajectory->push_back(config);
    return synth_eval(space, config, kSalt);
  };
  Evaluator evaluator(space, objective, budget);
  Rng rng(seed);
  return make_algorithm(id, prior)->minimize(space, evaluator, rng);
}

/// A moderately informative prior: real measurements of a config grid.
PriorHandle grid_prior() {
  const ParamSpace space = tiny_space();
  auto prior = std::make_shared<PriorHistory>();
  for (int a = 1; a <= 8; a += 2) {
    for (int b = 1; b <= 8; b += 3) {
      const Configuration config = {a, b, 2};
      const Evaluation eval = synth_eval(space, config, kSalt);
      prior->push_back(PriorObservation{config, eval.value, eval.valid});
    }
  }
  return prior;
}

TEST(WarmStart, NullAndEmptyPriorsAreByteIdenticalToCold) {
  for (const std::string& id : kWarmAlgorithms) {
    std::vector<Configuration> cold_trajectory;
    const TuneResult cold = run(id, nullptr, 42, &cold_trajectory);
    {
      // The two-arg factory with a null prior is exactly the one-arg one.
      const ParamSpace space = tiny_space();
      Evaluator evaluator(space, service_test::synth_objective(space, kSalt), 24);
      Rng rng(42);
      const TuneResult one_arg = make_algorithm(id)->minimize(space, evaluator, rng);
      EXPECT_TRUE(same_result(cold, one_arg)) << id;
    }
    std::vector<Configuration> empty_trajectory;
    const TuneResult empty = run(id, std::make_shared<PriorHistory>(), 42,
                                 &empty_trajectory);
    EXPECT_TRUE(same_result(cold, empty)) << id << ": empty prior must be cold";
    EXPECT_EQ(cold_trajectory, empty_trajectory)
        << id << ": an empty prior perturbed the evaluation trajectory";
  }
}

TEST(WarmStart, WarmRunsAreDeterministic) {
  const PriorHandle prior = grid_prior();
  for (const std::string& id : kWarmAlgorithms) {
    std::vector<Configuration> first_trajectory;
    std::vector<Configuration> second_trajectory;
    const TuneResult first = run(id, prior, 42, &first_trajectory);
    const TuneResult second = run(id, prior, 42, &second_trajectory);
    EXPECT_TRUE(same_result(first, second)) << id;
    EXPECT_EQ(first_trajectory, second_trajectory) << id;
  }
}

TEST(WarmStart, PriorActuallyChangesTheSearch) {
  const PriorHandle prior = grid_prior();
  for (const std::string& id : kWarmAlgorithms) {
    std::vector<Configuration> cold_trajectory;
    std::vector<Configuration> warm_trajectory;
    (void)run(id, nullptr, 42, &cold_trajectory);
    (void)run(id, prior, 42, &warm_trajectory);
    EXPECT_NE(cold_trajectory, warm_trajectory)
        << id << ": a " << prior->size() << "-row prior left the trajectory untouched";
  }
}

TEST(WarmStart, PriorNeverConsumesBudgetOrLeaksIntoTheBest) {
  // Prior rows claim impossibly good runtimes (the synthetic objective never
  // reports below 1.0): the session's reported best must still be a value it
  // measured itself, and the full budget must still be spent in-session.
  auto prior = std::make_shared<PriorHistory>();
  for (int a = 1; a <= 4; ++a)
    prior->push_back(PriorObservation{{a, a, 1}, 0.25, true});
  for (const std::string& id : kWarmAlgorithms) {
    std::vector<Configuration> trajectory;
    const TuneResult warm = run(id, prior, 42, &trajectory);
    // Every budget unit spent maps to one in-session measurement: prior rows
    // never reach the evaluator and never consume budget.
    EXPECT_EQ(trajectory.size(), warm.evaluations_used) << id;
    if (id == "rf") {
      // RF's top-prediction stage may rank the same config twice; the repeat
      // is an evaluator cache hit that spends nothing (paper-protocol
      // behavior, unchanged by the prior). The S-10 training stage always
      // runs in full.
      EXPECT_GE(warm.evaluations_used, 14u) << id;
      EXPECT_LE(warm.evaluations_used, 24u) << id;
    } else {
      EXPECT_EQ(warm.evaluations_used, 24u) << id;
    }
    EXPECT_GE(warm.best_value, 1.0)
        << id << ": a prior row's value leaked into the reported best";
  }
}

TEST(WarmStart, NonModelAlgorithmsIgnoreThePrior) {
  for (const std::string& id : {std::string("rs"), std::string("ga")}) {
    const TuneResult cold = run(id, nullptr, 42);
    const TuneResult warm = run(id, grid_prior(), 42);
    EXPECT_TRUE(same_result(cold, warm)) << id;
  }
}

TEST(WarmStart, SupportsWarmStartMatchesTheRegistry) {
  EXPECT_TRUE(supports_warm_start("bogp"));
  EXPECT_TRUE(supports_warm_start("botpe"));
  EXPECT_TRUE(supports_warm_start("rf"));
  EXPECT_FALSE(supports_warm_start("rs"));
  EXPECT_FALSE(supports_warm_start("ga"));
  EXPECT_THROW((void)supports_warm_start("nonesuch"), std::out_of_range);
}

TEST(WarmStart, CompatibleRowsFiltersStructurallyUnusableRows) {
  const ParamSpace space = tiny_space();
  PriorHistory prior;
  prior.push_back(PriorObservation{{2, 2, 2}, 10.0, true});       // kept
  prior.push_back(PriorObservation{{2, 2}, 10.0, true});          // wrong dim
  prior.push_back(PriorObservation{{2, 2, 99}, 10.0, true});      // out of range
  prior.push_back(PriorObservation{{3, 3, 3}, -1.0, true});       // non-positive
  prior.push_back(PriorObservation{{4, 4, 4}, std::nan(""), true});  // non-finite
  prior.push_back(PriorObservation{{5, 5, 5}, 0.0, false});       // invalid, kept
  const std::vector<PriorObservation> rows =
      warm_start::compatible_rows(prior, space);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].config, (Configuration{2, 2, 2}));
  EXPECT_TRUE(rows[0].valid);
  // Valid rows without a usable runtime are demoted to failure observations
  // rather than poisoning a log-transform.
  EXPECT_FALSE(rows[1].valid);
  EXPECT_FALSE(rows[2].valid);
  EXPECT_FALSE(rows[3].valid);
}

}  // namespace
}  // namespace repro::tuner
