// Space-fingerprint stability: the results store keys cross-session (and
// cross-daemon) history by this hash, so its value for a given declarative
// space description must never drift — a drift would orphan every persisted
// tenant history. The golden-value tests below are the lock: they fail on
// any change to the serialization or the hash.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "store/fingerprint.hpp"
#include "tuner/search_space.hpp"

namespace repro::store {
namespace {

const std::vector<tuner::ParamRange> kTiny = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};

TEST(Fingerprint, IsSixteenLowercaseHexDigits) {
  const std::string fp = space_fingerprint(kTiny, "none");
  ASSERT_EQ(fp.size(), 16u);
  for (const char c : fp) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)) ||
                (c >= 'a' && c <= 'f'))
        << fp;
  }
}

TEST(Fingerprint, GoldenValuesAreLocked) {
  // Persisted stores depend on these exact values: a daemon restarted years
  // later must map the same open request onto the same tenant history.
  EXPECT_EQ(space_fingerprint(kTiny, "none"), "bf18dc272128ddab");
  EXPECT_EQ(paper_space_fingerprint(), "d8dba068411a51bb");
}

TEST(Fingerprint, DeterministicAcrossCalls) {
  EXPECT_EQ(space_fingerprint(kTiny, "none"), space_fingerprint(kTiny, "none"));
  EXPECT_EQ(paper_space_fingerprint(), paper_space_fingerprint());
}

TEST(Fingerprint, PaperFingerprintMatchesItsDeclarativeDescription) {
  // paper_space_fingerprint() must stay in lockstep with what a daemon
  // derives when it decodes a default (non-custom-space) open request.
  const tuner::ParamSpace space = tuner::paper_search_space();
  EXPECT_EQ(paper_space_fingerprint(), space_fingerprint(space.params(), "wg256"));
}

TEST(Fingerprint, SensitiveToParameterOrder) {
  std::vector<tuner::ParamRange> swapped = {kTiny[1], kTiny[0], kTiny[2]};
  EXPECT_NE(space_fingerprint(kTiny, "none"), space_fingerprint(swapped, "none"));
}

TEST(Fingerprint, SensitiveToBounds) {
  std::vector<tuner::ParamRange> widened = kTiny;
  widened[2].hi = 6;
  EXPECT_NE(space_fingerprint(kTiny, "none"), space_fingerprint(widened, "none"));
  std::vector<tuner::ParamRange> shifted = kTiny;
  shifted[0].lo = 2;
  EXPECT_NE(space_fingerprint(kTiny, "none"), space_fingerprint(shifted, "none"));
}

TEST(Fingerprint, SensitiveToParameterNames) {
  std::vector<tuner::ParamRange> renamed = kTiny;
  // Append-style to sidestep the GCC 12 -Wrestrict false positive
  // (PR105329) on string-literal assignment; see docs/ANALYSIS.md.
  renamed[1].name.clear();
  renamed[1].name.append("B");
  EXPECT_NE(space_fingerprint(kTiny, "none"), space_fingerprint(renamed, "none"));
}

TEST(Fingerprint, SensitiveToConstraint) {
  EXPECT_NE(space_fingerprint(kTiny, "none"), space_fingerprint(kTiny, "wg256"));
}

TEST(Fingerprint, FieldBoundariesCannotAlias) {
  // The separator-based serialization must keep "ab"+"c" distinct from
  // "a"+"bc": without separators both would hash the same bytes.
  std::vector<tuner::ParamRange> left = {{"ab", 1, 2}, {"c", 1, 2}};
  std::vector<tuner::ParamRange> right = {{"a", 1, 2}, {"bc", 1, 2}};
  EXPECT_NE(space_fingerprint(left, "none"), space_fingerprint(right, "none"));
}

}  // namespace
}  // namespace repro::store
