// Crash-safety drill for the results store: a child process appends records
// and reports each acknowledged append over a pipe; the parent SIGKILLs it
// mid-stream and then reloads the store. Every acknowledged record must
// survive (append() fsyncs before returning), and the torn tail a kill can
// leave behind must be dropped cleanly — across several kill/reload rounds
// into the same directory.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "store/results_store.hpp"

namespace repro::store {
namespace {

std::string fresh_dir() {
  char templ[] = "/tmp/repro_store_crash_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  EXPECT_NE(dir, nullptr);
  return dir;
}

StoreKey crash_key() { return StoreKey{"crash", "drill", "cccccccccccccccc"}; }

/// Child body: load the store, append forever, ack each durable append by
/// writing its id to the pipe. Never returns.
[[noreturn]] void append_forever(const std::string& dir, int ack_fd, int round) {
  StoreOptions options;
  options.dir = dir;
  ResultsStore store(options);
  store.load();
  for (int i = 0; i < 1000000; ++i) {
    // Unique config per (round, i) so dedup never swallows an append.
    const tuner::Configuration config = {round, i / 100, i % 100};
    (void)store.append(crash_key(), config, 1.0 + i, true);
    // The ack leaves only after append() returned, i.e. after the fsync.
    std::uint32_t id = static_cast<std::uint32_t>(i);
    if (::write(ack_fd, &id, sizeof(id)) != static_cast<ssize_t>(sizeof(id))) break;
  }
  ::_exit(0);
}

TEST(StoreCrash, Sigkill9MidAppendLosesNoAcknowledgedRecord) {
  const std::string dir = fresh_dir();
  // (round, highest acked id) pairs accumulated across kill/reload rounds.
  std::vector<std::pair<int, std::uint32_t>> acked;
  for (int round = 0; round < 4; ++round) {
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipe_fds[0]);
      append_forever(dir, pipe_fds[1], round);
    }
    ::close(pipe_fds[1]);

    // Collect a round-dependent number of acks, then kill without warning —
    // the child is almost certainly inside an append (or its fsync).
    const std::uint32_t target = 30 + static_cast<std::uint32_t>(round) * 17;
    std::uint32_t last = 0;
    std::uint32_t count = 0;
    while (count < target) {
      std::uint32_t id = 0;
      const ssize_t n = ::read(pipe_fds[0], &id, sizeof(id));
      ASSERT_EQ(n, static_cast<ssize_t>(sizeof(id))) << "child died early";
      last = id;
      ++count;
    }
    (void)::kill(pid, SIGKILL);
    (void)::waitpid(pid, nullptr, 0);
    ::close(pipe_fds[0]);
    acked.emplace_back(round, last);

    // Reload in the parent: every acknowledged record of every round so far
    // must be present; a torn unacknowledged tail is allowed and dropped.
    StoreOptions options;
    options.dir = dir;
    ResultsStore store(options);
    ASSERT_NO_THROW(store.load());
    std::set<std::pair<int, int>> present;
    for (const StoreRecord& row : store.query(crash_key())) {
      ASSERT_EQ(row.config.size(), 3u);
      present.emplace(row.config[0], row.config[1] * 100 + row.config[2]);
    }
    for (const auto& [r, high] : acked) {
      for (std::uint32_t i = 0; i <= high; ++i) {
        EXPECT_TRUE(present.count({r, static_cast<int>(i)}) == 1)
            << "round " << r << " record " << i
            << " was acknowledged before the SIGKILL but is missing after reload";
      }
    }
  }
}

TEST(StoreCrash, RecoveredStoreKeepsAcceptingAppendsAfterEveryKill) {
  const std::string dir = fresh_dir();
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    append_forever(dir, pipe_fds[1], 7);
  }
  ::close(pipe_fds[1]);
  std::uint32_t id = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(::read(pipe_fds[0], &id, sizeof(id)), static_cast<ssize_t>(sizeof(id)));
  }
  (void)::kill(pid, SIGKILL);
  (void)::waitpid(pid, nullptr, 0);
  ::close(pipe_fds[0]);

  StoreOptions options;
  options.dir = dir;
  std::uint64_t digest = 0;
  {
    ResultsStore store(options);
    store.load();
    const std::size_t before = store.stats().records;
    EXPECT_GE(before, 10u);
    // The log was truncated past any torn tail, so appends land cleanly.
    ASSERT_TRUE(store.append(crash_key(), {99, 99, 99}, 5.0, true));
    EXPECT_EQ(store.stats().records, before + 1);
    digest = store.digest();
  }
  ResultsStore reloaded(options);
  reloaded.load();
  EXPECT_EQ(reloaded.digest(), digest);
}

}  // namespace
}  // namespace repro::store
