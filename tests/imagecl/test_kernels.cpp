// Functional equivalence of the device kernels against their scalar
// references, across a sweep of launch configurations — the strongest
// end-to-end check of the NDRange engine — plus kernel-specific facts.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "imagecl/kernels/add.hpp"
#include "imagecl/kernels/harris.hpp"
#include "imagecl/kernels/mandelbrot.hpp"

namespace repro::imagecl {
namespace {

Image<float> random_image(std::size_t width, std::size_t height, std::uint64_t seed) {
  repro::Rng rng(seed);
  Image<float> image(width, height);
  for (auto& v : image.data()) v = static_cast<float>(rng.uniform(0.0, 255.0));
  return image;
}

class KernelEquivalence : public ::testing::TestWithParam<simgpu::KernelConfig> {};

TEST_P(KernelEquivalence, AddMatchesReference) {
  const simgpu::Device device(simgpu::titan_v());
  const std::uint64_t width = 97, height = 23;
  const Image<float> a = random_image(width, height, 1);
  const Image<float> b = random_image(width, height, 2);
  simgpu::TracedBuffer<float> buf_a(0, width * height);
  simgpu::TracedBuffer<float> buf_b(1, width * height);
  simgpu::TracedBuffer<float> buf_out(2, width * height, -1.0f);
  buf_a.data() = a.data();
  buf_b.data() = b.data();
  run_add(device, GetParam(), width, height, buf_a, buf_b, buf_out);
  const std::vector<float> expected = add_reference(a.data(), b.data());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ(buf_out.data()[i], expected[i]) << "i=" << i;
  }
}

TEST_P(KernelEquivalence, HarrisMatchesReference) {
  const simgpu::Device device(simgpu::titan_v());
  const std::uint64_t width = 41, height = 37;
  const Image<float> input = random_image(width, height, 3);
  simgpu::TracedBuffer<float> buf_in(0, width * height);
  simgpu::TracedBuffer<float> buf_out(1, width * height);
  buf_in.data() = input.data();
  run_harris(device, GetParam(), input, buf_in, buf_out);
  const Image<float> expected = harris_reference(input);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ(buf_out.data()[i], expected.data()[i]) << "i=" << i;
  }
}

TEST_P(KernelEquivalence, MandelbrotMatchesReference) {
  const simgpu::Device device(simgpu::titan_v());
  const std::uint64_t width = 64, height = 48;
  simgpu::TracedBuffer<float> buf_out(0, width * height);
  run_mandelbrot(device, GetParam(), width, height, buf_out, nullptr, 64);
  const Image<float> expected = mandelbrot_reference(width, height, 64);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ(buf_out.data()[i], expected.data()[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, KernelEquivalence,
                         ::testing::Values(simgpu::KernelConfig{1, 1, 1, 1, 1, 1},
                                           simgpu::KernelConfig{1, 1, 1, 8, 4, 1},
                                           simgpu::KernelConfig{4, 3, 1, 2, 8, 1},
                                           simgpu::KernelConfig{16, 16, 4, 8, 8, 4},
                                           simgpu::KernelConfig{7, 2, 1, 3, 5, 2}));

TEST(AddKernel, ReferenceRejectsMismatch) {
  EXPECT_THROW((void)add_reference({1.0f}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(AddKernel, RunRejectsBufferMismatch) {
  const simgpu::Device device(simgpu::titan_v());
  simgpu::TracedBuffer<float> a(0, 64), b(1, 64), out(2, 32);
  EXPECT_THROW(run_add(device, {1, 1, 1, 4, 4, 1}, 8, 8, a, b, out),
               std::invalid_argument);
}

TEST(HarrisKernel, FlatImageHasNoCorners) {
  const Image<float> flat(32, 32, 5.0f);
  const Image<float> response = harris_reference(flat);
  for (float r : response.data()) EXPECT_NEAR(r, 0.0f, 1e-3f);
}

TEST(HarrisKernel, CornerRespondsStrongerThanEdge) {
  // Bright square in the corner of a dark image: the square's corner pixel
  // region must out-respond pure-edge regions.
  Image<float> image(64, 64, 0.0f);
  for (std::size_t y = 16; y < 48; ++y) {
    for (std::size_t x = 16; x < 48; ++x) image.at(x, y) = 100.0f;
  }
  const Image<float> response = harris_reference(image);
  const float corner = response.at(16, 16);
  const float edge = response.at(32, 16);   // horizontal edge midpoint
  const float flat = response.at(32, 32);   // interior
  EXPECT_GT(corner, edge);
  EXPECT_GT(corner, flat);
  EXPECT_LT(edge, 0.0f);  // Harris responds negatively on edges
}

TEST(MandelbrotKernel, KnownPointsEscapeCorrectly) {
  // Center of the viewport at pixel coordinates mapping to c ~ (-0.625, 0):
  // inside the set -> max_iter.
  const std::uint64_t n = 1024;
  const auto inside =
      mandelbrot_iterations(n / 2, n / 2, n, n, 100);
  EXPECT_EQ(inside, 100u);
  // Far right edge c ~ (0.75, 1.25i region) escapes almost immediately.
  const auto outside = mandelbrot_iterations(n - 1, 0, n, n, 100);
  EXPECT_LT(outside, 5u);
}

TEST(MandelbrotKernel, IterationsBoundedByMaxIter) {
  for (std::uint32_t max_iter : {1u, 16u, 77u}) {
    EXPECT_LE(mandelbrot_iterations(100, 100, 512, 512, max_iter), max_iter);
  }
}

TEST(MandelbrotKernel, MeanIterationsIsPlausible) {
  const double mean = mandelbrot_mean_iterations();
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 200.0);
}

TEST(MandelbrotKernel, IntensityFieldNormalizedAroundOne) {
  const auto field = mandelbrot_intensity_field();
  double sum = 0.0;
  int samples = 0;
  for (double y = 0.05; y < 1.0; y += 0.1) {
    for (double x = 0.05; x < 1.0; x += 0.1) {
      const double v = field(x, y);
      EXPECT_GE(v, 0.0);
      sum += v;
      ++samples;
    }
  }
  EXPECT_NEAR(sum / samples, 1.0, 0.35);
}

TEST(CostSpecs, DescribeTheKernels) {
  const auto add = add_cost_spec(8192, 8192);
  EXPECT_EQ(add.loads.size(), 2u);
  EXPECT_EQ(add.stores.size(), 1u);
  EXPECT_FALSE(add.shared_tiling_available);

  const auto harris = harris_cost_spec(8192, 8192);
  EXPECT_TRUE(harris.shared_tiling_available);
  EXPECT_EQ(harris.stencil_radius, kHarrisHaloRadius);
  EXPECT_EQ(harris.loads.at(0).offsets.size(), 49u);  // 7x7 halo
  EXPECT_GT(harris.flops_per_element, 100.0);

  const auto mandelbrot = mandelbrot_cost_spec(8192, 8192);
  EXPECT_TRUE(mandelbrot.loads.empty());
  EXPECT_TRUE(static_cast<bool>(mandelbrot.intensity));
  EXPECT_GT(mandelbrot.flops_per_element, 8.0);
}

}  // namespace
}  // namespace repro::imagecl
