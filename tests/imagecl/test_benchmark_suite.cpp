// Benchmark suite registry: the paper's three benchmarks with default sizes.

#include <gtest/gtest.h>

#include "imagecl/benchmark_suite.hpp"

namespace repro::imagecl {
namespace {

TEST(BenchmarkSuite, HasPapersThreeBenchmarks) {
  const auto& benchmarks = suite();
  ASSERT_EQ(benchmarks.size(), 3u);
  EXPECT_EQ(benchmarks[0]->name(), "add");
  EXPECT_EQ(benchmarks[1]->name(), "harris");
  EXPECT_EQ(benchmarks[2]->name(), "mandelbrot");
}

TEST(BenchmarkSuite, DefaultSizeIsPapersEightK) {
  for (const auto& benchmark : suite()) {
    EXPECT_EQ(benchmark->model().spec().extent.x, kDefaultX) << benchmark->name();
  }
}

TEST(BenchmarkSuite, LookupByName) {
  EXPECT_EQ(benchmark_by_name("harris")->name(), "harris");
  EXPECT_THROW((void)benchmark_by_name("gemm"), std::out_of_range);
}

TEST(BenchmarkSuite, SuiteInstancesAreStable) {
  // Repeated calls return the same objects (contexts may hold references).
  EXPECT_EQ(suite()[0].get(), suite()[0].get());
  EXPECT_EQ(benchmark_by_name("add").get(), suite()[0].get());
}

TEST(BenchmarkSuite, CustomSizesPropagate) {
  const auto small = make_benchmark("mandelbrot", 256, 128);
  EXPECT_EQ(small->model().spec().extent.x, 256u);
  EXPECT_EQ(small->model().spec().extent.y, 128u);
}

TEST(BenchmarkSuite, ModelsEvaluateOnAllArchitectures) {
  for (const auto& benchmark : suite()) {
    for (const auto& arch : simgpu::testbed()) {
      const auto result =
          benchmark->model().evaluate(arch, {1, 1, 1, 8, 4, 1});
      EXPECT_TRUE(result.valid) << benchmark->name() << "/" << arch.name;
      EXPECT_GT(result.time_us, 0.0);
    }
  }
}

}  // namespace
}  // namespace repro::imagecl
