// Extended-suite kernels (convolution, sobel, transpose): functional
// equivalence against scalar references across launch configurations and
// cost-spec facts (including the column-major transpose store).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "imagecl/benchmark_suite.hpp"
#include "imagecl/kernels/convolution.hpp"
#include "imagecl/kernels/separable_convolution.hpp"
#include "imagecl/kernels/sobel.hpp"
#include "imagecl/kernels/transpose.hpp"

namespace repro::imagecl {
namespace {

Image<float> random_image(std::size_t width, std::size_t height, std::uint64_t seed) {
  repro::Rng rng(seed);
  Image<float> image(width, height);
  for (auto& v : image.data()) v = static_cast<float>(rng.uniform(0.0, 255.0));
  return image;
}

class ExtendedKernelEquivalence
    : public ::testing::TestWithParam<simgpu::KernelConfig> {};

TEST_P(ExtendedKernelEquivalence, ConvolutionMatchesReference) {
  const simgpu::Device device(simgpu::titan_v());
  const Image<float> input = random_image(53, 29, 11);
  simgpu::TracedBuffer<float> in_buffer(0, input.size());
  simgpu::TracedBuffer<float> out_buffer(1, input.size());
  in_buffer.data() = input.data();
  run_convolution(device, GetParam(), input, in_buffer, out_buffer);
  const Image<float> expected = convolution_reference(input);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ(out_buffer.data()[i], expected.data()[i]) << "i=" << i;
  }
}

TEST_P(ExtendedKernelEquivalence, SobelMatchesReference) {
  const simgpu::Device device(simgpu::titan_v());
  const Image<float> input = random_image(47, 31, 12);
  simgpu::TracedBuffer<float> in_buffer(0, input.size());
  simgpu::TracedBuffer<float> out_buffer(1, input.size());
  in_buffer.data() = input.data();
  run_sobel(device, GetParam(), input, in_buffer, out_buffer);
  const Image<float> expected = sobel_reference(input);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ(out_buffer.data()[i], expected.data()[i]) << "i=" << i;
  }
}

TEST_P(ExtendedKernelEquivalence, TransposeMatchesReference) {
  const simgpu::Device device(simgpu::titan_v());
  const Image<float> input = random_image(37, 61, 13);
  simgpu::TracedBuffer<float> in_buffer(0, input.size());
  simgpu::TracedBuffer<float> out_buffer(1, input.size());
  in_buffer.data() = input.data();
  run_transpose(device, GetParam(), input, in_buffer, out_buffer);
  const Image<float> expected = transpose_reference(input);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ(out_buffer.data()[i], expected.data()[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, ExtendedKernelEquivalence,
                         ::testing::Values(simgpu::KernelConfig{1, 1, 1, 1, 1, 1},
                                           simgpu::KernelConfig{1, 1, 1, 8, 4, 1},
                                           simgpu::KernelConfig{4, 3, 1, 2, 8, 1},
                                           simgpu::KernelConfig{16, 16, 4, 8, 8, 4}));

TEST_P(ExtendedKernelEquivalence, SeparableConvolutionMatchesReference) {
  const simgpu::Device device(simgpu::titan_v());
  const Image<float> input = random_image(43, 27, 15);
  simgpu::TracedBuffer<float> in_buffer(0, input.size());
  simgpu::TracedBuffer<float> scratch(1, input.size());
  simgpu::TracedBuffer<float> out_buffer(2, input.size());
  in_buffer.data() = input.data();
  run_separable_convolution(device, GetParam(), input, in_buffer, scratch, out_buffer);
  const Image<float> expected = separable_convolution_reference(input);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ(out_buffer.data()[i], expected.data()[i]) << "i=" << i;
  }
}

TEST(SeparableConvolution, MatchesDenseConvolutionInTheInterior) {
  const Image<float> input = random_image(32, 32, 16);
  const Image<float> separable = separable_convolution_reference(input);
  const Image<float> dense = convolution_reference(input);
  for (std::size_t y = 2; y < 30; ++y) {
    for (std::size_t x = 2; x < 30; ++x) {
      EXPECT_NEAR(separable.at(x, y), dense.at(x, y), 1e-3f) << x << "," << y;
    }
  }
}

TEST(SeparableConvolution, BinomialKernelNormalized) {
  float sum = 0.0f;
  for (float w : binomial5()) sum += w;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(SeparableConvolution, CostSpecsDescribeTwoAsymmetricPasses) {
  const auto specs = separable_convolution_cost_specs(1024, 1024);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].loads[0].offsets.size(), 5u);
  EXPECT_EQ(specs[1].loads[0].offsets.size(), 5u);
  // Row pass strides in x, column pass in y.
  EXPECT_NE(specs[0].loads[0].offsets[0].dx, 0);
  EXPECT_EQ(specs[0].loads[0].offsets[0].dy, 0);
  EXPECT_EQ(specs[1].loads[0].offsets[0].dx, 0);
  EXPECT_NE(specs[1].loads[0].offsets[0].dy, 0);
}

TEST(SeparableConvolution, PipelineTimeIsSumOfPasses) {
  const auto benchmark = benchmark_by_name("separable");
  const simgpu::GpuArch arch = simgpu::titan_v();
  const simgpu::KernelConfig config{2, 2, 1, 8, 4, 1};
  double sum = 0.0;
  for (const auto& pass : benchmark->passes()) {
    const auto result = pass.evaluate(arch, config);
    ASSERT_TRUE(result.valid);
    sum += result.time_us;
  }
  EXPECT_GT(sum, benchmark->passes()[0].evaluate(arch, config).time_us);
}

TEST(Convolution, GaussianWeightsSumToOne) {
  float sum = 0.0f;
  for (float w : gaussian5x5()) sum += w;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(Convolution, ConstantImageIsFixedPoint) {
  const Image<float> flat(16, 16, 7.0f);
  const Image<float> blurred = convolution_reference(flat);
  for (float v : blurred.data()) EXPECT_NEAR(v, 7.0f, 1e-4f);
}

TEST(Sobel, FlatImageHasZeroMagnitude) {
  const Image<float> flat(16, 16, 3.0f);
  const Image<float> edges = sobel_reference(flat);
  for (float v : edges.data()) EXPECT_NEAR(v, 0.0f, 1e-5f);
}

TEST(Sobel, VerticalEdgeDetected) {
  Image<float> image(32, 32, 0.0f);
  for (std::size_t y = 0; y < 32; ++y) {
    for (std::size_t x = 16; x < 32; ++x) image.at(x, y) = 100.0f;
  }
  const Image<float> edges = sobel_reference(image);
  EXPECT_GT(edges.at(16, 16), 100.0f);  // on the edge
  EXPECT_NEAR(edges.at(4, 16), 0.0f, 1e-4f);  // far from it
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const Image<float> input = random_image(24, 40, 14);
  const Image<float> twice = transpose_reference(transpose_reference(input));
  ASSERT_EQ(twice.width(), input.width());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_FLOAT_EQ(twice.data()[i], input.data()[i]);
  }
}

TEST(ExtendedSuite, RegistersSevenBenchmarks) {
  EXPECT_EQ(extended_suite().size(), 7u);
  EXPECT_EQ(suite().size(), 3u);  // the paper's set is unchanged
  EXPECT_EQ(benchmark_by_name("transpose")->name(), "transpose");
  EXPECT_EQ(benchmark_by_name("convolution")->name(), "convolution");
  EXPECT_EQ(benchmark_by_name("sobel")->name(), "sobel");
  EXPECT_EQ(benchmark_by_name("separable")->name(), "separable");
  EXPECT_EQ(benchmark_by_name("separable")->passes().size(), 2u);
}

TEST(ExtendedSuite, TransposeStoreIsColumnMajorAndPunished) {
  const auto spec = transpose_cost_spec(4096, 4096);
  ASSERT_EQ(spec.stores.size(), 1u);
  EXPECT_TRUE(spec.stores[0].column_major);
  // Scattered stores make the transpose slower than the equal-traffic
  // streaming Add at the same configuration.
  const simgpu::PerfModel transpose_model(spec);
  const auto t = transpose_model.evaluate(simgpu::titan_v(), {1, 1, 1, 8, 4, 1});
  ASSERT_TRUE(t.valid);
  EXPECT_GT(t.transaction_us, t.compute_us);
}

TEST(ExtendedSuite, StencilCostsOrderedByRadius) {
  // sobel (r=1) < convolution (r=2) < harris (r=3) in per-element flops.
  const auto sobel = sobel_cost_spec(1024, 1024);
  const auto conv = convolution_cost_spec(1024, 1024);
  EXPECT_LT(sobel.flops_per_element, conv.flops_per_element);
  EXPECT_EQ(sobel.loads[0].offsets.size(), 9u);
  EXPECT_EQ(conv.loads[0].offsets.size(), 25u);
}

TEST(ExtendedSuite, ColumnMajorCoalescingIsMeasuredAsScattered) {
  const simgpu::GpuArch arch = simgpu::titan_v();
  simgpu::WarpAccessSpec scattered;
  scattered.element_bytes = 4;
  scattered.pitch_x = 4096;
  scattered.pitch_y = 4096;
  scattered.column_major = true;
  // Flat 8-lane warp: 8 distinct columns, one lonely element per sector.
  const auto flat = simgpu::analyze_warp_accesses_fast({1, 1, 1, 8, 1, 1}, arch,
                                                       scattered);
  EXPECT_NEAR(flat.dram_efficiency(arch.sector_bytes), 4.0 / 32.0, 1e-9);
  // 8x4 work-group: the 4 lanes sharing a column pack 16 of each sector's
  // 32 bytes — exactly half efficient.
  const auto tall = simgpu::analyze_warp_accesses_fast({1, 1, 1, 8, 4, 1}, arch,
                                                       scattered);
  EXPECT_NEAR(tall.dram_efficiency(arch.sector_bytes), 0.5, 1e-9);
}

}  // namespace
}  // namespace repro::imagecl
