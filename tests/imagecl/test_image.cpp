// Image container and PGM/PPM writers.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "imagecl/image.hpp"

namespace repro::imagecl {
namespace {

TEST(Image, DimensionsAndFill) {
  Image<float> image(4, 3, 2.5f);
  EXPECT_EQ(image.width(), 4u);
  EXPECT_EQ(image.height(), 3u);
  EXPECT_EQ(image.size(), 12u);
  EXPECT_FLOAT_EQ(image.at(3, 2), 2.5f);
}

TEST(Image, RowMajorAddressing) {
  Image<int> image(3, 2);
  image.at(2, 1) = 42;
  EXPECT_EQ(image.data()[1 * 3 + 2], 42);
}

TEST(Image, ClampedReads) {
  Image<float> image(2, 2);
  image.at(0, 0) = 1.0f;
  image.at(1, 0) = 2.0f;
  image.at(0, 1) = 3.0f;
  image.at(1, 1) = 4.0f;
  EXPECT_FLOAT_EQ(image.at_clamped(-5, -5), 1.0f);
  EXPECT_FLOAT_EQ(image.at_clamped(10, 0), 2.0f);
  EXPECT_FLOAT_EQ(image.at_clamped(0, 10), 3.0f);
  EXPECT_FLOAT_EQ(image.at_clamped(99, 99), 4.0f);
  EXPECT_FLOAT_EQ(image.at_clamped(1, 1), 4.0f);
}

TEST(Image, WritePgmProducesValidHeaderAndSize) {
  Image<float> image(8, 4);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image.data()[i] = static_cast<float>(i);
  }
  const std::string path = std::filesystem::temp_directory_path() / "repro_test.pgm";
  ASSERT_TRUE(write_pgm(image, path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::size_t w = 0, h = 0;
  int maxval = 0;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 8u);
  EXPECT_EQ(h, 4u);
  EXPECT_EQ(maxval, 255);
  EXPECT_EQ(std::filesystem::file_size(path) >= 32u + 10u, true);
  std::remove(path.c_str());
}

TEST(Image, WritePpmProducesRgbPayload) {
  Image<float> image(5, 5, 1.0f);
  image.at(2, 2) = 9.0f;
  const std::string path = std::filesystem::temp_directory_path() / "repro_test.ppm";
  ASSERT_TRUE(write_ppm_colormap(image, path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  std::remove(path.c_str());
}

TEST(Image, WriteFailsOnBadPath) {
  Image<float> image(2, 2);
  EXPECT_FALSE(write_pgm(image, "/no_such_dir_xyz/a.pgm"));
  EXPECT_FALSE(write_ppm_colormap(image, "/no_such_dir_xyz/a.ppm"));
}

TEST(Image, ConstantImageNormalizesSafely) {
  Image<float> image(3, 3, 7.0f);
  const std::string path = std::filesystem::temp_directory_path() / "repro_const.pgm";
  EXPECT_TRUE(write_pgm(image, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace repro::imagecl
