#pragma once
// Shared fixtures for the service test suite: a small synthetic search
// space and a pure (RNG-free) objective, so that in-process minimize(),
// AskTellSession, and remote sessions all see identical measurement values
// for identical configurations regardless of which thread evaluates them.

#include <cstdint>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "service/client.hpp"
#include "tuner/objective.hpp"
#include "tuner/search_space.hpp"

namespace repro::service_test {

/// ClientConfig for a loopback test server (designated-field construction
/// keeps test call sites immune to new config fields).
inline service::ClientConfig client_config(std::uint16_t port,
                                           std::string name = "test") {
  service::ClientConfig config;
  config.port = port;
  config.name = std::move(name);
  return config;
}

/// 3 parameters, 8*8*6 = 384 points — big enough for real search dynamics,
/// small enough that a 64-session stress test finishes quickly.
inline tuner::ParamSpace tiny_space() {
  return tuner::ParamSpace({{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}});
}

/// Deterministic pseudo-measurement: a splitmix64 hash of the encoded
/// configuration and a per-test salt, shaped into [1, ~1.47). A small slice
/// of configurations reports invalid to exercise the failure path.
inline tuner::Evaluation synth_eval(const tuner::ParamSpace& space,
                                    const tuner::Configuration& config,
                                    std::uint64_t salt) {
  std::uint64_t state = seed_combine(salt, space.encode(config) + 1);
  const std::uint64_t h = splitmix64(state);
  if ((h & 0x3f) == 0) {  // ~1.6% of points are invalid
    return tuner::Evaluation{};
  }
  const double value = 1.0 + static_cast<double>(h >> 11) * 0x1.0p-53;
  return tuner::Evaluation{value, true, tuner::EvalStatus::kOk};
}

inline tuner::Objective synth_objective(const tuner::ParamSpace& space,
                                        std::uint64_t salt) {
  return [&space, salt](const tuner::Configuration& config) {
    return synth_eval(space, config, salt);
  };
}

}  // namespace repro::service_test
