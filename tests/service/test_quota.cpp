// Tenant-fair admission under overload: per-tenant session quotas, the
// bounded DRR admission queue, anonymous-first shedding, in-flight tell
// quotas, and the status quota schema — at the SessionManager level (where
// outcomes are deterministic) and over the wire (where the tenant identity
// rides the hello and must not be spoofable per-open).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"
#include "service/session_manager.hpp"
#include "tests/service/service_test_util.hpp"

namespace repro::service {
namespace {

using service_test::synth_eval;
using service_test::tiny_space;

OpenParams quota_open(const std::string& tenant, std::uint64_t seed = 1,
                      std::size_t budget = 16) {
  OpenParams params;
  params.algorithm = "rs";
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  params.tenant = tenant;
  return params;
}

SessionLimits quota_limits(std::size_t max_sessions,
                           std::size_t per_tenant,
                           std::size_t queue_cap = 0,
                           std::chrono::milliseconds wait = {}) {
  SessionLimits limits;
  limits.max_sessions = max_sessions;
  limits.retry_after_ms = 10;
  limits.quotas.max_sessions_per_tenant = per_tenant;
  limits.quotas.admission_queue_cap = queue_cap;
  limits.quotas.admission_wait = wait;
  return limits;
}

TEST(Quota, TenantSessionQuotaShedsOverQuotaOpensOnly) {
  SessionManager manager(quota_limits(/*max_sessions=*/8, /*per_tenant=*/2));
  const std::string a1 = manager.open(quota_open("acme", 1));
  const std::string a2 = manager.open(quota_open("acme", 2));
  try {
    (void)manager.open(quota_open("acme", 3));
    FAIL() << "third acme session must hit the tenant quota";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kRetryLater);
    EXPECT_GT(error.retry_after_ms, 0u);
  }
  // Another tenant is untouched by acme's quota pressure.
  const std::string b1 = manager.open(quota_open("beta", 4));
  // Freeing one acme slot re-admits acme.
  manager.close(a1);
  const std::string a3 = manager.open(quota_open("acme", 5));

  const StatusReport status = manager.status();
  EXPECT_TRUE(status.quotas.enabled);
  EXPECT_EQ(status.quotas.shed_over_quota, 1u);
  EXPECT_EQ(status.quotas.shed_anonymous, 0u);
  ASSERT_EQ(status.quotas.tenants.size(), 2u);  // sorted: acme, beta
  EXPECT_EQ(status.quotas.tenants[0].tenant, "acme");
  EXPECT_EQ(status.quotas.tenants[0].sessions, 2u);
  EXPECT_EQ(status.quotas.tenants[1].tenant, "beta");
  EXPECT_EQ(status.quotas.tenants[1].sessions, 1u);
  manager.close(a2);
  manager.close(a3);
  manager.close(b1);
}

TEST(Quota, AnonymousOpensAreShedFirstAtTheGlobalCap) {
  SessionManager manager(quota_limits(/*max_sessions=*/2, /*per_tenant=*/8));
  const std::string s1 = manager.open(quota_open("acme", 1));
  const std::string s2 = manager.open(quota_open("", 2));
  try {
    (void)manager.open(quota_open("", 3));
    FAIL() << "anonymous open past the cap must shed";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kRetryLater);
  }
  EXPECT_EQ(manager.status().quotas.shed_anonymous, 1u);
  manager.close(s1);
  manager.close(s2);
}

TEST(Quota, QueuedOpenIsGrantedWhenASlotFrees) {
  SessionManager manager(quota_limits(/*max_sessions=*/1, /*per_tenant=*/4,
                                      /*queue_cap=*/4,
                                      std::chrono::milliseconds(5000)));
  const std::string holder = manager.open(quota_open("acme", 1));
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {  // NOLINT(reprolint-raw-thread)
    const std::string id = manager.open(quota_open("beta", 2));
    admitted.store(true);
    manager.close(id);
  });
  // The waiter parks in the admission queue (never an error), and the
  // freed slot is handed to it, not to a new arrival.
  for (int i = 0; i < 500 && manager.status().quotas.queue_depth == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(manager.status().quotas.queue_depth, 1u);
  EXPECT_FALSE(admitted.load());
  manager.close(holder);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  const StatusReport status = manager.status();
  EXPECT_EQ(status.quotas.queued, 1u);
  EXPECT_EQ(status.quotas.granted, 1u);
  EXPECT_EQ(status.quotas.timeouts, 0u);
}

TEST(Quota, QueueTimesOutWithTypedPushbackAndBoundIsEnforced) {
  SessionManager manager(quota_limits(/*max_sessions=*/1, /*per_tenant=*/4,
                                      /*queue_cap=*/1,
                                      std::chrono::milliseconds(5000)));
  const std::string holder = manager.open(quota_open("acme", 1));
  std::thread waiter([&] {  // NOLINT(reprolint-raw-thread)
    try {
      const std::string id = manager.open(quota_open("beta", 2));
      manager.close(id);
    } catch (const ProtocolError&) {
    }
  });
  for (int i = 0; i < 500 && manager.status().quotas.queue_depth == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Queue full: the next named open sheds immediately instead of queueing.
  try {
    (void)manager.open(quota_open("gamma", 3));
    FAIL() << "a full admission queue must shed";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kRetryLater);
  }
  EXPECT_EQ(manager.status().quotas.shed_queue_full, 1u);
  manager.close(holder);
  waiter.join();

  // Timeout path: a short wait expires into retry_later and is counted.
  SessionManager quick(quota_limits(/*max_sessions=*/1, /*per_tenant=*/4,
                                    /*queue_cap=*/4,
                                    std::chrono::milliseconds(30)));
  const std::string busy = quick.open(quota_open("acme", 1));
  try {
    (void)quick.open(quota_open("beta", 2));
    FAIL() << "the queued open must time out";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kRetryLater);
  }
  EXPECT_EQ(quick.status().quotas.timeouts, 1u);
  quick.close(busy);
}

TEST(Quota, InflightTellQuotaKeepsTellsCorrectUnderContention) {
  SessionLimits limits = quota_limits(/*max_sessions=*/8, /*per_tenant=*/8);
  limits.quotas.max_inflight_tells_per_tenant = 1;
  SessionManager manager(limits);
  const tuner::ParamSpace space = tiny_space();
  constexpr std::size_t kTells = 40;
  const std::string s1 = manager.open(quota_open("acme", 1, kTells));
  const std::string s2 = manager.open(quota_open("acme", 2, kTells));
  auto drive = [&](const std::string& id, std::uint64_t salt) {
    for (std::size_t i = 0; i < kTells; ++i) {
      const auto config = manager.ask(id);
      if (!config) break;
      while (true) {
        try {
          (void)manager.tell(id, synth_eval(space, *config, salt), i + 1);
          break;
        } catch (const ProtocolError& error) {
          // In-flight quota pushback: nothing was applied, replay the seq.
          ASSERT_EQ(error.code, ErrorCode::kRetryLater);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }
  };
  std::thread t1([&] { drive(s1, 7); });  // NOLINT(reprolint-raw-thread)
  std::thread t2([&] { drive(s2, 9); });  // NOLINT(reprolint-raw-thread)
  t1.join();
  t2.join();
  // Pushback must never lose or double-apply a tell: both sessions ran
  // their full budget exactly once per seq.
  const StatusReport status = manager.status();
  EXPECT_EQ(status.tells, 2 * kTells);
  EXPECT_EQ(status.duplicate_tells, 0u);
  manager.close(s1);
  manager.close(s2);
}

TEST(Quota, WireTenantRidesHelloAndCannotBeSpoofedPerOpen) {
  ServerConfig config;
  config.limits = quota_limits(/*max_sessions=*/8, /*per_tenant=*/2);
  TuneServer server(config);
  server.start();

  ClientConfig acme_config = service_test::client_config(server.port(), "acme-cli");
  acme_config.tenant = "acme";
  Client acme(acme_config);
  // The open's own tenant field is overwritten by the connection identity:
  // quota identity belongs to the authenticated link.
  const std::string id = acme.open(quota_open("spoofed", 1));
  (void)acme.open(quota_open("", 2));
  try {
    (void)acme.open(quota_open("", 3));
    FAIL() << "the acme connection holds 2 sessions; a third must shed";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kRetryLater);
    EXPECT_GT(error.retry_after_ms, 0u);
  }

  const Json status = acme.status();
  const Json* quotas = status.find("quotas");
  ASSERT_NE(quotas, nullptr);
  EXPECT_TRUE(quotas->find("enabled")->as_bool());
  EXPECT_EQ(quotas->find("shed_over_quota")->as_uint64(), 1u);
  const Json* tenants = quotas->find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->as_array().size(), 1u);
  const Json& row = tenants->as_array()[0];
  EXPECT_EQ(row.find("tenant")->as_string(), "acme");
  EXPECT_EQ(row.find("sessions")->as_uint64(), 2u);

  // A tenant-less connection is anonymous — unquota'd until the cap, and
  // invisible in the tenant rollup.
  Client anon(service_test::client_config(server.port(), "anon-cli"));
  const std::string anon_id = anon.open(quota_open("", 4));
  anon.close_session(anon_id);
  acme.close_session(id);
  server.stop();
}

}  // namespace
}  // namespace repro::service
