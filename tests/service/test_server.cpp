// TuneServer end-to-end over loopback: handshake discipline, typed errors,
// remote-equals-in-process for every paper algorithm, idle eviction,
// graceful drain, and a 64-concurrent-session stress test with per-session
// result verification (any cross-wired or lost evaluation changes a
// result and fails the equality check).

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "tests/service/service_test_util.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/registry.hpp"

namespace repro::service {
namespace {

using service_test::client_config;
using service_test::synth_eval;
using service_test::synth_objective;
using service_test::tiny_space;

ServerConfig fast_config() {
  ServerConfig config;
  config.poll_interval = std::chrono::milliseconds(20);
  return config;
}

OpenParams tiny_open(const std::string& algorithm, std::size_t budget,
                     std::uint64_t seed) {
  OpenParams params;
  params.algorithm = algorithm;
  params.budget = budget;
  params.seed = seed;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

tuner::TuneResult reference_minimize(const std::string& algorithm, std::size_t budget,
                                     std::uint64_t seed, std::uint64_t salt,
                                     tuner::FailureCounters* counters = nullptr) {
  const tuner::ParamSpace space = tiny_space();
  Rng rng(seed);
  tuner::Evaluator evaluator(space, synth_objective(space, salt), budget);
  const tuner::TuneResult result =
      tuner::make_algorithm(algorithm)->minimize(space, evaluator, rng);
  if (counters != nullptr) *counters = evaluator.counters();
  return result;
}

bool same_result(const tuner::TuneResult& a, const tuner::TuneResult& b) {
  return a.best_config == b.best_config && a.found_valid == b.found_valid &&
         a.evaluations_used == b.evaluations_used &&
         std::memcmp(&a.best_value, &b.best_value, sizeof(double)) == 0;
}

TEST(Server, RemoteEqualsInProcessForAllPaperAlgorithms) {
  TuneServer server(fast_config());
  server.start();
  Client client(client_config(server.port()));
  client.connect();

  const tuner::ParamSpace space = tiny_space();
  const std::uint64_t salt = seed_from_string("server-identity");
  for (const std::string& id : tuner::paper_algorithms()) {
    const std::uint64_t seed = seed_combine(7, seed_from_string(id));
    const Client::RemoteResult remote =
        client.remote_minimize(tiny_open(id, 40, seed), synth_objective(space, salt));
    tuner::FailureCounters direct_counters;
    const tuner::TuneResult direct =
        reference_minimize(id, 40, seed, salt, &direct_counters);
    EXPECT_TRUE(same_result(remote.result, direct)) << id;
    EXPECT_EQ(remote.counters.ok, direct_counters.ok) << id;
    EXPECT_EQ(remote.counters.invalid, direct_counters.invalid) << id;
  }
  client.disconnect();
  server.stop();
}

TEST(Server, HelloHandshakeIsRequiredAndVersionChecked) {
  TuneServer server(fast_config());
  server.start();

  // Op before hello -> typed error, connection stays usable.
  {
    Socket raw = Socket::connect_loopback(server.port());
    FrameReader reader(raw);
    Json status = Json::object();
    status.set("op", "status");
    ASSERT_TRUE(write_frame(raw, status));
    std::string line;
    ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
    const Json response = Json::parse(line);
    EXPECT_FALSE(response.find("ok")->as_bool());
    EXPECT_EQ(response.find("error")->as_string(), "hello_required");
  }

  // Wrong version -> typed error, then the server closes the connection.
  {
    Socket raw = Socket::connect_loopback(server.port());
    FrameReader reader(raw);
    Json hello = Json::object();
    hello.set("op", "hello");
    hello.set("version", 99);
    ASSERT_TRUE(write_frame(raw, hello));
    std::string line;
    ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
    EXPECT_EQ(Json::parse(line).find("error")->as_string(), "version_mismatch");
    EXPECT_EQ(reader.next(&line), FrameStatus::kClosed);
  }
  server.stop();
}

TEST(Server, MalformedFrameGetsTypedErrorAndConnectionSurvives) {
  TuneServer server(fast_config());
  server.start();
  Socket raw = Socket::connect_loopback(server.port());
  FrameReader reader(raw);
  const char* garbage = "this is not json\n";
  ASSERT_TRUE(raw.write_all(garbage, std::strlen(garbage)));
  std::string line;
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(Json::parse(line).find("error")->as_string(), "malformed_frame");

  // The stream resynchronizes on the newline: a valid hello still works.
  Json hello = Json::object();
  hello.set("op", "hello");
  hello.set("version", 1);
  ASSERT_TRUE(write_frame(raw, hello));
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_TRUE(Json::parse(line).find("ok")->as_bool());
  server.stop();
}

TEST(Server, OversizedFrameIsConnectionFatal) {
  TuneServer server(fast_config());
  server.start();
  Socket raw = Socket::connect_loopback(server.port());
  FrameReader reader(raw);
  const std::string huge(kMaxFrameBytes + 64, 'x');
  ASSERT_TRUE(raw.write_all(huge.data(), huge.size()));
  std::string line;
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(Json::parse(line).find("error")->as_string(), "oversized_frame");
  EXPECT_EQ(reader.next(&line), FrameStatus::kClosed);
  server.stop();
}

TEST(Server, TypedSessionErrors) {
  TuneServer server(fast_config());
  server.start();
  Client client(client_config(server.port()));
  client.connect();

  try {
    (void)client.ask("s999");
    FAIL() << "expected unknown session";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kUnknownSession);
  }

  const std::string session = client.open(tiny_open("rs", 10, 1));
  const auto first = client.ask(session);
  ASSERT_TRUE(first.has_value());
  // The client helper sends resume:true, so a repeated ask re-fetches the
  // outstanding proposal (reconnect idempotency) instead of failing...
  const auto again = client.ask(session);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *first);
  // ...while a raw ask without resume still trips the typed ask_pending.
  Json raw_ask = Json::object();
  raw_ask.set("op", "ask");
  raw_ask.set("session", session);
  try {
    (void)client.call(raw_ask);
    FAIL() << "expected ask_pending";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kAskPending);
  }
  (void)client.tell(session, 1.0);
  try {
    (void)client.tell(session, 2.0);  // nothing outstanding now
    FAIL() << "expected no_ask_outstanding";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kNoAskOutstanding);
  }

  Json bogus = Json::object();
  bogus.set("op", "frobnicate");
  try {
    (void)client.call(bogus);
    FAIL() << "expected unknown op";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kUnknownOp);
  }

  client.close_session(session);
  client.disconnect();
  server.stop();
}

TEST(Server, SessionLimitIsEnforced) {
  ServerConfig config = fast_config();
  config.limits.max_sessions = 2;
  TuneServer server(config);
  server.start();
  Client client(client_config(server.port()));
  client.connect();
  const std::string a = client.open(tiny_open("rs", 10, 1));
  const std::string b = client.open(tiny_open("rs", 10, 2));
  try {
    (void)client.open(tiny_open("rs", 10, 3));
    FAIL() << "expected admission pushback";
  } catch (const ProtocolError& error) {
    // Admission control answers the retryable kRetryLater with a backoff
    // hint instead of the legacy hard kSessionLimit.
    EXPECT_EQ(error.code, ErrorCode::kRetryLater);
    EXPECT_GT(error.retry_after_ms, 0u);
  }
  client.close_session(a);
  // Freed capacity is reusable.
  const std::string c = client.open(tiny_open("rs", 10, 4));
  client.close_session(b);
  client.close_session(c);
  client.disconnect();
  server.stop();
}

TEST(Server, StatusReportsSessionsAndFailureTallies) {
  TuneServer server(fast_config());
  server.start();
  Client client(client_config(server.port()));
  client.connect();

  const std::string session = client.open(tiny_open("rs", 10, 1));
  ASSERT_TRUE(client.ask(session).has_value());
  (void)client.tell(session, 1.5);
  ASSERT_TRUE(client.ask(session).has_value());
  (void)client.tell(session, tuner::Evaluation{0.0, false, tuner::EvalStatus::kCrashed});

  const Json status = client.status();
  EXPECT_TRUE(status.find("ok")->as_bool());
  EXPECT_EQ(status.find("live_sessions")->as_uint64(), 1u);
  EXPECT_EQ(status.find("opened")->as_uint64(), 1u);
  EXPECT_EQ(status.find("asks")->as_uint64(), 2u);
  EXPECT_EQ(status.find("tells")->as_uint64(), 2u);
  EXPECT_FALSE(status.find("draining")->as_bool());
  EXPECT_GE(status.find("active_connections")->as_uint64(), 1u);
  // The PR-1 failure taxonomy surfaces in the aggregate tallies.
  const Json* tallies = status.find("tallies");
  ASSERT_NE(tallies, nullptr);
  EXPECT_EQ(tallies->find("ok")->as_uint64(), 1u);
  EXPECT_EQ(tallies->find("crashed")->as_uint64(), 1u);
  // Per-session detail rows.
  const Json* sessions = status.find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->as_array().size(), 1u);
  EXPECT_EQ(sessions->as_array()[0].find("id")->as_string(), session);
  EXPECT_EQ(sessions->as_array()[0].find("tells")->as_uint64(), 2u);

  client.close_session(session);
  client.disconnect();
  server.stop();
}

TEST(Server, IdleSessionsAreEvicted) {
  ServerConfig config = fast_config();
  config.limits.idle_timeout = std::chrono::milliseconds(100);
  TuneServer server(config);
  server.start();
  Client client(client_config(server.port()));
  client.connect();
  const std::string session = client.open(tiny_open("rs", 10, 1));
  ASSERT_TRUE(client.ask(session).has_value());

  // Go idle past the timeout; the accept-tick heartbeat reaps the session.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.sessions().live() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.sessions().live(), 0u);
  EXPECT_GE(server.sessions().status().evicted, 1u);
  try {
    (void)client.ask(session);
    FAIL() << "expected eviction error";
  } catch (const ProtocolError& error) {
    // The tombstone distinguishes "reaped by policy" from "never existed".
    EXPECT_EQ(error.code, ErrorCode::kSessionEvicted);
  }
  try {
    (void)client.ask("s999");
    FAIL() << "expected unknown session";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kUnknownSession);
  }
  client.disconnect();
  server.stop();
}

TEST(Server, DrainRefusesNewSessionsThenCompletes) {
  TuneServer server(fast_config());
  server.start();
  Client client(client_config(server.port()));
  client.connect();
  const std::string session = client.open(tiny_open("rs", 5, 1));

  // Begin draining on a helper thread (deadline generous); the live session
  // and connection hold it open.
  std::thread drainer([&] { EXPECT_TRUE(server.drain(std::chrono::seconds(10))); });
  while (!server.draining()) std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // New connections are refused (listener closed)...
  EXPECT_THROW((void)Socket::connect_loopback(server.port()), std::runtime_error);
  // ...and new sessions on live connections get the typed draining error...
  try {
    (void)client.open(tiny_open("rs", 5, 2));
    FAIL() << "expected draining";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kDraining);
  }
  // ...but in-flight work runs to completion.
  while (auto config = client.ask(session)) (void)client.tell(session, 1.0);
  const Client::RemoteResult remote = client.result(session);
  EXPECT_EQ(remote.result.evaluations_used, 5u);
  client.close_session(session);
  client.disconnect();
  drainer.join();
  server.stop();
}

// The acceptance stress: >= 64 concurrent sessions (16 connections x 4
// sessions, ask/tell round-robin interleaved per connection) with zero
// lost or cross-wired evaluations — each session's salt makes its
// measurement stream unique, so any mix-up flips its final result away
// from the in-process reference.
TEST(Server, StressSixtyFourInterleavedSessions) {
  constexpr std::size_t kClients = 16;
  constexpr std::size_t kSessionsPerClient = 4;
  constexpr std::size_t kBudget = 12;
  const char* kAlgorithms[] = {"rs", "ga", "rf", "rs"};

  ServerConfig config = fast_config();
  // Sessions outnumber connection workers by 3x; connections must not.
  config.connection_threads = kClients + 2;
  TuneServer server(config);
  server.start();

  const tuner::ParamSpace space = tiny_space();
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client client(client_config(server.port(), "stress"));
        client.connect();
        struct Live {
          std::string id;
          std::uint64_t seed = 0;
          std::uint64_t salt = 0;
          std::size_t algorithm = 0;
          bool done = false;
        };
        std::vector<Live> sessions(kSessionsPerClient);
        for (std::size_t s = 0; s < kSessionsPerClient; ++s) {
          Live& live = sessions[s];
          live.algorithm = s;
          live.seed = seed_combine(t, s * 1000 + 17);
          live.salt = seed_combine(live.seed, seed_from_string("salt"));
          live.id = client.open(tiny_open(kAlgorithms[s], kBudget, live.seed));
        }
        // Round-robin: one ask/tell exchange per session per lap, so the
        // connection constantly switches between its sessions.
        std::size_t remaining = kSessionsPerClient;
        while (remaining > 0) {
          for (Live& live : sessions) {
            if (live.done) continue;
            const auto config_opt = client.ask(live.id);
            if (!config_opt) {
              live.done = true;
              --remaining;
              continue;
            }
            (void)client.tell(live.id, synth_eval(space, *config_opt, live.salt));
          }
        }
        for (Live& live : sessions) {
          const Client::RemoteResult remote = client.result(live.id);
          const tuner::TuneResult direct = reference_minimize(
              kAlgorithms[live.algorithm], kBudget, live.seed, live.salt);
          if (!same_result(remote.result, direct)) {
            failures[t] = "session " + live.id + " diverged from reference";
            return;
          }
          client.close_session(live.id);
        }
        client.disconnect();
      } catch (const std::exception& error) {
        failures[t] = error.what();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 0; t < kClients; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "client " << t << ": " << failures[t];
  }

  const StatusReport report = server.sessions().status();
  EXPECT_EQ(report.opened, kClients * kSessionsPerClient);
  EXPECT_EQ(report.closed, kClients * kSessionsPerClient);
  EXPECT_EQ(report.live_sessions, 0u);
  EXPECT_EQ(report.tells, report.asks - kClients * kSessionsPerClient);
  server.stop();
}

}  // namespace
}  // namespace repro::service
