// Wire protocol unit tests: framing over real loopback sockets (split
// writes, pipelined frames, oversized frames, timeouts) and the message
// codecs the client/server pair relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "common/socket.hpp"
#include "service/protocol.hpp"

namespace repro::service {
namespace {

/// A connected loopback socket pair (client end + accepted server end).
struct LoopbackPair {
  ListenSocket listener;
  Socket client;
  Socket server;

  LoopbackPair() {
    listener = ListenSocket::listen_loopback(0);
    client = Socket::connect_loopback(listener.port());
    EXPECT_EQ(listener.accept(&server), Socket::Io::kOk);
  }
};

TEST(Framing, SplitWritesReassembleIntoFrames) {
  LoopbackPair pair;
  FrameReader reader(pair.server);
  const std::string frame = "{\"op\":\"ping\"}\n";
  // Drip the frame in 3-byte chunks.
  for (std::size_t i = 0; i < frame.size(); i += 3) {
    const std::size_t n = std::min<std::size_t>(3, frame.size() - i);
    ASSERT_TRUE(pair.client.write_all(frame.data() + i, n));
  }
  std::string line;
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(line, "{\"op\":\"ping\"}");
}

TEST(Framing, PipelinedFramesComeOutOneByOne) {
  LoopbackPair pair;
  FrameReader reader(pair.server);
  const std::string burst = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n";
  ASSERT_TRUE(pair.client.write_all(burst.data(), burst.size()));
  std::string line;
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(line, "{\"a\":1}");
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(line, "{\"b\":2}");
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(line, "{\"c\":3}");
}

TEST(Framing, OversizedFrameIsRejectedBeforeTheNewlineArrives) {
  LoopbackPair pair;
  FrameReader reader(pair.server, /*max_frame=*/1024);
  const std::string huge(4096, 'x');  // no newline at all
  ASSERT_TRUE(pair.client.write_all(huge.data(), huge.size()));
  std::string line;
  EXPECT_EQ(reader.next(&line), FrameStatus::kOversized);
}

TEST(Framing, PeerCloseMidFrameReportsMidFrameEof) {
  LoopbackPair pair;
  FrameReader reader(pair.server);
  ASSERT_TRUE(pair.client.write_all("{\"partial\":", 11));
  pair.client.close();
  std::string line;
  // The partial bytes surface as a yield first (progress without a frame)...
  EXPECT_EQ(reader.next(&line), FrameStatus::kTimeout);
  // ...then the close lands on a non-empty buffer: a torn stream, not an
  // orderly between-frames close.
  EXPECT_EQ(reader.next(&line), FrameStatus::kMidFrameEof);
}

TEST(Framing, PeerCloseBetweenFramesReportsClosed) {
  LoopbackPair pair;
  FrameReader reader(pair.server);
  ASSERT_TRUE(pair.client.write_all("{\"a\":1}\n", 8));
  pair.client.close();
  std::string line;
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(line, "{\"a\":1}");
  EXPECT_EQ(reader.next(&line), FrameStatus::kClosed);
}

TEST(Framing, ReadTimeoutSurfacesAndPartialFrameSurvives) {
  LoopbackPair pair;
  pair.server.set_read_timeout(std::chrono::milliseconds(30));
  FrameReader reader(pair.server);
  ASSERT_TRUE(pair.client.write_all("{\"x\":", 5));
  std::string line;
  EXPECT_EQ(reader.next(&line), FrameStatus::kTimeout);
  // The retained partial frame completes on the next call.
  ASSERT_TRUE(pair.client.write_all("1}\n", 3));
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(line, "{\"x\":1}");
}

TEST(Framing, WriteFrameRoundTrip) {
  LoopbackPair pair;
  Json message = Json::object();
  message.set("op", "status");
  ASSERT_TRUE(write_frame(pair.client, message));
  FrameReader reader(pair.server);
  std::string line;
  ASSERT_EQ(reader.next(&line), FrameStatus::kOk);
  EXPECT_EQ(Json::parse(line).find("op")->as_string(), "status");
}

TEST(Protocol, OpenRoundTripWithRetryAndCustomSpace) {
  OpenParams params;
  params.algorithm = "bogp";
  params.budget = 77;
  params.seed = 18446744073709551615ull;  // must survive exactly
  params.retry.max_retries = 3;
  params.retry.backoff_initial_us = 50.0;
  params.retry.backoff_multiplier = 3.0;
  params.retry.backoff_max_us = 5000.0;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  params.constraint = "none";

  const OpenParams decoded = decode_open(Json::parse(encode_open(params).dump()));
  EXPECT_EQ(decoded.algorithm, "bogp");
  EXPECT_EQ(decoded.budget, 77u);
  EXPECT_EQ(decoded.seed, params.seed);
  EXPECT_EQ(decoded.retry.max_retries, 3u);
  EXPECT_DOUBLE_EQ(decoded.retry.backoff_multiplier, 3.0);
  ASSERT_TRUE(decoded.custom_space);
  ASSERT_EQ(decoded.params.size(), 3u);
  EXPECT_EQ(decoded.params[2].name, "c");
  EXPECT_EQ(decoded.params[2].hi, 5);
  const tuner::ParamSpace space = decoded.make_space();
  EXPECT_EQ(space.size(), 384u);
}

TEST(Protocol, OpenDefaultsToPaperSpace) {
  OpenParams params;
  const OpenParams decoded = decode_open(Json::parse(encode_open(params).dump()));
  EXPECT_FALSE(decoded.custom_space);
  EXPECT_EQ(decoded.make_space().size(), 2097152u);  // paper |S|
}

TEST(Protocol, OpenValidation) {
  Json request = encode_open(OpenParams{});
  request.set("budget", 0);
  EXPECT_THROW((void)decode_open(request), ProtocolError);
  request.set("budget", 10);
  request.set("seed", "not a number");
  EXPECT_THROW((void)decode_open(request), ProtocolError);

  OpenParams empty_range;
  empty_range.custom_space = true;
  empty_range.params = {{"a", 5, 2}};
  EXPECT_THROW((void)decode_open(encode_open(empty_range)), ProtocolError);

  OpenParams bad_constraint;
  bad_constraint.custom_space = true;
  bad_constraint.params = {{"a", 1, 4}};
  bad_constraint.constraint = "bogus";
  // decode accepts the frame; materializing the space rejects the constraint.
  EXPECT_THROW((void)decode_open(encode_open(bad_constraint)).make_space(),
               ProtocolError);
}

TEST(Protocol, Wg256ConstraintAppliesToTrailingAxes) {
  OpenParams params;
  params.custom_space = true;
  params.params = {{"t", 1, 16}, {"x", 1, 8}, {"y", 1, 8}, {"z", 1, 8}};
  params.constraint = "wg256";
  const tuner::ParamSpace space = params.make_space();
  EXPECT_TRUE(space.is_executable({1, 8, 8, 4}));   // 256 allowed
  EXPECT_FALSE(space.is_executable({1, 8, 8, 5}));  // 320 rejected
}

TEST(Protocol, EvaluationRoundTripIncludingNan) {
  Json frame = Json::object();
  encode_evaluation_into(frame, tuner::Evaluation{123.5, true, tuner::EvalStatus::kOk});
  tuner::Evaluation eval = decode_evaluation(Json::parse(frame.dump()));
  EXPECT_DOUBLE_EQ(eval.value, 123.5);
  EXPECT_TRUE(eval.valid);
  EXPECT_EQ(eval.status, tuner::EvalStatus::kOk);

  Json invalid = Json::object();
  encode_evaluation_into(invalid, tuner::Evaluation{});  // NaN, invalid
  eval = decode_evaluation(Json::parse(invalid.dump()));
  EXPECT_TRUE(std::isnan(eval.value));
  EXPECT_FALSE(eval.valid);
  EXPECT_EQ(eval.status, tuner::EvalStatus::kInvalid);

  Json bad = Json::parse(invalid.dump());
  bad.set("status", "exploded");
  EXPECT_THROW((void)decode_evaluation(bad), ProtocolError);
}

TEST(Protocol, TuneResultRoundTrip) {
  tuner::TuneResult result;
  result.best_config = {3, 1, 4};
  result.best_value = 1.0625;
  result.found_valid = true;
  result.evaluations_used = 99;
  tuner::FailureCounters counters;
  counters.ok = 90;
  counters.transient = 9;
  counters.retries = 4;
  counters.backoff_us = 1234.5;

  tuner::TuneResult decoded;
  tuner::FailureCounters decoded_counters;
  decode_tune_result(Json::parse(encode_tune_result(result, counters).dump()),
                     &decoded, &decoded_counters);
  EXPECT_EQ(decoded.best_config, result.best_config);
  EXPECT_DOUBLE_EQ(decoded.best_value, 1.0625);
  EXPECT_TRUE(decoded.found_valid);
  EXPECT_EQ(decoded.evaluations_used, 99u);
  EXPECT_EQ(decoded_counters.ok, 90u);
  EXPECT_EQ(decoded_counters.transient, 9u);
  EXPECT_EQ(decoded_counters.retries, 4u);
  EXPECT_DOUBLE_EQ(decoded_counters.backoff_us, 1234.5);
}

TEST(Protocol, ErrorCodesRoundTripThroughText) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kOversizedFrame, ErrorCode::kVersionMismatch,
        ErrorCode::kSessionLimit, ErrorCode::kSessionEvicted, ErrorCode::kRetryLater,
        ErrorCode::kDeadlineExceeded, ErrorCode::kDraining, ErrorCode::kInternal}) {
    EXPECT_EQ(error_code_from(to_string(code)), code);
  }
  EXPECT_EQ(error_code_from("no_such_code"), std::nullopt);
}

TEST(Protocol, RequireHelpersThrowTypedErrors) {
  Json object = Json::object();
  object.set("n", -1);
  object.set("s", 7);
  try {
    (void)require_string(object, "missing");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.code, ErrorCode::kBadRequest);
  }
  EXPECT_THROW((void)require_uint(object, "n"), ProtocolError);
  EXPECT_THROW((void)require_string(object, "s"), ProtocolError);
  EXPECT_THROW((void)require(Json(3), "x"), ProtocolError);
}

}  // namespace
}  // namespace repro::service
