// AskTellSession: the inversion must be invisible — for identical seeds a
// session driven by an external loop produces byte-identical results to an
// in-process minimize() for every paper algorithm — plus the ask/tell
// state-machine edge cases.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "tests/service/service_test_util.hpp"
#include "tuner/ask_tell.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/registry.hpp"

namespace repro::tuner {
namespace {

using service_test::synth_eval;
using service_test::synth_objective;
using service_test::tiny_space;

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_counters(const FailureCounters& a, const FailureCounters& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.invalid, b.invalid);
  EXPECT_EQ(a.transient, b.transient);
  EXPECT_EQ(a.timeout, b.timeout);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retry_successes, b.retry_successes);
  EXPECT_DOUBLE_EQ(a.backoff_us, b.backoff_us);
}

TEST(AskTell, ByteIdenticalToMinimizeForAllPaperAlgorithms) {
  const ParamSpace space = tiny_space();
  const std::uint64_t salt = seed_from_string("ask-tell-identity");
  const std::size_t budget = 50;
  for (const std::string& id : paper_algorithms()) {
    const std::uint64_t seed = seed_combine(2022, seed_from_string(id));

    // Reference: the algorithm drives a normal Evaluator in-process.
    Rng rng(seed);
    Evaluator evaluator(space, synth_objective(space, salt), budget);
    const TuneResult direct = make_algorithm(id)->minimize(space, evaluator, rng);

    // Inverted: an external loop drives the same algorithm via ask/tell.
    AskTellSession session(space, make_algorithm(id), budget, seed);
    while (auto config = session.ask()) {
      session.tell(synth_eval(space, *config, salt));
    }
    const TuneResult remote = session.result();

    EXPECT_EQ(remote.best_config, direct.best_config) << id;
    EXPECT_TRUE(bitwise_equal(remote.best_value, direct.best_value)) << id;
    EXPECT_EQ(remote.found_valid, direct.found_valid) << id;
    EXPECT_EQ(remote.evaluations_used, direct.evaluations_used) << id;
    expect_same_counters(session.counters(), evaluator.counters());
    EXPECT_TRUE(session.finished()) << id;
  }
}

TEST(AskTell, RetryPolicyMatchesEvaluatorSemantics) {
  // A transient-flaky objective under a retry policy: the session must
  // reproduce minimize()'s retry accounting exactly. Flakiness is a pure
  // function of (config, attempt counter per config), so both runs see the
  // same sequence.
  const ParamSpace space = tiny_space();
  RetryPolicy retry;
  retry.max_retries = 2;
  const std::size_t budget = 30;
  const std::uint64_t seed = 77;

  const auto flaky = [&space](std::size_t* calls) {
    return [&space, calls](const Configuration& config) {
      ++*calls;
      std::uint64_t state = seed_combine(1234, space.encode(config) + *calls);
      const std::uint64_t h = splitmix64(state);
      if ((h & 7) == 0) return Evaluation{0.0, false, EvalStatus::kTransient};
      return synth_eval(space, config, 999);
    };
  };

  std::size_t direct_calls = 0;
  Rng rng(seed);
  Evaluator evaluator(space, flaky(&direct_calls), budget);
  evaluator.set_retry_policy(retry);
  const TuneResult direct = make_algorithm("rs")->minimize(space, evaluator, rng);

  std::size_t session_calls = 0;
  const auto objective = flaky(&session_calls);
  AskTellSession session(space, make_algorithm("rs"), budget, seed, retry);
  while (auto config = session.ask()) session.tell(objective(*config));
  const TuneResult remote = session.result();

  EXPECT_EQ(remote.best_config, direct.best_config);
  EXPECT_TRUE(bitwise_equal(remote.best_value, direct.best_value));
  EXPECT_EQ(session_calls, direct_calls);
  expect_same_counters(session.counters(), evaluator.counters());
  EXPECT_GT(session.counters().retries, 0u);  // the policy actually fired
}

TEST(AskTell, DoubleAskThrowsAskPending) {
  const ParamSpace space = tiny_space();
  AskTellSession session(space, make_algorithm("rs"), 4, 1);
  const auto config = session.ask();
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(session.ask_outstanding());
  EXPECT_THROW((void)session.ask(), AskPendingError);
  session.tell(1.0);  // the session is still usable afterwards
  EXPECT_FALSE(session.ask_outstanding());
}

TEST(AskTell, TellWithoutAskThrowsMismatch) {
  const ParamSpace space = tiny_space();
  AskTellSession session(space, make_algorithm("rs"), 4, 1);
  EXPECT_THROW(session.tell(1.0), TellMismatchError);
  // Also after a completed ask/tell exchange.
  const auto config = session.ask();
  ASSERT_TRUE(config.has_value());
  session.tell(1.0);
  EXPECT_THROW(session.tell(2.0), TellMismatchError);
}

TEST(AskTell, AskAfterFinishReturnsNulloptForever) {
  const ParamSpace space = tiny_space();
  AskTellSession session(space, make_algorithm("rs"), 3, 5);
  while (auto config = session.ask()) session.tell(1.0);
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.ask(), std::nullopt);
  EXPECT_EQ(session.ask(), std::nullopt);
  EXPECT_EQ(session.asks(), session.tells());
  EXPECT_EQ(session.tells(), 3u);
  EXPECT_EQ(session.result().evaluations_used, 3u);
}

TEST(AskTell, CancelUnblocksAndPoisonsTheSession) {
  const ParamSpace space = tiny_space();
  AskTellSession session(space, make_algorithm("rs"), 100, 5);
  const auto config = session.ask();
  ASSERT_TRUE(config.has_value());
  session.cancel();
  EXPECT_THROW((void)session.ask(), SessionCancelled);
  EXPECT_THROW((void)session.result(), SessionCancelled);
  session.cancel();  // idempotent
}

TEST(AskTell, DestructionWhileParkedDoesNotHang) {
  const ParamSpace space = tiny_space();
  for (int i = 0; i < 8; ++i) {
    AskTellSession session(space, make_algorithm("bogp"), 100, 5);
    const auto config = session.ask();
    ASSERT_TRUE(config.has_value());
    // Destructor must cancel + join without a tell ever arriving.
  }
}

TEST(AskTell, AlgorithmNameIsExposed) {
  const ParamSpace space = tiny_space();
  AskTellSession session(space, make_algorithm("bogp"), 4, 1);
  EXPECT_FALSE(session.algorithm_name().empty());
  EXPECT_EQ(session.budget(), 4u);
  session.cancel();
}

}  // namespace
}  // namespace repro::tuner
