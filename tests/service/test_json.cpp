// JSON value/parser/writer: exactness guarantees the wire protocol relies
// on (64-bit integers, shortest-round-trip doubles) plus hostile input.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "common/json.hpp"

namespace repro {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(-42).dump(), "-42");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, Uint64SeedsSurviveExactly) {
  const std::uint64_t seed = 18446744073709551615ull;  // UINT64_MAX
  Json object = Json::object();
  object.set("seed", seed);
  const Json parsed = Json::parse(object.dump());
  EXPECT_EQ(parsed.find("seed")->as_uint64(), seed);

  const std::int64_t negative = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(Json::parse(Json(negative).dump()).as_int64(), negative);
}

TEST(Json, DoublesRoundTripBitExactly) {
  for (const double value : {0.1, 1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                             -0.0, 123456.789, 0x1.fffffffffffffp-1}) {
    const Json parsed = Json::parse(Json(value).dump());
    EXPECT_EQ(std::signbit(parsed.as_double()), std::signbit(value));
    EXPECT_EQ(parsed.as_double(), value) << Json(value).dump();
  }
}

TEST(Json, NonFiniteSerializesAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscapes) {
  const std::string raw = "line\n\ttab \"quote\" back\\slash \x01";
  const Json parsed = Json::parse(Json(raw).dump());
  EXPECT_EQ(parsed.as_string(), raw);
  // Unicode escapes, including a surrogate pair.
  EXPECT_EQ(Json::parse("\"\\u00e9\\ud83d\\ude00\"").as_string(),
            "\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, ObjectsKeepInsertionOrderAndReplaceOnSet) {
  Json object = Json::object();
  object.set("b", 1);
  object.set("a", 2);
  object.set("b", 3);
  EXPECT_EQ(object.dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(object.find("a")->as_int64(), 2);
  EXPECT_EQ(object.find("missing"), nullptr);
}

TEST(Json, ParseErrors) {
  for (const char* bad : {"", "{", "[1,", "tru", "\"unterminated", "{\"a\":}",
                          "1 2", "{\"a\" 1}", "[1 2]", "\"\\u12\"", "nul"}) {
    EXPECT_THROW((void)Json::parse(bad), JsonError) << bad;
  }
}

TEST(Json, DepthLimitStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep), JsonError);
  EXPECT_NO_THROW((void)Json::parse(deep, 128));
}

TEST(Json, TypeMismatchThrows) {
  const Json number(1.5);
  EXPECT_THROW((void)number.as_string(), JsonError);
  EXPECT_THROW((void)number.as_int64(), JsonError);  // doubles don't coerce
  EXPECT_THROW((void)Json("x").as_double(), JsonError);
  EXPECT_THROW((void)Json(-1).as_uint64(), JsonError);
  EXPECT_THROW((void)Json(nullptr).as_bool(), JsonError);
  Json not_object(3);
  EXPECT_THROW((void)not_object.set("k", 1), JsonError);
}

TEST(Json, NestedDocumentRoundTrip) {
  const char* text =
      "{\"op\":\"open\",\"algorithm\":\"bogp\",\"budget\":100,"
      "\"space\":{\"params\":[{\"name\":\"a\",\"lo\":1,\"hi\":8}],"
      "\"constraint\":\"none\"},\"values\":[1,2.5,null,true]}";
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed.dump(), text);  // writer emits exactly the canonical form
}

}  // namespace
}  // namespace repro
