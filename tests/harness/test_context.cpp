// BenchmarkContext: optimum sweep, measurement path, dataset collection.
// Uses small custom benchmark sizes so context construction stays cheap.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "harness/context.hpp"

namespace repro::harness {
namespace {

std::shared_ptr<const imagecl::Benchmark> small_add() {
  static auto benchmark = imagecl::make_benchmark("add", 512, 512);
  return benchmark;
}

TEST(Context, ToKernelConfigMapsPaperOrder) {
  const simgpu::KernelConfig kernel = to_kernel_config({2, 3, 4, 5, 6, 7});
  EXPECT_EQ(kernel.coarsen_x, 2u);
  EXPECT_EQ(kernel.coarsen_y, 3u);
  EXPECT_EQ(kernel.coarsen_z, 4u);
  EXPECT_EQ(kernel.wg_x, 5u);
  EXPECT_EQ(kernel.wg_y, 6u);
  EXPECT_EQ(kernel.wg_z, 7u);
  EXPECT_THROW((void)to_kernel_config({1, 2, 3}), std::invalid_argument);
}

TEST(Context, OptimumIsLowerBoundOfSamples) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 0, 42);
  EXPECT_GT(context.optimum_us(), 0.0);
  repro::Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const tuner::Configuration config = context.space().sample_executable(rng);
    const double time = context.true_time_us(config);
    ASSERT_FALSE(std::isnan(time));
    EXPECT_GE(time, context.optimum_us() - 1e-9);
  }
}

TEST(Context, InvalidConfigMeasuresNaN) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 0, 42);
  repro::Rng rng(2);
  EXPECT_TRUE(std::isnan(context.true_time_us({1, 1, 1, 8, 8, 8})));
  EXPECT_TRUE(std::isnan(context.measure_us({1, 1, 1, 8, 8, 8}, rng)));
}

TEST(Context, MeasurementNoiseIsMultiplicativeAndSmall) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 0, 42);
  const tuner::Configuration config = {1, 1, 1, 8, 4, 1};
  const double truth = context.true_time_us(config);
  repro::Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double measured = context.measure_us(config, rng);
    EXPECT_GT(measured, truth * 0.85);
    EXPECT_LT(measured, truth * 1.35);
    sum += measured;
  }
  EXPECT_NEAR(sum / 500.0, truth, truth * 0.02);
}

TEST(Context, RepeatedMeasurementReducesVariance) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 0, 42);
  const tuner::Configuration config = {2, 1, 1, 8, 4, 1};
  const double truth = context.true_time_us(config);
  repro::Rng rng(4);
  const double ten_fold = context.measure_repeated_us(config, rng, 10);
  EXPECT_NEAR(ten_fold, truth, truth * 0.05);
}

TEST(Context, ObjectiveClosureReportsValidity) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 0, 42);
  repro::Rng rng(5);
  const tuner::Objective objective = context.make_objective(rng);
  const tuner::Evaluation good = objective({1, 1, 1, 8, 4, 1});
  EXPECT_TRUE(good.valid);
  EXPECT_GT(good.value, 0.0);
  const tuner::Evaluation bad = objective({1, 1, 1, 8, 8, 8});
  EXPECT_FALSE(bad.valid);
}

TEST(Context, DatasetCollectedToRequestedSize) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 250, 42);
  EXPECT_EQ(context.dataset().size(), 250u);
  for (std::size_t i = 0; i < 250; ++i) {
    EXPECT_TRUE(context.dataset().entry(i).valid);
    EXPECT_TRUE(context.space().is_executable(context.dataset().entry(i).config));
  }
}

TEST(Context, DatasetIsDeterministicInMasterSeed) {
  const BenchmarkContext a(small_add(), simgpu::titan_v(), 50, 7);
  const BenchmarkContext b(small_add(), simgpu::titan_v(), 50, 7);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.dataset().entry(i).config, b.dataset().entry(i).config);
    EXPECT_DOUBLE_EQ(a.dataset().entry(i).value, b.dataset().entry(i).value);
  }
}

TEST(Context, ArchitecturesProduceDifferentOptima) {
  const BenchmarkContext volta(small_add(), simgpu::titan_v(), 0, 42);
  const BenchmarkContext maxwell(small_add(), simgpu::gtx980(), 0, 42);
  EXPECT_NE(volta.optimum_us(), maxwell.optimum_us());
}

TEST(Context, DisabledInjectorReproducesMeasureUsExactly) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 0, 42);
  const tuner::Configuration config = context.dataset().size() > 0
                                          ? context.dataset().entry(0).config
                                          : tuner::Configuration{3, 3, 0, 0, 0, 0};
  simgpu::FaultInjector injector;  // disabled
  repro::Rng rng_a(5), rng_b(5);
  for (int i = 0; i < 20; ++i) {
    const double plain = context.measure_us(config, rng_a);
    const tuner::Evaluation eval = context.measure_eval(config, rng_b, injector);
    if (std::isnan(plain)) {
      EXPECT_FALSE(eval.valid);
      EXPECT_EQ(eval.status, tuner::EvalStatus::kInvalid);
    } else {
      EXPECT_DOUBLE_EQ(plain, eval.value);
      EXPECT_EQ(eval.status, tuner::EvalStatus::kOk);
    }
  }
  // Identical downstream RNG state: the disabled path made the same draws.
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(Context, MeasureEvalClassifiesInjectedFaults) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 0, 42);
  const tuner::Configuration config{3, 3, 0, 0, 0, 0};
  repro::Rng rng(6);

  simgpu::FaultModel transient_only;
  transient_only.enabled = true;
  transient_only.transient_probability = 1.0;
  simgpu::FaultInjector transient(transient_only, 1);
  EXPECT_EQ(context.measure_eval(config, rng, transient).status,
            tuner::EvalStatus::kTransient);

  simgpu::FaultModel timeout_only;
  timeout_only.enabled = true;
  timeout_only.timeout_probability = 1.0;
  timeout_only.timeout_wall_us = 5.0e5;
  simgpu::FaultInjector timeout(timeout_only, 1);
  const tuner::Evaluation hung = context.measure_eval(config, rng, timeout);
  EXPECT_EQ(hung.status, tuner::EvalStatus::kTimeout);
  // A hung kernel costs the full wall budget, reported as its elapsed time.
  EXPECT_DOUBLE_EQ(hung.value, 5.0e5);
  EXPECT_FALSE(hung.valid);

  simgpu::FaultModel reset_only;
  reset_only.enabled = true;
  reset_only.reset_probability = 1.0;
  reset_only.reset_poison_count = 2;
  simgpu::FaultInjector reset(reset_only, 1);
  EXPECT_EQ(context.measure_eval(config, rng, reset).status,
            tuner::EvalStatus::kCrashed);  // the reset itself
  EXPECT_EQ(context.measure_eval(config, rng, reset).status,
            tuner::EvalStatus::kCrashed);  // poisoned follow-up
}

TEST(Context, FaultAwareRepeatedMeasureDropsFaultedRepeats) {
  const BenchmarkContext context(small_add(), simgpu::titan_v(), 50, 42);
  const tuner::Configuration config = context.dataset().entry(0).config;
  repro::Rng rng_a(9), rng_b(9);

  // Disabled injector: exact match with the plain overload.
  simgpu::FaultInjector disabled;
  tuner::FailureCounters counters;
  const double plain = context.measure_repeated_us(config, rng_a, 10);
  const double faultless =
      context.measure_repeated_us(config, rng_b, 10, disabled, &counters);
  EXPECT_DOUBLE_EQ(plain, faultless);
  EXPECT_EQ(counters.faults(), 0u);

  // Certain faults: every repeat is lost, the mean is NaN, all tallied.
  simgpu::FaultModel always;
  always.enabled = true;
  always.transient_probability = 1.0;
  simgpu::FaultInjector lossy(always, 3);
  tuner::FailureCounters lost;
  repro::Rng rng_c(9);
  EXPECT_TRUE(std::isnan(
      context.measure_repeated_us(config, rng_c, 10, lossy, &lost)));
  EXPECT_EQ(lost.transient, 10u);
}


TEST(Context, MeanMemoizationIsBitIdenticalToRecomputation) {
  // Two contexts over the same benchmark/arch/seed, one consulting the
  // shared mean memo and one recomputing the per-pass sum every call: every
  // mean and every noisy measurement stream must match bit for bit.
  BenchmarkContext memoized(small_add(), simgpu::titan_v(), 0, 42);
  BenchmarkContext recomputed(small_add(), simgpu::titan_v(), 0, 42);
  recomputed.set_mean_memoization(false);
  ASSERT_TRUE(memoized.mean_memoization());
  ASSERT_FALSE(recomputed.mean_memoization());

  repro::Rng sampler(17);
  repro::Rng rng_a(18), rng_b(18);
  for (int i = 0; i < 200; ++i) {
    const tuner::Configuration config = memoized.space().sample(sampler);
    const double mean_a = memoized.true_time_us(config);
    const double mean_b = recomputed.true_time_us(config);
    if (std::isnan(mean_b)) {
      EXPECT_TRUE(std::isnan(mean_a));
    } else {
      ASSERT_EQ(std::memcmp(&mean_a, &mean_b, sizeof(double)), 0) << i;
    }
    const double noisy_a = memoized.measure_us(config, rng_a);
    const double noisy_b = recomputed.measure_us(config, rng_b);
    if (!std::isnan(noisy_b)) {
      ASSERT_EQ(std::memcmp(&noisy_a, &noisy_b, sizeof(double)), 0) << i;
    }
  }
  // The noise streams advanced identically and the memo actually engaged.
  EXPECT_EQ(rng_a(), rng_b());
  EXPECT_GT(memoized.mean_cache().hits(), 0u);
  EXPECT_GT(memoized.mean_cache().size(), 0u);
}

TEST(Context, MeanMemoizationIdenticalUnderFaults) {
  BenchmarkContext memoized(small_add(), simgpu::titan_v(), 0, 42);
  BenchmarkContext recomputed(small_add(), simgpu::titan_v(), 0, 42);
  recomputed.set_mean_memoization(false);

  simgpu::FaultModel faults;
  faults.enabled = true;
  faults.transient_probability = 0.1;
  faults.timeout_probability = 0.05;
  faults.reset_probability = 0.02;

  simgpu::FaultInjector injector_a(faults, 77);
  simgpu::FaultInjector injector_b(faults, 77);
  repro::Rng sampler(19);
  repro::Rng rng_a(20), rng_b(20);
  for (int i = 0; i < 100; ++i) {
    const tuner::Configuration config = memoized.space().sample(sampler);
    const tuner::Evaluation a = memoized.measure_eval(config, rng_a, injector_a);
    const tuner::Evaluation b = recomputed.measure_eval(config, rng_b, injector_b);
    ASSERT_EQ(a.status, b.status) << i;
    ASSERT_EQ(a.valid, b.valid) << i;
    if (!std::isnan(b.value)) {
      ASSERT_EQ(std::memcmp(&a.value, &b.value, sizeof(double)), 0) << i;
    }
  }
  EXPECT_EQ(rng_a(), rng_b());
}

}  // namespace
}  // namespace repro::harness
