// Study driver: experiment-count arithmetic (the paper's E(S) = 20000/S
// rule), single-experiment behaviour per algorithm family, and a tiny but
// complete end-to-end study.

#include <gtest/gtest.h>

#include <cmath>

#include "harness/study.hpp"

namespace repro::harness {
namespace {

TEST(StudyConfig, PaperExperimentCounts) {
  StudyConfig config;
  config.scale_divisor = 1.0;
  config.min_experiments = 1;
  EXPECT_EQ(config.experiments_for(25), 800u);
  EXPECT_EQ(config.experiments_for(50), 400u);
  EXPECT_EQ(config.experiments_for(100), 200u);
  EXPECT_EQ(config.experiments_for(200), 100u);
  EXPECT_EQ(config.experiments_for(400), 50u);
}

TEST(StudyConfig, ScaledCountsRespectFloor) {
  StudyConfig config;
  config.scale_divisor = 32.0;
  config.min_experiments = 4;
  EXPECT_EQ(config.experiments_for(25), 25u);
  EXPECT_EQ(config.experiments_for(400), 4u);  // floor kicks in
}

TEST(StudyConfig, DatasetSizeCoversEverySubdivision) {
  StudyConfig config;
  config.scale_divisor = 1.0;
  config.min_experiments = 1;
  EXPECT_EQ(config.dataset_size_needed(), 20000u);  // the paper's dataset
  config.scale_divisor = 32.0;
  config.min_experiments = 4;
  const std::size_t needed = config.dataset_size_needed();
  for (std::size_t size : config.sample_sizes) {
    EXPECT_LE(config.experiments_for(size) * size, needed);
  }
}

class SingleExperiment : public ::testing::TestWithParam<std::string> {
 protected:
  static const BenchmarkContext& context() {
    static const BenchmarkContext ctx(imagecl::make_benchmark("add", 512, 512),
                                      simgpu::titan_v(), 300, 42);
    return ctx;
  }
};

TEST_P(SingleExperiment, ProducesFiniteOutcomeAboveOptimum) {
  const double outcome =
      run_single_experiment_indexed(context(), GetParam(), 25, 1, 10, 1234);
  ASSERT_FALSE(std::isnan(outcome));
  EXPECT_GT(outcome, context().optimum_us() * 0.9);  // noise can dip slightly
  EXPECT_LT(outcome, context().optimum_us() * 100.0);
}

TEST_P(SingleExperiment, DeterministicInSeed) {
  const double a = run_single_experiment_indexed(context(), GetParam(), 25, 0, 10, 99);
  const double b = run_single_experiment_indexed(context(), GetParam(), 25, 0, 10, 99);
  EXPECT_DOUBLE_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SingleExperiment,
                         ::testing::Values("rs", "rf", "ga", "bogp", "botpe"));

TEST(Study, TinyEndToEndRunHasFullShape) {
  StudyConfig config;
  config.benchmarks = {"add"};
  config.architectures = {"titanv"};
  config.algorithms = {"rs", "ga"};
  config.sample_sizes = {10, 20};
  config.scale_divisor = 1000.0;
  config.min_experiments = 3;
  config.master_seed = 7;
  // NOTE: contexts always use the full-size benchmarks; this test therefore
  // exercises the real models but with few, cheap experiments.
  const StudyResults results = run_study(config);
  ASSERT_EQ(results.panels.size(), 1u);
  const PanelResults& panel = results.panels[0];
  EXPECT_EQ(panel.benchmark, "add");
  EXPECT_GT(panel.optimum_us, 0.0);
  ASSERT_EQ(panel.cells.size(), 2u);       // algorithms
  ASSERT_EQ(panel.cells[0].size(), 2u);    // sizes
  for (const auto& row : panel.cells) {
    for (const auto& cell : row) {
      EXPECT_EQ(cell.final_times_us.size(), 3u);
      for (double t : cell.final_times_us) {
        EXPECT_FALSE(std::isnan(t));
        EXPECT_GT(t, panel.optimum_us * 0.5);
      }
    }
  }
  EXPECT_NO_THROW((void)results.panel("add", "titanv"));
  EXPECT_THROW((void)results.panel("harris", "titanv"), std::out_of_range);
}

TEST(Study, DeterministicAcrossRuns) {
  StudyConfig config;
  config.benchmarks = {"add"};
  config.architectures = {"gtx980"};
  config.algorithms = {"rs"};
  config.sample_sizes = {15};
  config.scale_divisor = 1000.0;
  config.min_experiments = 4;
  config.master_seed = 99;
  const StudyResults a = run_study(config);
  const StudyResults b = run_study(config);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_DOUBLE_EQ(a.panels[0].cells[0][0].final_times_us[e],
                     b.panels[0].cells[0][0].final_times_us[e]);
  }
}

}  // namespace
}  // namespace repro::harness
