// Study driver: experiment-count arithmetic (the paper's E(S) = 20000/S
// rule), single-experiment behaviour per algorithm family, a tiny but
// complete end-to-end study, and the fault-tolerance pipeline (graceful
// degradation, checkpoint/resume determinism).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/results_io.hpp"
#include "harness/study.hpp"

namespace repro::harness {
namespace {

TEST(StudyConfig, PaperExperimentCounts) {
  StudyConfig config;
  config.scale_divisor = 1.0;
  config.min_experiments = 1;
  EXPECT_EQ(config.experiments_for(25), 800u);
  EXPECT_EQ(config.experiments_for(50), 400u);
  EXPECT_EQ(config.experiments_for(100), 200u);
  EXPECT_EQ(config.experiments_for(200), 100u);
  EXPECT_EQ(config.experiments_for(400), 50u);
}

TEST(StudyConfig, ScaledCountsRespectFloor) {
  StudyConfig config;
  config.scale_divisor = 32.0;
  config.min_experiments = 4;
  EXPECT_EQ(config.experiments_for(25), 25u);
  EXPECT_EQ(config.experiments_for(400), 4u);  // floor kicks in
}

TEST(StudyConfig, DatasetSizeCoversEverySubdivision) {
  StudyConfig config;
  config.scale_divisor = 1.0;
  config.min_experiments = 1;
  EXPECT_EQ(config.dataset_size_needed(), 20000u);  // the paper's dataset
  config.scale_divisor = 32.0;
  config.min_experiments = 4;
  const std::size_t needed = config.dataset_size_needed();
  for (std::size_t size : config.sample_sizes) {
    EXPECT_LE(config.experiments_for(size) * size, needed);
  }
}

class SingleExperiment : public ::testing::TestWithParam<std::string> {
 protected:
  static const BenchmarkContext& context() {
    static const BenchmarkContext ctx(imagecl::make_benchmark("add", 512, 512),
                                      simgpu::titan_v(), 300, 42);
    return ctx;
  }
};

TEST_P(SingleExperiment, ProducesFiniteOutcomeAboveOptimum) {
  const double outcome =
      run_single_experiment_indexed(context(), GetParam(), 25, 1, 10, 1234);
  ASSERT_FALSE(std::isnan(outcome));
  EXPECT_GT(outcome, context().optimum_us() * 0.9);  // noise can dip slightly
  EXPECT_LT(outcome, context().optimum_us() * 100.0);
}

TEST_P(SingleExperiment, DeterministicInSeed) {
  const double a = run_single_experiment_indexed(context(), GetParam(), 25, 0, 10, 99);
  const double b = run_single_experiment_indexed(context(), GetParam(), 25, 0, 10, 99);
  EXPECT_DOUBLE_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SingleExperiment,
                         ::testing::Values("rs", "rf", "ga", "bogp", "botpe"));

TEST(Study, TinyEndToEndRunHasFullShape) {
  StudyConfig config;
  config.benchmarks = {"add"};
  config.architectures = {"titanv"};
  config.algorithms = {"rs", "ga"};
  config.sample_sizes = {10, 20};
  config.scale_divisor = 1000.0;
  config.min_experiments = 3;
  config.master_seed = 7;
  // NOTE: contexts always use the full-size benchmarks; this test therefore
  // exercises the real models but with few, cheap experiments.
  const StudyResults results = run_study(config);
  ASSERT_EQ(results.panels.size(), 1u);
  const PanelResults& panel = results.panels[0];
  EXPECT_EQ(panel.benchmark, "add");
  EXPECT_GT(panel.optimum_us, 0.0);
  ASSERT_EQ(panel.cells.size(), 2u);       // algorithms
  ASSERT_EQ(panel.cells[0].size(), 2u);    // sizes
  for (const auto& row : panel.cells) {
    for (const auto& cell : row) {
      EXPECT_EQ(cell.final_times_us.size(), 3u);
      for (double t : cell.final_times_us) {
        EXPECT_FALSE(std::isnan(t));
        EXPECT_GT(t, panel.optimum_us * 0.5);
      }
    }
  }
  EXPECT_NO_THROW((void)results.panel("add", "titanv"));
  EXPECT_THROW((void)results.panel("harris", "titanv"), std::out_of_range);
}

TEST(Study, DeterministicAcrossRuns) {
  StudyConfig config;
  config.benchmarks = {"add"};
  config.architectures = {"gtx980"};
  config.algorithms = {"rs"};
  config.sample_sizes = {15};
  config.scale_divisor = 1000.0;
  config.min_experiments = 4;
  config.master_seed = 99;
  const StudyResults a = run_study(config);
  const StudyResults b = run_study(config);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_DOUBLE_EQ(a.panels[0].cells[0][0].final_times_us[e],
                     b.panels[0].cells[0][0].final_times_us[e]);
  }
}

StudyConfig tiny_config() {
  StudyConfig config;
  config.benchmarks = {"add"};
  config.architectures = {"titanv"};
  config.algorithms = {"rs", "ga"};
  config.sample_sizes = {10, 20};
  config.scale_divisor = 1000.0;
  config.min_experiments = 3;
  config.master_seed = 7;
  return config;
}

bool results_identical(const StudyResults& a, const StudyResults& b) {
  if (a.panels.size() != b.panels.size()) return false;
  for (std::size_t p = 0; p < a.panels.size(); ++p) {
    if (a.panels[p].optimum_us != b.panels[p].optimum_us) return false;
    for (std::size_t algo = 0; algo < a.panels[p].cells.size(); ++algo) {
      for (std::size_t s = 0; s < a.panels[p].cells[algo].size(); ++s) {
        const auto& ca = a.panels[p].cells[algo][s];
        const auto& cb = b.panels[p].cells[algo][s];
        if (ca.final_times_us.size() != cb.final_times_us.size()) return false;
        for (std::size_t e = 0; e < ca.final_times_us.size(); ++e) {
          const bool nan_a = std::isnan(ca.final_times_us[e]);
          const bool nan_b = std::isnan(cb.final_times_us[e]);
          if (nan_a != nan_b) return false;
          if (!nan_a && ca.final_times_us[e] != cb.final_times_us[e]) return false;
        }
        if (ca.failed_experiments != cb.failed_experiments) return false;
        if (ca.failures.faults() != cb.failures.faults()) return false;
        if (ca.failures.retries != cb.failures.retries) return false;
      }
    }
  }
  return true;
}

TEST(Study, FaultsProduceTalliesButNeverAbortTheCampaign) {
  StudyConfig config = tiny_config();
  config.faults = simgpu::FaultModel::with_rate(0.30);
  config.retry.max_retries = 2;
  const StudyResults results = run_study(config);
  ASSERT_EQ(results.panels.size(), 1u);
  std::size_t total_faults = 0;
  for (const auto& row : results.panels[0].cells) {
    for (const CellOutcomes& cell : row) {
      EXPECT_EQ(cell.final_times_us.size(), 3u);  // shape survives faults
      total_faults += cell.failures.faults();
    }
  }
  EXPECT_GT(total_faults, 0u);  // at a 30% rate something must have fired
}

TEST(Study, FaultyStudyIsStillDeterministic) {
  StudyConfig config = tiny_config();
  config.faults = simgpu::FaultModel::with_rate(0.20);
  config.retry.max_retries = 1;
  const StudyResults a = run_study(config);
  const StudyResults b = run_study(config);
  EXPECT_TRUE(results_identical(a, b));
}

TEST(Study, RunExperimentDetailedReportsCounters) {
  BenchmarkContext context(imagecl::make_benchmark("add", 512, 512),
                           simgpu::titan_v(), 300, 42);
  context.set_fault_model(simgpu::FaultModel::with_rate(0.5));
  ExperimentOptions options;
  options.retry.max_retries = 2;
  tuner::FailureCounters total;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const ExperimentOutcome outcome =
        run_experiment_detailed(context, "ga", 20, 0, seed, options);
    EXPECT_FALSE(outcome.aborted);
    total += outcome.counters;
  }
  EXPECT_GT(total.faults(), 0u);
  EXPECT_GT(total.retries, 0u);
}

TEST(Study, CheckpointKillAndResumeMatchesUninterruptedRun) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_study_ckpt.csv").string();
  std::remove(path.c_str());

  StudyConfig config = tiny_config();
  config.faults = simgpu::FaultModel::with_rate(0.10);  // faults survive resume too
  config.retry.max_retries = 1;
  const StudyResults uninterrupted = run_study(config);

  // Produce a complete checkpoint of the identical campaign.
  config.checkpoint_path = path;
  const StudyResults checkpointed = run_study(config);
  ASSERT_TRUE(results_identical(uninterrupted, checkpointed));

  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  // header + panel + 4 cells
  ASSERT_EQ(lines.size(), 6u);

  // Kill at every possible cell boundary: rewrite the checkpoint truncated
  // to k records and resume. Each resumed run must equal the uninterrupted
  // one exactly.
  for (std::size_t keep = 1; keep + 1 < lines.size(); ++keep) {
    std::remove(path.c_str());
    {
      std::ofstream out(path);
      for (std::size_t i = 0; i <= keep; ++i) out << lines[i] << '\n';
    }
    const StudyResults resumed = run_study(config);
    EXPECT_TRUE(results_identical(uninterrupted, resumed))
        << "resume after " << keep << " checkpoint records diverged";
  }

  // A fully-restored run (all records present) must match as well, without
  // re-running anything.
  {
    std::remove(path.c_str());
    std::ofstream out(path);
    for (const std::string& line : lines) out << line << '\n';
  }
  const StudyResults restored = run_study(config);
  EXPECT_TRUE(results_identical(uninterrupted, restored));
  std::remove(path.c_str());
}

TEST(Study, ResumeRejectsForeignCheckpoint) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_study_ckpt_foreign.csv").string();
  std::remove(path.c_str());
  ASSERT_TRUE(checkpoint_begin(path, 1111));
  ASSERT_TRUE(checkpoint_append_panel(path, "add", "titanv", 100.0));

  StudyConfig config = tiny_config();
  config.master_seed = 2222;  // different campaign
  config.checkpoint_path = path;
  EXPECT_THROW((void)run_study(config), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Study, ResumeRejectsMismatchedExperimentCount) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_study_ckpt_scale.csv").string();
  std::remove(path.c_str());

  StudyConfig config = tiny_config();
  config.checkpoint_path = path;
  (void)run_study(config);

  // Same seed, different scale: cells in the checkpoint hold the wrong
  // number of experiments and silently mixing them would corrupt figures.
  config.min_experiments = 5;
  EXPECT_THROW((void)run_study(config), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace repro::harness
