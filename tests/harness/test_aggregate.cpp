// Aggregation of study outcomes into the paper's reported quantities,
// verified on hand-built synthetic panels.

#include <gtest/gtest.h>

#include <cmath>

#include "harness/aggregate.hpp"

namespace repro::harness {
namespace {

/// Panel with 2 algorithms x 2 sizes and known outcome distributions.
PanelResults synthetic_panel() {
  PanelResults panel;
  panel.benchmark = "synthetic";
  panel.architecture = "fake";
  panel.optimum_us = 100.0;
  panel.cells.resize(2);
  for (auto& row : panel.cells) row.resize(2);
  // Algorithm 0 ("rs"): median 200 at size 0, median 125 at size 1.
  panel.cells[0][0].final_times_us = {150.0, 200.0, 250.0};
  panel.cells[0][1].final_times_us = {120.0, 125.0, 130.0};
  // Algorithm 1: median 100 at size 0, median 250 at size 1.
  panel.cells[1][0].final_times_us = {90.0, 100.0, 110.0};
  panel.cells[1][1].final_times_us = {240.0, 250.0, 260.0};
  return panel;
}

TEST(Aggregate, ValidOutcomesDropsNaN) {
  CellOutcomes cell;
  cell.final_times_us = {1.0, std::nan(""), 2.0};
  EXPECT_EQ(valid_outcomes(cell).size(), 2u);
}

TEST(Aggregate, PercentOfOptimum) {
  const CellMatrix matrix = percent_of_optimum(synthetic_panel());
  EXPECT_NEAR(matrix[0][0], 50.0, 1e-9);   // 100/200
  EXPECT_NEAR(matrix[0][1], 80.0, 1e-9);   // 100/125
  EXPECT_NEAR(matrix[1][0], 100.0, 1e-9);  // optimum reached
  EXPECT_NEAR(matrix[1][1], 40.0, 1e-9);
}

TEST(Aggregate, PercentOfOptimumEmptyCellIsNaN) {
  PanelResults panel = synthetic_panel();
  panel.cells[0][0].final_times_us = {std::nan(""), std::nan("")};
  const CellMatrix matrix = percent_of_optimum(panel);
  EXPECT_TRUE(std::isnan(matrix[0][0]));
  EXPECT_FALSE(std::isnan(matrix[0][1]));
}

TEST(Aggregate, SpeedupOverRs) {
  const CellMatrix matrix = speedup_over_rs(synthetic_panel(), 0);
  EXPECT_NEAR(matrix[0][0], 1.0, 1e-9);   // RS vs itself
  EXPECT_NEAR(matrix[1][0], 2.0, 1e-9);   // 200/100
  EXPECT_NEAR(matrix[1][1], 0.5, 1e-9);   // 125/250: slower than RS
}

TEST(Aggregate, ClesOverRs) {
  const CellMatrix matrix = cles_over_rs(synthetic_panel(), 0);
  EXPECT_NEAR(matrix[0][0], 0.5, 1e-9);   // RS vs itself
  // Algorithm 1 fully dominates RS at size 0 (all outcomes lower).
  EXPECT_NEAR(matrix[1][0], 1.0, 1e-9);
  // ... and fully loses at size 1.
  EXPECT_NEAR(matrix[1][1], 0.0, 1e-9);
}

TEST(Aggregate, MwuPValuesAreValidAndOrdered) {
  const CellMatrix p = mwu_p_vs_rs(synthetic_panel(), 0);
  EXPECT_NEAR(p[0][0], 1.0, 1e-9);  // identical samples
  EXPECT_GT(p[1][0], 0.0);
  EXPECT_LE(p[1][0], 1.0);
  // Fully separated samples should be the panel's most significant.
  EXPECT_LE(p[1][0], p[0][0]);
}

TEST(Aggregate, Fig3SeriesAveragesAcrossPanels) {
  StudyResults results;
  results.config.algorithms = {"rs", "x"};
  results.config.sample_sizes = {10, 20};
  PanelResults a = synthetic_panel();
  PanelResults b = synthetic_panel();
  b.optimum_us = 50.0;  // half the percent values
  results.panels = {a, b};
  const auto series = aggregate_percent_of_optimum(results);
  ASSERT_EQ(series.size(), 2u);
  // Panel a gives 50, panel b gives 25 -> mean 37.5 for algorithm 0, size 0.
  EXPECT_NEAR(series[0].mean[0], 37.5, 1e-9);
  EXPECT_LE(series[0].ci_lo[0], series[0].mean[0]);
  EXPECT_GE(series[0].ci_hi[0], series[0].mean[0]);
}

}  // namespace
}  // namespace repro::harness
