// CLI glue of the figure bench binaries: flag parsing into StudyConfig.

#include <gtest/gtest.h>

#include "harness/figures.hpp"

namespace repro::harness {
namespace {

TEST(FiguresCli, DefaultsMatchThePaperSetAtReducedScale) {
  StudyConfig config;
  std::string out_dir;
  const char* argv[] = {"fig2"};
  ASSERT_TRUE(parse_study_cli(1, argv, "fig2", "test", config, out_dir));
  EXPECT_DOUBLE_EQ(config.scale_divisor, 32.0);
  EXPECT_EQ(config.benchmarks,
            (std::vector<std::string>{"add", "harris", "mandelbrot"}));
  EXPECT_EQ(config.architectures,
            (std::vector<std::string>{"gtx980", "titanv", "rtxtitan"}));
  EXPECT_EQ(config.algorithms,
            (std::vector<std::string>{"rs", "rf", "ga", "bogp", "botpe"}));
  EXPECT_EQ(config.sample_sizes, (std::vector<std::size_t>{25, 50, 100, 200, 400}));
  EXPECT_TRUE(out_dir.empty());
}

TEST(FiguresCli, FullFlagRestoresPaperScale) {
  StudyConfig config;
  std::string out_dir;
  const char* argv[] = {"fig2", "--full"};
  ASSERT_TRUE(parse_study_cli(2, argv, "fig2", "test", config, out_dir));
  EXPECT_DOUBLE_EQ(config.scale_divisor, 1.0);
}

TEST(FiguresCli, FiltersAndSeedParse) {
  StudyConfig config;
  std::string out_dir;
  const char* argv[] = {"fig2",  "--bench", "harris",     "--arch", "titanv,gtx980",
                        "--algo", "rs,ga",  "--sizes",    "25,100", "--seed",
                        "7",      "--out",  "/tmp/somewhere"};
  ASSERT_TRUE(parse_study_cli(13, argv, "fig2", "test", config, out_dir));
  EXPECT_EQ(config.benchmarks, (std::vector<std::string>{"harris"}));
  EXPECT_EQ(config.architectures, (std::vector<std::string>{"titanv", "gtx980"}));
  EXPECT_EQ(config.algorithms, (std::vector<std::string>{"rs", "ga"}));
  EXPECT_EQ(config.sample_sizes, (std::vector<std::size_t>{25, 100}));
  EXPECT_EQ(config.master_seed, 7u);
  EXPECT_EQ(out_dir, "/tmp/somewhere");
}

TEST(FiguresCli, ResumeFlagSetsCheckpointPath) {
  StudyConfig config;
  std::string out_dir;
  const char* argv[] = {"fig2", "--resume", "/tmp/study.ckpt"};
  ASSERT_TRUE(parse_study_cli(3, argv, "fig2", "test", config, out_dir));
  EXPECT_EQ(config.checkpoint_path, "/tmp/study.ckpt");
  // Default: no checkpointing.
  const char* bare[] = {"fig2"};
  ASSERT_TRUE(parse_study_cli(1, bare, "fig2", "test", config, out_dir));
  EXPECT_TRUE(config.checkpoint_path.empty());
}

TEST(FiguresCli, HelpReturnsFalse) {
  StudyConfig config;
  std::string out_dir;
  const char* argv[] = {"fig2", "--help"};
  EXPECT_FALSE(parse_study_cli(2, argv, "fig2", "test", config, out_dir));
}

TEST(FiguresCli, UnknownFlagReturnsFalse) {
  StudyConfig config;
  std::string out_dir;
  const char* argv[] = {"fig2", "--bogus"};
  EXPECT_FALSE(parse_study_cli(2, argv, "fig2", "test", config, out_dir));
}

}  // namespace
}  // namespace repro::harness
