// Raw study-outcome persistence: full round trip and validation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "harness/results_io.hpp"

namespace repro::harness {
namespace {

StudyResults sample_results() {
  StudyResults results;
  results.config.benchmarks = {"add", "harris"};
  results.config.architectures = {"titanv"};
  results.config.algorithms = {"rs", "ga"};
  results.config.sample_sizes = {25, 50};
  for (const char* benchmark : {"add", "harris"}) {
    PanelResults panel;
    panel.benchmark = benchmark;
    panel.architecture = "titanv";
    panel.optimum_us = benchmark == std::string("add") ? 100.0 : 250.5;
    panel.cells.resize(2);
    for (auto& row : panel.cells) row.resize(2);
    panel.cells[0][0].final_times_us = {120.0, 130.0};
    panel.cells[0][1].final_times_us = {110.0};
    panel.cells[1][0].final_times_us = {105.0, std::nan("")};
    panel.cells[1][1].final_times_us = {101.0, 102.0, 103.0};
    results.panels.push_back(std::move(panel));
  }
  return results;
}

TEST(ResultsIo, RoundTripPreservesEverything) {
  const StudyResults original = sample_results();
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw.csv").string();
  ASSERT_TRUE(save_results_csv(original, path));

  const StudyResults loaded = load_results_csv(path);
  EXPECT_EQ(loaded.config.algorithms, original.config.algorithms);
  EXPECT_EQ(loaded.config.sample_sizes, original.config.sample_sizes);
  ASSERT_EQ(loaded.panels.size(), original.panels.size());
  for (std::size_t p = 0; p < original.panels.size(); ++p) {
    const PanelResults& a = original.panels[p];
    const PanelResults& b = loaded.panel(a.benchmark, a.architecture);
    EXPECT_DOUBLE_EQ(a.optimum_us, b.optimum_us);
    for (std::size_t algo = 0; algo < a.cells.size(); ++algo) {
      for (std::size_t s = 0; s < a.cells[algo].size(); ++s) {
        const auto& original_outcomes = a.cells[algo][s].final_times_us;
        const auto& loaded_outcomes = b.cells[algo][s].final_times_us;
        ASSERT_EQ(original_outcomes.size(), loaded_outcomes.size());
        for (std::size_t e = 0; e < original_outcomes.size(); ++e) {
          if (std::isnan(original_outcomes[e])) {
            EXPECT_TRUE(std::isnan(loaded_outcomes[e]));
          } else {
            EXPECT_DOUBLE_EQ(original_outcomes[e], loaded_outcomes[e]);
          }
        }
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ResultsIo, LoadValidatesFormat) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw_bad.csv").string();
  {
    std::ofstream out(path);
    out << "not,the,right,header\n";
  }
  EXPECT_THROW((void)load_results_csv(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\n"
        << "weird,add,titanv,rs,25,0,1.0\n";
  }
  EXPECT_THROW((void)load_results_csv(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_results_csv("/no_such_dir/x.csv"), std::runtime_error);
}

TEST(ResultsIo, SaveFailsOnBadPath) {
  EXPECT_FALSE(save_results_csv(sample_results(), "/no_such_dir_xyz/raw.csv"));
}

TEST(ResultsIo, LoadRejectsTruncatedRow) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw_trunc.csv").string();
  {
    std::ofstream out(path);
    out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\n"
        << "outcome,add,titanv,rs,25,0,120.0\n"
        << "outcome,add,titanv,rs,25\n";  // row cut mid-write
  }
  EXPECT_THROW((void)load_results_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ResultsIo, LoadRejectsMismatchedHeader) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw_hdr.csv").string();
  {
    // A panel header from some other CSV family (e.g. a figure table).
    std::ofstream out(path);
    out << "figure,benchmark,architecture,algorithm,sample_size,value\n"
        << "fig2,add,titanv,rs,25,90.0\n";
  }
  EXPECT_THROW((void)load_results_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ResultsIo, LoadParsesNanOutcomeRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw_nan.csv").string();
  {
    std::ofstream out(path);
    out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\n"
        << "optimum,add,titanv,,,,100.0\n"
        << "outcome,add,titanv,rs,25,0,nan\n"
        << "outcome,add,titanv,rs,25,1,120.5\n";
  }
  const StudyResults loaded = load_results_csv(path);
  const auto& outcomes = loaded.panel("add", "titanv").cells[0][0].final_times_us;
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(std::isnan(outcomes[0]));
  EXPECT_DOUBLE_EQ(outcomes[1], 120.5);
  std::remove(path.c_str());
}

TEST(ResultsIo, FailureTalliesRoundTripAndStayOutOfCleanFiles) {
  StudyResults results = sample_results();
  CellOutcomes& noisy = results.panels[0].cells[1][0];
  noisy.failed_experiments = 1;
  noisy.failures.transient = 4;
  noisy.failures.timeout = 2;
  noisy.failures.retries = 3;
  noisy.failures.retry_successes = 2;
  noisy.failures.backoff_us = 700.0;
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw_failures.csv").string();
  ASSERT_TRUE(save_results_csv(results, path));

  // Exactly the one faulted cell serializes failures rows.
  std::size_t failures_rows = 0;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("failures,", 0) == 0) ++failures_rows;
    }
  }
  EXPECT_EQ(failures_rows, 6u);  // experiments/transient/timeout/retries/successes/backoff

  const StudyResults loaded = load_results_csv(path);
  const CellOutcomes& cell = loaded.panel("add", "titanv").cells[1][0];
  EXPECT_EQ(cell.failed_experiments, 1u);
  EXPECT_EQ(cell.failures.transient, 4u);
  EXPECT_EQ(cell.failures.timeout, 2u);
  EXPECT_EQ(cell.failures.retries, 3u);
  EXPECT_EQ(cell.failures.retry_successes, 2u);
  EXPECT_DOUBLE_EQ(cell.failures.backoff_us, 700.0);
  // Clean cells stay clean.
  EXPECT_FALSE(loaded.panel("harris", "titanv").cells[0][0].failures.any());
  std::remove(path.c_str());
}

TEST(ResultsIo, LoadRejectsBadFailuresRow) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw_badfail.csv").string();
  {
    std::ofstream out(path);
    out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\n"
        << "failures,add,titanv,rs,25,not_a_counter,3\n";
  }
  EXPECT_THROW((void)load_results_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

CellOutcomes sample_cell() {
  CellOutcomes cell;
  cell.final_times_us = {110.25, std::nan(""), 130.0625};
  cell.failed_experiments = 1;
  cell.failures.ok = 7;
  cell.failures.transient = 2;
  cell.failures.retries = 2;
  cell.failures.retry_successes = 1;
  cell.failures.backoff_us = 300.0;
  return cell;
}

TEST(Checkpoint, BeginAppendLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt.csv").string();
  std::remove(path.c_str());
  ASSERT_TRUE(checkpoint_begin(path, 1234567890123456789ull));
  ASSERT_TRUE(checkpoint_append_panel(path, "add", "titanv", 100.125));
  ASSERT_TRUE(checkpoint_append_cell(path, "add", "titanv", "rs", 25, sample_cell()));

  const StudyCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.master_seed, 1234567890123456789ull);
  ASSERT_EQ(loaded.panel_optima.count(StudyCheckpoint::panel_key("add", "titanv")), 1u);
  EXPECT_DOUBLE_EQ(loaded.panel_optima.at("add/titanv"), 100.125);
  const std::string key = StudyCheckpoint::cell_key("add", "titanv", "rs", 25);
  ASSERT_EQ(loaded.cells.count(key), 1u);
  const CellOutcomes& cell = loaded.cells.at(key);
  ASSERT_EQ(cell.final_times_us.size(), 3u);
  EXPECT_DOUBLE_EQ(cell.final_times_us[0], 110.25);
  EXPECT_TRUE(std::isnan(cell.final_times_us[1]));
  EXPECT_DOUBLE_EQ(cell.final_times_us[2], 130.0625);
  EXPECT_EQ(cell.failed_experiments, 1u);
  EXPECT_EQ(cell.failures.ok, 7u);
  EXPECT_EQ(cell.failures.transient, 2u);
  EXPECT_EQ(cell.failures.retry_successes, 1u);
  EXPECT_DOUBLE_EQ(cell.failures.backoff_us, 300.0);
  std::remove(path.c_str());
}

TEST(Checkpoint, BeginIsIdempotent) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt_idem.csv").string();
  std::remove(path.c_str());
  ASSERT_TRUE(checkpoint_begin(path, 42));
  ASSERT_TRUE(checkpoint_append_panel(path, "add", "titanv", 100.0));
  // Second begin must not rewrite the header or clobber records.
  ASSERT_TRUE(checkpoint_begin(path, 42));
  const StudyCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.master_seed, 42u);
  EXPECT_EQ(loaded.panel_optima.size(), 1u);
  std::remove(path.c_str());
}

TEST(Checkpoint, TornTrailingRecordIsIgnored) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt_torn.csv").string();
  std::remove(path.c_str());
  ASSERT_TRUE(checkpoint_begin(path, 9));
  ASSERT_TRUE(checkpoint_append_cell(path, "add", "titanv", "rs", 25, sample_cell()));
  ASSERT_TRUE(checkpoint_append_cell(path, "add", "titanv", "ga", 25, sample_cell()));
  {
    // Simulate a crash mid-append: the trailing record lies about its count.
    std::ofstream out(path, std::ios::app);
    out << "cell,add,titanv,bogp,25,0,5,0,0,0,0,0,0,0,4,110.0,120.0\n";
  }
  const StudyCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.cells.size(), 2u);
  EXPECT_EQ(loaded.cells.count(StudyCheckpoint::cell_key("add", "titanv", "bogp", 25)), 0u);
  std::remove(path.c_str());
}

TEST(Checkpoint, MidFileCorruptionThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt_corrupt.csv").string();
  std::remove(path.c_str());
  ASSERT_TRUE(checkpoint_begin(path, 9));
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage,record\n";
  }
  ASSERT_TRUE(checkpoint_append_cell(path, "add", "titanv", "rs", 25, sample_cell()));
  // The bad record is NOT trailing, so this is real corruption, not a crash.
  EXPECT_THROW((void)load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ResultsIo, LoadAcceptsCrlfAndTrailingWhitespace) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw_crlf.csv").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\r\n"
        << "optimum,add,titanv,,,,100.0\r\n"
        << "outcome,add,titanv,rs,25,0,120.5 \r\n"
        << "outcome,add,titanv,rs,25,1,nan\t\r\n";
  }
  const StudyResults loaded = load_results_csv(path);
  const auto& outcomes = loaded.panel("add", "titanv").cells[0][0].final_times_us;
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_DOUBLE_EQ(outcomes[0], 120.5);
  EXPECT_TRUE(std::isnan(outcomes[1]));
  std::remove(path.c_str());
}

TEST(Checkpoint, UnterminatedFinalLineIsDroppedEvenWhenParseable) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt_noterm.csv").string();
  std::remove(path.c_str());
  ASSERT_TRUE(checkpoint_begin(path, 9));
  ASSERT_TRUE(checkpoint_append_cell(path, "add", "titanv", "rs", 25, sample_cell()));
  {
    // A torn write whose prefix happens to be a complete, valid record: a
    // 2-outcome cell torn out of what would have been a longer one. Only the
    // missing '\n' betrays the tear.
    std::ofstream out(path, std::ios::app);
    out << "cell,add,titanv,ga,25,0,5,0,0,0,0,0,0,0,2,110.0,120.0";
  }
  const StudyCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.cells.size(), 1u);
  EXPECT_EQ(loaded.cells.count(StudyCheckpoint::cell_key("add", "titanv", "ga", 25)), 0u);
  std::remove(path.c_str());
}

TEST(Checkpoint, BeginTruncatesTornTailSoResumeAppendsCleanly) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt_repair.csv").string();
  std::remove(path.c_str());
  ASSERT_TRUE(checkpoint_begin(path, 9));
  ASSERT_TRUE(checkpoint_append_cell(path, "add", "titanv", "rs", 25, sample_cell()));
  {
    std::ofstream out(path, std::ios::app);
    out << "cell,add,titanv,ga,25,0,5";  // crash mid-append, no '\n'
  }
  // Resume: begin repairs the tail, so the next append starts on a fresh
  // line instead of concatenating onto the torn record...
  ASSERT_TRUE(checkpoint_begin(path, 9));
  ASSERT_TRUE(checkpoint_append_cell(path, "add", "titanv", "bogp", 25, sample_cell()));
  // ...and a SECOND resume still loads (this is the regression: without the
  // repair the concatenated line corrupts the middle of the file).
  const StudyCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.master_seed, 9u);
  EXPECT_EQ(loaded.cells.size(), 2u);
  EXPECT_EQ(loaded.cells.count(StudyCheckpoint::cell_key("add", "titanv", "rs", 25)), 1u);
  EXPECT_EQ(loaded.cells.count(StudyCheckpoint::cell_key("add", "titanv", "bogp", 25)), 1u);
  EXPECT_EQ(loaded.cells.count(StudyCheckpoint::cell_key("add", "titanv", "ga", 25)), 0u);
  std::remove(path.c_str());
}

TEST(Checkpoint, TornHeaderLoadsAsEmptyAndBeginRepairs) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt_tornhdr.csv").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "checkpoint,v1,12";  // header itself torn, no '\n'
  }
  const StudyCheckpoint loaded = load_checkpoint(path);
  EXPECT_TRUE(loaded.empty());
  // begin truncates the torn header and writes a fresh one.
  ASSERT_TRUE(checkpoint_begin(path, 777));
  const StudyCheckpoint repaired = load_checkpoint(path);
  EXPECT_EQ(repaired.master_seed, 777u);
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadAcceptsCrlfLineEndings) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt_crlf.csv").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "checkpoint,v1,42\r\n"
        << "panel,add,titanv,100.5\r\n"
        << "cell,add,titanv,rs,25,0,2,0,0,0,0,0,0,0,2,110.0,120.0\r\n";
  }
  const StudyCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.master_seed, 42u);
  EXPECT_DOUBLE_EQ(loaded.panel_optima.at("add/titanv"), 100.5);
  ASSERT_EQ(loaded.cells.count(StudyCheckpoint::cell_key("add", "titanv", "rs", 25)), 1u);
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadValidatesHeader) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_ckpt_hdr.csv").string();
  {
    std::ofstream out(path);
    out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\n";
  }
  EXPECT_THROW((void)load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_checkpoint("/no_such_dir/ckpt.csv"), std::runtime_error);
}

}  // namespace
}  // namespace repro::harness
