// Raw study-outcome persistence: full round trip and validation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "harness/results_io.hpp"

namespace repro::harness {
namespace {

StudyResults sample_results() {
  StudyResults results;
  results.config.benchmarks = {"add", "harris"};
  results.config.architectures = {"titanv"};
  results.config.algorithms = {"rs", "ga"};
  results.config.sample_sizes = {25, 50};
  for (const char* benchmark : {"add", "harris"}) {
    PanelResults panel;
    panel.benchmark = benchmark;
    panel.architecture = "titanv";
    panel.optimum_us = benchmark == std::string("add") ? 100.0 : 250.5;
    panel.cells.resize(2);
    for (auto& row : panel.cells) row.resize(2);
    panel.cells[0][0].final_times_us = {120.0, 130.0};
    panel.cells[0][1].final_times_us = {110.0};
    panel.cells[1][0].final_times_us = {105.0, std::nan("")};
    panel.cells[1][1].final_times_us = {101.0, 102.0, 103.0};
    results.panels.push_back(std::move(panel));
  }
  return results;
}

TEST(ResultsIo, RoundTripPreservesEverything) {
  const StudyResults original = sample_results();
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw.csv").string();
  ASSERT_TRUE(save_results_csv(original, path));

  const StudyResults loaded = load_results_csv(path);
  EXPECT_EQ(loaded.config.algorithms, original.config.algorithms);
  EXPECT_EQ(loaded.config.sample_sizes, original.config.sample_sizes);
  ASSERT_EQ(loaded.panels.size(), original.panels.size());
  for (std::size_t p = 0; p < original.panels.size(); ++p) {
    const PanelResults& a = original.panels[p];
    const PanelResults& b = loaded.panel(a.benchmark, a.architecture);
    EXPECT_DOUBLE_EQ(a.optimum_us, b.optimum_us);
    for (std::size_t algo = 0; algo < a.cells.size(); ++algo) {
      for (std::size_t s = 0; s < a.cells[algo].size(); ++s) {
        const auto& original_outcomes = a.cells[algo][s].final_times_us;
        const auto& loaded_outcomes = b.cells[algo][s].final_times_us;
        ASSERT_EQ(original_outcomes.size(), loaded_outcomes.size());
        for (std::size_t e = 0; e < original_outcomes.size(); ++e) {
          if (std::isnan(original_outcomes[e])) {
            EXPECT_TRUE(std::isnan(loaded_outcomes[e]));
          } else {
            EXPECT_DOUBLE_EQ(original_outcomes[e], loaded_outcomes[e]);
          }
        }
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ResultsIo, LoadValidatesFormat) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_raw_bad.csv").string();
  {
    std::ofstream out(path);
    out << "not,the,right,header\n";
  }
  EXPECT_THROW((void)load_results_csv(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "kind,benchmark,architecture,algorithm,sample_size,experiment,value\n"
        << "weird,add,titanv,rs,25,0,1.0\n";
  }
  EXPECT_THROW((void)load_results_csv(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_results_csv("/no_such_dir/x.csv"), std::runtime_error);
}

TEST(ResultsIo, SaveFailsOnBadPath) {
  EXPECT_FALSE(save_results_csv(sample_results(), "/no_such_dir_xyz/raw.csv"));
}

}  // namespace
}  // namespace repro::harness
