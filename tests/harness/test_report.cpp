// Figure renderers: output structure and CSV table shape (content values
// are covered by the aggregate tests; here we check the wiring).

#include <gtest/gtest.h>

#include "harness/report.hpp"

namespace repro::harness {
namespace {

StudyResults synthetic_results() {
  StudyResults results;
  results.config.algorithms = {"rs", "ga"};
  results.config.sample_sizes = {25, 50};
  PanelResults panel;
  panel.benchmark = "add";
  panel.architecture = "titanv";
  panel.optimum_us = 100.0;
  panel.cells.resize(2);
  for (auto& row : panel.cells) row.resize(2);
  panel.cells[0][0].final_times_us = {200.0, 210.0, 190.0};
  panel.cells[0][1].final_times_us = {150.0, 160.0, 140.0};
  panel.cells[1][0].final_times_us = {180.0, 170.0, 190.0};
  panel.cells[1][1].final_times_us = {110.0, 105.0, 115.0};
  results.panels.push_back(panel);
  return results;
}

TEST(Report, RsIndexFoundOrThrows) {
  StudyResults results = synthetic_results();
  EXPECT_EQ(rs_index_of(results), 0u);
  results.config.algorithms = {"ga", "bogp"};
  EXPECT_THROW((void)rs_index_of(results), std::runtime_error);
}

TEST(Report, Fig2ContainsPanelsAlgorithmsAndCsvRows) {
  const FigureOutput output = make_fig2(synthetic_results());
  EXPECT_NE(output.text.find("fig2"), std::string::npos);
  EXPECT_NE(output.text.find("add / titanv"), std::string::npos);
  EXPECT_NE(output.text.find("RS"), std::string::npos);
  EXPECT_NE(output.text.find("GA"), std::string::npos);
  // 1 panel x 2 algorithms x 2 sizes = 4 rows.
  EXPECT_EQ(output.table.num_rows(), 4u);
  EXPECT_EQ(output.table.columns().back(), "percent_of_optimum");
}

TEST(Report, Fig3HasSeriesChartAndCi) {
  const FigureOutput output = make_fig3(synthetic_results());
  EXPECT_NE(output.text.find("fig3"), std::string::npos);
  EXPECT_NE(output.text.find("legend"), std::string::npos);
  EXPECT_EQ(output.table.num_rows(), 4u);  // 2 algorithms x 2 sizes
  EXPECT_EQ(output.table.columns().back(), "ci_hi");
}

TEST(Report, Fig4aSpeedups) {
  const FigureOutput output = make_fig4a(synthetic_results());
  EXPECT_NE(output.text.find("median_speedup_over_rs"), std::string::npos);
  EXPECT_EQ(output.table.num_rows(), 4u);
}

TEST(Report, Fig4bClesWithSignificanceReport) {
  const FigureOutput output = make_fig4b(synthetic_results());
  EXPECT_NE(output.text.find("cles_over_rs"), std::string::npos);
  EXPECT_NE(output.text.find("Mann-Whitney"), std::string::npos);
}

TEST(Report, FailureReportIsEmptyForCleanStudy) {
  const FigureOutput output = make_failure_report(synthetic_results());
  EXPECT_NE(output.text.find("no failures recorded"), std::string::npos);
  EXPECT_EQ(output.table.num_rows(), 0u);
}

TEST(Report, FailureReportListsOnlyFaultedCells) {
  StudyResults results = synthetic_results();
  CellOutcomes& faulted = results.panels[0].cells[1][0];
  faulted.failed_experiments = 2;
  faulted.failures.transient = 5;
  faulted.failures.timeout = 1;
  faulted.failures.retries = 4;
  faulted.failures.retry_successes = 3;
  faulted.failures.backoff_us = 450.0;

  const FigureOutput output = make_failure_report(results);
  EXPECT_EQ(output.table.num_rows(), 1u);  // only the faulted cell
  EXPECT_NE(output.text.find("GA"), std::string::npos);
  EXPECT_NE(output.text.find("total: 2 failed experiments"), std::string::npos);
  EXPECT_NE(output.text.find("5 transient"), std::string::npos);
  EXPECT_NE(output.text.find("4 retries (3 recovered)"), std::string::npos);
}

}  // namespace
}  // namespace repro::harness
