// MultiFidelityContext: level snapping, proxy correlation, objective wiring.

#include <gtest/gtest.h>

#include <cmath>

#include "harness/multifidelity_context.hpp"
#include "stats/paired.hpp"

namespace repro::harness {
namespace {

const MultiFidelityContext& context() {
  static const MultiFidelityContext ctx("add", simgpu::titan_v(),
                                        {1.0 / 9.0, 1.0 / 3.0}, 42);
  return ctx;
}

TEST(MultiFidelity, SnapsToNearestLevel) {
  EXPECT_NEAR(context().snap(0.1), 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(context().snap(0.4), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(context().snap(0.9), 1.0, 1e-12);
  EXPECT_NEAR(context().snap(1.0), 1.0, 1e-12);
}

TEST(MultiFidelity, LowerFidelityIsCheaper) {
  const tuner::Configuration config = {1, 1, 1, 8, 4, 1};
  const double full = context().true_time_us(config, 1.0);
  const double third = context().true_time_us(config, 1.0 / 3.0);
  const double ninth = context().true_time_us(config, 1.0 / 9.0);
  ASSERT_FALSE(std::isnan(full));
  EXPECT_LT(third, full);
  EXPECT_LT(ninth, third);
}

TEST(MultiFidelity, ProxyRankCorrelatesWithFullProblem) {
  // A good config and a bad config should keep their ordering at all
  // fidelity levels (the property HyperBand exploits).
  const tuner::Configuration good = {1, 1, 1, 8, 4, 1};
  const tuner::Configuration bad = {16, 16, 1, 1, 1, 1};
  for (double fidelity : {1.0 / 9.0, 1.0 / 3.0, 1.0}) {
    EXPECT_LT(context().true_time_us(good, fidelity),
              context().true_time_us(bad, fidelity))
        << "fidelity " << fidelity;
  }
}

TEST(MultiFidelity, InvalidConfigsAreNaNAtEveryLevel) {
  const tuner::Configuration invalid = {1, 1, 1, 8, 8, 8};
  for (double fidelity : {1.0 / 9.0, 1.0}) {
    EXPECT_TRUE(std::isnan(context().true_time_us(invalid, fidelity)));
  }
}

TEST(MultiFidelity, ObjectiveAddsNoiseAndReportsValidity) {
  repro::Rng rng(3);
  const tuner::MultiFidelityObjective objective = context().make_objective(rng);
  const tuner::Evaluation good = objective({1, 1, 1, 8, 4, 1}, 1.0 / 3.0);
  ASSERT_TRUE(good.valid);
  const double truth = context().true_time_us({1, 1, 1, 8, 4, 1}, 1.0 / 3.0);
  EXPECT_NEAR(good.value, truth, truth * 0.3);
  EXPECT_FALSE(objective({1, 1, 1, 8, 8, 8}, 1.0).valid);
}

TEST(MultiFidelity, ProxySpearmanCorrelationIsStrong) {
  // The HyperBand premise, quantified: over random executable configs the
  // 1/9-size proxy must rank-correlate strongly with the full problem.
  repro::Rng rng(9);
  std::vector<double> full_times, proxy_times;
  for (int i = 0; i < 300; ++i) {
    const tuner::Configuration config = context().full().space().sample_executable(rng);
    const double full_time = context().true_time_us(config, 1.0);
    const double proxy_time = context().true_time_us(config, 1.0 / 9.0);
    if (std::isnan(full_time) || std::isnan(proxy_time)) continue;
    full_times.push_back(full_time);
    proxy_times.push_back(proxy_time);
  }
  ASSERT_GT(full_times.size(), 250u);
  EXPECT_GT(stats::spearman_rho(full_times, proxy_times), 0.7);
}

TEST(MultiFidelity, FullContextIsTheRealBenchmark) {
  EXPECT_EQ(context().full().benchmark_name(), "add");
  EXPECT_GT(context().full().optimum_us(), 0.0);
}

}  // namespace
}  // namespace repro::harness
