// Regenerates the aggregate mean-of-medians line plot (paper Fig. 3).
// Run with --full for paper-scale experiment counts; see --help.

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  return repro::harness::run_figure_main(argc, argv, repro::harness::Figure::kFig3);
}
