// Ablation: cross-tenant warm start from the transfer store.
//
// The paper's protocol starts every search cold. With a persistent results
// store a daemon can seed the model-based algorithms (BO GP, BO TPE, RF)
// from a tenant's prior history instead. This bench measures what that buys:
// cold vs warm median percent-of-optimum at the paper's sample sizes
// S ∈ {25, 50, 100, 200, 400}.
//
// The prior is built through a real ResultsStore, exactly the daemon's path:
// a donor random-search campaign on the same (benchmark, arch, space) tenant
// appends its observations, and each warm run consumes a store query — so
// dedup, insertion order and the query row cap all behave as in production.
//
//   ./ablation_warmstart [--bench mandelbrot] [--arch titanv] [--repeats 11]
//                        [--donor-samples 400] [--out DIR]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/fmt.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "stats/descriptive.hpp"
#include "store/fingerprint.hpp"
#include "store/results_store.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("ablation_warmstart", "cold vs warm-started search sweep");
  cli.add_option("bench", "benchmark", "mandelbrot");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("repeats", "experiments per cell", "11");
  cli.add_option("donor-samples", "random donor observations in the store", "400");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  harness::BenchmarkContext context(imagecl::benchmark_by_name(cli.get("bench")),
                                    simgpu::arch_by_name(cli.get("arch")), 0, 424242);
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  const auto donor_samples = static_cast<std::size_t>(cli.get_int("donor-samples"));
  const std::vector<std::string> algorithms = {"bogp", "botpe", "rf"};
  const std::vector<std::size_t> sizes = {25, 50, 100, 200, 400};

  // Donor campaign: one tenant's history, appended through the store so the
  // warm prior reflects dedup and insertion order, not a raw sample list.
  store::ResultsStore donor_store(store::StoreOptions{});
  donor_store.load();
  const store::StoreKey tenant{cli.get("bench"), cli.get("arch"),
                               store::space_fingerprint(context.space().params(),
                                                        "wg256")};
  {
    Rng donor_rng(seed_combine(9001, 0));
    const tuner::Objective donor_objective = context.make_objective(donor_rng);
    for (std::size_t i = 0; i < donor_samples; ++i) {
      const tuner::Configuration config =
          context.space().sample_executable(donor_rng);
      const tuner::Evaluation eval = donor_objective(config);
      (void)donor_store.append(tenant, config, eval.value, eval.valid);
    }
  }
  const std::vector<store::StoreRecord> rows = donor_store.query(tenant, 512);
  auto snapshot = std::make_shared<tuner::PriorHistory>();
  snapshot->reserve(rows.size());
  for (const store::StoreRecord& row : rows) {
    snapshot->push_back(tuner::PriorObservation{row.config, row.value, row.valid});
  }
  const tuner::PriorHandle prior = snapshot;

  std::printf("warm-start ablation: %s on %s (optimum %.1f us)\n"
              "store prior: %zu rows from %zu donor samples (%zu duplicates)\n\n",
              cli.get("bench").c_str(), cli.get("arch").c_str(),
              context.optimum_us(), rows.size(), donor_samples,
              static_cast<std::size_t>(donor_store.stats().duplicates));

  Table table({"algorithm", "budget", "cold_median_pct", "warm_median_pct",
               "delta_pp"});
  table.set_precision(2);
  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> delta(algorithms.size(),
                                         std::vector<double>(sizes.size()));
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    row_labels.push_back(algorithms[a] + " warm-cold");
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      std::vector<double> cold_pct;
      std::vector<double> warm_pct;
      for (std::size_t r = 0; r < repeats; ++r) {
        // Same seed for the cold and warm arm of a repeat: the prior is the
        // only difference between the two trajectories.
        for (const bool warm : {false, true}) {
          Rng rng(seed_combine(7000 + a * 100 + s, r));
          tuner::Evaluator evaluator(context.space(), context.make_objective(rng),
                                     sizes[s]);
          const std::unique_ptr<tuner::SearchAlgorithm> algorithm =
              warm ? tuner::make_algorithm(algorithms[a], prior)
                   : tuner::make_algorithm(algorithms[a]);
          const tuner::TuneResult result =
              algorithm->minimize(context.space(), evaluator, rng);
          if (!result.found_valid) continue;
          const double final_us =
              context.measure_repeated_us(result.best_config, rng, 10);
          (warm ? warm_pct : cold_pct)
              .push_back(context.optimum_us() / final_us * 100.0);
        }
      }
      const double cold = stats::median(cold_pct);
      const double hot = stats::median(warm_pct);
      delta[a][s] = hot - cold;
      table.add_row({algorithms[a], static_cast<long long>(sizes[s]), cold, hot,
                     delta[a][s]});
    }
  }
  std::vector<std::string> size_labels;
  for (std::size_t size : sizes) size_labels.push_back(std::to_string(size));
  std::fputs(render_heatmap("warm − cold median %-of-optimum (pp)", row_labels,
                            size_labels, delta, 1)
                 .c_str(),
             stdout);
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/ablation_warmstart.csv")) {
    log_error("failed to write {}/ablation_warmstart.csv", out_dir);
    return 1;
  }
  return 0;
}
