// Regenerates the median speedup over Random Search heatmaps (paper Fig. 4a).
// Run with --full for paper-scale experiment counts; see --help.

#include "harness/figures.hpp"

int main(int argc, char** argv) {
  return repro::harness::run_figure_main(argc, argv, repro::harness::Figure::kFig4a);
}
