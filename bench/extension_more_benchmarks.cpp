// Extension: the "wider range of benchmarks" the paper lists as current
// work (Section VIII-A). Runs the Fig. 2 protocol on the four extended-
// suite kernels (convolution, sobel, transpose, and the two-pass separable
// convolution pipeline) and then applies a
// Friedman test across all panels to ask the paper's implicit question
// formally: do the algorithms rank consistently across workloads?
//
//   ./extension_more_benchmarks [--arch titanv] [--scale 32]

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/report.hpp"
#include "harness/study.hpp"
#include "stats/nonparametric.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("extension_more_benchmarks",
                "Fig. 2 protocol on convolution/sobel/transpose + Friedman test");
  cli.add_option("arch", "comma list of architectures", "titanv");
  cli.add_option("scale", "experiment-count divisor", "32");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  harness::StudyConfig config;
  config.benchmarks = {"convolution", "sobel", "transpose", "separable"};
  config.architectures.clear();
  {
    std::string token;
    for (char c : cli.get("arch") + ",") {
      if (c == ',') {
        if (!token.empty()) config.architectures.push_back(token);
        token.clear();
      } else {
        token += c;
      }
    }
  }
  config.scale_divisor = cli.get_double("scale");
  const harness::StudyResults results = harness::run_study(config);

  const harness::FigureOutput fig = harness::make_fig2(results);
  std::fputs(fig.text.c_str(), stdout);

  // Friedman across panels: blocks = (panel, size) cells, treatments =
  // algorithms, values = percent of optimum (higher is better, so we rank
  // the negated values to keep "rank 1 = best").
  std::vector<std::vector<double>> blocks;
  for (const harness::PanelResults& panel : results.panels) {
    const harness::CellMatrix matrix = harness::percent_of_optimum(panel);
    for (std::size_t s = 0; s < results.config.sample_sizes.size(); ++s) {
      std::vector<double> block;
      bool complete = true;
      for (std::size_t a = 0; a < results.config.algorithms.size(); ++a) {
        if (std::isnan(matrix[a][s])) complete = false;
        block.push_back(-matrix[a][s]);
      }
      if (complete) blocks.push_back(std::move(block));
    }
  }
  const stats::FriedmanResult friedman = stats::friedman(blocks);
  std::printf("Friedman test across %zu (panel, size) blocks: chi2 = %.2f, "
              "p = %.4g (dof %u)\n",
              blocks.size(), friedman.chi2, friedman.p_value, friedman.dof);
  std::printf("mean ranks (1 = best): ");
  for (std::size_t a = 0; a < results.config.algorithms.size(); ++a) {
    std::printf("%s %.2f  ", tuner::display_name(results.config.algorithms[a]).c_str(),
                friedman.mean_ranks[a]);
  }
  std::printf("\n=> %s at alpha = 0.01: the algorithms do%s rank consistently "
              "across the extended workloads.\n",
              friedman.p_value < 0.01 ? "significant" : "not significant",
              friedman.p_value < 0.01 ? "" : " not provably");

  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !fig.table.write_csv_file(out_dir + "/extension_more_benchmarks.csv")) {
    log_error("failed to write {}/extension_more_benchmarks.csv", out_dir);
    return 1;
  }
  return 0;
}
