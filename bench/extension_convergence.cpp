// Extension: convergence trajectories. The paper reports only the final
// configuration per budget; this bench records best-so-far-vs-samples
// curves (mean over repeats) for each algorithm on one panel, the view
// that explains *when* each algorithm earns its budget. Implemented purely
// by wrapping the objective — cached duplicate proposals never reach the
// objective, so the wrapper sees exactly the budget-consuming evaluations.
//
//   ./extension_convergence [--bench harris] [--arch titanv] [--budget 200]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("extension_convergence", "best-so-far trajectories per algorithm");
  cli.add_option("bench", "benchmark", "harris");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("budget", "sample budget", "200");
  cli.add_option("repeats", "runs averaged per algorithm", "9");
  cli.add_option("algo", "comma list of algorithms", "rs,rf,ga,bogp,botpe");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  harness::BenchmarkContext context(imagecl::benchmark_by_name(cli.get("bench")),
                                    simgpu::arch_by_name(cli.get("arch")), 0, 60607);
  const auto budget = static_cast<std::size_t>(cli.get_int("budget"));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));

  std::vector<std::string> algorithms;
  {
    std::string token;
    for (char c : cli.get("algo") + ",") {
      if (c == ',') {
        if (!token.empty()) algorithms.push_back(token);
        token.clear();
      } else {
        token += c;
      }
    }
  }

  std::printf("convergence on %s/%s, budget %zu, %zu runs per algorithm "
              "(optimum %.1f us)\n\n",
              cli.get("bench").c_str(), cli.get("arch").c_str(), budget, repeats,
              context.optimum_us());

  // mean_curves[a][i] = mean over runs of (best true runtime after i+1
  // budget-consuming evaluations), as % of optimum.
  std::vector<std::vector<double>> mean_curves(
      algorithms.size(), std::vector<double>(budget, 0.0));
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    for (std::size_t r = 0; r < repeats; ++r) {
      Rng rng(seed_combine(seed_from_string(algorithms[a]), r));
      Rng measure_rng = rng.split();
      std::vector<double> best_so_far;
      best_so_far.reserve(budget);
      double best = std::numeric_limits<double>::infinity();
      tuner::Objective objective = [&](const tuner::Configuration& config) {
        tuner::Evaluation eval;
        eval.value = context.measure_us(config, measure_rng);
        eval.valid = !std::isnan(eval.value);
        // Track best by the *true* time of the proposed config so the curve
        // reflects search quality, not measurement luck.
        const double truth = context.true_time_us(config);
        if (!std::isnan(truth)) best = std::min(best, truth);
        best_so_far.push_back(best);
        return eval;
      };
      tuner::Evaluator evaluator(context.space(), objective, budget);
      const auto algorithm = tuner::make_algorithm(algorithms[a]);
      (void)algorithm->minimize(context.space(), evaluator, rng);
      best_so_far.resize(budget, best_so_far.empty() ? 0.0 : best_so_far.back());
      for (std::size_t i = 0; i < budget; ++i) {
        const double percent = std::isfinite(best_so_far[i])
                                   ? context.optimum_us() / best_so_far[i] * 100.0
                                   : 0.0;
        mean_curves[a][i] += percent / static_cast<double>(repeats);
      }
    }
  }

  // Downsample to checkpoints for the chart and CSV.
  const std::vector<std::size_t> checkpoints = [&] {
    std::vector<std::size_t> points;
    for (std::size_t p = 10; p <= budget; p += std::max<std::size_t>(budget / 8, 1)) {
      points.push_back(std::min(p, budget));
    }
    if (points.empty() || points.back() != budget) points.push_back(budget);
    return points;
  }();

  Table table({"algorithm", "samples", "mean_best_pct_of_optimum"});
  table.set_precision(2);
  std::vector<std::string> x_labels;
  std::vector<std::vector<double>> series(algorithms.size());
  std::vector<std::string> names;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    names.push_back(tuner::display_name(algorithms[a]));
    for (std::size_t p : checkpoints) {
      const double value = mean_curves[a][p - 1];
      series[a].push_back(value);
      table.add_row({names[a], static_cast<long long>(p), value});
    }
  }
  for (std::size_t p : checkpoints) x_labels.push_back(std::to_string(p));

  std::fputs(render_line_chart("mean best-so-far (% of optimum) vs samples",
                               x_labels, names, series)
                 .c_str(),
             stdout);
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/extension_convergence.csv")) {
    log_error("failed to write {}/extension_convergence.csv", out_dir);
    return 1;
  }
  return 0;
}
