// Extension: HyperBand and BOHB vs the paper's algorithms (Section VIII-A
// names "HyperBand (HB) and Bayesian Optimization HyperBand (BOHB)" as the
// comparison of special interest for future work).
//
// Multi-fidelity methods spend their budget in fractional units: a
// quarter-size proxy problem costs a quarter of a full evaluation. We
// compare HB and BOHB against RS and BO TPE at *equal total cost* (budget
// units = full-fidelity evaluations) and judge every method by the
// noiseless quality of its final full-fidelity configuration.
//
//   ./extension_hyperband [--bench harris] [--arch titanv] [--repeats 11]

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/fmt.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/multifidelity_context.hpp"
#include "stats/descriptive.hpp"
#include "tuner/multifidelity/hyperband.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("extension_hyperband", "HyperBand/BOHB vs the paper's algorithms");
  cli.add_option("bench", "benchmark", "harris");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("repeats", "experiments per cell", "11");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  const harness::MultiFidelityContext context(
      cli.get("bench"), simgpu::arch_by_name(cli.get("arch")),
      {1.0 / 27.0, 1.0 / 9.0, 1.0 / 3.0}, 20220406);
  const harness::BenchmarkContext& full = context.full();
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  const std::vector<double> budgets = {25, 50, 100, 200};

  std::printf("HyperBand extension: %s on %s (optimum %.1f us)\n"
              "fidelity levels: 1/27, 1/9, 1/3, 1 (problem-size proxies)\n\n",
              cli.get("bench").c_str(), cli.get("arch").c_str(), full.optimum_us());

  Table table({"method", "budget_units", "median_pct_of_optimum",
               "mean_evals_per_run"});
  table.set_precision(2);
  std::vector<std::vector<double>> heat;
  std::vector<std::string> row_labels;

  const std::vector<std::string> methods = {"RS", "BO TPE", "HB", "BOHB"};
  for (const std::string& method : methods) {
    row_labels.push_back(method);
    std::vector<double> row;
    for (double budget : budgets) {
      std::vector<double> percents;
      double eval_total = 0.0;
      for (std::size_t r = 0; r < repeats; ++r) {
        Rng rng(seed_combine(seed_from_string(method),
                             static_cast<std::uint64_t>(budget) * 1000 + r));
        tuner::Configuration best_config;
        if (method == "HB" || method == "BOHB") {
          tuner::FidelityEvaluator evaluator(full.space(),
                                             context.make_objective(rng), budget);
          tuner::FidelityTuneResult result;
          if (method == "HB") {
            tuner::HyperBand hb;
            result = hb.minimize(full.space(), evaluator, rng);
          } else {
            tuner::Bohb bohb;
            result = bohb.minimize(full.space(), evaluator, rng);
          }
          if (!result.found_valid) continue;
          best_config = result.best_config;
          eval_total += static_cast<double>(result.evaluations);
        } else {
          tuner::Evaluator evaluator(full.space(), full.make_objective(rng),
                                     static_cast<std::size_t>(budget));
          const auto algorithm = tuner::make_algorithm(method);
          const tuner::TuneResult result =
              algorithm->minimize(full.space(), evaluator, rng);
          if (!result.found_valid) continue;
          best_config = result.best_config;
          eval_total += static_cast<double>(result.evaluations_used);
        }
        percents.push_back(full.optimum_us() / full.true_time_us(best_config) *
                           100.0);
      }
      const double median = stats::median(percents);
      row.push_back(median);
      table.add_row({method, budget, median,
                     eval_total / static_cast<double>(repeats)});
    }
    heat.push_back(std::move(row));
  }

  std::vector<std::string> col_labels;
  for (double budget : budgets) col_labels.push_back(fmt_double(budget, 0));
  std::fputs(render_heatmap("median % of optimum at equal total cost", row_labels,
                            col_labels, heat, 1)
                 .c_str(),
             stdout);
  std::printf("\nHB/BOHB trade full-fidelity measurements for many cheap proxies\n"
              "(mean_evals_per_run >> budget_units); whether that wins depends on\n"
              "how well the scaled-down problem ranks configurations.\n");
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/extension_hyperband.csv")) {
    log_error("failed to write {}/extension_hyperband.csv", out_dir);
    return 1;
  }
  return 0;
}
