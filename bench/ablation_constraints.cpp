// Ablation: constraint specification for SMBO methods (paper Section V-C).
//
// The paper could not give its SMBO methods (BO GP, BO TPE) the
// executability constraint wg_x*wg_y*wg_z <= 256 and considered that "a
// design point in which non-SMBO methods are favored". This bench measures
// exactly how much the missing constraint costs: each SMBO method runs with
// and without constraint-aware sampling across the sample sizes, on one
// benchmark/architecture pair per run.
//
//   ./ablation_constraints [--bench harris] [--arch titanv] [--repeats 15]

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "stats/descriptive.hpp"
#include "stats/mann_whitney.hpp"
#include "tuner/gp/bo_gp.hpp"
#include "tuner/tpe/bo_tpe.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("ablation_constraints",
                "cost of withholding the constraint from SMBO methods");
  cli.add_option("bench", "benchmark", "harris");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("repeats", "experiments per cell", "15");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  harness::BenchmarkContext context(imagecl::benchmark_by_name(cli.get("bench")),
                                    simgpu::arch_by_name(cli.get("arch")), 0, 31337);
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  const std::vector<std::size_t> sizes = {25, 50, 100, 200};

  struct Variant {
    const char* label;
    bool constraint_aware;
    bool is_gp;
  };
  const Variant variants[] = {
      {"BO GP (unconstrained)", false, true},
      {"BO GP (constraint-aware)", true, true},
      {"BO TPE (unconstrained)", false, false},
      {"BO TPE (constraint-aware)", true, false},
  };

  Table table({"variant", "budget", "median_pct_of_optimum", "invalid_proposals_mean"});
  table.set_precision(2);
  std::printf("constraint ablation: %s on %s (optimum %.1f us)\n\n",
              cli.get("bench").c_str(), cli.get("arch").c_str(), context.optimum_us());

  for (const Variant& variant : variants) {
    for (std::size_t size : sizes) {
      std::vector<double> percents;
      double invalid_total = 0.0;
      for (std::size_t r = 0; r < repeats; ++r) {
        Rng rng(seed_combine(seed_from_string(variant.label), size * 1000 + r));
        std::size_t invalid = 0;
        Rng measure_rng = rng.split();
        tuner::Objective objective = [&](const tuner::Configuration& config) {
          tuner::Evaluation eval;
          eval.value = context.measure_us(config, measure_rng);
          eval.valid = !std::isnan(eval.value);
          if (!eval.valid) ++invalid;
          return eval;
        };
        tuner::Evaluator evaluator(context.space(), objective, size);
        tuner::TuneResult result;
        if (variant.is_gp) {
          tuner::BoGpOptions options;
          options.constraint_aware = variant.constraint_aware;
          tuner::BoGp algorithm(options);
          result = algorithm.minimize(context.space(), evaluator, rng);
        } else {
          tuner::BoTpeOptions options;
          options.constraint_aware = variant.constraint_aware;
          tuner::BoTpe algorithm(options);
          result = algorithm.minimize(context.space(), evaluator, rng);
        }
        if (result.found_valid) {
          const double final_us =
              context.measure_repeated_us(result.best_config, rng, 10);
          percents.push_back(context.optimum_us() / final_us * 100.0);
        }
        invalid_total += static_cast<double>(invalid);
      }
      table.add_row({std::string(variant.label), static_cast<long long>(size),
                     stats::median(percents),
                     invalid_total / static_cast<double>(repeats)});
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nInterpretation: the per-cell gap between the two variants of each\n"
              "method is the price of the paper's missing constraint support;\n"
              "invalid_proposals_mean shows how much budget failures consumed.\n");
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/ablation_constraints.csv")) {
    log_error("failed to write {}/ablation_constraints.csv", out_dir);
    return 1;
  }
  return 0;
}
