// Ablation: search robustness under measurement faults. The paper notes
// that the SMBO methods search the unconstrained space and therefore
// observe *failing* configurations; real tuning sessions additionally lose
// measurements to transient launch failures, hung kernels, and device
// resets. This bench raises the fault rate and measures how each of the
// paper's algorithms degrades when every lost measurement still costs
// budget — extending the paper's failing-configuration discussion to
// evaluation-time faults.
//
//   ./ablation_faults [--bench add] [--arch titanv] [--repeats 9]
//                     [--budget 50] [--retries 2]
//
// The pre-collected dataset that RS/RF consume is a clean archive (a Kernel
// Tuner cache file); their only fault exposure is the online measurements
// (RF's top-10 predictions and everyone's 10-fold final test), so RS is the
// natural robustness baseline.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/fmt.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "harness/study.hpp"
#include "stats/descriptive.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("ablation_faults", "algorithm robustness vs measurement-fault rate");
  cli.add_option("bench", "benchmark", "add");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("repeats", "experiments per cell", "9");
  cli.add_option("budget", "sample budget", "50");
  cli.add_option("retries", "max transient retries per evaluation", "2");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  const auto budget = static_cast<std::size_t>(cli.get_int("budget"));
  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.10, 0.20};
  const std::vector<std::string> algorithms = {"rs", "rf", "ga", "bogp", "botpe"};

  // RS/RF subdivide the dataset per (budget, experiment); size it to fit.
  harness::BenchmarkContext context(imagecl::benchmark_by_name(cli.get("bench")),
                                    simgpu::arch_by_name(cli.get("arch")),
                                    budget * repeats, 2718);
  std::printf("fault ablation: %s on %s, budget %zu, %zu repeats "
              "(optimum %.1f us)\n\n",
              cli.get("bench").c_str(), cli.get("arch").c_str(), budget, repeats,
              context.optimum_us());

  harness::ExperimentOptions options;
  options.retry.max_retries = static_cast<std::size_t>(cli.get_int("retries"));

  Table table({"fault_rate", "algorithm", "median_pct_of_optimum", "nan_outcomes",
               "transient", "timeout", "crashed", "retries", "retry_successes"});
  table.set_precision(2);
  std::vector<std::vector<double>> heat(algorithms.size(),
                                        std::vector<double>(rates.size()));
  for (std::size_t n = 0; n < rates.size(); ++n) {
    context.set_fault_model(simgpu::FaultModel::with_rate(rates[n]));
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      std::vector<double> percents;
      tuner::FailureCounters tally;
      std::size_t nan_outcomes = 0;
      for (std::size_t r = 0; r < repeats; ++r) {
        const std::uint64_t seed =
            seed_combine(seed_from_string(algorithms[a]), n * 1000 + r);
        const harness::ExperimentOutcome outcome = harness::run_experiment_detailed(
            context, algorithms[a], budget, r, seed, options);
        tally += outcome.counters;
        if (std::isnan(outcome.final_time_us)) {
          ++nan_outcomes;
          continue;
        }
        percents.push_back(context.optimum_us() / outcome.final_time_us * 100.0);
      }
      heat[a][n] = percents.empty() ? 0.0 : stats::median(percents);
      table.add_row({rates[n], tuner::display_name(algorithms[a]), heat[a][n],
                     static_cast<long long>(nan_outcomes),
                     static_cast<long long>(tally.transient),
                     static_cast<long long>(tally.timeout),
                     static_cast<long long>(tally.crashed),
                     static_cast<long long>(tally.retries),
                     static_cast<long long>(tally.retry_successes)});
    }
  }
  std::vector<std::string> row_labels, col_labels;
  for (const auto& id : algorithms) row_labels.push_back(tuner::display_name(id));
  for (double rate : rates) col_labels.push_back("f=" + fmt_double(rate, 2));
  std::fputs(render_heatmap("median % of optimum vs fault rate", row_labels,
                            col_labels, heat, 1)
                 .c_str(),
             stdout);
  std::fputs("\n", stdout);
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nFaulted measurements still consume budget, so SMBO methods lose both\n"
              "training data and samples; RS reads a clean pre-collected archive and\n"
              "only risks its final re-measurement, making it the robustness floor.\n");
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/ablation_faults.csv")) {
    log_error("failed to write {}/ablation_faults.csv", out_dir);
    return 1;
  }
  return 0;
}
