// Ablation: the paper's "best guess hyperparameters" assumption
// (Section V-C): "We have limited our study to best guess hyperparameters,
// assuming that the inherent difference between the algorithms amortizes
// the difference between our best guess hyperparameters and the ideal
// hyperparameters."
//
// This bench tests that assumption directly: sweep GA's population size /
// mutation rate and TPE's gamma, and compare the *within-algorithm* spread
// against the *between-algorithm* spread at the same budget. The assumption
// holds if the former is much smaller than the latter.
//
//   ./ablation_hyperparams [--bench mandelbrot] [--arch titanv] [--repeats 11]

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/fmt.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "stats/descriptive.hpp"
#include "tuner/ga/genetic.hpp"
#include "tuner/tpe/bo_tpe.hpp"

namespace {

using namespace repro;

double run_cell(const harness::BenchmarkContext& context, tuner::SearchAlgorithm& algo,
                std::size_t budget, std::size_t repeats, std::uint64_t salt) {
  std::vector<double> percents;
  for (std::size_t r = 0; r < repeats; ++r) {
    Rng rng(seed_combine(salt, r));
    tuner::Evaluator evaluator(context.space(), context.make_objective(rng), budget);
    const tuner::TuneResult result = algo.minimize(context.space(), evaluator, rng);
    if (!result.found_valid) continue;
    percents.push_back(context.optimum_us() /
                       context.true_time_us(result.best_config) * 100.0);
  }
  return stats::median(percents);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_hyperparams",
                "does the 'best guess hyperparameters' assumption hold?");
  cli.add_option("bench", "benchmark", "mandelbrot");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("budget", "sample budget", "200");
  cli.add_option("repeats", "experiments per cell", "11");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  const harness::BenchmarkContext context(
      imagecl::benchmark_by_name(cli.get("bench")),
      simgpu::arch_by_name(cli.get("arch")), 0, 8086);
  const auto budget = static_cast<std::size_t>(cli.get_int("budget"));
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));

  std::printf("hyperparameter ablation: %s on %s at budget %zu "
              "(optimum %.1f us)\n\n",
              cli.get("bench").c_str(), cli.get("arch").c_str(), budget,
              context.optimum_us());

  Table table({"algorithm", "hyperparameters", "median_pct_of_optimum"});
  table.set_precision(2);

  // GA: population x mutation-rate grid around the Kernel Tuner defaults.
  std::vector<double> ga_cells;
  for (std::size_t population : {5u, 10u, 20u, 40u}) {
    for (double mutation : {0.05, 0.10, 0.25}) {
      tuner::GaOptions options;
      options.population = population;
      options.mutation_chance = mutation;
      tuner::GeneticAlgorithm ga(options);
      const double median = run_cell(context, ga, budget, repeats,
                                     seed_from_string(fmt("ga{}m{}", population,
                                                          mutation)));
      ga_cells.push_back(median);
      table.add_row({std::string("GA"),
                     fmt("pop={} mut={:.2f}", population, mutation), median});
    }
  }

  // TPE: gamma x startup grid around the Hyperopt defaults.
  std::vector<double> tpe_cells;
  for (double gamma : {0.15, 0.25, 0.50}) {
    for (std::size_t startup : {10u, 20u, 40u}) {
      tuner::BoTpeOptions options;
      options.gamma = gamma;
      options.n_startup = startup;
      tuner::BoTpe tpe(options);
      const double median = run_cell(context, tpe, budget, repeats,
                                     seed_from_string(fmt("tpe{}s{}", gamma, startup)));
      tpe_cells.push_back(median);
      table.add_row({std::string("BO TPE"),
                     fmt("gamma={:.2f} startup={}", gamma, startup), median});
    }
  }

  std::fputs(table.to_ascii().c_str(), stdout);
  const double ga_spread = stats::max(ga_cells) - stats::min(ga_cells);
  const double tpe_spread = stats::max(tpe_cells) - stats::min(tpe_cells);
  const double between =
      std::abs(stats::median(ga_cells) - stats::median(tpe_cells));
  std::printf("\nwithin-GA spread: %.1f points; within-TPE spread: %.1f points;\n"
              "between-algorithm gap (medians): %.1f points\n"
              "=> the paper's amortization assumption %s here.\n",
              ga_spread, tpe_spread, between,
              (ga_spread < 2.5 * between && tpe_spread < 2.5 * between)
                  ? "holds"
                  : "is questionable");
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/ablation_hyperparams.csv")) {
    log_error("failed to write {}/ablation_hyperparams.csv", out_dir);
    return 1;
  }
  return 0;
}
