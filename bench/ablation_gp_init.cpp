// Ablation: BO GP initialization fraction (paper Sections VI-B, VII-A).
//
// The paper initializes gp_minimize with 8% random samples and observes a
// BO GP performance decline from sample size 100 to 200 that it attributes
// to overfitting. This bench sweeps the initialization fraction across
// sample sizes to show how the random/model-driven split shapes that
// behaviour.
//
//   ./ablation_gp_init [--bench mandelbrot] [--arch titanv] [--repeats 11]

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/fmt.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "stats/descriptive.hpp"
#include "tuner/gp/bo_gp.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("ablation_gp_init", "BO GP initialization-fraction sweep");
  cli.add_option("bench", "benchmark", "mandelbrot");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("repeats", "experiments per cell", "11");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  harness::BenchmarkContext context(imagecl::benchmark_by_name(cli.get("bench")),
                                    simgpu::arch_by_name(cli.get("arch")), 0, 424242);
  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  const std::vector<double> fractions = {0.04, 0.08, 0.20, 0.40};
  const std::vector<std::size_t> sizes = {25, 50, 100, 200, 400};

  std::printf("BO GP init-fraction ablation: %s on %s (optimum %.1f us)\n"
              "(paper default: 8%% — Section VI-B)\n\n",
              cli.get("bench").c_str(), cli.get("arch").c_str(), context.optimum_us());

  Table table({"init_fraction", "budget", "median_pct_of_optimum"});
  table.set_precision(2);
  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> heat(fractions.size(),
                                        std::vector<double>(sizes.size()));
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    row_labels.push_back("init " + fmt_double(fractions[f] * 100.0, 0) + "%");
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      std::vector<double> percents;
      for (std::size_t r = 0; r < repeats; ++r) {
        Rng rng(seed_combine(1 + f * 100 + s, r));
        tuner::Evaluator evaluator(context.space(), context.make_objective(rng),
                                   sizes[s]);
        tuner::BoGpOptions options;
        options.init_fraction = fractions[f];
        tuner::BoGp algorithm(options);
        const tuner::TuneResult result =
            algorithm.minimize(context.space(), evaluator, rng);
        if (!result.found_valid) continue;
        const double final_us = context.measure_repeated_us(result.best_config, rng, 10);
        percents.push_back(context.optimum_us() / final_us * 100.0);
      }
      heat[f][s] = stats::median(percents);
      table.add_row({fractions[f], static_cast<long long>(sizes[s]), heat[f][s]});
    }
  }
  std::vector<std::string> size_labels;
  for (std::size_t size : sizes) size_labels.push_back(std::to_string(size));
  std::fputs(render_heatmap("median % of optimum", row_labels, size_labels, heat, 1)
                 .c_str(),
             stdout);
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/ablation_gp_init.csv")) {
    log_error("failed to write {}/ablation_gp_init.csv", out_dir);
    return 1;
  }
  return 0;
}
