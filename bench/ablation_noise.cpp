// Ablation: measurement-noise sensitivity (paper Section VI-A measures each
// configuration once during search "to test the models for how well they
// handle noise in the samples"). This bench scales the noise model's sigma
// and checks whether the algorithm ranking at each sample size survives.
//
//   ./ablation_noise [--bench harris] [--arch gtx980] [--repeats 11]

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/fmt.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "harness/study.hpp"
#include "stats/descriptive.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("ablation_noise", "algorithm ranking vs measurement noise");
  cli.add_option("bench", "benchmark", "harris");
  cli.add_option("arch", "architecture", "gtx980");
  cli.add_option("repeats", "experiments per cell", "11");
  cli.add_option("budget", "sample budget", "100");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  const auto budget = static_cast<std::size_t>(cli.get_int("budget"));
  const std::vector<double> sigmas = {0.0, 0.01, 0.05, 0.15};
  const std::vector<std::string> algorithms = {"rs", "ga", "bogp", "botpe"};

  harness::BenchmarkContext context(imagecl::benchmark_by_name(cli.get("bench")),
                                    simgpu::arch_by_name(cli.get("arch")), 0, 2718);
  std::printf("noise ablation: %s on %s, budget %zu (optimum %.1f us)\n\n",
              cli.get("bench").c_str(), cli.get("arch").c_str(), budget,
              context.optimum_us());

  Table table({"noise_sigma", "algorithm", "median_pct_of_optimum"});
  table.set_precision(2);
  std::vector<std::vector<double>> heat(algorithms.size(),
                                        std::vector<double>(sigmas.size()));
  for (std::size_t n = 0; n < sigmas.size(); ++n) {
    simgpu::NoiseModel noise;
    noise.sigma = sigmas[n];
    noise.outlier_probability = sigmas[n] > 0.0 ? 0.02 : 0.0;
    context.set_noise_model(noise);
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      std::vector<double> percents;
      for (std::size_t r = 0; r < repeats; ++r) {
        Rng rng(seed_combine(seed_from_string(algorithms[a]), n * 1000 + r));
        tuner::Evaluator evaluator(context.space(), context.make_objective(rng), budget);
        const auto algorithm = tuner::make_algorithm(algorithms[a]);
        const tuner::TuneResult result =
            algorithm->minimize(context.space(), evaluator, rng);
        if (!result.found_valid) continue;
        // Final quality judged on the *noiseless* model so that only the
        // search quality (not the final re-measurement) varies with sigma.
        percents.push_back(context.optimum_us() /
                           context.true_time_us(result.best_config) * 100.0);
      }
      heat[a][n] = stats::median(percents);
      table.add_row({sigmas[n], tuner::display_name(algorithms[a]), heat[a][n]});
    }
  }
  std::vector<std::string> row_labels, col_labels;
  for (const auto& id : algorithms) row_labels.push_back(tuner::display_name(id));
  for (double sigma : sigmas) col_labels.push_back("s=" + fmt_double(sigma, 2));
  std::fputs(render_heatmap("median % of optimum (noiseless judgement)", row_labels,
                            col_labels, heat, 1)
                 .c_str(),
             stdout);
  std::printf("\nNoise hurts RS only through mismeasured winners; model-based methods\n"
              "additionally train on unreliable single-sample data.\n");
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/ablation_noise.csv")) {
    log_error("failed to write {}/ablation_noise.csv", out_dir);
    return 1;
  }
  return 0;
}
