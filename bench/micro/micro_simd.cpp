// Microbenchmarks: the fixed-blocking SIMD kernels behind the sparse-GP
// inner loops, per dispatch tier, against the canonical sequential loops
// the exact path keeps. All blocked tiers compute bit-identical sums (see
// tests/common/test_simd.cpp); this suite measures what that determinism
// costs or buys at each width.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace {

using repro::simd::Tier;

std::vector<double> make_data(std::uint64_t seed, std::size_t n) {
  repro::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

/// range(0) = element count, range(1) = requested tier (clamped to what the
/// host supports; a clamp means the tier's numbers would be a lie, so skip).
void BM_SimdDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto requested = static_cast<Tier>(state.range(1));
  if (repro::simd::set_tier(requested) != requested) {
    state.SkipWithError("tier unsupported on this host");
    return;
  }
  const std::vector<double> a = make_data(1, n);
  const std::vector<double> b = make_data(2, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(repro::simd::dot(a.data(), b.data(), n));
  }
  state.SetLabel(std::string("tier=") + repro::simd::tier_name(requested));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * sizeof(double)));
  repro::simd::set_tier(repro::simd::detected_tier());
}
BENCHMARK(BM_SimdDot)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->Args({16384, 2});

void BM_SimdSquaredDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto requested = static_cast<Tier>(state.range(1));
  if (repro::simd::set_tier(requested) != requested) {
    state.SkipWithError("tier unsupported on this host");
    return;
  }
  const std::vector<double> a = make_data(3, n);
  const std::vector<double> b = make_data(4, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        repro::simd::squared_distance(a.data(), b.data(), n));
  }
  state.SetLabel(std::string("tier=") + repro::simd::tier_name(requested));
  repro::simd::set_tier(repro::simd::detected_tier());
}
BENCHMARK(BM_SimdSquaredDistance)
    ->Args({256, 0})
    ->Args({256, 2})
    ->Args({16384, 0})
    ->Args({16384, 2});

/// The strict left-to-right loops the legacy exact path keeps: the baseline
/// every blocked tier above is compared against.
void BM_SeqDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> a = make_data(5, n);
  const std::vector<double> b = make_data(6, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(repro::simd::seq::dot(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_SeqDot)->Arg(256)->Arg(16384);

void BM_SeqSquaredDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> a = make_data(7, n);
  const std::vector<double> b = make_data(8, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        repro::simd::seq::squared_distance(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_SeqSquaredDistance)->Arg(256)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
