// Microbenchmarks: the statistics toolkit (the harness runs one MWU + CLES
// per heatmap cell).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/effect_size.hpp"
#include "stats/mann_whitney.hpp"

namespace {

using namespace repro;

std::vector<double> sample(std::size_t n, double shift, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(shift, 1.0);
  return xs;
}

void BM_MwuExact(benchmark::State& state) {
  const auto a = sample(20, 0.0, 1);
  const auto b = sample(20, 0.5, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::mann_whitney_u(a, b));
  }
}
BENCHMARK(BM_MwuExact);

void BM_MwuApprox(benchmark::State& state) {
  const auto a = sample(static_cast<std::size_t>(state.range(0)), 0.0, 3);
  const auto b = sample(static_cast<std::size_t>(state.range(0)), 0.3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::mann_whitney_u(a, b));
  }
}
BENCHMARK(BM_MwuApprox)->Arg(50)->Arg(800);

void BM_Cles(benchmark::State& state) {
  const auto a = sample(static_cast<std::size_t>(state.range(0)), 0.0, 5);
  const auto b = sample(static_cast<std::size_t>(state.range(0)), 0.3, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::cles_less(a, b));
  }
}
BENCHMARK(BM_Cles)->Arg(50)->Arg(800);

void BM_RanksWithTies(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (auto& x : xs) x = static_cast<double>(rng.uniform_int(0, 99));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ranks_with_ties(xs));
  }
}
BENCHMARK(BM_RanksWithTies)->Arg(100)->Arg(1600);

void BM_MedianQuantile(benchmark::State& state) {
  const auto xs = sample(800, 0.0, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::median(xs));
    benchmark::DoNotOptimize(stats::quantile(xs, 0.95));
  }
}
BENCHMARK(BM_MedianQuantile);

}  // namespace

BENCHMARK_MAIN();
