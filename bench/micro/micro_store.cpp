// Microbenchmarks for the cross-tenant results store: what does persisting
// (and later reusing) every acknowledged tell cost? The fsync'd append is
// the store's durability tax on the tell hot path — it rides the same ack
// barrier as the session WAL, so the two fsyncs are the daemon's per-tell
// floor. Load prices a daemon restart over a populated store, and the
// query benchmark prices building one warm-start prior snapshot at open.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "store/results_store.hpp"

namespace {

using namespace repro;

store::StoreKey tenant_key() {
  return store::StoreKey{"mandelbrot", "titanv", "0123456789abcdef"};
}

std::string fresh_dir() {
  char templ[] = "/tmp/repro_microstore_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  return dir != nullptr ? dir : "/tmp";
}

tuner::Configuration config_for(int i) {
  return tuner::Configuration{i / 100, i % 100, 7};
}

double value_for(int i) {
  std::uint64_t state = seed_combine(41, static_cast<std::uint64_t>(i) + 1);
  return 1.0 + static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Populate a store log with `records` distinct observations, fsync off
/// (fixture building, not the durability path under test).
void populate(store::ResultsStore& store, int records) {
  const store::StoreKey key = tenant_key();
  for (int i = 0; i < records; ++i) {
    (void)store.append(key, config_for(i), value_for(i), true);
  }
}

/// One fsync'd append per iteration — the store's share of the durable
/// tell ack path.
void BM_StoreAppendFsync(benchmark::State& state) {
  const std::string dir = fresh_dir();
  store::StoreOptions options;
  options.dir = dir;
  store::ResultsStore store(options);
  store.load();
  const store::StoreKey key = tenant_key();
  int i = 0;
  std::size_t appends = 0;
  for (auto _ : state) {
    const tuner::Configuration config = config_for(i);
    if (!store.append(key, config, value_for(i), true)) {
      state.SkipWithError("append deduplicated or failed");
      break;
    }
    ++i;
    ++appends;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(appends));
  state.SetLabel("fsync'd store record append");
  (void)std::remove(store.log_path().c_str());
  (void)::rmdir(dir.c_str());
}

/// Log replay at daemon startup: parse + index-build over a populated log.
/// Items = records recovered, so the per-item rate is restart cost per
/// stored observation.
void BM_StoreLoad(benchmark::State& state) {
  const auto records = static_cast<int>(state.range(0));
  const std::string dir = fresh_dir();
  store::StoreOptions options;
  options.dir = dir;
  options.fsync_appends = false;  // fixture building, not the path measured
  {
    store::ResultsStore fixture(options);
    fixture.load();
    populate(fixture, records);
  }
  std::size_t loaded = 0;
  for (auto _ : state) {
    store::ResultsStore store(options);
    store.load();
    benchmark::DoNotOptimize(store.stats());
    loaded += store.stats().records;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(loaded));
  state.SetLabel("log replay @ " + std::to_string(records) + " records");
  {
    store::ResultsStore cleanup(options);
    (void)std::remove(cleanup.log_path().c_str());
  }
  (void)::rmdir(dir.c_str());
}

/// Prior-snapshot build at open: one capped query against a large tenant
/// history (the daemon's warm-start path takes exactly this copy).
void BM_StoreWarmQuery(benchmark::State& state) {
  const auto records = static_cast<int>(state.range(0));
  store::ResultsStore store(store::StoreOptions{});
  store.load();
  populate(store, records);
  std::size_t rows = 0;
  for (auto _ : state) {
    const std::vector<store::StoreRecord> snapshot =
        store.query(tenant_key(), 512);
    benchmark::DoNotOptimize(snapshot);
    rows += snapshot.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rows));
  state.SetLabel("512-row prior snapshot @ " + std::to_string(records) +
                 "-record tenant");
}

BENCHMARK(BM_StoreAppendFsync);
BENCHMARK(BM_StoreLoad)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreWarmQuery)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
