// Microbenchmarks: the GPU performance-model substrate — analytical
// evaluation per kernel, the memoized cache path the experiments actually
// hit, and the exact-vs-fast coalescing analysis.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "imagecl/benchmark_suite.hpp"
#include "simgpu/coalescing.hpp"
#include "simgpu/perf_model.hpp"

namespace {

using namespace repro;

void BM_PerfModelEvaluate(benchmark::State& state, const char* name) {
  const auto benchmark_def = imagecl::benchmark_by_name(name);
  const simgpu::GpuArch arch = simgpu::titan_v();
  Rng rng(3);
  for (auto _ : state) {
    const std::size_t index = rng.next_below(simgpu::CachedPerfModel::table_size());
    const simgpu::KernelConfig config = simgpu::CachedPerfModel::unpack(index);
    benchmark::DoNotOptimize(benchmark_def->model().evaluate(arch, config));
  }
}
BENCHMARK_CAPTURE(BM_PerfModelEvaluate, add, "add");
BENCHMARK_CAPTURE(BM_PerfModelEvaluate, harris, "harris");
BENCHMARK_CAPTURE(BM_PerfModelEvaluate, mandelbrot, "mandelbrot");

void BM_CachedModelHit(benchmark::State& state) {
  const auto benchmark_def = imagecl::benchmark_by_name("harris");
  const simgpu::GpuArch arch = simgpu::titan_v();
  const simgpu::CachedPerfModel cache(benchmark_def->model(), arch);
  const simgpu::KernelConfig config{2, 2, 1, 8, 4, 1};
  (void)cache.time_us(config);  // warm the slot
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.time_us(config));
  }
}
BENCHMARK(BM_CachedModelHit);

void BM_CoalescingExactVsFast(benchmark::State& state, bool fast) {
  const simgpu::GpuArch arch = simgpu::titan_v();
  simgpu::WarpAccessSpec spec;
  spec.element_bytes = 4;
  spec.pitch_x = 8192;
  spec.pitch_y = 8192;
  spec.offsets.clear();
  for (int dy = -3; dy <= 3; ++dy) {
    for (int dx = -3; dx <= 3; ++dx) spec.offsets.push_back({dx, dy, 0});
  }
  const simgpu::KernelConfig config{8, 8, 1, 8, 4, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast ? simgpu::analyze_warp_accesses_fast(config, arch, spec)
                                  : simgpu::analyze_warp_accesses(config, arch, spec));
  }
}
BENCHMARK_CAPTURE(BM_CoalescingExactVsFast, exact, false);
BENCHMARK_CAPTURE(BM_CoalescingExactVsFast, fast, true);

}  // namespace

BENCHMARK_MAIN();
