// Microbenchmarks for the sharded cluster path: what does routing a
// session through `tunelb`'s Router add on top of a direct loopback
// session, and what does the hot-standby replication barrier (fsync'd WAL
// append + synchronous ship to a live follower) cost per acknowledged
// tell? Synthetic objective, so the numbers isolate routing + replication
// machinery from kernel simulation cost. The failover blackout window is
// measured by tools/loadgen (it needs a mid-run topology fault, which a
// steady-state google-benchmark loop cannot express).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "service/client.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "tuner/registry.hpp"

namespace {

using namespace repro;

tuner::ParamSpace small_space() {
  return tuner::ParamSpace({{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}});
}

/// Pure pseudo-measurement: hash of the encoded configuration, shaped into
/// [1, ~1.5). No RNG state, so every session sees identical values.
tuner::Evaluation synth_eval(const tuner::ParamSpace& space,
                             const tuner::Configuration& config) {
  std::uint64_t state = seed_combine(99, space.encode(config) + 1);
  const std::uint64_t h = splitmix64(state);
  return tuner::Evaluation{1.0 + static_cast<double>(h >> 11) * 0x1.0p-53, true};
}

service::OpenParams open_params(std::size_t budget) {
  service::OpenParams params;
  params.algorithm = "rs";
  params.budget = budget;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

std::string fresh_dir() {
  char name[] = "/tmp/repro_micro_cluster_XXXXXX";
  const char* dir = mkdtemp(name);
  return dir != nullptr ? dir : "/tmp";
}

/// Full remote session through Router -> shard: every ask and tell crosses
/// two loopback hops (client->router, router->shard). Compare against
/// micro_service's BM_RemoteSessionThroughput (one hop) for the routing
/// overhead per evaluation.
void BM_RoutedSessionThroughput(benchmark::State& state) {
  service::ServerConfig shard_config;
  shard_config.connection_threads = 2;
  shard_config.poll_interval = std::chrono::milliseconds(20);
  service::TuneServer shard(shard_config);
  shard.start();

  service::RouterConfig router_config;
  router_config.shards = {{"127.0.0.1", shard.port(), "127.0.0.1", 0}};
  router_config.connection_threads = 2;
  router_config.probe_interval = std::chrono::milliseconds(0);
  service::Router router(router_config);
  router.start();

  service::ClientConfig client_config;
  client_config.port = router.port();
  service::Client client(client_config);
  client.connect();

  const tuner::ParamSpace space = small_space();
  service::OpenParams params = open_params(static_cast<std::size_t>(state.range(0)));

  std::uint64_t seed = 0;
  std::size_t evaluations = 0;
  for (auto _ : state) {
    params.seed = seed_combine(11, seed++);
    const std::string session = client.open(params);
    while (auto config = client.ask(session)) {
      evaluations += 1;
      (void)client.tell(session, synth_eval(space, *config));
    }
    benchmark::DoNotOptimize(client.result(session));
    client.close_session(session);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel("rs @ " + std::to_string(state.range(0)) +
                 " evals/session via tunelb");

  client.disconnect();
  router.stop();
  shard.stop();
}

/// Replicated tell path: every acknowledged tell pays the fsync'd WAL
/// append on the primary, a synchronous ship RPC, and the follower's
/// fsync'd apply through its own live session. Compare against micro_wal's
/// journal-only numbers for the replication premium.
void BM_ReplicatedSessionThroughput(benchmark::State& state) {
  const std::string dir = fresh_dir();

  service::ServerConfig standby_config;
  standby_config.standby = true;
  standby_config.connection_threads = 2;
  standby_config.poll_interval = std::chrono::milliseconds(20);
  standby_config.limits.state_dir = dir + "/standby";
  service::TuneServer standby(standby_config);
  standby.start();

  service::ServerConfig primary_config;
  primary_config.connection_threads = 2;
  primary_config.poll_interval = std::chrono::milliseconds(20);
  primary_config.limits.state_dir = dir + "/primary";
  primary_config.limits.ship.port = standby.port();
  service::TuneServer primary(primary_config);
  primary.start();

  service::ClientConfig client_config;
  client_config.port = primary.port();
  service::Client client(client_config);
  client.connect();

  const tuner::ParamSpace space = small_space();
  service::OpenParams params = open_params(static_cast<std::size_t>(state.range(0)));

  std::uint64_t seed = 0;
  std::size_t evaluations = 0;
  for (auto _ : state) {
    params.seed = seed_combine(13, seed++);
    const std::string session = client.open(params);
    while (auto config = client.ask(session)) {
      evaluations += 1;
      (void)client.tell(session, synth_eval(space, *config));
    }
    benchmark::DoNotOptimize(client.result(session));
    client.close_session(session);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel("rs @ " + std::to_string(state.range(0)) +
                 " evals/session, WAL + hot-standby ship");

  client.disconnect();
  primary.stop();
  standby.stop();
}

/// The router's aggregated status op: one bounded status RPC per shard plus
/// the merge. This is the health/observability hot path tunelb serves.
void BM_AggregatedStatus(benchmark::State& state) {
  service::TuneServer shard0;
  service::TuneServer shard1;
  shard0.start();
  shard1.start();

  service::RouterConfig router_config;
  router_config.shards = {{"127.0.0.1", shard0.port(), "127.0.0.1", 0},
                          {"127.0.0.1", shard1.port(), "127.0.0.1", 0}};
  router_config.connection_threads = 2;
  router_config.probe_interval = std::chrono::milliseconds(0);
  service::Router router(router_config);
  router.start();

  service::ClientConfig client_config;
  client_config.port = router.port();
  service::Client client(client_config);
  client.connect();

  std::size_t calls = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.status());
    ++calls;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(calls));
  state.SetLabel("status fan-out over 2 shards");

  client.disconnect();
  router.stop();
  shard0.stop();
  shard1.stop();
}

BENCHMARK(BM_RoutedSessionThroughput)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplicatedSessionThroughput)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AggregatedStatus)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
