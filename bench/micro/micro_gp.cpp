// Microbenchmarks: Gaussian process fit/predict cost as a function of the
// training-set size — the dominant cost of BO GP experiments.

#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tuner/gp/gp_regressor.hpp"

namespace {

using repro::tuner::GpHyperparams;
using repro::tuner::GpRegressor;

struct TrainingSet {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

TrainingSet make_training_set(std::size_t n) {
  TrainingSet set;
  repro::Rng rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> point(6);
    for (auto& v : point) v = rng.uniform();
    double target = 0.0;
    for (double v : point) target += (v - 0.4) * (v - 0.4);
    set.x.push_back(std::move(point));
    set.y.push_back(target + 0.01 * rng.normal());
  }
  return set;
}

void BM_GpFit(benchmark::State& state) {
  const auto set = make_training_set(static_cast<std::size_t>(state.range(0)));
  GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-2});
  // Reference path: with the incremental caches on, refitting an unchanged
  // training set is (deliberately) free, which is not what this measures.
  gp.set_incremental(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.fit(set.x, set.y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GpFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Complexity();

// The BO-GP hot path: refit after every appended observation, as minimize()
// does from 10 points up to n. Second argument toggles the incremental
// (append-row Cholesky + distance cache) machinery; both variants produce
// bit-identical factors, so the ratio is pure refit cost — the perf gate
// compares them (BENCH_micro.json).
void BM_GpSequentialRefit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool incremental = state.range(1) != 0;
  const auto set = make_training_set(n);
  const std::span<const std::vector<double>> xs(set.x);
  const std::span<const double> ys(set.y);
  for (auto _ : state) {
    GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-2});
    gp.set_incremental(incremental);
    for (std::size_t m = 10; m <= n; ++m) {
      benchmark::DoNotOptimize(gp.fit(xs.first(m), ys.first(m)));
    }
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GpSequentialRefit)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({400, 0})
    ->Args({400, 1})
    ->Unit(benchmark::kMillisecond);

void BM_GpPredict(benchmark::State& state) {
  const auto set = make_training_set(static_cast<std::size_t>(state.range(0)));
  GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-2});
  (void)gp.fit(set.x, set.y);
  const std::vector<double> query = {0.1, 0.9, 0.5, 0.3, 0.7, 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.predict(query));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GpPredict)->Arg(25)->Arg(100)->Arg(200)->Complexity();

// Large-history scaling: n = 1000 stays below the default sparse threshold
// (2048) and runs the exact O(n^3) path — the anchor for projecting exact
// cost to larger n — while 5000 and 20000 engage the subset-of-data sparse
// fallback (landmark core + exact tail, blocked SIMD factors), whose active
// set stays near-constant as the history grows. The perf gate's headline
// comparison: the 20k sparse fit must beat the cubic projection of the 1k
// exact fit by orders of magnitude.
void BM_GpFitLargeHistory(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto set = make_training_set(n);
  const repro::tuner::SparseGpOptions sparse;  // production defaults
  const char* mode = "";
  for (auto _ : state) {
    GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-2});
    gp.set_incremental(false);
    gp.set_sparse_options(sparse);
    benchmark::DoNotOptimize(gp.fit(set.x, set.y));
    mode = repro::tuner::surrogate_mode_name(gp.mode());
  }
  state.SetLabel(std::string("mode=") + mode);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GpFitLargeHistory)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_GpPredictLargeHistory(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto set = make_training_set(n);
  GpRegressor gp(GpHyperparams{0.3, 1.0, 1e-2});
  gp.set_sparse_options(repro::tuner::SparseGpOptions{});
  (void)gp.fit(set.x, set.y);
  const std::vector<double> query = {0.1, 0.9, 0.5, 0.3, 0.7, 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.predict(query));
  }
  state.SetLabel(std::string("mode=") +
                 repro::tuner::surrogate_mode_name(gp.mode()));
}
BENCHMARK(BM_GpPredictLargeHistory)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_GpHyperparamSearch(benchmark::State& state) {
  const auto set = make_training_set(static_cast<std::size_t>(state.range(0)));
  GpRegressor gp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.optimize_hyperparams(set.x, set.y));
  }
}
BENCHMARK(BM_GpHyperparamSearch)->Arg(50)->Arg(120);

}  // namespace

BENCHMARK_MAIN();
