// Microbenchmarks: wall-clock cost of one search *algorithm run* at a given
// sample budget, on a synthetic objective so the measurement isolates the
// algorithm itself. The paper deliberately excludes algorithm runtime from
// its comparison (Section V: implementation-dependent); this bench supplies
// the numbers for readers who want them anyway — BO GP's cubic-in-samples
// model cost versus the near-free RS/GA bookkeeping.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "tuner/gp/bo_gp.hpp"
#include "tuner/registry.hpp"

namespace {

using namespace repro;

tuner::Objective synthetic_objective() {
  return [](const tuner::Configuration& config) {
    double value = 1.0;
    for (int v : config) value += static_cast<double>((v - 4) * (v - 4));
    return tuner::Evaluation{value, true};
  };
}

void BM_AlgorithmRun(benchmark::State& state, const char* id) {
  const tuner::ParamSpace space = tuner::paper_search_space();
  const auto budget = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    tuner::Evaluator evaluator(space, synthetic_objective(), budget);
    Rng rng(seed_combine(42, seed++));
    const auto algorithm = tuner::make_algorithm(id);
    benchmark::DoNotOptimize(algorithm->minimize(space, evaluator, rng));
  }
  state.SetLabel(std::string(id) + " @ " + std::to_string(budget) + " samples");
}

BENCHMARK_CAPTURE(BM_AlgorithmRun, rs, "rs")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_AlgorithmRun, rf, "rf")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_AlgorithmRun, ga, "ga")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_AlgorithmRun, bogp, "bogp")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_AlgorithmRun, botpe, "botpe")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_AlgorithmRun, sa, "sa")->Arg(100);
BENCHMARK_CAPTURE(BM_AlgorithmRun, pso, "pso")->Arg(100);
BENCHMARK_CAPTURE(BM_AlgorithmRun, bandit, "bandit")->Arg(100);

// Pipelined vs serial ask path for BO GP, same seed and budget: the
// double-buffered candidate pipeline produces a bit-identical trace (see
// BoGp.PipelinedAskProducesIdenticalTuneResult), so the delta here is pure
// generation/scoring overlap.
void BM_BoGpAskPath(benchmark::State& state) {
  const bool pipelined = state.range(0) != 0;
  const tuner::ParamSpace space = tuner::paper_search_space();
  tuner::BoGpOptions options;
  options.pipelined_ask = pipelined;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    tuner::Evaluator evaluator(space, synthetic_objective(), 120);
    Rng rng(seed_combine(43, seed++));
    tuner::BoGp bo(options);
    benchmark::DoNotOptimize(bo.minimize(space, evaluator, rng));
  }
  state.SetLabel(pipelined ? "pipelined" : "serial");
}
BENCHMARK(BM_BoGpAskPath)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
