// bench_micro: perf-regression gate driver.
//
// Runs the google-benchmark micro suites with --benchmark_format=json,
// validates each report, and merges them into one BENCH_micro.json whose
// `suites` array nests the suites' verbatim reports. Two additions on top
// of the raw merge:
//
//   history   — instead of silently overwriting the previous snapshot, the
//               driver carries forward the `history` array of the existing
//               --out file (when present and parseable) and appends one
//               compact entry per run: date, git revision, smoke flag, and
//               the per-suite headline medians. The verbatim reports stay
//               current-run-only; the history is the cheap longitudinal
//               record reviewers diff across PRs.
//   --check B — regression mode: run the suites, compute the same headline
//               medians, and compare them against the suites recorded in
//               baseline file B. Fails (exit 1) when a suite's median
//               exceeds 3x its baseline — generous on purpose; this
//               container's timings are noisy, and the gate exists to catch
//               order-of-magnitude regressions, not percent drift.
//
// CI runs it under the `perf` CTest label in --smoke mode (short
// --benchmark_min_time), asserting every suite runs, emits parseable JSON,
// and stays within the 3x envelope of the committed baseline.
//
// The sibling suite binaries are located next to this executable (same
// build directory); --bin-dir overrides that for out-of-tree invocations.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace {

struct Options {
  bool smoke = false;
  std::string out = "BENCH_micro.json";
  std::string bin_dir;  // default: directory of argv[0]
  std::string check;    // baseline file for regression comparison
};

const char* const kSuites[] = {"micro_gp",      "micro_tuners",  "micro_simulator",
                               "micro_simd",    "micro_service", "micro_wal",
                               "micro_store",   "micro_cluster", "micro_lint"};

/// Minimal structural validation: a google-benchmark report must be a
/// balanced object that contains a "benchmarks" array. Brace balancing
/// skips string literals — enough to catch truncated or interleaved output
/// without parsing the full grammar.
bool looks_like_benchmark_json(const std::string& text) {
  if (text.find("\"benchmarks\"") == std::string::npos) return false;
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool seen_object = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
      seen_object = true;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return seen_object && depth == 0 && !in_string;
}

/// Run one command, returning its stdout (empty on spawn failure).
std::string run_command(const std::string& command) {
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return output;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, got);
  }
  const int status = pclose(pipe);
  if (status != 0) output.clear();
  return output;
}

/// Indent every line of a JSON document for readable nesting.
std::string indent(const std::string& text, const std::string& prefix) {
  std::string out;
  out.reserve(text.size());
  bool at_line_start = true;
  for (const char c : text) {
    if (at_line_start && c != '\n') out += prefix;
    at_line_start = (c == '\n');
    out += c;
  }
  return out;
}

double unit_to_ns(const std::string& unit) {
  if (unit == "ms") return 1e6;
  if (unit == "us") return 1e3;
  if (unit == "s") return 1e9;
  return 1.0;  // ns, the google-benchmark default
}

/// Median real_time (in ns) over every non-errored benchmark entry of one
/// suite report. Returns a negative value when the report has no usable
/// entries.
double headline_median_ns(const repro::Json& report) {
  const repro::Json* benchmarks = report.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return -1.0;
  std::vector<double> times;
  for (const repro::Json& entry : benchmarks->as_array()) {
    if (!entry.is_object()) continue;
    const repro::Json* errored = entry.find("error_occurred");
    if (errored != nullptr && errored->is_bool() && errored->as_bool()) continue;
    const repro::Json* real_time = entry.find("real_time");
    if (real_time == nullptr || !real_time->is_number()) continue;
    double scale = 1.0;
    const repro::Json* unit = entry.find("time_unit");
    if (unit != nullptr && unit->is_string()) scale = unit_to_ns(unit->as_string());
    times.push_back(real_time->as_double() * scale);
  }
  if (times.empty()) return -1.0;
  std::sort(times.begin(), times.end());
  const std::size_t mid = times.size() / 2;
  if (times.size() % 2 == 1) return times[mid];
  return 0.5 * (times[mid - 1] + times[mid]);
}

struct Headline {
  std::string suite;
  double median_ns = -1.0;
  std::size_t benchmarks = 0;
};

std::size_t benchmark_count(const repro::Json& report) {
  const repro::Json* benchmarks = report.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return 0;
  return benchmarks->as_array().size();
}

/// Per-suite headline medians of a merged BENCH_micro document.
std::vector<Headline> headlines_of(const repro::Json& merged) {
  std::vector<Headline> headlines;
  const repro::Json* suites = merged.find("suites");
  if (suites == nullptr || !suites->is_array()) return headlines;
  for (const repro::Json& entry : suites->as_array()) {
    if (!entry.is_object()) continue;
    const repro::Json* suite = entry.find("suite");
    const repro::Json* report = entry.find("report");
    if (suite == nullptr || !suite->is_string() || report == nullptr) continue;
    headlines.push_back({suite->as_string(), headline_median_ns(*report),
                         benchmark_count(*report)});
  }
  return headlines;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Current date (UTC, YYYY-MM-DD). bench/micro/ is on the wall-clock
/// allowlist: the stamp labels a perf artifact and never feeds results.
std::string today_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[16];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%d", &utc);
  return buffer;
}

std::string git_revision() {
  std::string rev = run_command("git rev-parse --short HEAD 2>/dev/null");
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) rev.pop_back();
  return rev.empty() ? "unknown" : rev;
}

void json_escape(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

std::string format_history_entry(const std::string& date, const std::string& rev,
                                 bool smoke, const std::vector<Headline>& headlines) {
  std::string out = "    {\"date\": \"";
  json_escape(out, date);
  out += "\", \"rev\": \"";
  json_escape(out, rev);
  out += std::string("\", \"smoke\": ") + (smoke ? "true" : "false");
  out += ", \"headlines\": [";
  bool first = true;
  for (const Headline& headline : headlines) {
    if (!first) out += ", ";
    first = false;
    out += "{\"suite\": \"";
    json_escape(out, headline.suite);
    char number[64];
    std::snprintf(number, sizeof(number), "%.1f", headline.median_ns);
    out += std::string("\", \"median_ns\": ") + number +
           ", \"benchmarks\": " + std::to_string(headline.benchmarks) + "}";
  }
  out += "]}";
  return out;
}

/// Re-serialize the prior runs' history entries from the existing --out
/// file (schema-known fields only; anything unparseable is dropped with a
/// note rather than propagated corrupt).
std::vector<std::string> prior_history_entries(const std::string& out_path) {
  std::vector<std::string> entries;
  const std::string text = read_file(out_path);
  if (text.empty()) return entries;
  try {
    const repro::Json merged = repro::Json::parse(text);
    const repro::Json* history = merged.find("history");
    if (history == nullptr || !history->is_array()) return entries;
    for (const repro::Json& entry : history->as_array()) {
      if (!entry.is_object()) continue;
      const repro::Json* date = entry.find("date");
      const repro::Json* rev = entry.find("rev");
      const repro::Json* smoke = entry.find("smoke");
      const repro::Json* headlines = entry.find("headlines");
      if (date == nullptr || !date->is_string() || rev == nullptr ||
          !rev->is_string()) {
        continue;
      }
      std::vector<Headline> parsed;
      if (headlines != nullptr && headlines->is_array()) {
        for (const repro::Json& h : headlines->as_array()) {
          if (!h.is_object()) continue;
          const repro::Json* suite = h.find("suite");
          const repro::Json* median = h.find("median_ns");
          const repro::Json* count = h.find("benchmarks");
          if (suite == nullptr || !suite->is_string() || median == nullptr ||
              !median->is_number()) {
            continue;
          }
          Headline headline{suite->as_string(), median->as_double(), 0};
          if (count != nullptr && count->is_number()) {
            headline.benchmarks = static_cast<std::size_t>(count->as_int64());
          }
          parsed.push_back(headline);
        }
      }
      const bool was_smoke =
          smoke != nullptr && smoke->is_bool() && smoke->as_bool();
      entries.push_back(format_history_entry(date->as_string(), rev->as_string(),
                                             was_smoke, parsed));
    }
  } catch (const std::exception& error) {
    std::cerr << "bench_micro: existing " << out_path
              << " unparseable, starting fresh history (" << error.what()
              << ")\n";
  }
  return entries;
}

/// 3x-envelope regression comparison against a baseline merged document.
/// Suites absent from the baseline (newly added) are reported and skipped.
int check_against_baseline(const std::string& baseline_path,
                           const std::vector<Headline>& current) {
  const std::string text = read_file(baseline_path);
  if (text.empty()) {
    std::cerr << "bench_micro: cannot read baseline " << baseline_path << "\n";
    return 1;
  }
  std::vector<Headline> baseline;
  try {
    baseline = headlines_of(repro::Json::parse(text));
  } catch (const std::exception& error) {
    std::cerr << "bench_micro: baseline unparseable: " << error.what() << "\n";
    return 1;
  }
  constexpr double kTolerance = 3.0;
  int failures = 0;
  for (const Headline& now : current) {
    const auto it =
        std::find_if(baseline.begin(), baseline.end(),
                     [&](const Headline& b) { return b.suite == now.suite; });
    if (it == baseline.end() || it->median_ns <= 0.0) {
      std::cerr << "bench_micro: check " << now.suite
                << ": no baseline (new suite?) — skipped\n";
      continue;
    }
    const double ratio = now.median_ns / it->median_ns;
    const bool failed = ratio > kTolerance;
    std::fprintf(stderr,
                 "bench_micro: check %-16s median %12.1f ns vs baseline "
                 "%12.1f ns (x%.2f) %s\n",
                 now.suite.c_str(), now.median_ns, it->median_ns, ratio,
                 failed ? "FAIL" : "ok");
    if (failed) ++failures;
  }
  if (failures > 0) {
    std::cerr << "bench_micro: " << failures
              << " suite(s) regressed beyond the 3x envelope\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else if (arg == "--bin-dir" && i + 1 < argc) {
      options.bin_dir = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      options.check = argv[++i];
    } else {
      std::cerr << "usage: bench_micro [--smoke] [--out FILE] [--bin-dir DIR] "
                   "[--check BASELINE]\n";
      return 2;
    }
  }
  if (options.bin_dir.empty()) {
    options.bin_dir = std::filesystem::path(argv[0]).parent_path().string();
    if (options.bin_dir.empty()) options.bin_dir = ".";
  }

  // Prior history must be read before the merge overwrites --out.
  const std::vector<std::string> history = prior_history_entries(options.out);

  std::string merged = "{\n  \"driver\": \"bench_micro\",\n";
  merged += std::string("  \"smoke\": ") + (options.smoke ? "true" : "false") + ",\n";
  merged += "  \"suites\": [\n";

  std::vector<Headline> headlines;
  bool first = true;
  for (const char* suite : kSuites) {
    const std::filesystem::path binary =
        std::filesystem::path(options.bin_dir) / suite;
    std::string command = binary.string() + " --benchmark_format=json";
    if (options.smoke) command += " --benchmark_min_time=0.01";
    command += " 2>/dev/null";

    std::cerr << "bench_micro: running " << suite
              << (options.smoke ? " (smoke)" : "") << "\n";
    const std::string report = run_command(command);
    if (report.empty()) {
      std::cerr << "bench_micro: " << suite << " failed to run (" << command
                << ")\n";
      return 1;
    }
    if (!looks_like_benchmark_json(report)) {
      std::cerr << "bench_micro: " << suite << " produced malformed JSON\n";
      return 1;
    }
    try {
      const repro::Json parsed = repro::Json::parse(report);
      headlines.push_back(
          {suite, headline_median_ns(parsed), benchmark_count(parsed)});
    } catch (const std::exception& error) {
      std::cerr << "bench_micro: " << suite
                << " report failed to parse: " << error.what() << "\n";
      return 1;
    }
    if (!first) merged += ",\n";
    first = false;
    merged += "    {\n      \"suite\": \"" + std::string(suite) + "\",\n";
    merged += "      \"report\":\n";
    merged += indent(report, "        ");
    if (merged.back() == '\n') merged.pop_back();
    merged += "\n    }";
  }
  merged += "\n  ],\n";

  merged += "  \"history\": [\n";
  for (const std::string& entry : history) merged += entry + ",\n";
  merged += format_history_entry(today_utc(), git_revision(), options.smoke,
                                 headlines);
  merged += "\n  ]\n}\n";

  if (!looks_like_benchmark_json(merged)) {
    std::cerr << "bench_micro: merged document failed validation\n";
    return 1;
  }
  std::ofstream out(options.out, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "bench_micro: cannot open " << options.out << " for writing\n";
    return 1;
  }
  out << merged;
  out.close();
  std::cerr << "bench_micro: wrote " << options.out << " ("
            << history.size() + 1 << " history entries)\n";

  if (!options.check.empty()) {
    return check_against_baseline(options.check, headlines);
  }
  return 0;
}
