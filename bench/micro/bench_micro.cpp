// bench_micro: perf-regression gate driver.
//
// Runs the google-benchmark micro suites (micro_gp, micro_tuners,
// micro_simulator) with --benchmark_format=json, validates each report, and
// merges them into one BENCH_micro.json whose `suites` array nests the
// suites' verbatim reports. CI runs it under the `perf` CTest label in
// --smoke mode (short --benchmark_min_time), asserting only that every
// suite runs and emits parseable JSON; baseline comparisons against a
// full-length run are a human/EXPERIMENTS.md concern, not a test assertion
// (this container's timings are too noisy to gate on).
//
// The sibling suite binaries are located next to this executable (same
// build directory); --bin-dir overrides that for out-of-tree invocations.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

struct Options {
  bool smoke = false;
  std::string out = "BENCH_micro.json";
  std::string bin_dir;  // default: directory of argv[0]
};

const char* const kSuites[] = {"micro_gp",      "micro_tuners", "micro_simulator",
                               "micro_service", "micro_wal",    "micro_cluster",
                               "micro_lint"};

/// Minimal structural validation: we do not ship a JSON parser, but a
/// google-benchmark report must be a balanced object that contains a
/// "benchmarks" array. Brace balancing skips string literals (names may
/// contain braces in principle) — enough to catch truncated or interleaved
/// output without parsing the full grammar.
bool looks_like_benchmark_json(const std::string& text) {
  if (text.find("\"benchmarks\"") == std::string::npos) return false;
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool seen_object = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
      seen_object = true;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return seen_object && depth == 0 && !in_string;
}

/// Run one suite binary, returning its stdout (empty on spawn failure).
std::string run_suite(const std::string& command) {
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return output;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, got);
  }
  const int status = pclose(pipe);
  if (status != 0) output.clear();
  return output;
}

/// Indent every line of a JSON document for readable nesting.
std::string indent(const std::string& text, const std::string& prefix) {
  std::string out;
  out.reserve(text.size());
  bool at_line_start = true;
  for (const char c : text) {
    if (at_line_start && c != '\n') out += prefix;
    at_line_start = (c == '\n');
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else if (arg == "--bin-dir" && i + 1 < argc) {
      options.bin_dir = argv[++i];
    } else {
      std::cerr << "usage: bench_micro [--smoke] [--out FILE] [--bin-dir DIR]\n";
      return 2;
    }
  }
  if (options.bin_dir.empty()) {
    options.bin_dir = std::filesystem::path(argv[0]).parent_path().string();
    if (options.bin_dir.empty()) options.bin_dir = ".";
  }

  std::string merged = "{\n  \"driver\": \"bench_micro\",\n";
  merged += std::string("  \"smoke\": ") + (options.smoke ? "true" : "false") + ",\n";
  merged += "  \"suites\": [\n";

  bool first = true;
  for (const char* suite : kSuites) {
    const std::filesystem::path binary =
        std::filesystem::path(options.bin_dir) / suite;
    std::string command = binary.string() + " --benchmark_format=json";
    if (options.smoke) command += " --benchmark_min_time=0.01";
    command += " 2>/dev/null";

    std::cerr << "bench_micro: running " << suite
              << (options.smoke ? " (smoke)" : "") << "\n";
    const std::string report = run_suite(command);
    if (report.empty()) {
      std::cerr << "bench_micro: " << suite << " failed to run (" << command
                << ")\n";
      return 1;
    }
    if (!looks_like_benchmark_json(report)) {
      std::cerr << "bench_micro: " << suite << " produced malformed JSON\n";
      return 1;
    }
    if (!first) merged += ",\n";
    first = false;
    merged += "    {\n      \"suite\": \"" + std::string(suite) + "\",\n";
    merged += "      \"report\":\n";
    merged += indent(report, "        ");
    if (merged.back() == '\n') merged.pop_back();
    merged += "\n    }";
  }
  merged += "\n  ]\n}\n";

  if (!looks_like_benchmark_json(merged)) {
    std::cerr << "bench_micro: merged document failed validation\n";
    return 1;
  }
  std::ofstream out(options.out, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "bench_micro: cannot open " << options.out << " for writing\n";
    return 1;
  }
  out << merged;
  out.close();
  std::cerr << "bench_micro: wrote " << options.out << "\n";
  return 0;
}
