// Microbenchmarks for reprolint: the lint gate runs in every `ctest -L
// lint` invocation, so its cost must stay a rounding error next to the
// study binaries it protects. Items = files, bytes = source bytes, so the
// per-byte rate tracks tokenizer throughput as the tree (and the rule set)
// grows. Sources are loaded once up front; iterations measure pure
// lint_content work, no I/O.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "reprolint.hpp"

namespace {

namespace fs = std::filesystem;

bool has_cpp_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx" || ext == ".hxx";
}

/// All of src/ loaded into memory, path-relative to the repo root (so the
/// default allowlist's path substrings match exactly as in the CLI).
const std::vector<std::pair<std::string, std::string>>& tree_sources() {
  static const auto* sources = [] {
    auto* loaded = new std::vector<std::pair<std::string, std::string>>();
    const fs::path root = fs::path(REPRO_SOURCE_DIR);
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
      if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& path : files) {
      std::ifstream in(path, std::ios::binary);
      std::stringstream buffer;
      buffer << in.rdbuf();
      loaded->emplace_back(fs::relative(path, root).generic_string(),
                           buffer.str());
    }
    return loaded;
  }();
  return *sources;
}

/// First pass: harvest unordered-container identifiers across the tree.
void BM_LintCollectNames(benchmark::State& state) {
  const auto& sources = tree_sources();
  std::size_t bytes = 0;
  for (const auto& [path, content] : sources) bytes += content.size();
  for (auto _ : state) {
    std::unordered_set<std::string> names;
    for (const auto& [path, content] : sources) {
      reprolint::collect_unordered_names(content, names);
    }
    benchmark::DoNotOptimize(names.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sources.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

/// Second pass: the full rule sweep over src/ with the shipped allowlist —
/// the dominant cost of the `reprolint_tree` ctest gate.
void BM_LintTree(benchmark::State& state) {
  const auto& sources = tree_sources();
  reprolint::Options options = reprolint::default_options();
  for (const auto& [path, content] : sources) {
    reprolint::collect_unordered_names(content, options.unordered_names);
  }
  std::size_t bytes = 0;
  for (const auto& [path, content] : sources) bytes += content.size();

  for (auto _ : state) {
    reprolint::Report report;
    for (const auto& [path, content] : sources) {
      reprolint::lint_content(path, content, options, report);
    }
    benchmark::DoNotOptimize(report.findings.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sources.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(std::to_string(sources.size()) + " files under src/");
}

/// JSON serialization of a worst-case-ish report (many findings).
void BM_LintReportJson(benchmark::State& state) {
  reprolint::Report report;
  report.files_scanned = 200;
  for (int i = 0; i < 256; ++i) {
    report.findings.push_back(
        {"src/some/dir/file_" + std::to_string(i) + ".cpp", i + 1,
         "reprolint-wall-clock",
         "std::chrono::steady_clock::now() outside the timing allowlist",
         "const auto now = std::chrono::steady_clock::now();"});
  }
  for (auto _ : state) {
    const std::string json = reprolint::to_json(report);
    benchmark::DoNotOptimize(json.size());
  }
}

}  // namespace

BENCHMARK(BM_LintCollectNames)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LintTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LintReportJson)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
