// Microbenchmarks for the tuning service: what does the ask/tell inversion
// cost per evaluation, and what does a full loopback round trip through
// `tuned`'s wire protocol add on top? The paper's study loop is in-process;
// these numbers bound the overhead of running the same loop as a service
// (ISSUE: Tuning-as-a-Service). Synthetic objective, so the measurement
// isolates session + protocol machinery from kernel simulation cost.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "tuner/ask_tell.hpp"
#include "tuner/registry.hpp"

namespace {

using namespace repro;

tuner::ParamSpace small_space() {
  return tuner::ParamSpace({{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}});
}

/// Pure pseudo-measurement: hash of the encoded configuration, shaped into
/// [1, ~1.5). No RNG state, so every session sees identical values.
tuner::Evaluation synth_eval(const tuner::ParamSpace& space,
                             const tuner::Configuration& config) {
  std::uint64_t state = seed_combine(99, space.encode(config) + 1);
  const std::uint64_t h = splitmix64(state);
  return tuner::Evaluation{1.0 + static_cast<double>(h >> 11) * 0x1.0p-53, true};
}

/// One full AskTellSession per iteration: thread spawn, `budget` park/unpark
/// handoffs through the proxy objective, join. Items = evaluations, so the
/// per-item rate is the inversion overhead per measurement.
void BM_SessionThroughput(benchmark::State& state, const char* id) {
  const tuner::ParamSpace space = small_space();
  const auto budget = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  std::size_t evaluations = 0;
  for (auto _ : state) {
    tuner::AskTellSession session(space, tuner::make_algorithm(id), budget,
                                  seed_combine(7, seed++));
    while (auto config = session.ask()) session.tell(synth_eval(space, *config));
    benchmark::DoNotOptimize(session.result());
    evaluations += session.tells();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel(std::string(id) + " @ " + std::to_string(budget) +
                 " evals/session");
}

/// Same loop through a live `tuned` over loopback: each evaluation is two
/// JSON frames each way (ask + tell), so the per-item rate is the full wire
/// round-trip cost including framing, parsing, and session dispatch.
void BM_RemoteSessionThroughput(benchmark::State& state) {
  service::ServerConfig server_config;
  server_config.connection_threads = 2;
  server_config.poll_interval = std::chrono::milliseconds(20);
  service::TuneServer server(server_config);
  server.start();

  service::ClientConfig client_config;
  client_config.port = server.port();
  service::Client client(client_config);
  client.connect();

  const tuner::ParamSpace space = small_space();
  service::OpenParams params;
  params.algorithm = "rs";
  params.budget = static_cast<std::size_t>(state.range(0));
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};

  std::uint64_t seed = 0;
  std::size_t evaluations = 0;
  for (auto _ : state) {
    params.seed = seed_combine(11, seed++);
    const std::string session = client.open(params);
    while (auto config = client.ask(session)) {
      evaluations += 1;
      (void)client.tell(session, synth_eval(space, *config));
    }
    benchmark::DoNotOptimize(client.result(session));
    client.close_session(session);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel("rs @ " + std::to_string(state.range(0)) +
                 " evals/session over loopback");

  client.disconnect();
  server.stop();
}

/// Protocol codec alone: encode a tell request and an ok/evaluation pair,
/// serialize, and parse back. The floor for any transport.
void BM_FrameCodec(benchmark::State& state) {
  const tuner::ParamSpace space = small_space();
  tuner::Configuration config{4, 2, 3};
  std::size_t frames = 0;
  for (auto _ : state) {
    Json request = Json::object();
    request.set("op", "tell");
    request.set("session", "s12");
    service::encode_evaluation_into(request, synth_eval(space, config));
    const std::string line = request.dump();
    const Json parsed = Json::parse(line);
    benchmark::DoNotOptimize(service::decode_evaluation(parsed));
    ++frames;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
  state.SetLabel("tell frame encode+parse+decode");
}

BENCHMARK_CAPTURE(BM_SessionThroughput, rs, "rs")->Arg(50)->Arg(200);
BENCHMARK_CAPTURE(BM_SessionThroughput, ga, "ga")->Arg(50);
BENCHMARK_CAPTURE(BM_SessionThroughput, bogp, "bogp")->Arg(50);
BENCHMARK(BM_RemoteSessionThroughput)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrameCodec);

}  // namespace

BENCHMARK_MAIN();
