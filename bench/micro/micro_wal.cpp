// Microbenchmarks for the session WAL: what does durability cost per tell?
// Every acknowledged tell pays one JSON-line append plus (by default) one
// fsync before the ack frame leaves the daemon, so the fsync'd append rate
// bounds the throughput of a durable tuning service. The replay benchmark
// prices recovery itself: journal k tells, then load + re-drive a fresh
// session through them — the daemon's restart latency per session.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "service/session_manager.hpp"
#include "service/session_wal.hpp"
#include "tuner/registry.hpp"

namespace {

using namespace repro;

service::OpenParams small_open(std::size_t budget) {
  service::OpenParams params;
  params.algorithm = "rs";
  params.budget = budget;
  params.seed = 11;
  params.custom_space = true;
  params.params = {{"a", 1, 8}, {"b", 1, 8}, {"c", 0, 5}};
  return params;
}

tuner::Evaluation synth_eval(const tuner::ParamSpace& space,
                             const tuner::Configuration& config) {
  std::uint64_t state = seed_combine(99, space.encode(config) + 1);
  const std::uint64_t h = splitmix64(state);
  return tuner::Evaluation{1.0 + static_cast<double>(h >> 11) * 0x1.0p-53, true};
}

std::string fresh_dir() {
  char templ[] = "/tmp/repro_microwal_XXXXXX";
  const char* dir = ::mkdtemp(templ);
  return dir != nullptr ? dir : "/tmp";
}

/// One fsync'd tell append per iteration — the durability tax on the tell
/// hot path (the fsync dominates; the JSON encode is noise).
void BM_WalAppendFsync(benchmark::State& state) {
  const std::string dir = fresh_dir();
  const service::OpenParams params = small_open(100);
  const tuner::ParamSpace space = params.make_space();
  auto wal = service::SessionWal::create(service::wal_path(dir, "s1"), "s1", "",
                                         params);
  const tuner::Configuration config{4, 2, 3};
  const tuner::Evaluation eval = synth_eval(space, config);
  std::uint64_t seq = 0;
  std::size_t appends = 0;
  for (auto _ : state) {
    if (wal == nullptr || !wal->append_tell(++seq, config, eval)) {
      state.SkipWithError("append failed");
      break;
    }
    ++appends;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(appends));
  state.SetLabel("fsync'd tell record append");
  wal.reset();
  (void)std::remove(service::wal_path(dir, "s1").c_str());
  (void)::rmdir(dir.c_str());
}

/// Full crash-recovery round trip per iteration: a SessionManager journals a
/// `budget`-tell rs session, "crashes" (destruction without close), and a
/// fresh manager recovers it by replay. Items = tells replayed, so the
/// per-item rate is recovery cost per journaled evaluation.
void BM_WalRecoverReplay(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  const service::OpenParams params = small_open(budget);
  const tuner::ParamSpace space = params.make_space();
  std::size_t replayed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string dir = fresh_dir();
    service::SessionLimits limits;
    limits.state_dir = dir;
    std::string id;
    {
      service::SessionManager manager(limits);
      id = manager.open(params);
      std::uint64_t seq = 0;
      for (std::size_t i = 0; i < budget; ++i) {
        const auto config = manager.ask(id);
        if (!config) break;
        manager.tell(id, synth_eval(space, *config), ++seq);
      }
    }
    state.ResumeTiming();
    service::SessionManager recovered(limits);
    const service::RecoveryStats stats = recovered.recover();
    benchmark::DoNotOptimize(stats);
    replayed += stats.tells_replayed;
    state.PauseTiming();
    recovered.close(id);
    (void)::rmdir(dir.c_str());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replayed));
  state.SetLabel("recover() of an rs session @ " + std::to_string(budget) +
                 " journaled tells");
}

/// Journal load alone (parse + torn-tail scan), without the session replay:
/// the pure IO/parse floor under BM_WalRecoverReplay.
void BM_WalLoad(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  const std::string dir = fresh_dir();
  const service::OpenParams params = small_open(budget);
  const tuner::ParamSpace space = params.make_space();
  service::SessionLimits limits;
  limits.state_dir = dir;
  std::string id;
  {
    service::SessionManager manager(limits);
    id = manager.open(params);
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < budget; ++i) {
      const auto config = manager.ask(id);
      if (!config) break;
      manager.tell(id, synth_eval(space, *config), ++seq);
    }
  }
  const std::string path = service::wal_path(dir, id);
  std::size_t records = 0;
  for (auto _ : state) {
    const service::WalSession journal = service::load_session_wal(path);
    benchmark::DoNotOptimize(journal);
    records += journal.tells.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.SetLabel("journal parse @ " + std::to_string(budget) + " tells");
  (void)std::remove(path.c_str());
  (void)::rmdir(dir.c_str());
}

BENCHMARK(BM_WalAppendFsync);
BENCHMARK(BM_WalRecoverReplay)->Arg(25)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalLoad)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
