// Microbenchmarks: Random Forest training and candidate-pool prediction —
// the dominant cost of RF experiments (the paper ranks thousands of
// candidates per experiment).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "tuner/forest/random_forest.hpp"

namespace {

using repro::tuner::ForestOptions;
using repro::tuner::RandomForestRegressor;

struct TrainingSet {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

TrainingSet make_training_set(std::size_t n) {
  TrainingSet set;
  repro::Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> point(6);
    for (auto& v : point) v = rng.uniform();
    set.x.push_back(std::move(point));
    set.y.push_back(rng.uniform(1.0, 100.0));
  }
  return set;
}

void BM_ForestFit(benchmark::State& state) {
  const auto set = make_training_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    RandomForestRegressor forest;
    repro::Rng rng(1);
    forest.fit(set.x, set.y, rng);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_ForestFit)->Arg(15)->Arg(90)->Arg(390);

void BM_ForestPredictPool(benchmark::State& state) {
  const auto set = make_training_set(190);
  RandomForestRegressor forest;
  repro::Rng rng(2);
  forest.fit(set.x, set.y, rng);
  const auto pool = make_training_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    double sum = 0.0;
    for (const auto& candidate : pool.x) sum += forest.predict(candidate);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForestPredictPool)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
