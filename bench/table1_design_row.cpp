// Regenerates the Tørring row of the paper's Table I (experimental-design
// survey) and verifies the total-sample accounting of footnote 1:
//
//   "3 SMBO algorithms, [25, 50, 100, 200, 400] samples per algorithm,
//    [800, 400, 200, 100, 50] experiments + RS/RF Samples and RF
//    predictions for 3 benchmarks on 3 architectures"
//
// which evaluates to (3 x 100,000 + 20,000 + 15,500) x 9 = 3,019,500.
// The same arithmetic is computed from the StudyConfig so any change to the
// protocol shows up here.

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "harness/study.hpp"

int main(int argc, char** argv) {
  repro::CliParser cli("table1_design_row",
                       "print the paper's Table I row and sample accounting");
  cli.add_option("scale", "experiment-count divisor (1 = paper scale)", "1");
  if (!cli.parse(argc, argv)) return 0;

  repro::harness::StudyConfig config;
  config.algorithms = {"rs", "rf", "ga", "bogp", "botpe"};
  config.scale_divisor = cli.get_double("scale");
  config.min_experiments = 1;

  const std::size_t pairs = config.benchmarks.size() * config.architectures.size();
  const std::size_t smbo_algorithms = 3;  // GA, BO GP, BO TPE (paper footnote 1)

  std::size_t smbo_samples_per_pair = 0;
  std::size_t rf_predictions_per_pair = 0;
  std::size_t experiments_min = ~std::size_t{0};
  std::size_t experiments_max = 0;
  for (std::size_t size : config.sample_sizes) {
    const std::size_t experiments = config.experiments_for(size);
    experiments_min = std::min(experiments_min, experiments);
    experiments_max = std::max(experiments_max, experiments);
    smbo_samples_per_pair += experiments * size;
    rf_predictions_per_pair += experiments * 10;  // top-10 prediction runs
  }
  smbo_samples_per_pair *= smbo_algorithms;
  const std::size_t dataset_per_pair = config.dataset_size_needed();
  const std::size_t total =
      (smbo_samples_per_pair + dataset_per_pair + rf_predictions_per_pair) * pairs;

  std::printf("Table I (Tørring row):\n");
  repro::Table row({"Author", "Samples", "Experiments", "Evaluations",
                    "Significance test", "Research field", "Algorithms"});
  row.add_row({std::string("Tørring"),
               std::to_string(config.sample_sizes.front()) + "-" +
                   std::to_string(config.sample_sizes.back()),
               std::to_string(experiments_max) + "-" + std::to_string(experiments_min),
               static_cast<long long>(config.final_evaluations),
               std::string("Mann-Whitney U"), std::string("Autotuning"),
               std::string("RS, BO TPE, BO GP, RF, GA")});
  std::fputs(row.to_ascii().c_str(), stdout);

  std::printf("\nFootnote 1 sample accounting (scale %.0f):\n", config.scale_divisor);
  std::printf("  SMBO samples per (benchmark, architecture):     %zu\n",
              smbo_samples_per_pair);
  std::printf("  RS/RF dataset per (benchmark, architecture):    %zu\n", dataset_per_pair);
  std::printf("  RF prediction runs per (benchmark, architecture): %zu\n",
              rf_predictions_per_pair);
  std::printf("  benchmark x architecture pairs:                 %zu\n", pairs);
  std::printf("  TOTAL samples:                                  %zu\n", total);
  if (config.scale_divisor == 1.0) {
    std::printf("  paper footnote 1 reports:                       3019500  -> %s\n",
                total == 3019500 ? "MATCH" : "MISMATCH");
  }
  return 0;
}
