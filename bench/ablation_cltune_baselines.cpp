// Related-work baseline: the CLTune comparison (Nugteren & Codreanu [11],
// paper Section IV-D). CLTune evaluated RS, SA and PSO with sample sizes
// 107 and 117 over 128 experiment runs and found SA/PSO beat RS with
// benchmark-dependent ordering — but published no significance test. We
// recreate that comparison on our benchmarks *with* the Mann-Whitney U test
// the paper argues such studies need.
//
//   ./ablation_cltune_baselines [--arch titanv] [--experiments 32]

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness/context.hpp"
#include "stats/descriptive.hpp"
#include "stats/effect_size.hpp"
#include "stats/mann_whitney.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("ablation_cltune_baselines",
                "CLTune-style RS vs SA vs PSO comparison with significance");
  cli.add_option("arch", "architecture", "titanv");
  cli.add_option("experiments", "runs per cell (CLTune used 128)", "32");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto experiments = static_cast<std::size_t>(cli.get_int("experiments"));
  const std::vector<std::size_t> sizes = {107, 117};  // CLTune's sample sizes
  const std::vector<std::string> algorithms = {"rs", "sa", "pso"};

  Table table({"benchmark", "budget", "algorithm", "median_us", "speedup_vs_rs",
               "cles_vs_rs", "mwu_p_vs_rs"});
  table.set_precision(3);

  for (const char* benchmark_name : {"add", "harris", "mandelbrot"}) {
    harness::BenchmarkContext context(imagecl::benchmark_by_name(benchmark_name),
                                      simgpu::arch_by_name(cli.get("arch")), 0, 1337);
    for (std::size_t size : sizes) {
      std::vector<std::vector<double>> outcomes(algorithms.size());
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        for (std::size_t e = 0; e < experiments; ++e) {
          Rng rng(seed_combine(seed_from_string(algorithms[a]) ^
                                   seed_from_string(benchmark_name),
                               size * 1000 + e));
          tuner::Evaluator evaluator(context.space(), context.make_objective(rng),
                                     size);
          const auto algorithm = tuner::make_algorithm(algorithms[a]);
          const tuner::TuneResult result =
              algorithm->minimize(context.space(), evaluator, rng);
          if (result.found_valid) {
            outcomes[a].push_back(
                context.measure_repeated_us(result.best_config, rng, 10));
          }
        }
      }
      const double rs_median = stats::median(outcomes[0]);
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        const double median = stats::median(outcomes[a]);
        table.add_row(
            {std::string(benchmark_name), static_cast<long long>(size),
             tuner::display_name(algorithms[a]), median, rs_median / median,
             a == 0 ? 0.5 : stats::cles_less(outcomes[a], outcomes[0]),
             a == 0 ? 1.0
                    : stats::mann_whitney_u(outcomes[a], outcomes[0]).p_value});
      }
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nCLTune's published finding — SA and PSO beat RS, with the winner\n"
              "depending on the benchmark — can now be checked against MWU p-values\n"
              "(alpha = 0.01) instead of point estimates alone.\n");
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/ablation_cltune_baselines.csv")) {
    log_error("failed to write {}/ablation_cltune_baselines.csv", out_dir);
    return 1;
  }
  return 0;
}
