// Extension: family-wise-corrected significance analysis. The paper runs
// one Mann-Whitney U test per heatmap cell at alpha = 0.01 without
// correcting for the number of simultaneous comparisons (45 cells per
// figure), a standard critique of heatmap studies (cf. Arcuri & Briand's
// guide the paper cites). This bench produces the complete pairwise
// algorithm-vs-algorithm MWU matrix per (panel, size) cell, applies the
// Holm-Bonferroni step-down correction across the whole family, and
// reports which of the raw rejections survive. It also runs the paired
// Wilcoxon signed-rank test across panels ("does algorithm A beat B when
// paired by workload?") — the analysis Table I credits Akiba et al. with.
//
//   ./extension_significance [--scale 32] [--bench ...] [--arch ...]
//   ./extension_significance --from-raw outcomes.csv

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "harness/aggregate.hpp"
#include "harness/results_io.hpp"
#include "harness/study.hpp"
#include "stats/mann_whitney.hpp"
#include "stats/paired.hpp"
#include "tuner/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  CliParser cli("extension_significance",
                "pairwise MWU matrix with Holm-Bonferroni correction");
  cli.add_option("bench", "comma list of benchmarks", "harris,mandelbrot");
  cli.add_option("arch", "comma list of architectures", "titanv");
  cli.add_option("scale", "experiment-count divisor", "16");
  cli.add_option("from-raw", "aggregate a saved raw outcomes CSV instead", "");
  cli.add_option("alpha", "family-wise significance level", "0.01");
  cli.add_option("out", "directory for CSV artifacts", "");
  if (!cli.parse(argc, argv)) return 0;
  const double alpha = cli.get_double("alpha");

  harness::StudyResults results;
  if (!cli.get("from-raw").empty()) {
    results = harness::load_results_csv(cli.get("from-raw"));
  } else {
    harness::StudyConfig config;
    auto split = [](const std::string& csv) {
      std::vector<std::string> out;
      std::string token;
      for (char c : csv + ",") {
        if (c == ',') {
          if (!token.empty()) out.push_back(token);
          token.clear();
        } else {
          token += c;
        }
      }
      return out;
    };
    config.benchmarks = split(cli.get("bench"));
    config.architectures = split(cli.get("arch"));
    config.scale_divisor = cli.get_double("scale");
    config.min_experiments = 8;  // enough experiments for the tests to bite
    results = harness::run_study(config);
  }

  const auto& algorithms = results.config.algorithms;
  const auto& sizes = results.config.sample_sizes;

  // Collect every pairwise hypothesis in the family.
  struct Hypothesis {
    std::string panel;
    std::size_t size;
    std::size_t a, b;  // algorithm indices, a beats b claimed
    double p_raw;
  };
  std::vector<Hypothesis> family;
  for (const harness::PanelResults& panel : results.panels) {
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        for (std::size_t b = a + 1; b < algorithms.size(); ++b) {
          const auto xs = harness::valid_outcomes(panel.cells[a][s]);
          const auto ys = harness::valid_outcomes(panel.cells[b][s]);
          if (xs.empty() || ys.empty()) continue;
          const double p = stats::mann_whitney_u(xs, ys).p_value;
          family.push_back({panel.benchmark + "/" + panel.architecture, sizes[s],
                            a, b, p});
        }
      }
    }
  }
  std::vector<double> raw_ps;
  raw_ps.reserve(family.size());
  for (const Hypothesis& h : family) raw_ps.push_back(h.p_raw);
  const std::vector<double> adjusted = stats::holm_bonferroni(raw_ps);

  std::size_t raw_rejections = 0;
  std::size_t corrected_rejections = 0;
  Table table({"panel", "sample_size", "pair", "p_raw", "p_holm", "significant"});
  table.set_precision(5);
  for (std::size_t i = 0; i < family.size(); ++i) {
    const Hypothesis& h = family[i];
    const bool raw_significant = h.p_raw < alpha;
    const bool corrected_significant = adjusted[i] <= alpha;
    raw_rejections += raw_significant;
    corrected_rejections += corrected_significant;
    if (raw_significant) {
      table.add_row({h.panel, static_cast<long long>(h.size),
                     tuner::display_name(algorithms[h.a]) + " vs " +
                         tuner::display_name(algorithms[h.b]),
                     h.p_raw, adjusted[i],
                     std::string(corrected_significant ? "yes" : "LOST")});
    }
  }
  std::printf("pairwise MWU family: %zu hypotheses across %zu panels x %zu sizes\n",
              family.size(), results.panels.size(), sizes.size());
  std::printf("raw rejections at alpha=%.3g: %zu; surviving Holm correction: %zu\n\n",
              alpha, raw_rejections, corrected_rejections);
  std::fputs(table.to_ascii().c_str(), stdout);

  // Paired view across panels: per algorithm pair, Wilcoxon signed-rank on
  // the per-(panel, size) Fig. 2 medians.
  std::printf("\npaired Wilcoxon signed-rank across (panel, size) blocks "
              "(percent-of-optimum medians):\n");
  std::vector<std::vector<double>> blocks;  // [cell][algorithm]
  for (const harness::PanelResults& panel : results.panels) {
    const harness::CellMatrix matrix = harness::percent_of_optimum(panel);
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      std::vector<double> block;
      bool complete = true;
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        if (std::isnan(matrix[a][s])) complete = false;
        block.push_back(matrix[a][s]);
      }
      if (complete) blocks.push_back(std::move(block));
    }
  }
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    for (std::size_t b = a + 1; b < algorithms.size(); ++b) {
      std::vector<double> xs, ys;
      for (const auto& block : blocks) {
        xs.push_back(block[a]);
        ys.push_back(block[b]);
      }
      const auto result = stats::wilcoxon_signed_rank(xs, ys);
      std::printf("  %-7s vs %-7s: W = %6.1f over %2zu blocks, p = %.4g%s\n",
                  tuner::display_name(algorithms[a]).c_str(),
                  tuner::display_name(algorithms[b]).c_str(), result.w,
                  result.n_effective, result.p_value,
                  result.p_value < alpha ? "  **" : "");
    }
  }
  const std::string out_dir = cli.get("out");
  if (!out_dir.empty() &&
      !table.write_csv_file(out_dir + "/extension_significance.csv")) {
    log_error("failed to write {}/extension_significance.csv", out_dir);
    return 1;
  }
  return 0;
}
