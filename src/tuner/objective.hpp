#pragma once
// Objective function abstraction: one *measurement* of a configuration.
// Minimization throughout (runtimes). Invalid configurations (failed
// builds/launches) report valid=false — SMBO methods searching the
// unconstrained space observe these as failures, exactly as in the paper.

#include <functional>
#include <limits>

#include "tuner/search_space.hpp"

namespace repro::tuner {

/// Typed outcome of one measurement attempt. `kOk` and `kInvalid` are
/// deterministic properties of the configuration; the remaining states are
/// evaluation-time anomalies injected by the fault model (transient launch
/// failure, hung kernel killed at the wall budget, device-reset episode).
enum class EvalStatus { kOk, kInvalid, kTransient, kTimeout, kCrashed };

[[nodiscard]] constexpr const char* to_string(EvalStatus status) noexcept {
  switch (status) {
    case EvalStatus::kOk: return "ok";
    case EvalStatus::kInvalid: return "invalid";
    case EvalStatus::kTransient: return "transient";
    case EvalStatus::kTimeout: return "timeout";
    case EvalStatus::kCrashed: return "crashed";
  }
  return "?";
}

struct Evaluation {
  double value = std::numeric_limits<double>::quiet_NaN();
  bool valid = false;
  /// Anomaly classification. The Evaluator normalizes it against `valid`:
  /// valid measurements are always kOk, invalid ones default to kInvalid,
  /// so objectives that never set it keep today's semantics.
  EvalStatus status = EvalStatus::kInvalid;
};

/// One (noisy) measurement. Implementations capture their own RNG stream.
using Objective = std::function<Evaluation(const Configuration&)>;

}  // namespace repro::tuner
