#pragma once
// Objective function abstraction: one *measurement* of a configuration.
// Minimization throughout (runtimes). Invalid configurations (failed
// builds/launches) report valid=false — SMBO methods searching the
// unconstrained space observe these as failures, exactly as in the paper.

#include <functional>
#include <limits>

#include "tuner/search_space.hpp"

namespace repro::tuner {

struct Evaluation {
  double value = std::numeric_limits<double>::quiet_NaN();
  bool valid = false;
};

/// One (noisy) measurement. Implementations capture their own RNG stream.
using Objective = std::function<Evaluation(const Configuration&)>;

}  // namespace repro::tuner
