#pragma once
// Random Forest regressor (Breiman 2001): bootstrap-bagged CART trees with
// optional random feature subsetting, prediction by ensemble mean —
// mirroring sklearn.ensemble.RandomForestRegressor, which the paper uses
// (Section VI-B).

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tuner/forest/decision_tree.hpp"

namespace repro::tuner {

struct ForestOptions {
  std::size_t n_estimators = 100;  ///< sklearn default
  TreeOptions tree;
  bool bootstrap = true;
};

class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {}) : options_(options) {}

  void fit(std::span<const std::vector<double>> X, std::span<const double> y,
           repro::Rng& rng);

  [[nodiscard]] double predict(std::span<const double> x) const;

  /// Out-of-bag-style ensemble spread (stddev of per-tree predictions),
  /// a cheap uncertainty proxy used by tests and ablations.
  [[nodiscard]] double predict_stddev(std::span<const double> x) const;

  [[nodiscard]] bool fitted() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return trees_.size(); }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace repro::tuner
