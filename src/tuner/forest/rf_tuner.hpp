#pragma once
// Random Forest two-stage tuner, following the paper's protocol exactly
// (Section VI-B): "we train the models with the subset of size S-10 for
// each experiment and then run the top 10 predictions. The top performing
// prediction is then stored as the output."
//
// Non-SMBO and constraint-aware: both the training samples and the
// prediction candidate pool are drawn from the executable sub-space.

#include "tuner/forest/random_forest.hpp"
#include "tuner/tuner.hpp"
#include "tuner/warm_start.hpp"

namespace repro::tuner {

struct RfTunerOptions {
  ForestOptions forest;
  /// Number of final predictions to measure (the paper's "top 10").
  std::size_t top_predictions = 10;
  /// Candidate pool size the model ranks. The paper predicts over the
  /// executable space; we subsample it for speed (documented in DESIGN.md).
  std::size_t candidate_pool = 2048;
  /// Cross-tenant warm start (tuner/warm_start.hpp): valid prior rows join
  /// the forest's training set at zero budget cost (the paper's S-10/10
  /// split is unchanged). Null/empty = byte-identical cold path.
  PriorHandle prior;
};

class RandomForestTuner final : public SearchAlgorithm {
 public:
  explicit RandomForestTuner(RfTunerOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "RF"; }

  TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                      repro::Rng& rng) override;

 private:
  RfTunerOptions options_;
};

}  // namespace repro::tuner
