#include "tuner/forest/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/simd.hpp"

namespace repro::tuner {
namespace {

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::infinity();  ///< weighted SSE
};

/// Best variance-reduction split of indices[begin, end) on one feature.
/// Returns infinity score when no valid split exists.
SplitCandidate best_split_on_feature(std::span<const std::vector<double>> X,
                                     std::span<const double> y,
                                     std::span<std::size_t> indices, int feature,
                                     std::size_t min_samples_leaf) {
  SplitCandidate best;
  const std::size_t n = indices.size();
  // Sort this segment's indices by the feature value.
  std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
    return X[a][feature] < X[b][feature];
  });
  // Prefix sums enable O(1) SSE at every split point:
  // SSE = sum(y^2) - (sum y)^2 / n for each side.
  double left_sum = 0.0, left_sq = 0.0;
  double total_sum = 0.0, total_sq = 0.0;
  simd::seq::gathered_sum_and_squares(y.data(), indices.data(), 0, n, total_sum,
                                      total_sq);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double value = y[indices[i]];
    left_sum += value;
    left_sq += value * value;
    // Can only split between distinct feature values.
    if (X[indices[i]][feature] == X[indices[i + 1]][feature]) continue;
    const std::size_t left_n = i + 1;
    const std::size_t right_n = n - left_n;
    if (left_n < min_samples_leaf || right_n < min_samples_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double right_sq = total_sq - left_sq;
    const double sse = (left_sq - left_sum * left_sum / static_cast<double>(left_n)) +
                       (right_sq - right_sum * right_sum / static_cast<double>(right_n));
    if (sse < best.score) {
      best.score = sse;
      best.feature = feature;
      best.threshold = 0.5 * (X[indices[i]][feature] + X[indices[i + 1]][feature]);
    }
  }
  return best;
}

}  // namespace

void DecisionTree::fit(std::span<const std::vector<double>> X, std::span<const double> y,
                       const TreeOptions& options, repro::Rng& rng) {
  if (X.size() != y.size() || X.empty()) {
    throw std::invalid_argument("DecisionTree::fit: bad training set");
  }
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> indices(X.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  build(X, y, indices, 0, X.size(), 0, options, rng);
}

std::int32_t DecisionTree::build(std::span<const std::vector<double>> X,
                                 std::span<const double> y,
                                 std::vector<std::size_t>& indices, std::size_t begin,
                                 std::size_t end, std::size_t level,
                                 const TreeOptions& options, repro::Rng& rng) {
  depth_ = std::max(depth_, level);
  const std::size_t n = end - begin;
  double sum = 0.0;
  double sum_sq = 0.0;
  // Shared sequential gather kernel: same left-to-right accumulation the
  // fused loop used, byte-identical node statistics.
  simd::seq::gathered_sum_and_squares(y.data(), indices.data(), begin, end, sum, sum_sq);
  const double mean = sum / static_cast<double>(n);
  const double node_sse = sum_sq - sum * mean;

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.value = mean;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  // Pure (zero-variance) nodes are leaves; splitting them cannot help.
  if (n < options.min_samples_split || level >= options.max_depth ||
      node_sse <= 1e-12) {
    return make_leaf();
  }

  // Candidate features (random subset when max_features is set).
  const std::size_t num_features = X[indices[begin]].size();
  std::vector<int> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  std::size_t feature_count = num_features;
  if (options.max_features > 0 && options.max_features < num_features) {
    rng.shuffle(std::span<int>(features));
    feature_count = options.max_features;
  }

  SplitCandidate best;
  std::span<std::size_t> segment(indices.data() + begin, n);
  for (std::size_t f = 0; f < feature_count; ++f) {
    const SplitCandidate candidate = best_split_on_feature(
        X, y, segment, features[f], options.min_samples_leaf);
    if (candidate.score < best.score) best = candidate;
  }
  if (best.feature < 0) return make_leaf();

  // Partition the segment on the chosen split.
  const auto middle_it = std::partition(
      indices.begin() + begin, indices.begin() + end,
      [&](std::size_t i) { return X[i][best.feature] <= best.threshold; });
  const std::size_t middle = static_cast<std::size_t>(middle_it - indices.begin());
  if (middle == begin || middle == end) return make_leaf();

  const std::int32_t node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].value = mean;
  const std::int32_t left = build(X, y, indices, begin, middle, level + 1, options, rng);
  const std::int32_t right = build(X, y, indices, middle, end, level + 1, options, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::predict(std::span<const double> x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict before fit");
  std::int32_t node = 0;
  for (;;) {
    const Node& current = nodes_[node];
    if (current.feature < 0) return current.value;
    node = x[current.feature] <= current.threshold ? current.left : current.right;
  }
}

}  // namespace repro::tuner
