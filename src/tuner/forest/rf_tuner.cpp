#include "tuner/forest/rf_tuner.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/thread_pool.hpp"

namespace repro::tuner {

TuneResult RandomForestTuner::minimize(const ParamSpace& space, Evaluator& evaluator,
                                       repro::Rng& rng) {
  const std::size_t budget = evaluator.budget();
  const std::size_t predictions = std::min(options_.top_predictions, budget);
  const std::size_t train_budget = budget - predictions;

  // Warm start: valid prior tenant rows pretrain the forest at zero budget
  // cost. They stay out of `seen` (a promising prior config may be
  // re-measured via the candidate pool) and out of the evaluator.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  std::unordered_set<std::uint64_t> seen;
  if (warm_start::has_rows(options_.prior)) {
    for (const PriorObservation& row :
         warm_start::compatible_rows(*options_.prior, space)) {
      if (!row.valid) continue;  // the forest trains on runtimes only
      X.push_back(space.normalize(row.config));
      y.push_back(row.value);
    }
  }

  // Stage 1: collect the training set (each sample measured once).
  X.reserve(X.size() + train_budget);
  y.reserve(y.size() + train_budget);
  try {
    std::size_t draws = 0;
    const std::size_t max_draws = 64 * budget + 64;
    while (evaluator.used() < train_budget && draws++ < max_draws) {
      const Configuration config = space.sample_executable(rng);
      const std::uint64_t key = space.encode(config);
      if (!seen.insert(key).second) continue;  // cached duplicate, skip
      const Evaluation eval = evaluator.evaluate(config);
      if (!eval.valid) continue;  // executable pre-filtering makes this rare
      X.push_back(space.normalize(config));
      y.push_back(eval.value);
    }
  } catch (const BudgetExhausted&) {
    return result_from(evaluator);
  }

  if (X.size() < 2) {
    // Degenerate training set: spend the remaining budget randomly.
    try {
      while (!evaluator.exhausted()) {
        (void)evaluator.evaluate(space.sample_executable(rng));
      }
    } catch (const BudgetExhausted&) {
    }
    return result_from(evaluator);
  }

  // Stage 2: fit and rank an executable candidate pool.
  RandomForestRegressor forest(options_.forest);
  forest.fit(X, y, rng);

  struct Scored {
    double prediction;
    Configuration config;
  };
  // Sampling consumes the RNG stream, so it stays sequential; predictions
  // are pure forest traversals and run batched through parallel_for. The
  // pool order (and thus the partial_sort result) matches the fused loop.
  std::vector<Scored> pool;
  pool.reserve(options_.candidate_pool);
  for (std::size_t i = 0; i < options_.candidate_pool; ++i) {
    Configuration candidate = space.sample_executable(rng);
    if (seen.contains(space.encode(candidate))) continue;  // already measured
    pool.push_back({0.0, std::move(candidate)});
  }
  repro::parallel_for(
      0, pool.size(),
      [&](std::size_t i) {
        pool[i].prediction = forest.predict(space.normalize(pool[i].config));
      },
      0, 32);
  const std::size_t keep = std::min(predictions, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + keep, pool.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.prediction < b.prediction;
                    });

  // Measure the top predictions; best observation wins.
  try {
    for (std::size_t i = 0; i < keep; ++i) {
      (void)evaluator.evaluate(pool[i].config);
    }
  } catch (const BudgetExhausted&) {
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
