#include "tuner/forest/random_forest.hpp"

#include <cmath>
#include <stdexcept>

namespace repro::tuner {

void RandomForestRegressor::fit(std::span<const std::vector<double>> X,
                                std::span<const double> y, repro::Rng& rng) {
  if (X.size() != y.size() || X.empty()) {
    throw std::invalid_argument("RandomForestRegressor::fit: bad training set");
  }
  trees_.assign(options_.n_estimators, DecisionTree{});
  std::vector<std::vector<double>> boot_X;
  std::vector<double> boot_y;
  for (DecisionTree& tree : trees_) {
    if (options_.bootstrap) {
      boot_X.clear();
      boot_y.clear();
      boot_X.reserve(X.size());
      boot_y.reserve(y.size());
      for (std::size_t i = 0; i < X.size(); ++i) {
        const auto pick = static_cast<std::size_t>(rng.next_below(X.size()));
        boot_X.push_back(X[pick]);
        boot_y.push_back(y[pick]);
      }
      tree.fit(boot_X, boot_y, options_.tree, rng);
    } else {
      tree.fit(X, y, options_.tree, rng);
    }
  }
}

double RandomForestRegressor::predict(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("RandomForestRegressor::predict before fit");
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.predict(x);
  return sum / static_cast<double>(trees_.size());
}

double RandomForestRegressor::predict_stddev(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("RandomForestRegressor::predict before fit");
  double sum = 0.0;
  double sq = 0.0;
  for (const DecisionTree& tree : trees_) {
    const double p = tree.predict(x);
    sum += p;
    sq += p * p;
  }
  const double n = static_cast<double>(trees_.size());
  const double mean = sum / n;
  return std::sqrt(std::max(0.0, sq / n - mean * mean));
}

}  // namespace repro::tuner
