#pragma once
// CART regression tree with variance-reduction splits and random feature
// subsetting — the building block of the Random Forest regressor
// (Breiman 2001), which the paper uses via sklearn's
// RandomForestRegressor. Features are the (integer) tuning parameters.

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace repro::tuner {

struct TreeOptions {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 = all (sklearn RandomForestRegressor
  /// default is all features for regression).
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  /// Fit on row-major samples: X[i] is the i-th feature vector, y[i] its
  /// target. `rng` drives feature subsetting (unused when max_features=0).
  void fit(std::span<const std::vector<double>> X, std::span<const double> y,
           const TreeOptions& options, repro::Rng& rng);

  [[nodiscard]] double predict(std::span<const double> x) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] bool fitted() const noexcept { return !nodes_.empty(); }

 private:
  struct Node {
    // Leaf when feature < 0.
    int feature = -1;
    double threshold = 0.0;   ///< go left if x[feature] <= threshold
    double value = 0.0;       ///< leaf prediction (mean of targets)
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::int32_t build(std::span<const std::vector<double>> X, std::span<const double> y,
                     std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                     std::size_t level, const TreeOptions& options, repro::Rng& rng);

  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
};

}  // namespace repro::tuner
