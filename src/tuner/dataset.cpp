#include "tuner/dataset.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace repro::tuner {

Dataset Dataset::collect(const ParamSpace& space, const Objective& objective,
                         std::size_t count, repro::Rng& rng) {
  Dataset dataset;
  dataset.entries_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DatasetEntry entry;
    entry.config = space.sample_executable(rng);
    const Evaluation eval = objective(entry.config);
    entry.value = eval.value;
    entry.valid = eval.valid;
    dataset.entries_.push_back(std::move(entry));
  }
  return dataset;
}

std::span<const DatasetEntry> Dataset::subdivision(std::size_t sample_size,
                                                   std::size_t experiment) const {
  const std::size_t begin = sample_size * experiment;
  if (begin + sample_size > entries_.size()) {
    throw std::out_of_range("Dataset::subdivision past end of dataset");
  }
  return {entries_.data() + begin, sample_size};
}

double Dataset::best_of(std::span<const DatasetEntry> slice) noexcept {
  double best = std::numeric_limits<double>::quiet_NaN();
  bool found = false;
  for (const DatasetEntry& entry : slice) {
    if (!entry.valid) continue;
    if (!found || entry.value < best) {
      best = entry.value;
      found = true;
    }
  }
  return best;
}

bool Dataset::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const std::size_t params = entries_.empty() ? 0 : entries_.front().config.size();
  for (std::size_t p = 0; p < params; ++p) out << 'p' << p << ',';
  out << "value,valid\n";
  out.precision(17);
  for (const DatasetEntry& entry : entries_) {
    for (int v : entry.config) out << v << ',';
    out << entry.value << ',' << (entry.valid ? 1 : 0) << '\n';
  }
  return static_cast<bool>(out);
}

Dataset Dataset::load_csv(const std::string& path, const ParamSpace& space) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Dataset::load_csv: cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("Dataset::load_csv: empty file " + path);
  }
  std::vector<DatasetEntry> entries;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::stringstream fields(line);
    std::string field;
    DatasetEntry entry;
    entry.config.reserve(space.num_params());
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      if (!std::getline(fields, field, ',')) {
        throw std::runtime_error("Dataset::load_csv: short row at line " +
                                 std::to_string(line_number));
      }
      entry.config.push_back(std::stoi(field));
    }
    if (!std::getline(fields, field, ',')) {
      throw std::runtime_error("Dataset::load_csv: missing value at line " +
                               std::to_string(line_number));
    }
    entry.value = std::stod(field);
    if (!std::getline(fields, field, ',')) {
      throw std::runtime_error("Dataset::load_csv: missing validity at line " +
                               std::to_string(line_number));
    }
    entry.valid = field == "1" || field == "true";
    if (!space.in_range(entry.config)) {
      throw std::runtime_error("Dataset::load_csv: out-of-range config at line " +
                               std::to_string(line_number));
    }
    entries.push_back(std::move(entry));
  }
  return Dataset(std::move(entries));
}

}  // namespace repro::tuner
