#include "tuner/search_space.hpp"

#include <algorithm>
#include <stdexcept>

namespace repro::tuner {

ParamSpace::ParamSpace(std::vector<ParamRange> params, Constraint constraint)
    : params_(std::move(params)), constraint_(std::move(constraint)) {
  for (const ParamRange& param : params_) {
    if (param.hi < param.lo) {
      throw std::invalid_argument("ParamSpace: empty range for " + param.name);
    }
  }
}

std::uint64_t ParamSpace::size() const noexcept {
  std::uint64_t total = 1;
  for (const ParamRange& param : params_) total *= param.cardinality();
  return total;
}

bool ParamSpace::in_range(const Configuration& config) const noexcept {
  if (config.size() != params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (config[i] < params_[i].lo || config[i] > params_[i].hi) return false;
  }
  return true;
}

bool ParamSpace::is_executable(const Configuration& config) const noexcept {
  if (!in_range(config)) return false;
  return constraint_ == nullptr || constraint_(config);
}

std::uint64_t ParamSpace::encode(const Configuration& config) const {
  if (!in_range(config)) throw std::invalid_argument("encode: configuration out of range");
  std::uint64_t index = 0;
  for (std::size_t i = params_.size(); i-- > 0;) {
    index = index * params_[i].cardinality() +
            static_cast<std::uint64_t>(config[i] - params_[i].lo);
  }
  return index;
}

Configuration ParamSpace::decode(std::uint64_t index) const {
  if (index >= size()) throw std::out_of_range("decode: index out of range");
  Configuration config(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const std::uint64_t card = params_[i].cardinality();
    config[i] = params_[i].lo + static_cast<int>(index % card);
    index /= card;
  }
  return config;
}

Configuration ParamSpace::sample(repro::Rng& rng) const {
  Configuration config(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    config[i] = static_cast<int>(rng.uniform_int(params_[i].lo, params_[i].hi));
  }
  return config;
}

Configuration ParamSpace::sample_executable(repro::Rng& rng, unsigned max_tries) const {
  for (unsigned attempt = 0; attempt < max_tries; ++attempt) {
    Configuration config = sample(rng);
    if (constraint_ == nullptr || constraint_(config)) return config;
  }
  throw std::runtime_error("sample_executable: constraint rejection limit reached");
}

std::vector<double> ParamSpace::normalize(const Configuration& config) const {
  std::vector<double> out(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const double span = static_cast<double>(params_[i].hi - params_[i].lo);
    out[i] = span == 0.0 ? 0.5
                         : (static_cast<double>(config[i]) - params_[i].lo) / span;
  }
  return out;
}

Configuration ParamSpace::clamp(Configuration config) const noexcept {
  for (std::size_t i = 0; i < std::min(config.size(), params_.size()); ++i) {
    config[i] = std::clamp(config[i], params_[i].lo, params_[i].hi);
  }
  return config;
}

ParamSpace paper_search_space() {
  std::vector<ParamRange> params = {
      {"threads_x", 1, 16}, {"threads_y", 1, 16}, {"threads_z", 1, 16},
      {"wg_x", 1, 8},       {"wg_y", 1, 8},       {"wg_z", 1, 8},
  };
  return ParamSpace(std::move(params), [](const Configuration& config) {
    return config[kWgX] * config[kWgY] * config[kWgZ] <= 256;
  });
}

}  // namespace repro::tuner
