#pragma once
// Pre-collected sample dataset, mirroring the paper's streamlined non-SMBO
// pipeline (Section VI-B): "we streamline the experimental sample
// collection process by creating a dataset of 20 000 samples in one go for
// each architecture and benchmark. We can then subdivide the samples for
// each sample size and experiment."

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tuner/objective.hpp"
#include "tuner/search_space.hpp"

namespace repro::tuner {

struct DatasetEntry {
  Configuration config;
  double value = 0.0;
  bool valid = false;
};

class Dataset {
 public:
  Dataset() = default;
  /// Adopt pre-measured entries (e.g. collected in parallel by the harness).
  explicit Dataset(std::vector<DatasetEntry> entries) : entries_(std::move(entries)) {}

  /// Collect `count` executable configurations, each measured once.
  static Dataset collect(const ParamSpace& space, const Objective& objective,
                         std::size_t count, repro::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const DatasetEntry& entry(std::size_t i) const { return entries_.at(i); }
  [[nodiscard]] std::span<const DatasetEntry> all() const noexcept { return entries_; }

  /// Contiguous slice for experiment `experiment` of size `sample_size`
  /// (the paper's subdivision). Throws std::out_of_range if it would run
  /// past the end of the dataset.
  [[nodiscard]] std::span<const DatasetEntry> subdivision(std::size_t sample_size,
                                                          std::size_t experiment) const;

  /// Minimum valid value within a slice; NaN if none valid.
  [[nodiscard]] static double best_of(std::span<const DatasetEntry> slice) noexcept;

  /// CSV persistence (Kernel Tuner "cache file" style): one row per entry,
  /// parameter columns then value and validity. save() returns false on IO
  /// failure; load() throws std::runtime_error on malformed input.
  bool save_csv(const std::string& path) const;
  static Dataset load_csv(const std::string& path, const ParamSpace& space);

 private:
  std::vector<DatasetEntry> entries_;
};

}  // namespace repro::tuner
