#include "tuner/ga/genetic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace repro::tuner {
namespace {

struct Individual {
  Configuration genes;
  double fitness = std::numeric_limits<double>::infinity();  // lower is better
  bool valid = false;
};

/// Rank weights for parent selection: probability proportional to
/// (n - rank), with the population sorted best-first. Built once per run
/// (the population size is fixed) instead of per selection.
std::vector<double> rank_weights(std::size_t population) {
  std::vector<double> weights(population);
  for (std::size_t i = 0; i < population; ++i) {
    weights[i] = static_cast<double>(population - i);
  }
  return weights;
}

}  // namespace

TuneResult GeneticAlgorithm::minimize(const ParamSpace& space, Evaluator& evaluator,
                                      repro::Rng& rng) {
  const std::size_t population_size =
      std::max<std::size_t>(2, std::min(options_.population, evaluator.budget()));

  std::vector<Individual> population;
  population.reserve(population_size);

  auto evaluate_individual = [&](Individual& individual) {
    const Evaluation eval = evaluator.evaluate(individual.genes);
    individual.valid = eval.valid;
    individual.fitness =
        eval.valid ? eval.value : std::numeric_limits<double>::infinity();
  };

  auto repair = [&](Configuration genes) {
    // Re-mutate genes until the executability constraint holds (bounded).
    for (unsigned attempt = 0; attempt < 64 && !space.is_executable(genes); ++attempt) {
      const std::size_t g = static_cast<std::size_t>(rng.next_below(genes.size()));
      genes[g] = static_cast<int>(
          rng.uniform_int(space.param(g).lo, space.param(g).hi));
    }
    if (!space.is_executable(genes)) genes = space.sample_executable(rng);
    return genes;
  };

  const std::vector<double> weights = rank_weights(population_size);

  try {
    // Initial population: executable configurations.
    for (std::size_t i = 0; i < population_size; ++i) {
      Individual individual;
      individual.genes = space.sample_executable(rng);
      evaluate_individual(individual);
      population.push_back(std::move(individual));
    }

    // Generations until the budget runs out. The cap guards against a
    // fully-converged population whose offspring are all cached duplicates
    // (which consume no budget); leftover budget is spent randomly below.
    for (std::size_t generation = 0; generation < 2048; ++generation) {
      std::sort(population.begin(), population.end(),
                [](const Individual& a, const Individual& b) {
                  return a.fitness < b.fitness;
                });

      std::vector<Individual> next;
      next.reserve(population_size);
      for (std::size_t e = 0; e < std::min(options_.elites, population.size()); ++e) {
        next.push_back(population[e]);
      }
      while (next.size() < population_size) {
        const Individual& mother = population[rng.weighted_index(weights)];
        const Individual& father = population[rng.weighted_index(weights)];
        Configuration child = mother.genes;
        if (rng.bernoulli(options_.crossover_probability)) {
          for (std::size_t g = 0; g < child.size(); ++g) {
            if (rng.bernoulli(0.5)) child[g] = father.genes[g];
          }
        }
        for (std::size_t g = 0; g < child.size(); ++g) {
          if (rng.bernoulli(options_.mutation_chance)) {
            child[g] = static_cast<int>(
                rng.uniform_int(space.param(g).lo, space.param(g).hi));
          }
        }
        Individual offspring;
        offspring.genes = repair(std::move(child));
        // Duplicates of already-measured configurations are served from the
        // evaluator cache and cost no budget, as in Kernel Tuner.
        evaluate_individual(offspring);
        next.push_back(std::move(offspring));
      }
      population = std::move(next);
    }
    while (!evaluator.exhausted()) {
      (void)evaluator.evaluate(space.sample_executable(rng));
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
