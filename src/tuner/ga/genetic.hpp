#pragma once
// Genetic Algorithm, modelled on the Kernel Tuner implementation of
// van Werkhoven [12] that the paper reuses ("we based our Genetic Algorithm
// implementation on the implementation that van Werkhoven used", Section
// VI-B): population 20, rank-weighted parent selection, uniform crossover,
// per-gene mutation, duplicate-caching evaluation, generations sized to the
// sample budget. The initial population is drawn from the executable
// sub-space and invalid offspring are repaired by re-mutating genes
// (Kernel Tuner's "restrictions" mechanism).

#include "tuner/tuner.hpp"

namespace repro::tuner {

struct GaOptions {
  std::size_t population = 20;        ///< Kernel Tuner default
  double mutation_chance = 0.1;       ///< per-gene resample probability
  double crossover_probability = 0.7; ///< else parents are cloned
  std::size_t elites = 2;             ///< carried over unchanged
};

class GeneticAlgorithm final : public SearchAlgorithm {
 public:
  explicit GeneticAlgorithm(GaOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "GA"; }

  TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                      repro::Rng& rng) override;

 private:
  GaOptions options_;
};

}  // namespace repro::tuner
