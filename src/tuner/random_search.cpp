#include "tuner/random_search.hpp"

namespace repro::tuner {

TuneResult RandomSearch::minimize(const ParamSpace& space, Evaluator& evaluator,
                                  repro::Rng& rng) {
  // Duplicate draws hit the evaluator cache and cost no budget; the
  // iteration guard bounds the loop for pathological tiny spaces.
  const std::size_t max_draws = 64 * evaluator.budget() + 64;
  std::size_t draws = 0;
  try {
    while (!evaluator.exhausted() && draws++ < max_draws) {
      (void)evaluator.evaluate(space.sample_executable(rng));
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
