#include "tuner/ask_tell.hpp"

#include <utility>

namespace repro::tuner {

AskTellSession::AskTellSession(const ParamSpace& space,
                               std::unique_ptr<SearchAlgorithm> algorithm,
                               std::size_t budget, std::uint64_t seed,
                               RetryPolicy retry)
    : space_(space),
      algorithm_(std::move(algorithm)),
      budget_(budget),
      retry_(retry),
      name_(algorithm_ ? algorithm_->name() : ""),
      pipeline_baseline_(ask_pipeline_totals()) {
  if (!algorithm_) throw std::invalid_argument("AskTellSession: null algorithm");
  // Dedicated thread by design (see the member's comment in the header).
  thread_ = std::thread([this, seed] { search_main(seed); });  // NOLINT(reprolint-raw-thread)
}

AskTellSession::~AskTellSession() {
  cancel();
  if (thread_.joinable()) thread_.join();
}

Evaluation AskTellSession::proxy_measure(const Configuration& config) {
  repro::MutexLock lock(mutex_);
  if (cancelled_) throw SessionCancelled();
  pending_ = config;
  has_pending_ = true;
  has_reply_ = false;
  cv_.notify_all();
  while (!has_reply_ && !cancelled_) cv_.wait(lock.native());
  if (!has_reply_) throw SessionCancelled();
  has_reply_ = false;
  return reply_;
}

void AskTellSession::search_main(std::uint64_t seed) {
  TuneResult result;
  FailureCounters counters;
  std::exception_ptr error;
  try {
    repro::Rng rng(seed);
    Evaluator evaluator(
        space_, [this](const Configuration& config) { return proxy_measure(config); },
        budget_);
    evaluator.set_retry_policy(retry_);
    try {
      result = algorithm_->minimize(space_, evaluator, rng);
    } catch (...) {
      error = std::current_exception();
    }
    counters = evaluator.counters();
  } catch (...) {
    // Evaluator construction failed — nothing partial to report.
    error = std::current_exception();
  }
  repro::MutexLock lock(mutex_);
  result_ = std::move(result);
  counters_ = counters;
  error_ = error;
  finished_ = true;
  has_pending_ = false;
  cv_.notify_all();
}

std::optional<Configuration> AskTellSession::ask() {
  return ask_impl(nullptr);
}

std::optional<Configuration> AskTellSession::ask_until(
    std::chrono::steady_clock::time_point deadline) {
  return ask_impl(&deadline);
}

std::optional<Configuration> AskTellSession::ask_impl(
    const std::chrono::steady_clock::time_point* deadline) {
  repro::MutexLock lock(mutex_);
  if (cancelled_) throw SessionCancelled();
  if (outstanding_) throw AskPendingError();
  while (!has_pending_ && !finished_ && !cancelled_) {
    if (deadline == nullptr) {
      cv_.wait(lock.native());
    } else if (cv_.wait_until(lock.native(), *deadline) == std::cv_status::timeout &&
               !has_pending_ && !finished_ && !cancelled_) {
      // Expiry claims nothing: the proposal (when it lands) stays available
      // to the next ask.
      throw DeadlineExceeded();
    }
  }
  if (cancelled_) throw SessionCancelled();
  if (has_pending_) {
    outstanding_ = true;
    ++asks_;
    return pending_;
  }
  return std::nullopt;
}

std::optional<Configuration> AskTellSession::outstanding_config() const {
  repro::MutexLock lock(mutex_);
  if (!outstanding_) return std::nullopt;
  return pending_;
}

void AskTellSession::tell(const Evaluation& evaluation) {
  repro::MutexLock lock(mutex_);
  if (!outstanding_) throw TellMismatchError();
  outstanding_ = false;
  has_pending_ = false;
  reply_ = evaluation;
  has_reply_ = true;
  ++tells_;
  cv_.notify_all();
}

bool AskTellSession::finished() const {
  repro::MutexLock lock(mutex_);
  return finished_;
}

bool AskTellSession::ask_outstanding() const {
  repro::MutexLock lock(mutex_);
  return outstanding_;
}

std::size_t AskTellSession::asks() const {
  repro::MutexLock lock(mutex_);
  return asks_;
}

std::size_t AskTellSession::tells() const {
  repro::MutexLock lock(mutex_);
  return tells_;
}

TuneResult AskTellSession::result() {
  repro::MutexLock lock(mutex_);
  while (!finished_) cv_.wait(lock.native());
  if (error_) std::rethrow_exception(error_);
  return result_;
}

TuneResult AskTellSession::result_until(std::chrono::steady_clock::time_point deadline) {
  repro::MutexLock lock(mutex_);
  while (!finished_) {
    if (cv_.wait_until(lock.native(), deadline) == std::cv_status::timeout &&
        !finished_) {
      throw DeadlineExceeded();
    }
  }
  if (error_) std::rethrow_exception(error_);
  return result_;
}

FailureCounters AskTellSession::counters() const {
  repro::MutexLock lock(mutex_);
  return counters_;
}

AskPipelineStats AskTellSession::pipeline_stats() const {
  const AskPipelineStats now = ask_pipeline_totals();
  AskPipelineStats delta;
  delta.batches = now.batches - pipeline_baseline_.batches;
  delta.overlapped = now.overlapped - pipeline_baseline_.overlapped;
  delta.inline_runs = now.inline_runs - pipeline_baseline_.inline_runs;
  return delta;
}

void AskTellSession::cancel() {
  repro::MutexLock lock(mutex_);
  cancelled_ = true;
  cv_.notify_all();
}

}  // namespace repro::tuner
