#pragma once
// Search-algorithm interface. Algorithms pull measurements through an
// Evaluator until its budget is exhausted and report the best valid
// configuration they observed.

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/search_space.hpp"

namespace repro::tuner {

struct TuneResult {
  Configuration best_config;
  double best_value = 0.0;
  bool found_valid = false;
  std::size_t evaluations_used = 0;
};

class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Minimize the evaluator's objective within its budget. Implementations
  /// must treat BudgetExhausted as the normal stop signal and return the
  /// evaluator's best observation.
  virtual TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                              repro::Rng& rng) = 0;

 protected:
  /// Standard epilogue: package the evaluator's best observation.
  static TuneResult result_from(const Evaluator& evaluator) {
    TuneResult result;
    result.found_valid = evaluator.has_best();
    if (result.found_valid) {
      result.best_config = evaluator.best_config();
      result.best_value = evaluator.best_value();
    }
    result.evaluations_used = evaluator.used();
    return result;
  }
};

}  // namespace repro::tuner
