#pragma once
// Bayesian Optimization with Tree-Parzen Estimators (BO TPE), following
// Bergstra et al.'s Hyperopt, which the paper uses (Section VI-B).
//
// TPE splits observations at the gamma-quantile into "good" (l) and "bad"
// (g) sets, models each dimension with a smoothed categorical Parzen
// estimator over the discrete parameter values, samples candidates from
// l(x) and ranks them by the density ratio l(x)/g(x) — equivalent to
// Expected Improvement under the TPE factorization. Hyperopt defaults:
// 20 random startup trials, gamma = 0.25, 24 EI candidates per round.
// As an SMBO method, TPE searches the unconstrained space; failures are
// placed in the "bad" set.

#include "tuner/tuner.hpp"
#include "tuner/warm_start.hpp"

namespace repro::tuner {

struct BoTpeOptions {
  std::size_t n_startup = 20;     ///< random trials before the model kicks in
  double gamma = 0.25;            ///< good/bad split quantile
  std::size_t good_cap = 25;      ///< hyperopt caps the good set size
  std::size_t ei_candidates = 24; ///< candidates sampled from l(x) per round
  double prior_weight = 1.0;      ///< smoothing pseudo-count per value
  /// Ablation knob: draw startup/fallback samples and accept candidates
  /// only from the executable sub-space (see BoGpOptions::constraint_aware).
  bool constraint_aware = false;
  /// Overlap candidate sampling with log-ratio scoring (double-buffered
  /// batches; see tuner/pipeline.hpp). Bit-identical either way. The
  /// default 24-candidate rounds fit in one batch and run inline; the knob
  /// matters for enlarged ei_candidates sweeps.
  bool pipelined_ask = true;
  std::size_t pipeline_batch = 64;  ///< candidates per score batch
  /// Cross-tenant warm start (tuner/warm_start.hpp): prior rows join the
  /// good/bad split at zero budget cost and displace that many startup
  /// draws. Null/empty = byte-identical cold path.
  PriorHandle prior;
};

class BoTpe final : public SearchAlgorithm {
 public:
  explicit BoTpe(BoTpeOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "BO TPE"; }

  TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                      repro::Rng& rng) override;

 private:
  BoTpeOptions options_;
};

/// Per-dimension smoothed categorical Parzen estimator over [lo..hi].
/// Exposed for unit tests.
class ParzenCategorical {
 public:
  ParzenCategorical(int lo, int hi, double prior_weight);

  void add(int value, double weight = 1.0);
  [[nodiscard]] double probability(int value) const;
  [[nodiscard]] int sample(repro::Rng& rng) const;

 private:
  int lo_;
  std::vector<double> weights_;
  double total_ = 0.0;
};

}  // namespace repro::tuner
