#include "tuner/tpe/bo_tpe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "tuner/pipeline.hpp"

namespace repro::tuner {

ParzenCategorical::ParzenCategorical(int lo, int hi, double prior_weight) : lo_(lo) {
  if (hi < lo) throw std::invalid_argument("ParzenCategorical: empty range");
  weights_.assign(static_cast<std::size_t>(hi - lo + 1), prior_weight);
  total_ = prior_weight * static_cast<double>(weights_.size());
}

void ParzenCategorical::add(int value, double weight) {
  const auto index = static_cast<std::size_t>(value - lo_);
  if (index >= weights_.size()) throw std::out_of_range("ParzenCategorical::add");
  weights_[index] += weight;
  total_ += weight;
}

double ParzenCategorical::probability(int value) const {
  const auto index = static_cast<std::size_t>(value - lo_);
  if (index >= weights_.size()) return 0.0;
  return weights_[index] / total_;
}

int ParzenCategorical::sample(repro::Rng& rng) const {
  return lo_ + static_cast<int>(rng.weighted_index(weights_));
}

TuneResult BoTpe::minimize(const ParamSpace& space, Evaluator& evaluator,
                           repro::Rng& rng) {
  struct Observation {
    Configuration config;
    double value = 0.0;
    bool valid = false;
  };
  std::vector<Observation> history;
  std::unordered_set<std::uint64_t> proposed;

  // Warm start: prior tenant rows join the good/bad split at zero budget
  // cost. They stay out of `proposed` (a promising prior config may be
  // re-measured in-session) and out of the evaluator (the reported best is
  // in-session only).
  std::size_t prior_count = 0;
  if (warm_start::has_rows(options_.prior)) {
    for (const PriorObservation& row :
         warm_start::compatible_rows(*options_.prior, space)) {
      history.push_back({row.config, row.value, row.valid});
      ++prior_count;
    }
  }

  auto observe = [&](const Configuration& config) {
    proposed.insert(space.encode(config));
    const Evaluation eval = evaluator.evaluate(config);
    history.push_back({config, eval.value, eval.valid});
  };

  const auto draw = [&](repro::Rng& r) {
    return options_.constraint_aware ? space.sample_executable(r) : space.sample(r);
  };

  try {
    // Each prior row displaces one of hyperopt's random startup trials.
    const std::size_t startup_needed =
        options_.n_startup > prior_count ? options_.n_startup - prior_count : 0;
    const std::size_t startup = std::min(startup_needed, evaluator.budget());
    for (std::size_t i = 0; i < startup; ++i) observe(draw(rng));

    for (;;) {
      // Split history: "good" = best gamma-fraction of *valid* trials
      // (capped), everything else (including failures) is "bad".
      std::vector<std::size_t> valid_indices;
      for (std::size_t i = 0; i < history.size(); ++i) {
        if (history[i].valid) valid_indices.push_back(i);
      }
      if (valid_indices.size() < 2) {
        observe(draw(rng));
        continue;
      }
      std::sort(valid_indices.begin(), valid_indices.end(),
                [&](std::size_t a, std::size_t b) {
                  return history[a].value < history[b].value;
                });
      const std::size_t n_good = std::min(
          options_.good_cap,
          std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(
                                       options_.gamma *
                                       static_cast<double>(valid_indices.size())))));

      std::unordered_set<std::size_t> good_set(valid_indices.begin(),
                                               valid_indices.begin() + n_good);

      // Per-dimension Parzen estimators.
      std::vector<ParzenCategorical> good_model;
      std::vector<ParzenCategorical> bad_model;
      good_model.reserve(space.num_params());
      bad_model.reserve(space.num_params());
      for (const ParamRange& param : space.params()) {
        good_model.emplace_back(param.lo, param.hi, options_.prior_weight);
        bad_model.emplace_back(param.lo, param.hi, options_.prior_weight);
      }
      for (std::size_t i = 0; i < history.size(); ++i) {
        auto& target = good_set.contains(i) ? good_model : bad_model;
        for (std::size_t d = 0; d < space.num_params(); ++d) {
          target[d].add(history[i].config[d]);
        }
      }

      // Sample candidates from l(x), rank by l(x)/g(x). Sampling stays
      // sequential (it consumes the RNG stream); scoring is pure per
      // candidate, so the pipeline overlaps it with later sampling into
      // indexed slots, and the argmax reduces in ascending candidate order
      // with a strict `>` — the same winner the fused sequential loop
      // picked. The per-dimension log-ratio terms go through the shared
      // sequential sum kernel (same left-to-right accumulation the fused
      // loop used).
      const std::size_t count = options_.ei_candidates;
      std::vector<Configuration> batch(count);
      std::vector<char> eligible(count, 0);
      std::vector<double> scores(count, 0.0);
      const auto generate = [&](std::size_t c) {
        Configuration candidate(space.num_params());
        for (std::size_t d = 0; d < space.num_params(); ++d) {
          candidate[d] = good_model[d].sample(rng);
        }
        const bool dup = proposed.contains(space.encode(candidate));
        const bool infeasible =
            options_.constraint_aware && !space.is_executable(candidate);
        eligible[c] = static_cast<char>(!dup && !infeasible);
        batch[c] = std::move(candidate);
      };
      const auto score = [&](std::size_t c) {
        if (eligible[c] == 0) return;
        std::vector<double> terms(space.num_params());
        for (std::size_t d = 0; d < space.num_params(); ++d) {
          terms[d] = std::log(good_model[d].probability(batch[c][d])) -
                     std::log(bad_model[d].probability(batch[c][d]));
        }
        scores[c] = simd::seq::sum(terms.data(), terms.size());
      };
      if (options_.pipelined_ask) {
        pipelined_ask(repro::ThreadPool::global(), count, generate, score,
                      nullptr, {options_.pipeline_batch});
      } else {
        for (std::size_t c = 0; c < count; ++c) generate(c);
        repro::parallel_for(0, count, score, 0, 64);
      }
      double best_ratio = -std::numeric_limits<double>::infinity();
      Configuration best_candidate;
      for (std::size_t c = 0; c < count; ++c) {
        if (eligible[c] == 0) continue;
        if (scores[c] > best_ratio) {
          best_ratio = scores[c];
          best_candidate = std::move(batch[c]);
        }
      }
      if (best_candidate.empty()) {
        observe(draw(rng));
      } else {
        observe(best_candidate);
      }
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
