#pragma once
// Pipelined ask path: overlap candidate *generation* with acquisition
// *scoring*. Generation consumes the tuner's RNG stream, so it must stay
// sequential and in ascending index order on the calling thread — reordering
// it would change every downstream draw of the experiment. Scoring is pure
// per candidate (writes only its own slot), so while the caller generates
// batch k+1 the worker pool scores batch k, double-buffered: at most two
// score batches are in flight, and the caller blocks on the older one
// before dispatching the next.
//
// Byte-identity by construction: the generate order is exactly the serial
// loop's, the scored values do not depend on which thread computes them,
// and callers reduce the score slots in ascending index order with a strict
// `>` — the same argmax the fused sequential loop picks.
//
// Nested on a pool worker the helper degrades to the serial generate-all /
// score-all loop (submitting to a fully occupied pool from inside it is the
// classic fork-join deadlock).

#include <cstddef>
#include <functional>

namespace repro {
class ThreadPool;
}

namespace repro::tuner {

/// Counters for one pipelined ask (and, via ask_pipeline_totals(), the
/// process-wide aggregate across all asks).
struct AskPipelineStats {
  std::size_t batches = 0;      ///< score batches executed
  std::size_t overlapped = 0;   ///< batches scored while generation continued
  std::size_t inline_runs = 0;  ///< asks that fell back to the serial loop
};

struct AskPipelineOptions {
  std::size_t batch = 64;  ///< candidates per score batch
};

/// Run generate(i) for i in [0, count) in ascending order on the calling
/// thread and score(i) exactly once per index, overlapping score batches
/// with later generation. `score` must touch only state owned by index i.
/// Per-call counters are added to `stats` when non-null and always folded
/// into the process-wide totals.
void pipelined_ask(ThreadPool& pool, std::size_t count,
                   const std::function<void(std::size_t)>& generate,
                   const std::function<void(std::size_t)>& score,
                   AskPipelineStats* stats = nullptr,
                   const AskPipelineOptions& options = {});

/// Process-wide aggregate of every pipelined_ask() call (thread-safe).
[[nodiscard]] AskPipelineStats ask_pipeline_totals() noexcept;

}  // namespace repro::tuner
