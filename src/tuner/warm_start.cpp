#include "tuner/warm_start.hpp"

#include <cmath>

namespace repro::tuner::warm_start {

std::vector<PriorObservation> compatible_rows(const PriorHistory& prior,
                                              const ParamSpace& space) {
  std::vector<PriorObservation> rows;
  rows.reserve(prior.size());
  for (const PriorObservation& row : prior) {
    if (row.config.size() != space.num_params()) continue;
    if (!space.in_range(row.config)) continue;
    PriorObservation kept = row;
    if (kept.valid && !(std::isfinite(kept.value) && kept.value > 0.0)) {
      kept.valid = false;  // cannot seed a log-space model with this target
    }
    rows.push_back(std::move(kept));
  }
  return rows;
}

}  // namespace repro::tuner::warm_start
