#include "tuner/gp/gp_regressor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace repro::tuner {

double matern52(double r, double lengthscale, double signal_variance) {
  const double s = std::sqrt(5.0) * r / lengthscale;
  return signal_variance * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

double GpRegressor::kernel(std::span<const double> a, std::span<const double> b) const {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return matern52(std::sqrt(sq), hyper_.lengthscale, hyper_.signal_variance);
}

bool GpRegressor::fit(std::span<const std::vector<double>> X, std::span<const double> y) {
  if (X.size() != y.size() || X.empty()) {
    throw std::invalid_argument("GpRegressor::fit: bad training set");
  }
  const std::size_t n = X.size();
  X_.assign(X.begin(), X.end());

  y_mean_ = stats::mean(y);
  y_std_ = std::max(stats::stddev(y), 1e-12);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = (y[i] - y_mean_) / y_std_;

  // Covariance with noise on the diagonal; escalate jitter on failure.
  for (double jitter = 1e-10; jitter <= 1e-2; jitter *= 100.0) {
    Matrix k(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double value = kernel(X_[i], X_[j]);
        k.at(i, j) = value;
        k.at(j, i) = value;
      }
      k.at(i, i) += hyper_.noise_variance + jitter;
    }
    if (!cholesky_inplace(k)) continue;
    chol_ = std::move(k);
    alpha_.assign(n, 0.0);
    solve_cholesky(chol_, ys, alpha_);
    double fit_term = 0.0;
    for (std::size_t i = 0; i < n; ++i) fit_term += ys[i] * alpha_[i];
    lml_ = -0.5 * fit_term - log_diag_sum(chol_) -
           0.5 * static_cast<double>(n) * std::log(2.0 * 3.14159265358979323846);
    fitted_ = true;
    return true;
  }
  fitted_ = false;
  return false;
}

GpPrediction GpRegressor::predict(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("GpRegressor::predict before fit");
  const std::size_t n = X_.size();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(x, X_[i]);

  GpPrediction out;
  double mean_std = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_std += k_star[i] * alpha_[i];
  out.mean = mean_std * y_std_ + y_mean_;

  std::vector<double> v(n);
  solve_lower(chol_, k_star, v);
  double reduction = 0.0;
  for (double value : v) reduction += value * value;
  const double var_std =
      std::max(0.0, hyper_.signal_variance + hyper_.noise_variance - reduction);
  out.variance = var_std * y_std_ * y_std_;
  return out;
}

bool GpRegressor::optimize_hyperparams(std::span<const std::vector<double>> X,
                                       std::span<const double> y) {
  if (X.size() < 2) return fit(X, y);
  static constexpr double kLengthscales[] = {0.1, 0.2, 0.35, 0.6, 1.0};
  static constexpr double kNoises[] = {1e-3, 1e-2, 1e-1};

  // MAP rather than plain MLE: weak lognormal priors keep small-n fits
  // smooth (ell ~ 0.5) and honestly noisy (sigma_n^2 ~ 1e-2). Without them
  // a 2-5 point fit happily picks the shortest lengthscale and the EI
  // acquisition collapses into one-step hill climbing.
  const auto log_prior = [](const GpHyperparams& h) {
    const double dl = std::log(h.lengthscale / 0.5);
    const double dn = std::log(h.noise_variance / 1e-2);
    return -0.5 * (dl * dl) / (0.8 * 0.8) - 0.5 * (dn * dn) / (2.0 * 2.0);
  };

  GpHyperparams best = hyper_;
  double best_posterior = -std::numeric_limits<double>::infinity();
  for (double lengthscale : kLengthscales) {
    for (double noise : kNoises) {
      hyper_.lengthscale = lengthscale;
      hyper_.noise_variance = noise;
      hyper_.signal_variance = 1.0;  // targets are standardized
      if (!fit(X, y)) continue;
      const double posterior = lml_ + log_prior(hyper_);
      if (posterior > best_posterior) {
        best_posterior = posterior;
        best = hyper_;
      }
    }
  }
  hyper_ = best;
  return fit(X, y);
}

}  // namespace repro::tuner
