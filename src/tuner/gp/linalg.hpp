#pragma once
// Small dense linear algebra for Gaussian process regression: row-major
// square matrices, Cholesky factorization and triangular solves.
//
// Two reduction regimes coexist:
//   - sequential (default): strict left-to-right inner loops, the order the
//     exact GP has always used — byte-compatible with every committed
//     campaign artifact.
//   - blocked: inner dot products route through the fixed-blocking SIMD
//     kernels in common/simd.hpp (runtime-dispatched scalar/SSE2/AVX2, all
//     bit-identical to one another but *not* to the sequential order).
// The sparse large-history GP mode enables blocked factors; the exact
// small-history path never does, so legacy outputs stay byte-identical.

#include <cstddef>
#include <span>
#include <vector>

namespace repro::tuner {

/// Row-major square matrix.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n, double fill = 0.0) : n_(n), data_(n * n, fill) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept { return data_[r * n_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * n_ + c];
  }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// In-place lower Cholesky factorization A = L L^T (upper triangle is left
/// untouched). Returns false if A is not (numerically) positive definite.
/// `blocked` switches the inner reductions to the fixed-blocking SIMD
/// kernels (bit-identical across dispatch tiers, not to sequential).
[[nodiscard]] bool cholesky_inplace(Matrix& a, bool blocked = false);

/// Growable lower Cholesky factor in packed row storage (row i holds i+1
/// entries), built one appended row at a time.
///
/// Appending row n touches only row n and performs, per entry, the same
/// column-ordered arithmetic as `cholesky_inplace` on the full (n+1)-sized
/// matrix — sums over k ascending, then one divide by the column diagonal —
/// so growing a factor row by row is *bit-identical* to refactorizing from
/// scratch (tests/tuner/test_linalg.cpp asserts this). This is what turns
/// the GP surrogate's per-observation refit from O(n^3) into O(n^2).
class PackedCholesky {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  void clear() noexcept {
    n_ = 0;
    rows_.clear();
  }

  /// Route the inner reductions of append_row and the triangular solves
  /// through the blocked SIMD kernels. Must be chosen before the first
  /// append (mixing regimes inside one factor would make its rows
  /// mutually inconsistent); clear() keeps the setting.
  void set_blocked(bool blocked) noexcept { blocked_ = blocked; }
  [[nodiscard]] bool blocked() const noexcept { return blocked_; }

  /// L(r, c) for c <= r.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return rows_[r * (r + 1) / 2 + c];
  }

  /// Append the next row of the underlying SPD matrix: `a_row` holds
  /// A(n, 0..n-1) followed by the diagonal A(n, n) (noise/jitter already
  /// added), length n+1 for current size n. Returns false — leaving the
  /// factor unchanged — when the new pivot is not (numerically) positive,
  /// exactly the failure condition of `cholesky_inplace`.
  [[nodiscard]] bool append_row(std::span<const double> a_row);

  /// Bit-preserving copy of the lower triangle of an already-factorized
  /// Matrix (the reference path of GpRegressor::fit). `blocked` sets the
  /// solve regime of the returned factor and must match the regime the
  /// Matrix was factorized under.
  [[nodiscard]] static PackedCholesky from_lower(const Matrix& l, bool blocked = false);

  /// Triangular solves and log-determinant, mirroring the Matrix-based
  /// routines' arithmetic exactly.
  void solve_lower(std::span<const double> b, std::span<double> x) const;
  void solve_lower_transpose(std::span<const double> b, std::span<double> x) const;
  void solve(std::span<const double> b, std::span<double> x) const;
  [[nodiscard]] double log_diag_sum() const;

 private:
  std::size_t n_ = 0;
  bool blocked_ = false;
  std::vector<double> rows_;  ///< packed lower triangle, row-major
};

/// Solve L x = b with L lower-triangular (forward substitution).
void solve_lower(const Matrix& l, std::span<const double> b, std::span<double> x);

/// Solve L^T x = b with L lower-triangular (backward substitution).
void solve_lower_transpose(const Matrix& l, std::span<const double> b, std::span<double> x);

/// Solve (L L^T) x = b given the Cholesky factor L.
void solve_cholesky(const Matrix& l, std::span<const double> b, std::span<double> x);

/// Sum of log of diagonal entries (log det(L) for a Cholesky factor).
[[nodiscard]] double log_diag_sum(const Matrix& l);

}  // namespace repro::tuner
