#pragma once
// Small dense linear algebra for Gaussian process regression: row-major
// square matrices, Cholesky factorization and triangular solves. Sizes are
// bounded by the GP training-set cap (a few hundred), so simple cache-
// friendly loops are sufficient.

#include <cstddef>
#include <span>
#include <vector>

namespace repro::tuner {

/// Row-major square matrix.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n, double fill = 0.0) : n_(n), data_(n * n, fill) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept { return data_[r * n_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * n_ + c];
  }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// In-place lower Cholesky factorization A = L L^T (upper triangle is left
/// untouched). Returns false if A is not (numerically) positive definite.
[[nodiscard]] bool cholesky_inplace(Matrix& a);

/// Solve L x = b with L lower-triangular (forward substitution).
void solve_lower(const Matrix& l, std::span<const double> b, std::span<double> x);

/// Solve L^T x = b with L lower-triangular (backward substitution).
void solve_lower_transpose(const Matrix& l, std::span<const double> b, std::span<double> x);

/// Solve (L L^T) x = b given the Cholesky factor L.
void solve_cholesky(const Matrix& l, std::span<const double> b, std::span<double> x);

/// Sum of log of diagonal entries (log det(L) for a Cholesky factor).
[[nodiscard]] double log_diag_sum(const Matrix& l);

}  // namespace repro::tuner
