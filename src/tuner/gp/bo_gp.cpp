#include "tuner/gp/bo_gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "stats/descriptive.hpp"
#include "tuner/pipeline.hpp"

namespace repro::tuner {

double expected_improvement(double mean, double variance, double best) {
  const double sd = std::sqrt(std::max(variance, 0.0));
  if (sd < 1e-12) return std::max(best - mean, 0.0);
  const double z = (best - mean) / sd;
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
  return (best - mean) * stats::normal_cdf(z) + sd * pdf;
}

namespace {

/// Observation log in model space (targets possibly log-transformed,
/// failures replaced by a penalty).
struct History {
  std::vector<Configuration> configs;
  std::vector<double> raw;     ///< model-space value, NaN for failures
  std::vector<bool> valid;
};

}  // namespace

TuneResult BoGp::minimize(const ParamSpace& space, Evaluator& evaluator,
                          repro::Rng& rng) {
  const std::size_t budget = evaluator.budget();
  // Warm start: prior tenant history replaces most of the random-init
  // phase — the surrogate already knows the landscape, so only min_init
  // fresh draws anchor it before model-driven proposals begin.
  std::vector<PriorObservation> prior_rows;
  if (warm_start::has_rows(options_.prior)) {
    prior_rows = warm_start::compatible_rows(*options_.prior, space);
  }
  const std::size_t init =
      prior_rows.empty()
          ? std::min(budget,
                     std::max(options_.min_init,
                              static_cast<std::size_t>(std::llround(
                                  options_.init_fraction * static_cast<double>(budget)))))
          : std::min(budget, options_.min_init);

  History history;
  std::unordered_set<std::uint64_t> proposed;
  // Prior rows are observations at zero budget cost. They stay out of
  // `proposed` (the search may re-measure a promising prior config) and out
  // of the evaluator (the reported best is in-session only).
  for (const PriorObservation& row : prior_rows) {
    history.configs.push_back(row.config);
    history.valid.push_back(row.valid);
    double value = std::numeric_limits<double>::quiet_NaN();
    if (row.valid) value = options_.log_transform ? std::log(row.value) : row.value;
    history.raw.push_back(value);
  }

  auto observe = [&](const Configuration& config) {
    proposed.insert(space.encode(config));
    const Evaluation eval = evaluator.evaluate(config);
    history.configs.push_back(config);
    history.valid.push_back(eval.valid);
    double value = std::numeric_limits<double>::quiet_NaN();
    if (eval.valid) {
      value = options_.log_transform ? std::log(eval.value) : eval.value;
    }
    history.raw.push_back(value);
  };

  const auto draw = [&](repro::Rng& r) {
    return options_.constraint_aware ? space.sample_executable(r) : space.sample(r);
  };

  try {
    // SMBO: unconstrained random initialization (failures possible) unless
    // the constraint-aware ablation is enabled.
    for (std::size_t i = 0; i < init; ++i) observe(draw(rng));

    GpRegressor gp;
    gp.set_incremental(options_.incremental_gp);
    gp.set_sparse_options(options_.sparse);
    std::size_t last_hyperopt = 0;
    for (;;) {
      // Assemble the training set: penalize failures against the worst
      // valid observation so the model learns to avoid those regions.
      double worst = -std::numeric_limits<double>::infinity();
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < history.raw.size(); ++i) {
        if (!history.valid[i]) continue;
        worst = std::max(worst, history.raw[i]);
        best = std::min(best, history.raw[i]);
      }
      const bool any_valid = std::isfinite(best);
      const double penalty =
          any_valid ? (options_.log_transform
                           ? worst + std::log(options_.invalid_penalty_factor)
                           : worst * options_.invalid_penalty_factor)
                    : 1.0;

      std::vector<std::size_t> order(history.configs.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      if (order.size() > options_.max_train_points) {
        // Keep the best half and the most recent half (tractability cap).
        std::vector<std::size_t> by_value = order;
        std::sort(by_value.begin(), by_value.end(), [&](std::size_t a, std::size_t b) {
          const double va = history.valid[a] ? history.raw[a] : penalty;
          const double vb = history.valid[b] ? history.raw[b] : penalty;
          return va < vb;
        });
        const std::size_t half = options_.max_train_points / 2;
        std::unordered_set<std::size_t> chosen(by_value.begin(), by_value.begin() + half);
        for (std::size_t i = history.configs.size();
             i-- > 0 && chosen.size() < options_.max_train_points;) {
          chosen.insert(i);
        }
        order.assign(chosen.begin(), chosen.end());
        std::sort(order.begin(), order.end());
      }

      std::vector<std::vector<double>> X;
      std::vector<double> y;
      X.reserve(order.size());
      y.reserve(order.size());
      for (std::size_t i : order) {
        X.push_back(space.normalize(history.configs[i]));
        y.push_back(history.valid[i] ? history.raw[i] : penalty);
      }

      bool model_ok = false;
      if (X.size() >= 2) {
        if (history.configs.size() >= last_hyperopt + options_.hyperopt_interval ||
            !gp.fitted()) {
          model_ok = gp.optimize_hyperparams(X, y);
          last_hyperopt = history.configs.size();
        } else {
          model_ok = gp.fit(X, y);
        }
      }

      if (!model_ok) {
        observe(draw(rng));  // fall back to random until fit succeeds
        continue;
      }

      // Incumbent in model space for EI.
      const double incumbent = any_valid ? best : penalty;

      // Candidate set: random pool + neighborhood of the best valid config.
      const std::size_t pool_size =
          std::max(options_.acquisition_pool,
                   options_.acquisition_budget / std::max<std::size_t>(gp.num_points(), 1));
      const bool with_neighbors = evaluator.has_best();
      const std::size_t neighbor_count =
          with_neighbors ? options_.neighbor_candidates : 0;
      const Configuration anchor = with_neighbors ? evaluator.best_config() : Configuration{};
      const std::size_t total = pool_size + neighbor_count;

      // Generation consumes the RNG stream — same draws, same order as the
      // fused loop — and decides eligibility per candidate against the
      // immutable `proposed` set. Scoring (gp.predict is const and pure)
      // writes indexed slots, so the pipelined overlap cannot change any
      // value; the reduce walks ascending indices with a strict `>` — the
      // same argmax the sequential loop computed, bit for bit.
      std::vector<Configuration> candidates(total);
      std::vector<char> eligible(total, 0);
      std::vector<double> scores(total, -1.0);
      // xi shifts the incumbent to discourage pure exploitation (skopt).
      const double margin = options_.xi * std::abs(incumbent);

      const auto generate = [&](std::size_t i) {
        if (i < pool_size) {
          candidates[i] = draw(rng);
        } else {
          Configuration neighbor = anchor;
          const std::size_t moves = 1 + rng.next_below(2);
          for (std::size_t m = 0; m < moves; ++m) {
            const std::size_t g = static_cast<std::size_t>(rng.next_below(neighbor.size()));
            neighbor[g] += static_cast<int>(rng.uniform_int(-2, 2));
          }
          candidates[i] = space.clamp(std::move(neighbor));
        }
        const bool blocked_dup = proposed.contains(space.encode(candidates[i]));
        const bool blocked_constraint =
            options_.constraint_aware && !space.is_executable(candidates[i]);
        eligible[i] = static_cast<char>(!blocked_dup && !blocked_constraint);
      };
      const auto score = [&](std::size_t i) {
        if (eligible[i] == 0) return;
        const std::vector<double> x = space.normalize(candidates[i]);
        const GpPrediction prediction = gp.predict(x);
        scores[i] = expected_improvement(prediction.mean, prediction.variance,
                                         incumbent - margin);
      };
      if (options_.pipelined_ask) {
        pipelined_ask(ThreadPool::global(), total, generate, score, nullptr,
                      {options_.pipeline_batch});
      } else {
        for (std::size_t i = 0; i < total; ++i) generate(i);
        repro::parallel_for(0, total, score, 0, 16);
      }

      double best_ei = -1.0;
      const Configuration* chosen = nullptr;
      for (std::size_t i = 0; i < total; ++i) {
        if (eligible[i] != 0 && scores[i] > best_ei) {
          best_ei = scores[i];
          chosen = &candidates[i];
        }
      }
      if (chosen == nullptr) {
        observe(draw(rng));
      } else {
        observe(*chosen);
      }
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
