#include "tuner/gp/bo_gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/thread_pool.hpp"
#include "stats/descriptive.hpp"

namespace repro::tuner {

double expected_improvement(double mean, double variance, double best) {
  const double sd = std::sqrt(std::max(variance, 0.0));
  if (sd < 1e-12) return std::max(best - mean, 0.0);
  const double z = (best - mean) / sd;
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
  return (best - mean) * stats::normal_cdf(z) + sd * pdf;
}

namespace {

/// Observation log in model space (targets possibly log-transformed,
/// failures replaced by a penalty).
struct History {
  std::vector<Configuration> configs;
  std::vector<double> raw;     ///< model-space value, NaN for failures
  std::vector<bool> valid;
};

}  // namespace

TuneResult BoGp::minimize(const ParamSpace& space, Evaluator& evaluator,
                          repro::Rng& rng) {
  const std::size_t budget = evaluator.budget();
  const std::size_t init = std::min(
      budget, std::max(options_.min_init,
                       static_cast<std::size_t>(std::llround(
                           options_.init_fraction * static_cast<double>(budget)))));

  History history;
  std::unordered_set<std::uint64_t> proposed;

  auto observe = [&](const Configuration& config) {
    proposed.insert(space.encode(config));
    const Evaluation eval = evaluator.evaluate(config);
    history.configs.push_back(config);
    history.valid.push_back(eval.valid);
    double value = std::numeric_limits<double>::quiet_NaN();
    if (eval.valid) {
      value = options_.log_transform ? std::log(eval.value) : eval.value;
    }
    history.raw.push_back(value);
  };

  const auto draw = [&](repro::Rng& r) {
    return options_.constraint_aware ? space.sample_executable(r) : space.sample(r);
  };

  try {
    // SMBO: unconstrained random initialization (failures possible) unless
    // the constraint-aware ablation is enabled.
    for (std::size_t i = 0; i < init; ++i) observe(draw(rng));

    GpRegressor gp;
    gp.set_incremental(options_.incremental_gp);
    std::size_t last_hyperopt = 0;
    for (;;) {
      // Assemble the training set: penalize failures against the worst
      // valid observation so the model learns to avoid those regions.
      double worst = -std::numeric_limits<double>::infinity();
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < history.raw.size(); ++i) {
        if (!history.valid[i]) continue;
        worst = std::max(worst, history.raw[i]);
        best = std::min(best, history.raw[i]);
      }
      const bool any_valid = std::isfinite(best);
      const double penalty =
          any_valid ? (options_.log_transform
                           ? worst + std::log(options_.invalid_penalty_factor)
                           : worst * options_.invalid_penalty_factor)
                    : 1.0;

      std::vector<std::size_t> order(history.configs.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      if (order.size() > options_.max_train_points) {
        // Keep the best half and the most recent half (tractability cap).
        std::vector<std::size_t> by_value = order;
        std::sort(by_value.begin(), by_value.end(), [&](std::size_t a, std::size_t b) {
          const double va = history.valid[a] ? history.raw[a] : penalty;
          const double vb = history.valid[b] ? history.raw[b] : penalty;
          return va < vb;
        });
        const std::size_t half = options_.max_train_points / 2;
        std::unordered_set<std::size_t> chosen(by_value.begin(), by_value.begin() + half);
        for (std::size_t i = history.configs.size();
             i-- > 0 && chosen.size() < options_.max_train_points;) {
          chosen.insert(i);
        }
        order.assign(chosen.begin(), chosen.end());
        std::sort(order.begin(), order.end());
      }

      std::vector<std::vector<double>> X;
      std::vector<double> y;
      X.reserve(order.size());
      y.reserve(order.size());
      for (std::size_t i : order) {
        X.push_back(space.normalize(history.configs[i]));
        y.push_back(history.valid[i] ? history.raw[i] : penalty);
      }

      bool model_ok = false;
      if (X.size() >= 2) {
        if (history.configs.size() >= last_hyperopt + options_.hyperopt_interval ||
            !gp.fitted()) {
          model_ok = gp.optimize_hyperparams(X, y);
          last_hyperopt = history.configs.size();
        } else {
          model_ok = gp.fit(X, y);
        }
      }

      if (!model_ok) {
        observe(draw(rng));  // fall back to random until fit succeeds
        continue;
      }

      // Incumbent in model space for EI.
      const double incumbent = any_valid ? best : penalty;

      // Candidate set: random pool + neighborhood of the best valid config.
      const std::size_t pool_size =
          std::max(options_.acquisition_pool,
                   options_.acquisition_budget / std::max<std::size_t>(gp.num_points(), 1));
      std::vector<Configuration> candidates;
      candidates.reserve(pool_size + options_.neighbor_candidates);
      for (std::size_t i = 0; i < pool_size; ++i) {
        candidates.push_back(draw(rng));
      }
      if (evaluator.has_best()) {
        const Configuration& anchor = evaluator.best_config();
        for (std::size_t i = 0; i < options_.neighbor_candidates; ++i) {
          Configuration neighbor = anchor;
          const std::size_t moves = 1 + rng.next_below(2);
          for (std::size_t m = 0; m < moves; ++m) {
            const std::size_t g = static_cast<std::size_t>(rng.next_below(neighbor.size()));
            neighbor[g] += static_cast<int>(rng.uniform_int(-2, 2));
          }
          candidates.push_back(space.clamp(std::move(neighbor)));
        }
      }

      // Filter sequentially, score in parallel (gp.predict is const and
      // pure), then reduce in ascending candidate order with a strict `>` —
      // the same argmax the sequential loop computed, bit for bit.
      std::vector<std::size_t> eligible;
      eligible.reserve(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (proposed.contains(space.encode(candidates[i]))) continue;
        if (options_.constraint_aware && !space.is_executable(candidates[i])) continue;
        eligible.push_back(i);
      }
      // xi shifts the incumbent to discourage pure exploitation (skopt).
      const double margin = options_.xi * std::abs(incumbent);
      std::vector<double> scores(eligible.size());
      repro::parallel_for(
          0, eligible.size(),
          [&](std::size_t k) {
            const std::vector<double> x = space.normalize(candidates[eligible[k]]);
            const GpPrediction prediction = gp.predict(x);
            scores[k] = expected_improvement(prediction.mean, prediction.variance,
                                             incumbent - margin);
          },
          0, 16);
      double best_ei = -1.0;
      const Configuration* chosen = nullptr;
      for (std::size_t k = 0; k < eligible.size(); ++k) {
        if (scores[k] > best_ei) {
          best_ei = scores[k];
          chosen = &candidates[eligible[k]];
        }
      }
      if (chosen == nullptr) {
        observe(draw(rng));
      } else {
        observe(*chosen);
      }
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
