#pragma once
// Gaussian process regression with a Matérn-5/2 kernel plus white noise —
// the surrogate behind scikit-optimize's gp_minimize, which the paper uses
// for BO GP (Section VI-B). Targets are standardized internally; inputs are
// expected in [0,1]^d (ParamSpace::normalize).

#include <span>
#include <vector>

#include "tuner/gp/linalg.hpp"

namespace repro::tuner {

struct GpHyperparams {
  double lengthscale = 0.3;   ///< isotropic, in normalized input space
  double signal_variance = 1.0;
  double noise_variance = 1e-2;
};

/// Matérn-5/2 covariance between two points at distance r (scaled by ell).
[[nodiscard]] double matern52(double r, double lengthscale, double signal_variance);

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  ///< posterior variance (>= 0), in standardized units
};

class GpRegressor {
 public:
  explicit GpRegressor(GpHyperparams hyper = {}) : hyper_(hyper) {}

  /// Fit on normalized inputs and raw targets. Targets are standardized
  /// internally (mean 0, stddev 1). Returns false when the covariance
  /// matrix is not positive definite even after jitter escalation.
  bool fit(std::span<const std::vector<double>> X, std::span<const double> y);

  /// Posterior at a normalized input; mean is de-standardized, variance is
  /// reported in (de-standardized) target units squared.
  [[nodiscard]] GpPrediction predict(std::span<const double> x) const;

  /// Log marginal likelihood of the current fit (standardized units).
  [[nodiscard]] double log_marginal_likelihood() const noexcept { return lml_; }

  /// Maximize the LML over (lengthscale, noise) with a coarse-to-fine
  /// coordinate grid search, then refit. Requires at least 2 points.
  bool optimize_hyperparams(std::span<const std::vector<double>> X,
                            std::span<const double> y);

  [[nodiscard]] const GpHyperparams& hyperparams() const noexcept { return hyper_; }
  void set_hyperparams(const GpHyperparams& hyper) noexcept { hyper_ = hyper; }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_points() const noexcept { return X_.size(); }

 private:
  [[nodiscard]] double kernel(std::span<const double> a, std::span<const double> b) const;

  GpHyperparams hyper_;
  std::vector<std::vector<double>> X_;
  std::vector<double> alpha_;   ///< (K + sigma^2 I)^{-1} y_standardized
  Matrix chol_;                 ///< lower Cholesky factor
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double lml_ = 0.0;
  bool fitted_ = false;
};

}  // namespace repro::tuner
