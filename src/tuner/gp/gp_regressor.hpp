#pragma once
// Gaussian process regression with a Matérn-5/2 kernel plus white noise —
// the surrogate behind scikit-optimize's gp_minimize, which the paper uses
// for BO GP (Section VI-B). Targets are standardized internally; inputs are
// expected in [0,1]^d (ParamSpace::normalize).
//
// Hot path: SMBO refits the surrogate after *every* observation, so a naive
// implementation refactorizes a dense Cholesky from scratch each step —
// O(n^3) per step, O(n^4) per experiment. This regressor instead keeps one
// *growing* factor per hyperparameter candidate (the MAP grid in
// optimize_hyperparams re-fits the same training set under ~15 candidates):
// when fit() is called with the previous training set plus appended rows,
// each candidate's factor is extended row by row in O(n^2) using
// PackedCholesky::append_row, whose arithmetic is bit-identical to a full
// refactorization. The pairwise-distance matrix is likewise cached and
// grown incrementally (it is hyperparameter-independent), so kernel
// rebuilds cost O(n^2) matérn evaluations instead of O(n^2 d) distance
// computations per candidate. All cached paths produce bit-identical
// chol_/alpha_/lml_ to a from-scratch fit; tests assert this.
//
// Large histories: even the O(n^2) incremental refit stops scaling once the
// history grows to tens of thousands of points. Above a configurable
// threshold the regressor switches to a subset-of-data sparse mode: a
// deterministic, seeded landmark core sampled from the history plus a tail
// of every point observed since the last landmark refresh. The active set
// stays O(landmarks + tail) regardless of n, the tail appends reuse the
// same PackedCholesky fast path, and refreshes re-select the core at
// geometrically spaced history sizes. Landmark selection is a pure function
// of (seed, options, n) — two runs over the same history pick identical
// cores. Sparse-mode arithmetic runs through the blocked SIMD kernels of
// common/simd.hpp (bit-identical across dispatch tiers); the exact
// small-history mode keeps the legacy sequential order, byte-compatible
// with every committed campaign artifact.

#include <cstdint>
#include <span>
#include <vector>

#include "tuner/gp/linalg.hpp"

namespace repro::tuner {

struct GpHyperparams {
  double lengthscale = 0.3;   ///< isotropic, in normalized input space
  double signal_variance = 1.0;
  double noise_variance = 1e-2;
};

/// Matérn-5/2 covariance between two points at distance r (scaled by ell).
[[nodiscard]] double matern52(double r, double lengthscale, double signal_variance);

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  ///< posterior variance (>= 0), in standardized units
};

/// Which surrogate regime the last fit ran under.
enum class SurrogateMode {
  kExact,   ///< full history, sequential arithmetic (legacy byte-stream)
  kSparse,  ///< landmark subset, blocked SIMD arithmetic
};

[[nodiscard]] const char* surrogate_mode_name(SurrogateMode mode) noexcept;

/// Subset-of-data fallback for large histories. Sparse mode engages iff
/// `threshold > 0 && landmarks > 0 && n > threshold`; the defaults sit far
/// above the paper protocol's train-set caps (BoGpOptions::max_train_points
/// = 120), so paper studies never leave exact mode unless a caller opts in.
struct SparseGpOptions {
  std::size_t threshold = 2048;  ///< activate above this many points (0 = never)
  std::size_t landmarks = 512;   ///< core size sampled from the history (0 = never)
  std::uint64_t seed = 0x51A2CE6Bu;  ///< landmark-selection stream
  double refresh_factor = 1.25;  ///< re-select the core when n grows by this factor

  [[nodiscard]] bool enabled() const noexcept { return threshold > 0 && landmarks > 0; }
};

class GpRegressor {
 public:
  explicit GpRegressor(GpHyperparams hyper = {}) : hyper_(hyper) {}

  /// Fit on normalized inputs and raw targets. Targets are standardized
  /// internally (mean 0, stddev 1). Returns false when the covariance
  /// matrix is not positive definite even after jitter escalation.
  bool fit(std::span<const std::vector<double>> X, std::span<const double> y);

  /// Posterior at a normalized input; mean is de-standardized, variance is
  /// reported in (de-standardized) target units squared.
  [[nodiscard]] GpPrediction predict(std::span<const double> x) const;

  /// Log marginal likelihood of the current fit (standardized units).
  [[nodiscard]] double log_marginal_likelihood() const noexcept { return lml_; }

  /// Maximize the LML over (lengthscale, noise) with a coarse-to-fine
  /// coordinate grid search, then refit. Requires at least 2 points.
  bool optimize_hyperparams(std::span<const std::vector<double>> X,
                            std::span<const double> y);

  [[nodiscard]] const GpHyperparams& hyperparams() const noexcept { return hyper_; }
  void set_hyperparams(const GpHyperparams& hyper) noexcept { hyper_ = hyper; }
  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_points() const noexcept { return X_.size(); }

  /// Disable the incremental factor/distance caches (every fit then runs
  /// the reference from-scratch path). For tests and micro-benchmarks; both
  /// modes produce bit-identical results.
  void set_incremental(bool enabled) noexcept { incremental_ = enabled; }
  [[nodiscard]] bool incremental() const noexcept { return incremental_; }

  /// Current factor / weights (exposed for the bit-identity tests).
  [[nodiscard]] const PackedCholesky& cholesky() const noexcept { return chol_; }
  [[nodiscard]] std::span<const double> alpha() const noexcept { return alpha_; }

  /// Cache-effectiveness counters (appended rows vs from-scratch columns).
  [[nodiscard]] std::size_t incremental_rows() const noexcept { return stat_rows_incremental_; }
  [[nodiscard]] std::size_t full_refactorizations() const noexcept { return stat_full_refits_; }

  /// Large-history sparse fallback. Changing the options resets all cached
  /// state (factors, distances, landmark core); the next fit re-derives
  /// everything from the new configuration.
  void set_sparse_options(const SparseGpOptions& options);
  [[nodiscard]] const SparseGpOptions& sparse_options() const noexcept { return sparse_; }

  /// Regime of the last fit, landmark-refresh count, and current core size.
  [[nodiscard]] SurrogateMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t sparse_refreshes() const noexcept { return stat_sparse_refreshes_; }
  [[nodiscard]] std::size_t landmarks_active() const noexcept { return core_.size(); }

 private:
  [[nodiscard]] double kernel(std::span<const double> a, std::span<const double> b) const;

  /// Euclidean distance between cached training rows i and j (i > j),
  /// summed in dimension order exactly as kernel() does.
  [[nodiscard]] double distance(std::size_t i, std::size_t j) const;

  /// Grow dist_ with rows [from, X_.size()).
  void extend_distances(std::size_t from);

  /// Factor state for one hyperparameter candidate. `jitter` is the ladder
  /// value the last successful factorization used; the minimal workable
  /// ladder value never decreases as rows are appended (a failing leading
  /// submatrix fails the whole factorization), so smaller values are
  /// skipped without re-trying them — exactly reproducing what a full
  /// refit's jitter escalation would conclude.
  struct CandidateState {
    GpHyperparams hyper;
    PackedCholesky chol;
    double jitter = 0.0;
    bool failed = false;  ///< every ladder value failed (at chol.size()+ rows)
  };

  [[nodiscard]] CandidateState* find_candidate(const GpHyperparams& hyper);

  /// Append rows [state.chol.size(), n) to a candidate factor at its
  /// current jitter, escalating (from-scratch refactorization at the next
  /// ladder values) when an appended pivot fails. Returns false when the
  /// ladder is exhausted. Bit-identical to the reference path.
  bool factorize(CandidateState& state, std::size_t n);

  /// From-scratch factorization at one jitter value via append_row.
  bool refactorize_at(PackedCholesky& chol, std::size_t n, double jitter);

  /// Solve for alpha_ and the LML given the current factor and targets.
  void finish_fit(std::span<const double> y);

  /// Fit on an already-projected training set (the full history in exact
  /// mode, the landmark core + tail in sparse mode). Arithmetic regime is
  /// taken from blocked_.
  bool fit_on(std::span<const std::vector<double>> X, std::span<const double> y);

  /// Largest landmark-refresh grid value <= n: threshold, then geometric
  /// growth by refresh_factor. Pure in (options, n).
  [[nodiscard]] std::size_t sparse_basis(std::size_t n) const noexcept;

  GpHyperparams hyper_;
  SparseGpOptions sparse_;
  SurrogateMode mode_ = SurrogateMode::kExact;
  bool blocked_ = false;  ///< arithmetic regime; tracks mode_
  bool incremental_ = true;
  std::size_t basis_ = 0;            ///< history size the core was drawn from
  std::vector<std::size_t> core_;    ///< landmark indices, ascending
  std::vector<std::vector<double>> X_;
  std::vector<double> dist_;    ///< packed pairwise distances, row i has i entries
  std::vector<CandidateState> candidates_;
  std::vector<double> alpha_;   ///< (K + sigma^2 I)^{-1} y_standardized
  PackedCholesky chol_;         ///< lower Cholesky factor of the active fit
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double lml_ = 0.0;
  bool fitted_ = false;
  std::size_t stat_rows_incremental_ = 0;
  std::size_t stat_full_refits_ = 0;
  std::size_t stat_sparse_refreshes_ = 0;
};

}  // namespace repro::tuner
