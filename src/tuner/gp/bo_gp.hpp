#pragma once
// Bayesian Optimization with a Gaussian Process surrogate (BO GP), matching
// the paper's scikit-optimize gp_minimize setup (Section VI-B): Expected
// Improvement acquisition, 8% of the budget as random initialization, the
// remaining 92% model-driven. As an SMBO method it searches the
// *unconstrained* space; failed configurations enter the model at a penalty
// value (the paper notes SMBO had no constraint support and still won).

#include "tuner/gp/gp_regressor.hpp"
#include "tuner/tuner.hpp"
#include "tuner/warm_start.hpp"

namespace repro::tuner {

struct BoGpOptions {
  double init_fraction = 0.08;      ///< random initialization share (paper: 8%)
  std::size_t min_init = 2;
  /// Acquisition optimization: random candidate pool + neighborhood
  /// refinement around the incumbent. The random pool grows when the GP is
  /// small (predictions are O(n^2), so early exploration is cheap exactly
  /// when it matters most — mirroring skopt's 10k-point sampling).
  std::size_t acquisition_pool = 128;      ///< minimum random pool
  std::size_t acquisition_budget = 32768;  ///< pool ~= budget / n
  std::size_t neighbor_candidates = 32;
  double xi = 0.01;  ///< EI exploration margin (skopt default)
  /// Re-run the hyperparameter search every this many observations.
  std::size_t hyperopt_interval = 25;
  /// Training-set cap for tractability: when exceeded, the model keeps the
  /// best half and the most recent half (documented deviation).
  std::size_t max_train_points = 120;
  /// Model log-runtimes (heavy-tailed targets); penalties follow suit.
  bool log_transform = true;
  /// Penalty multiplier (on the worst valid observation) for failures.
  double invalid_penalty_factor = 2.0;
  /// Ablation knob (paper Section V-C): when true, initialization and
  /// acquisition candidates are drawn from the executable sub-space, giving
  /// the SMBO method the constraint specification the paper withheld.
  bool constraint_aware = false;
  /// Incremental (append-row) Cholesky refits in the GP surrogate. Both
  /// settings produce bit-identical tuning traces; off = reference O(n^3)
  /// refit path, kept for tests and benchmarks.
  bool incremental_gp = true;
  /// Large-history sparse fallback, forwarded to the GP surrogate verbatim.
  /// Inert under the paper protocol: max_train_points caps the training set
  /// far below the default sparse threshold.
  SparseGpOptions sparse;
  /// Overlap candidate generation with acquisition scoring (double-buffered
  /// batches on the worker pool; see tuner/pipeline.hpp). Both settings
  /// produce bit-identical tuning traces.
  bool pipelined_ask = true;
  std::size_t pipeline_batch = 64;  ///< candidates per score batch
  /// Cross-tenant warm start (tuner/warm_start.hpp): prior rows enter the
  /// GP training set as observations at zero budget cost, and random
  /// initialization shrinks to min_init. Null/empty = byte-identical cold
  /// path.
  PriorHandle prior;
};

class BoGp final : public SearchAlgorithm {
 public:
  explicit BoGp(BoGpOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "BO GP"; }

  TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                      repro::Rng& rng) override;

 private:
  BoGpOptions options_;
};

/// Expected Improvement for minimization at posterior (mean, variance)
/// against incumbent `best`; 0 when variance is ~0.
[[nodiscard]] double expected_improvement(double mean, double variance, double best);

}  // namespace repro::tuner
