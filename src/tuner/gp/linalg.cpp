#include "tuner/gp/linalg.hpp"

#include <cassert>
#include <cmath>

#include "common/simd.hpp"

namespace repro::tuner {

bool cholesky_inplace(Matrix& a, bool blocked) {
  const std::size_t n = a.size();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    if (blocked) {
      diag -= simd::sum_squares(&a.at(j, 0), j);
    } else {
      for (std::size_t k = 0; k < j; ++k) diag -= a.at(j, k) * a.at(j, k);
    }
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double root = std::sqrt(diag);
    a.at(j, j) = root;
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = a.at(i, j);
      if (blocked) {
        value -= simd::dot(&a.at(i, 0), &a.at(j, 0), j);
      } else {
        for (std::size_t k = 0; k < j; ++k) value -= a.at(i, k) * a.at(j, k);
      }
      a.at(i, j) = value / root;
    }
  }
  return true;
}

bool PackedCholesky::append_row(std::span<const double> a_row) {
  const std::size_t n = n_;
  assert(a_row.size() == n + 1);
  rows_.resize((n + 1) * (n + 2) / 2);
  double* row = rows_.data() + n * (n + 1) / 2;
  // Row entries in column order: identical arithmetic to cholesky_inplace,
  // which for column k computes a(n,k) -= sum_{j<k} a(n,j)*a(k,j), then
  // divides by the column-k pivot. In blocked mode the subtracted sum runs
  // through the fixed-blocking SIMD dot instead of the sequential loop.
  for (std::size_t k = 0; k < n; ++k) {
    double value = a_row[k];
    const double* col_row = rows_.data() + k * (k + 1) / 2;
    if (blocked_) {
      value -= simd::dot(row, col_row, k);
    } else {
      for (std::size_t j = 0; j < k; ++j) value -= row[j] * col_row[j];
    }
    row[k] = value / col_row[k];
  }
  double diag = a_row[n];
  if (blocked_) {
    diag -= simd::sum_squares(row, n);
  } else {
    for (std::size_t k = 0; k < n; ++k) diag -= row[k] * row[k];
  }
  if (diag <= 0.0 || !std::isfinite(diag)) {
    rows_.resize(n * (n + 1) / 2);  // leave the factor as it was
    return false;
  }
  row[n] = std::sqrt(diag);
  n_ = n + 1;
  return true;
}

PackedCholesky PackedCholesky::from_lower(const Matrix& l, bool blocked) {
  PackedCholesky out;
  out.n_ = l.size();
  out.blocked_ = blocked;
  out.rows_.resize(out.n_ * (out.n_ + 1) / 2);
  for (std::size_t i = 0; i < out.n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) out.rows_[i * (i + 1) / 2 + j] = l.at(i, j);
  }
  return out;
}

void PackedCholesky::solve_lower(std::span<const double> b, std::span<double> x) const {
  assert(b.size() == n_ && x.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = rows_.data() + i * (i + 1) / 2;
    double value = b[i];
    if (blocked_) {
      value -= simd::dot(row, x.data(), i);
    } else {
      for (std::size_t k = 0; k < i; ++k) value -= row[k] * x[k];
    }
    x[i] = value / row[i];
  }
}

void PackedCholesky::solve_lower_transpose(std::span<const double> b,
                                           std::span<double> x) const {
  assert(b.size() == n_ && x.size() == n_);
  if (blocked_) {
    // The transpose walks column i, which is strided in packed-row storage;
    // gather it into a scratch row so the blocked dot sees contiguous data.
    std::vector<double> column(n_);
    for (std::size_t i = n_; i-- > 0;) {
      for (std::size_t k = i + 1; k < n_; ++k) column[k] = at(k, i);
      const double value = b[i] - simd::dot(column.data() + i + 1,
                                            x.data() + i + 1, n_ - i - 1);
      x[i] = value / at(i, i);
    }
    return;
  }
  for (std::size_t i = n_; i-- > 0;) {
    double value = b[i];
    for (std::size_t k = i + 1; k < n_; ++k) value -= at(k, i) * x[k];
    x[i] = value / at(i, i);
  }
}

void PackedCholesky::solve(std::span<const double> b, std::span<double> x) const {
  std::vector<double> tmp(n_);
  solve_lower(b, tmp);
  solve_lower_transpose(tmp, x);
}

double PackedCholesky::log_diag_sum() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < n_; ++i) sum += std::log(at(i, i));
  return sum;
}

void solve_lower(const Matrix& l, std::span<const double> b, std::span<double> x) {
  const std::size_t n = l.size();
  assert(b.size() == n && x.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = b[i];
    for (std::size_t k = 0; k < i; ++k) value -= l.at(i, k) * x[k];
    x[i] = value / l.at(i, i);
  }
}

void solve_lower_transpose(const Matrix& l, std::span<const double> b, std::span<double> x) {
  const std::size_t n = l.size();
  assert(b.size() == n && x.size() == n);
  for (std::size_t i = n; i-- > 0;) {
    double value = b[i];
    for (std::size_t k = i + 1; k < n; ++k) value -= l.at(k, i) * x[k];
    x[i] = value / l.at(i, i);
  }
}

void solve_cholesky(const Matrix& l, std::span<const double> b, std::span<double> x) {
  std::vector<double> tmp(l.size());
  solve_lower(l, b, tmp);
  solve_lower_transpose(l, tmp, x);
}

double log_diag_sum(const Matrix& l) {
  double sum = 0.0;
  for (std::size_t i = 0; i < l.size(); ++i) sum += std::log(l.at(i, i));
  return sum;
}

}  // namespace repro::tuner
