#include "tuner/gp/linalg.hpp"

#include <cassert>
#include <cmath>

namespace repro::tuner {

bool cholesky_inplace(Matrix& a) {
  const std::size_t n = a.size();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a.at(j, k) * a.at(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double root = std::sqrt(diag);
    a.at(j, j) = root;
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) value -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = value / root;
    }
  }
  return true;
}

void solve_lower(const Matrix& l, std::span<const double> b, std::span<double> x) {
  const std::size_t n = l.size();
  assert(b.size() == n && x.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = b[i];
    for (std::size_t k = 0; k < i; ++k) value -= l.at(i, k) * x[k];
    x[i] = value / l.at(i, i);
  }
}

void solve_lower_transpose(const Matrix& l, std::span<const double> b, std::span<double> x) {
  const std::size_t n = l.size();
  assert(b.size() == n && x.size() == n);
  for (std::size_t i = n; i-- > 0;) {
    double value = b[i];
    for (std::size_t k = i + 1; k < n; ++k) value -= l.at(k, i) * x[k];
    x[i] = value / l.at(i, i);
  }
}

void solve_cholesky(const Matrix& l, std::span<const double> b, std::span<double> x) {
  std::vector<double> tmp(l.size());
  solve_lower(l, b, tmp);
  solve_lower_transpose(l, tmp, x);
}

double log_diag_sum(const Matrix& l) {
  double sum = 0.0;
  for (std::size_t i = 0; i < l.size(); ++i) sum += std::log(l.at(i, i));
  return sum;
}

}  // namespace repro::tuner
