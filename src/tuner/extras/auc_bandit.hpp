#pragma once
// OpenTuner-style ensemble search (Ansel et al., PACT 2014 — the
// "multi-armed bandit" row of the paper's Table I). A pool of cheap,
// steppable techniques (random sampling, mutation hill-climbing at two
// radii, elite crossover) proposes one configuration per step; an AUC
// bandit allocates steps to whichever technique has recently produced
// improvements, with a UCB-style exploration bonus.
//
// Constraint-aware, like the other non-SMBO methods: proposals are
// repaired into the executable sub-space.

#include "tuner/tuner.hpp"

namespace repro::tuner {

struct AucBanditOptions {
  std::size_t window = 50;          ///< history window for the AUC score
  double exploration = 1.4;         ///< UCB exploration coefficient (OpenTuner C)
  std::size_t elite_pool = 8;       ///< configurations the crossover draws from
};

class AucBandit final : public SearchAlgorithm {
 public:
  explicit AucBandit(AucBanditOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "AUC Bandit"; }

  TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                      repro::Rng& rng) override;

 private:
  AucBanditOptions options_;
};

}  // namespace repro::tuner
