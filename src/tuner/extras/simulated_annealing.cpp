#include "tuner/extras/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace repro::tuner {

TuneResult SimulatedAnnealing::minimize(const ParamSpace& space, Evaluator& evaluator,
                                        repro::Rng& rng) {
  try {
    Configuration current = space.sample_executable(rng);
    Evaluation current_eval = evaluator.evaluate(current);
    double scale = current_eval.valid ? std::abs(current_eval.value) : 1.0;

    const auto budget = static_cast<double>(std::max<std::size_t>(evaluator.budget(), 2));
    const double cooling =
        std::pow(options_.final_temperature / options_.initial_temperature, 1.0 / budget);
    double temperature = options_.initial_temperature;

    const std::size_t max_moves = 64 * evaluator.budget() + 64;
    for (std::size_t move = 0; move < max_moves; ++move) {
      // Neighbor: perturb one parameter by up to max_step, repaired to the
      // executable sub-space.
      Configuration neighbor = current;
      for (unsigned attempt = 0; attempt < 64; ++attempt) {
        neighbor = current;
        const std::size_t g = static_cast<std::size_t>(rng.next_below(neighbor.size()));
        int delta = 0;
        while (delta == 0) {
          delta = static_cast<int>(rng.uniform_int(-options_.max_step, options_.max_step));
        }
        neighbor[g] += delta;
        neighbor = space.clamp(std::move(neighbor));
        if (space.is_executable(neighbor)) break;
      }
      if (!space.is_executable(neighbor)) neighbor = space.sample_executable(rng);

      const Evaluation neighbor_eval = evaluator.evaluate(neighbor);
      const double current_value = current_eval.valid
                                       ? current_eval.value
                                       : std::numeric_limits<double>::infinity();
      const double neighbor_value = neighbor_eval.valid
                                        ? neighbor_eval.value
                                        : std::numeric_limits<double>::infinity();
      bool accept = neighbor_value <= current_value;
      if (!accept && std::isfinite(neighbor_value)) {
        const double delta = (neighbor_value - current_value) / std::max(scale, 1e-12);
        accept = rng.bernoulli(std::exp(-delta / std::max(temperature, 1e-12)));
      }
      if (accept) {
        current = neighbor;
        current_eval = neighbor_eval;
        if (neighbor_eval.valid) scale = std::abs(neighbor_eval.value);
      }
      temperature *= cooling;
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
