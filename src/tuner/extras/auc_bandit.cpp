#include "tuner/extras/auc_bandit.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

namespace repro::tuner {
namespace {

/// A steppable proposal source. Techniques share the incumbent/elite state
/// owned by the ensemble and only differ in how they generate candidates.
struct EnsembleState {
  struct Elite {
    Configuration config;
    double value;
  };
  std::vector<Elite> elites;  ///< best configurations seen, ascending value

  void record(const Configuration& config, double value, std::size_t capacity) {
    const auto position = std::lower_bound(
        elites.begin(), elites.end(), value,
        [](const Elite& e, double v) { return e.value < v; });
    elites.insert(position, {config, value});
    if (elites.size() > capacity) elites.resize(capacity);
  }
  [[nodiscard]] bool empty() const noexcept { return elites.empty(); }
};

Configuration repair(const ParamSpace& space, Configuration config, repro::Rng& rng) {
  config = space.clamp(std::move(config));
  for (unsigned attempt = 0; attempt < 64 && !space.is_executable(config); ++attempt) {
    const std::size_t g = static_cast<std::size_t>(rng.next_below(config.size()));
    config[g] = static_cast<int>(rng.uniform_int(space.param(g).lo, space.param(g).hi));
  }
  if (!space.is_executable(config)) config = space.sample_executable(rng);
  return config;
}

class Technique {
 public:
  virtual ~Technique() = default;
  virtual Configuration propose(const ParamSpace& space, const EnsembleState& state,
                                repro::Rng& rng) = 0;
};

/// Pure random sampling (the ensemble's exploration floor).
class RandomTechnique final : public Technique {
 public:
  Configuration propose(const ParamSpace& space, const EnsembleState&,
                        repro::Rng& rng) override {
    return space.sample_executable(rng);
  }
};

/// Mutate the incumbent (or a random elite) by +-radius on a few parameters.
class MutateTechnique final : public Technique {
 public:
  explicit MutateTechnique(int radius) : radius_(radius) {}

  Configuration propose(const ParamSpace& space, const EnsembleState& state,
                        repro::Rng& rng) override {
    if (state.empty()) return space.sample_executable(rng);
    const std::size_t pick = rng.next_below(std::min<std::size_t>(3, state.elites.size()));
    Configuration config = state.elites[pick].config;
    const std::size_t moves = 1 + rng.next_below(2);
    for (std::size_t m = 0; m < moves; ++m) {
      const std::size_t g = static_cast<std::size_t>(rng.next_below(config.size()));
      int delta = 0;
      while (delta == 0) delta = static_cast<int>(rng.uniform_int(-radius_, radius_));
      config[g] += delta;
    }
    return repair(space, std::move(config), rng);
  }

 private:
  int radius_;
};

/// Uniform crossover of two random elites.
class CrossoverTechnique final : public Technique {
 public:
  Configuration propose(const ParamSpace& space, const EnsembleState& state,
                        repro::Rng& rng) override {
    if (state.elites.size() < 2) return space.sample_executable(rng);
    const std::size_t a = rng.next_below(state.elites.size());
    std::size_t b = rng.next_below(state.elites.size());
    if (b == a) b = (b + 1) % state.elites.size();
    Configuration child = state.elites[a].config;
    for (std::size_t g = 0; g < child.size(); ++g) {
      if (rng.bernoulli(0.5)) child[g] = state.elites[b].config[g];
    }
    return repair(space, std::move(child), rng);
  }
};

}  // namespace

TuneResult AucBandit::minimize(const ParamSpace& space, Evaluator& evaluator,
                               repro::Rng& rng) {
  std::vector<std::unique_ptr<Technique>> techniques;
  techniques.push_back(std::make_unique<RandomTechnique>());
  techniques.push_back(std::make_unique<MutateTechnique>(1));
  techniques.push_back(std::make_unique<MutateTechnique>(3));
  techniques.push_back(std::make_unique<CrossoverTechnique>());

  // Per-technique sliding window of outcomes (1 = proposal improved the
  // incumbent). The AUC score weights recent successes more (OpenTuner's
  // area-under-curve credit assignment).
  std::vector<std::deque<int>> history(techniques.size());
  std::vector<std::size_t> uses(techniques.size(), 0);
  std::size_t total_uses = 0;

  const auto auc_score = [&](std::size_t t) {
    const auto& window = history[t];
    if (window.empty()) return 0.0;
    double score = 0.0;
    double norm = 0.0;
    for (std::size_t i = 0; i < window.size(); ++i) {
      const double weight = static_cast<double>(i + 1);  // recency weighting
      score += weight * window[i];
      norm += weight;
    }
    return score / norm;
  };

  EnsembleState state;
  double incumbent = std::numeric_limits<double>::infinity();

  try {
    // Seed with a couple of random samples so the elites exist.
    for (int i = 0; i < 2 && !evaluator.exhausted(); ++i) {
      const Configuration config = space.sample_executable(rng);
      const Evaluation eval = evaluator.evaluate(config);
      if (eval.valid) {
        state.record(config, eval.value, options_.elite_pool);
        incumbent = std::min(incumbent, eval.value);
      }
    }

    const std::size_t max_steps = 64 * evaluator.budget() + 64;
    for (std::size_t step = 0; step < max_steps; ++step) {
      // UCB over AUC scores.
      std::size_t chosen = 0;
      double best_score = -std::numeric_limits<double>::infinity();
      for (std::size_t t = 0; t < techniques.size(); ++t) {
        double score;
        if (uses[t] == 0) {
          score = std::numeric_limits<double>::infinity();  // try everything once
        } else {
          score = auc_score(t) +
                  options_.exploration *
                      std::sqrt(std::log(static_cast<double>(total_uses + 1)) /
                                static_cast<double>(uses[t]));
        }
        if (score > best_score) {
          best_score = score;
          chosen = t;
        }
      }

      const Configuration config = techniques[chosen]->propose(space, state, rng);
      const Evaluation eval = evaluator.evaluate(config);
      ++uses[chosen];
      ++total_uses;
      const bool improved = eval.valid && eval.value < incumbent;
      history[chosen].push_back(improved ? 1 : 0);
      if (history[chosen].size() > options_.window) history[chosen].pop_front();
      if (eval.valid) {
        state.record(config, eval.value, options_.elite_pool);
        incumbent = std::min(incumbent, eval.value);
      }
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
