#pragma once
// Particle Swarm Optimization — the second CLTune baseline (Nugteren &
// Codreanu [11]). Particles move in the continuous relaxation of the
// integer space and are rounded + repaired to executable configurations
// before evaluation.

#include "tuner/tuner.hpp"

namespace repro::tuner {

struct PsoOptions {
  std::size_t swarm = 16;
  double inertia = 0.72;
  double cognitive = 1.49;  ///< pull toward the particle's own best
  double social = 1.49;     ///< pull toward the swarm best
};

class ParticleSwarm final : public SearchAlgorithm {
 public:
  explicit ParticleSwarm(PsoOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "PSO"; }

  TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                      repro::Rng& rng) override;

 private:
  PsoOptions options_;
};

}  // namespace repro::tuner
