#include "tuner/extras/pso.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace repro::tuner {

TuneResult ParticleSwarm::minimize(const ParamSpace& space, Evaluator& evaluator,
                                   repro::Rng& rng) {
  const std::size_t dims = space.num_params();
  struct Particle {
    std::vector<double> position;  // normalized [0,1]^d
    std::vector<double> velocity;
    std::vector<double> best_position;
    double best_value = std::numeric_limits<double>::infinity();
  };

  auto to_config = [&](const std::vector<double>& position) {
    Configuration config(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      const ParamRange& param = space.param(d);
      const double span = static_cast<double>(param.hi - param.lo);
      config[d] = param.lo +
                  static_cast<int>(std::lround(std::clamp(position[d], 0.0, 1.0) * span));
    }
    // Repair to executable by shrinking the largest constrained parameter.
    for (unsigned attempt = 0; attempt < 64 && !space.is_executable(config); ++attempt) {
      const std::size_t g = static_cast<std::size_t>(rng.next_below(dims));
      if (config[g] > space.param(g).lo) --config[g];
    }
    if (!space.is_executable(config)) config = space.sample_executable(rng);
    return config;
  };

  const std::size_t swarm_size =
      std::max<std::size_t>(2, std::min(options_.swarm, evaluator.budget()));
  std::vector<Particle> swarm(swarm_size);
  std::vector<double> global_best_position;
  double global_best_value = std::numeric_limits<double>::infinity();

  try {
    for (Particle& particle : swarm) {
      particle.position.resize(dims);
      particle.velocity.resize(dims);
      const Configuration seed = space.sample_executable(rng);
      particle.position = space.normalize(seed);
      for (std::size_t d = 0; d < dims; ++d) {
        particle.velocity[d] = rng.uniform(-0.2, 0.2);
      }
      const Evaluation eval = evaluator.evaluate(to_config(particle.position));
      const double value =
          eval.valid ? eval.value : std::numeric_limits<double>::infinity();
      particle.best_position = particle.position;
      particle.best_value = value;
      if (value < global_best_value) {
        global_best_value = value;
        global_best_position = particle.position;
      }
    }

    const std::size_t max_rounds = 64 * evaluator.budget() + 64;
    for (std::size_t round = 0; round < max_rounds; ++round) {
      for (Particle& particle : swarm) {
        for (std::size_t d = 0; d < dims; ++d) {
          const double toward_self =
              particle.best_position.empty()
                  ? 0.0
                  : particle.best_position[d] - particle.position[d];
          const double toward_global =
              global_best_position.empty()
                  ? 0.0
                  : global_best_position[d] - particle.position[d];
          particle.velocity[d] = options_.inertia * particle.velocity[d] +
                                 options_.cognitive * rng.uniform() * toward_self +
                                 options_.social * rng.uniform() * toward_global;
          particle.velocity[d] = std::clamp(particle.velocity[d], -0.5, 0.5);
          particle.position[d] =
              std::clamp(particle.position[d] + particle.velocity[d], 0.0, 1.0);
        }
        const Evaluation eval = evaluator.evaluate(to_config(particle.position));
        const double value =
            eval.valid ? eval.value : std::numeric_limits<double>::infinity();
        if (value < particle.best_value) {
          particle.best_value = value;
          particle.best_position = particle.position;
        }
        if (value < global_best_value) {
          global_best_value = value;
          global_best_position = particle.position;
        }
      }
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  return result_from(evaluator);
}

}  // namespace repro::tuner
