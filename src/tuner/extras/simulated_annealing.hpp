#pragma once
// Simulated Annealing — one of the two CLTune baselines (Nugteren &
// Codreanu [11]) the paper's related-work section compares against RS.
// Neighborhood moves perturb one parameter by a small step; the temperature
// follows a geometric schedule sized to the budget. Constraint-aware
// (CLTune searches only permissible configurations).

#include "tuner/tuner.hpp"

namespace repro::tuner {

struct SaOptions {
  double initial_temperature = 1.0;  ///< relative to the observed value scale
  double final_temperature = 1e-3;
  int max_step = 2;                  ///< per-move parameter perturbation
};

class SimulatedAnnealing final : public SearchAlgorithm {
 public:
  explicit SimulatedAnnealing(SaOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "SA"; }

  TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                      repro::Rng& rng) override;

 private:
  SaOptions options_;
};

}  // namespace repro::tuner
