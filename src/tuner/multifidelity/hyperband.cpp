#include "tuner/multifidelity/hyperband.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/simd.hpp"
#include "tuner/evaluator.hpp"  // BudgetExhausted

namespace repro::tuner {
namespace {

struct Observation {
  Configuration config;
  double fidelity = 0.0;
  double value = 0.0;
  bool valid = false;
};

/// Configuration proposal source: uniform for HyperBand, TPE-guided for
/// BOHB. Both draw from the executable sub-space.
class Sampler {
 public:
  virtual ~Sampler() = default;
  virtual Configuration propose(const ParamSpace& space, repro::Rng& rng) = 0;
  virtual void record(const Observation&) {}
};

class UniformSampler final : public Sampler {
 public:
  Configuration propose(const ParamSpace& space, repro::Rng& rng) override {
    return space.sample_executable(rng);
  }
};

/// BOHB's model-based sampler: per-fidelity histories; proposals come from
/// a TPE-style l/g Parzen ratio fitted on the *highest* fidelity with
/// enough valid points (Falkner et al., Algorithm 2, categorical case).
class TpeSampler final : public Sampler {
 public:
  explicit TpeSampler(const BohbOptions& options) : options_(options) {}

  Configuration propose(const ParamSpace& space, repro::Rng& rng) override {
    if (rng.uniform() < options_.random_fraction) return space.sample_executable(rng);
    const std::vector<Observation>* history = nullptr;
    double best_fidelity = 0.0;
    for (const auto& [fidelity, observations] : by_fidelity_) {
      if (observations.size() >= options_.min_model_points && fidelity > best_fidelity) {
        best_fidelity = fidelity;
        history = &observations;
      }
    }
    if (history == nullptr) return space.sample_executable(rng);

    // Split the fidelity's history at the gamma quantile.
    std::vector<std::size_t> order(history->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return (*history)[a].value < (*history)[b].value;
    });
    const std::size_t n_good = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::ceil(options_.gamma *
                                              static_cast<double>(order.size()))));

    std::vector<ParzenCategorical> good, bad;
    for (const ParamRange& param : space.params()) {
      good.emplace_back(param.lo, param.hi, options_.prior_weight);
      bad.emplace_back(param.lo, param.hi, options_.prior_weight);
    }
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      auto& target = rank < n_good ? good : bad;
      for (std::size_t d = 0; d < space.num_params(); ++d) {
        target[d].add((*history)[order[rank]].config[d]);
      }
    }

    double best_ratio = -std::numeric_limits<double>::infinity();
    Configuration best;
    for (std::size_t c = 0; c < options_.ei_candidates; ++c) {
      Configuration candidate(space.num_params());
      for (std::size_t d = 0; d < space.num_params(); ++d) {
        candidate[d] = good[d].sample(rng);
      }
      if (!space.is_executable(candidate)) continue;
      // Shared sequential sum kernel: same left-to-right accumulation as
      // the fused += loop, byte-identical ranking (see common/simd.hpp).
      std::vector<double> terms(space.num_params());
      for (std::size_t d = 0; d < space.num_params(); ++d) {
        terms[d] = std::log(good[d].probability(candidate[d])) -
                   std::log(bad[d].probability(candidate[d]));
      }
      const double log_ratio = simd::seq::sum(terms.data(), terms.size());
      if (log_ratio > best_ratio) {
        best_ratio = log_ratio;
        best = std::move(candidate);
      }
    }
    if (best.empty()) return space.sample_executable(rng);
    return best;
  }

  void record(const Observation& observation) override {
    if (!observation.valid) return;
    by_fidelity_[observation.fidelity].push_back(observation);
  }

 private:
  BohbOptions options_;
  std::map<double, std::vector<Observation>> by_fidelity_;
};

/// Run HyperBand brackets with the given proposal source until the budget
/// is exhausted.
FidelityTuneResult run_hyperband(const HyperbandOptions& options, Sampler& sampler,
                                 const ParamSpace& space, FidelityEvaluator& evaluator,
                                 repro::Rng& rng) {
  const double eta = options.eta;
  const double r_max = 1.0 / options.min_fidelity;  // resource ratio
  const int s_max = static_cast<int>(std::floor(std::log(r_max) / std::log(eta)));

  struct Candidate {
    Configuration config;
    double value = std::numeric_limits<double>::infinity();
  };

  try {
    for (std::size_t round = 0; round < options.max_brackets; ++round) {
      for (int s = s_max; s >= 0; --s) {
        // Bracket s: n configurations starting at fidelity eta^-s.
        const auto n = static_cast<std::size_t>(
            std::ceil(static_cast<double>(s_max + 1) / (s + 1) * std::pow(eta, s)));
        double fidelity = std::pow(eta, -s);

        std::vector<Candidate> rung;
        rung.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          rung.push_back({sampler.propose(space, rng), 0.0});
        }
        for (int stage = s;; --stage) {
          for (Candidate& candidate : rung) {
            const Evaluation eval = evaluator.evaluate(candidate.config, fidelity);
            candidate.value =
                eval.valid ? eval.value : std::numeric_limits<double>::infinity();
            sampler.record({candidate.config, fidelity, eval.value, eval.valid});
          }
          if (stage == 0) break;
          // Promote the best 1/eta to eta-times the fidelity.
          const std::size_t keep = std::max<std::size_t>(
              1, static_cast<std::size_t>(static_cast<double>(rung.size()) / eta));
          std::partial_sort(rung.begin(), rung.begin() + keep, rung.end(),
                            [](const Candidate& a, const Candidate& b) {
                              return a.value < b.value;
                            });
          rung.resize(keep);
          fidelity = std::min(1.0, fidelity * eta);
        }
      }
    }
  } catch (const BudgetExhausted&) {
    // normal termination
  }
  FidelityTuneResult result;
  result.found_valid = evaluator.has_best();
  if (result.found_valid) {
    result.best_config = evaluator.best_config();
    result.best_value = evaluator.best_value();
  }
  result.units_used = evaluator.used();
  result.evaluations = evaluator.evaluations();
  return result;
}

}  // namespace

FidelityTuneResult HyperBand::minimize(const ParamSpace& space,
                                       FidelityEvaluator& evaluator, repro::Rng& rng) {
  UniformSampler sampler;
  return run_hyperband(options_, sampler, space, evaluator, rng);
}

FidelityTuneResult Bohb::minimize(const ParamSpace& space, FidelityEvaluator& evaluator,
                                  repro::Rng& rng) {
  TpeSampler sampler(options_);
  return run_hyperband(options_.hyperband, sampler, space, evaluator, rng);
}

}  // namespace repro::tuner
