#pragma once
// HyperBand (Li et al.) and BOHB (Falkner, Klein & Hutter 2018) — the
// multi-fidelity methods the paper proposes comparing against as future
// work (Section VIII-A).
//
// HyperBand runs successive-halving brackets: many configurations at a
// cheap fidelity, promoting the best eta-fraction to eta-times the
// fidelity until survivors reach full fidelity. BOHB replaces HyperBand's
// uniform configuration sampling with a TPE model fitted on the highest
// fidelity that has enough observations.
//
// For GPU autotuning the fidelity axis is the problem size (a kernel tuned
// on a quarter-size image is a cheap, imperfect proxy — rank correlation
// across sizes is what these methods exploit). Both samplers here are
// constraint-aware: unlike the paper's off-the-shelf SMBO libraries, a
// purpose-built tuner has no reason to discard the known constraint.

#include "tuner/multifidelity/fidelity.hpp"
#include "tuner/tpe/bo_tpe.hpp"

namespace repro::tuner {

struct HyperbandOptions {
  double eta = 3.0;        ///< halving rate
  double min_fidelity = 1.0 / 27.0;
  std::size_t max_brackets = 64;  ///< loop brackets until budget runs out
};

class HyperBand final : public MultiFidelitySearch {
 public:
  explicit HyperBand(HyperbandOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "HB"; }
  FidelityTuneResult minimize(const ParamSpace& space, FidelityEvaluator& evaluator,
                              repro::Rng& rng) override;

 private:
  HyperbandOptions options_;
};

struct BohbOptions {
  HyperbandOptions hyperband;
  double gamma = 0.25;            ///< TPE good/bad split
  std::size_t min_model_points = 8;  ///< per fidelity before the model engages
  std::size_t ei_candidates = 24;
  double prior_weight = 1.0;
  double random_fraction = 0.2;   ///< fraction of proposals kept random
};

class Bohb final : public MultiFidelitySearch {
 public:
  explicit Bohb(BohbOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "BOHB"; }
  FidelityTuneResult minimize(const ParamSpace& space, FidelityEvaluator& evaluator,
                              repro::Rng& rng) override;

 private:
  BohbOptions options_;
};

}  // namespace repro::tuner
