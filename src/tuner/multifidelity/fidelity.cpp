#include "tuner/multifidelity/fidelity.hpp"

#include <algorithm>

#include "tuner/evaluator.hpp"  // BudgetExhausted

namespace repro::tuner {

Evaluation FidelityEvaluator::evaluate(const Configuration& config, double fidelity) {
  if (!space_.in_range(config)) {
    throw std::invalid_argument("FidelityEvaluator: configuration out of range");
  }
  fidelity = std::clamp(fidelity, 1e-6, 1.0);
  if (used_ + fidelity > budget_ + 1e-9) throw BudgetExhausted{};
  used_ += fidelity;
  ++evaluations_;
  const Evaluation result = objective_(config, fidelity);
  if (fidelity >= 1.0 - 1e-9 && result.valid &&
      (!has_best_ || result.value < best_value_)) {
    has_best_ = true;
    best_value_ = result.value;
    best_config_ = config;
  }
  return result;
}

}  // namespace repro::tuner
