#pragma once
// Multi-fidelity evaluation: the substrate for HyperBand and BOHB, the
// methods the paper names as future work (Section VIII-A, citing Falkner
// et al.'s BOHB). A fidelity in (0, 1] selects a cheaper proxy of the
// objective (for GPU autotuning: a scaled-down problem size); evaluating at
// fidelity f costs f full-evaluation units of budget.

#include <cstddef>
#include <functional>
#include <stdexcept>

#include "tuner/objective.hpp"
#include "tuner/search_space.hpp"

namespace repro::tuner {

/// One measurement of `config` at `fidelity` in (0, 1].
using MultiFidelityObjective =
    std::function<Evaluation(const Configuration&, double fidelity)>;

/// Budget broker in full-evaluation units: an evaluation at fidelity f
/// consumes f units. Exhaustion throws BudgetExhausted (tuner.hpp).
class FidelityEvaluator {
 public:
  FidelityEvaluator(const ParamSpace& space, MultiFidelityObjective objective,
                    double budget_units)
      : space_(space), objective_(std::move(objective)), budget_(budget_units) {
    if (budget_units <= 0.0) {
      throw std::invalid_argument("FidelityEvaluator: non-positive budget");
    }
  }

  /// Measure `config` at `fidelity` (clamped to (0, 1]).
  Evaluation evaluate(const Configuration& config, double fidelity);

  [[nodiscard]] double budget() const noexcept { return budget_; }
  [[nodiscard]] double used() const noexcept { return used_; }
  [[nodiscard]] double remaining() const noexcept { return budget_ - used_; }
  [[nodiscard]] bool exhausted() const noexcept { return used_ >= budget_ - 1e-9; }
  [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }

  /// Best *full-fidelity* valid observation so far.
  [[nodiscard]] bool has_best() const noexcept { return has_best_; }
  [[nodiscard]] const Configuration& best_config() const noexcept { return best_config_; }
  [[nodiscard]] double best_value() const noexcept { return best_value_; }

  [[nodiscard]] const ParamSpace& space() const noexcept { return space_; }

 private:
  const ParamSpace& space_;
  MultiFidelityObjective objective_;
  double budget_;
  double used_ = 0.0;
  std::size_t evaluations_ = 0;
  Configuration best_config_;
  double best_value_ = 0.0;
  bool has_best_ = false;
};

struct FidelityTuneResult {
  Configuration best_config;
  double best_value = 0.0;   ///< best full-fidelity observation
  bool found_valid = false;
  double units_used = 0.0;
  std::size_t evaluations = 0;
};

/// Interface for budgeted multi-fidelity searchers.
class MultiFidelitySearch {
 public:
  virtual ~MultiFidelitySearch() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual FidelityTuneResult minimize(const ParamSpace& space,
                                      FidelityEvaluator& evaluator,
                                      repro::Rng& rng) = 0;

 protected:
  static FidelityTuneResult result_from(const FidelityEvaluator& evaluator) {
    FidelityTuneResult result;
    result.found_valid = evaluator.has_best();
    if (result.found_valid) {
      result.best_config = evaluator.best_config();
      result.best_value = evaluator.best_value();
    }
    result.units_used = evaluator.used();
    result.evaluations = evaluator.evaluations();
    return result;
  }
};

}  // namespace repro::tuner
