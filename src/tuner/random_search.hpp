#pragma once
// Random Search (RS), the paper's baseline: draw budget-many executable
// configurations uniformly at random and keep the best (Section VI-B —
// "simply select the minimum runtime from the collection of S samples").
// RS is a non-SMBO method and is therefore constraint-aware.

#include "tuner/tuner.hpp"

namespace repro::tuner {

class RandomSearch final : public SearchAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "RS"; }

  TuneResult minimize(const ParamSpace& space, Evaluator& evaluator,
                      repro::Rng& rng) override;
};

}  // namespace repro::tuner
