#include "tuner/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "tuner/extras/auc_bandit.hpp"
#include "tuner/extras/pso.hpp"
#include "tuner/extras/simulated_annealing.hpp"
#include "tuner/forest/rf_tuner.hpp"
#include "tuner/ga/genetic.hpp"
#include "tuner/gp/bo_gp.hpp"
#include "tuner/random_search.hpp"
#include "tuner/tpe/bo_tpe.hpp"

namespace repro::tuner {
namespace {

std::string canonical(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c == ' ' || c == '_' || c == '-') continue;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::unique_ptr<SearchAlgorithm> make_algorithm(const std::string& name) {
  const std::string id = canonical(name);
  if (id == "rs" || id == "random" || id == "randomsearch") {
    return std::make_unique<RandomSearch>();
  }
  if (id == "rf" || id == "randomforest") {
    return std::make_unique<RandomForestTuner>();
  }
  if (id == "ga" || id == "genetic") {
    return std::make_unique<GeneticAlgorithm>();
  }
  if (id == "bogp" || id == "gp") {
    return std::make_unique<BoGp>();
  }
  if (id == "botpe" || id == "tpe") {
    return std::make_unique<BoTpe>();
  }
  if (id == "sa" || id == "simulatedannealing") {
    return std::make_unique<SimulatedAnnealing>();
  }
  if (id == "pso" || id == "particleswarm") {
    return std::make_unique<ParticleSwarm>();
  }
  if (id == "bandit" || id == "aucbandit" || id == "opentuner") {
    return std::make_unique<AucBandit>();
  }
  throw std::out_of_range("unknown algorithm: " + name);
}

std::unique_ptr<SearchAlgorithm> make_algorithm(const std::string& name,
                                                const PriorHandle& prior) {
  const std::string id = canonical(name);
  if (warm_start::has_rows(prior)) {
    if (id == "rf" || id == "randomforest") {
      RfTunerOptions options;
      options.prior = prior;
      return std::make_unique<RandomForestTuner>(options);
    }
    if (id == "bogp" || id == "gp") {
      BoGpOptions options;
      options.prior = prior;
      return std::make_unique<BoGp>(options);
    }
    if (id == "botpe" || id == "tpe") {
      BoTpeOptions options;
      options.prior = prior;
      return std::make_unique<BoTpe>(options);
    }
  }
  return make_algorithm(name);
}

bool supports_warm_start(const std::string& name) {
  const std::string id = canonical(name);
  (void)make_algorithm(name);  // reject unknown names the same way
  return id == "rf" || id == "randomforest" || id == "bogp" || id == "gp" ||
         id == "botpe" || id == "tpe";
}

const std::vector<std::string>& paper_algorithms() {
  static const std::vector<std::string> ids = {"rs", "rf", "ga", "bogp", "botpe"};
  return ids;
}

const std::vector<std::string>& all_algorithms() {
  static const std::vector<std::string> ids = {"rs", "rf", "ga", "bogp", "botpe", "sa", "pso", "bandit"};
  return ids;
}

std::string display_name(const std::string& id) {
  return make_algorithm(id)->name();
}

}  // namespace repro::tuner
